//! Fault injection for the pager's I/O path — the crash half of the WAL
//! story's proof obligation.
//!
//! A database is only as durable as its behaviour at the worst possible
//! kill point, so the crash-recovery tests need a way to *be* the crash:
//! [`IoFailpoint::kill_at`] arms a failpoint that lets the first `n`
//! write/sync operations on files under a path prefix succeed and then
//! fails **every** subsequent operation on those files (a killed process
//! does not come back for one more write), while
//! [`IoFailpoint::torn_at`] additionally writes a prefix of the fatal
//! write before failing, modelling a torn sector. [`IoFailpoint::count`]
//! arms a counting-only observer that records the operation log, so a
//! test can first learn how many sync boundaries a workload crosses (and
//! which kind each one is) and then sweep a kill through every single
//! one of them.
//!
//! The seam lives here rather than behind `cfg(test)` because the crash
//! harness drives it from *integration* tests; production code pays one
//! relaxed atomic load per I/O while no failpoint is armed.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use tmql_model::{ModelError, Result};

/// What an armed failpoint does when its trigger operation is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailMode {
    /// Fail the trigger operation outright (and everything after it).
    Kill,
    /// Write a prefix of the trigger operation's bytes, then fail it
    /// (and everything after it). Only meaningful on writes; a sync at
    /// the trigger index behaves like [`FailMode::Kill`].
    Torn,
    /// Never fail; just count operations and record the log.
    Count,
}

/// One I/O operation as observed by a counting failpoint, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// A page-sized positional write to the database file (page id).
    PageWrite(u32),
    /// An `fsync` of the database file.
    FileSync,
    /// An append to the write-ahead log (byte length).
    WalWrite(usize),
    /// An `fsync` of the write-ahead log.
    WalSync,
    /// A truncation of the write-ahead log (checkpoint completion).
    WalReset,
}

#[derive(Debug)]
struct Entry {
    prefix: PathBuf,
    mode: FailMode,
    /// Operation index at which to fail; `u64::MAX` for count-only.
    fail_at: u64,
    ops: AtomicU64,
    tripped: AtomicBool,
    log: Mutex<Vec<IoOp>>,
}

fn registry() -> &'static Mutex<Vec<Arc<Entry>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Entry>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Number of currently armed failpoints; the production fast path.
static ARMED: AtomicUsize = AtomicUsize::new(0);

/// An armed I/O failpoint. Dropping it disarms the fault.
///
/// Failpoints match by path prefix, so arming on a database path also
/// covers its `.wal` sidecar. The operation counter covers writes,
/// syncs, and WAL truncations — the boundaries where a crash changes
/// what recovery can see — and is shared across all matched files, so a
/// trigger index identifies one global point in the workload's I/O
/// sequence.
#[derive(Debug)]
pub struct IoFailpoint {
    entry: Arc<Entry>,
}

impl IoFailpoint {
    fn arm(prefix: &Path, mode: FailMode, fail_at: u64) -> IoFailpoint {
        let entry = Arc::new(Entry {
            prefix: prefix.to_path_buf(),
            mode,
            fail_at,
            ops: AtomicU64::new(0),
            tripped: AtomicBool::new(false),
            log: Mutex::new(Vec::new()),
        });
        registry().lock().unwrap().push(Arc::clone(&entry));
        ARMED.fetch_add(1, Ordering::SeqCst);
        IoFailpoint { entry }
    }

    /// Arm a counting observer under `prefix`: never fails, records the
    /// operation log so a sweep can target specific boundaries.
    pub fn count(prefix: &Path) -> IoFailpoint {
        IoFailpoint::arm(prefix, FailMode::Count, u64::MAX)
    }

    /// Arm a kill: operations `0..n` succeed, operation `n` and every
    /// one after it fail with an injected-crash error.
    pub fn kill_at(prefix: &Path, n: u64) -> IoFailpoint {
        IoFailpoint::arm(prefix, FailMode::Kill, n)
    }

    /// Arm a torn write: like [`IoFailpoint::kill_at`], but the trigger
    /// operation (if it is a write) persists a prefix of its bytes
    /// before failing — the torn-sector crash.
    pub fn torn_at(prefix: &Path, n: u64) -> IoFailpoint {
        IoFailpoint::arm(prefix, FailMode::Torn, n)
    }

    /// Operations observed so far.
    pub fn ops(&self) -> u64 {
        self.entry.ops.load(Ordering::SeqCst)
    }

    /// Whether the failpoint has fired at least once.
    pub fn triggered(&self) -> bool {
        self.entry.tripped.load(Ordering::SeqCst)
    }

    /// The recorded operation log (counting mode records every
    /// operation; failing modes record those that were allowed).
    pub fn log(&self) -> Vec<IoOp> {
        self.entry.log.lock().unwrap().clone()
    }
}

impl Drop for IoFailpoint {
    fn drop(&mut self) {
        let mut reg = registry().lock().unwrap();
        if let Some(i) = reg.iter().position(|e| Arc::ptr_eq(e, &self.entry)) {
            reg.swap_remove(i);
            ARMED.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

fn injected() -> ModelError {
    ModelError::Io("injected crash (failpoint)".into())
}

fn matching(path: &Path) -> Option<Arc<Entry>> {
    if ARMED.load(Ordering::Relaxed) == 0 {
        return None;
    }
    // Byte-prefix match, not `Path::starts_with` (which is per-component
    // and would not let a database path cover its `<db>.wal` sidecar).
    let bytes = path.as_os_str().as_encoded_bytes();
    let reg = registry().lock().unwrap();
    reg.iter()
        .find(|e| bytes.starts_with(e.prefix.as_os_str().as_encoded_bytes()))
        .map(Arc::clone)
}

/// Outcome of consulting the failpoint before a write of `len` bytes.
pub(crate) enum WriteCheck {
    /// Perform the full write.
    Full,
    /// Write only the first `n` bytes, then report an injected crash.
    Torn(usize),
}

/// Consult the failpoint before a write. `Err` means the write must not
/// happen at all; `Ok(Torn(n))` means persist `n` bytes then fail.
pub(crate) fn check_write(path: &Path, op: IoOp, len: usize) -> Result<WriteCheck> {
    let Some(e) = matching(path) else {
        return Ok(WriteCheck::Full);
    };
    if e.tripped.load(Ordering::SeqCst) {
        return Err(injected());
    }
    let idx = e.ops.fetch_add(1, Ordering::SeqCst);
    if idx >= e.fail_at {
        e.tripped.store(true, Ordering::SeqCst);
        if e.mode == FailMode::Torn && idx == e.fail_at {
            return Ok(WriteCheck::Torn(len / 2));
        }
        return Err(injected());
    }
    e.log.lock().unwrap().push(op);
    Ok(WriteCheck::Full)
}

/// Consult the failpoint before a sync or truncate boundary.
pub(crate) fn check_sync(path: &Path, op: IoOp) -> Result<()> {
    let Some(e) = matching(path) else {
        return Ok(());
    };
    if e.tripped.load(Ordering::SeqCst) {
        return Err(injected());
    }
    let idx = e.ops.fetch_add(1, Ordering::SeqCst);
    if idx >= e.fail_at {
        e.tripped.store(true, Ordering::SeqCst);
        return Err(injected());
    }
    e.log.lock().unwrap().push(op);
    Ok(())
}

/// Consult the failpoint before a read: reads are not counted as crash
/// boundaries, but a tripped failpoint (dead process) fails them too.
pub(crate) fn check_read(path: &Path) -> Result<()> {
    let Some(e) = matching(path) else {
        return Ok(());
    };
    if e.tripped.load(Ordering::SeqCst) {
        return Err(injected());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_mode_never_fails_and_logs() {
        let p = Path::new("/tmp/failpoint-count-test");
        let fp = IoFailpoint::count(p);
        check_sync(p, IoOp::FileSync).unwrap();
        assert!(matches!(
            check_write(p, IoOp::PageWrite(3), 8,).unwrap(),
            WriteCheck::Full
        ));
        assert_eq!(fp.ops(), 2);
        assert_eq!(fp.log(), vec![IoOp::FileSync, IoOp::PageWrite(3)]);
        assert!(!fp.triggered());
    }

    #[test]
    fn kill_is_sticky_after_the_trigger() {
        let p = Path::new("/tmp/failpoint-kill-test");
        let fp = IoFailpoint::kill_at(p, 1);
        check_sync(p, IoOp::WalSync).unwrap();
        assert!(check_sync(p, IoOp::WalSync).is_err());
        assert!(check_read(p).is_err());
        assert!(check_write(p, IoOp::WalWrite(4), 4).is_err());
        assert!(fp.triggered());
    }

    #[test]
    fn torn_allows_a_prefix_on_the_trigger_write_only() {
        let p = Path::new("/tmp/failpoint-torn-test");
        let _fp = IoFailpoint::torn_at(p, 0);
        match check_write(p, IoOp::WalWrite(10), 10).unwrap() {
            WriteCheck::Torn(n) => assert_eq!(n, 5),
            WriteCheck::Full => panic!("expected torn"),
        }
        assert!(check_write(p, IoOp::WalWrite(10), 10).is_err());
    }

    #[test]
    fn unmatched_paths_are_untouched() {
        let p = Path::new("/tmp/failpoint-scope-test");
        let _fp = IoFailpoint::kill_at(p, 0);
        check_sync(Path::new("/tmp/other-file"), IoOp::FileSync).unwrap();
    }
}
