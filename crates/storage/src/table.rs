//! Typed in-memory tables with TM set semantics.

use std::collections::BTreeSet;
use std::fmt;

use tmql_model::{ModelError, Record, Result, Ty, Value};

/// A table: an ordered schema plus a duplicate-free multiset of records.
///
/// TM extensions are *sets* of complex objects, so inserting an already
/// present record is a no-op. Insertion order of first occurrences is
/// preserved so results print deterministically.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    columns: Vec<(String, Ty)>,
    rows: Vec<Record>,
    seen: BTreeSet<Record>,
}

impl Table {
    /// Create an empty table with the given column schema.
    pub fn new(name: impl Into<String>, columns: Vec<(String, Ty)>) -> Table {
        Table { name: name.into(), columns, rows: Vec::new(), seen: BTreeSet::new() }
    }

    /// Build a table directly from rows, validating each against the schema.
    pub fn from_rows(
        name: impl Into<String>,
        columns: Vec<(String, Ty)>,
        rows: impl IntoIterator<Item = Record>,
    ) -> Result<Table> {
        let mut t = Table::new(name, columns);
        for r in rows {
            t.insert(r)?;
        }
        Ok(t)
    }

    /// Table name (usually the extension name, e.g. `EMP`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column schema in declaration order.
    pub fn columns(&self) -> &[(String, Ty)] {
        &self.columns
    }

    /// The tuple type of one row.
    pub fn row_ty(&self) -> Ty {
        Ty::Tuple(self.columns.clone())
    }

    /// Number of (distinct) rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert a record. Returns `Ok(true)` if the record was new,
    /// `Ok(false)` if it was a duplicate (set semantics: silently absorbed),
    /// and an error if it does not match the schema.
    pub fn insert(&mut self, row: Record) -> Result<bool> {
        self.validate(&row)?;
        if self.seen.contains(&row) {
            return Ok(false);
        }
        self.seen.insert(row.clone());
        self.rows.push(row);
        Ok(true)
    }

    /// Validate a record against the column schema: same label set,
    /// admissible values.
    pub fn validate(&self, row: &Record) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(ModelError::SchemaError(format!(
                "table `{}` expects {} columns, row has {}",
                self.name,
                self.columns.len(),
                row.len()
            )));
        }
        for (label, ty) in &self.columns {
            let v = row.get(label)?;
            if !ty.admits(v) {
                return Err(ModelError::SchemaError(format!(
                    "column `{}` of table `{}` has type {}, got {}",
                    label, self.name, ty, v
                )));
            }
        }
        Ok(())
    }

    /// Iterate rows in first-insertion order.
    pub fn rows(&self) -> impl Iterator<Item = &Record> {
        self.rows.iter()
    }

    /// Iterate the table as contiguous batches of at most `n` rows (the
    /// streaming executor's scan granularity — scans borrow one batch at a
    /// time instead of cloning the whole extension up front).
    pub fn batches(&self, n: usize) -> impl Iterator<Item = &[Record]> {
        self.rows.chunks(n.max(1))
    }

    /// Borrow the batch of up to `n` rows starting at `start` (empty when
    /// `start` is past the end). Cursor-style access for scan operators.
    pub fn batch(&self, start: usize, n: usize) -> &[Record] {
        let lo = start.min(self.rows.len());
        let hi = start.saturating_add(n).min(self.rows.len());
        &self.rows[lo..hi]
    }

    /// Membership test (set semantics makes this well-defined).
    pub fn contains(&self, row: &Record) -> bool {
        self.seen.contains(row)
    }

    /// Consume the table into its row vector.
    pub fn into_rows(self) -> Vec<Record> {
        self.rows
    }

    /// The whole table as a TM set-of-tuples value.
    pub fn to_value(&self) -> Value {
        Value::set(self.rows.iter().cloned().map(Value::Tuple))
    }

    /// Order-insensitive equality of contents (the correct notion of result
    /// equality for set-semantics queries; used pervasively by differential
    /// tests between unnesting strategies).
    pub fn same_contents(&self, other: &Table) -> bool {
        self.seen == other.seen
    }

    /// Render as an aligned ASCII table (used by examples to reproduce the
    /// paper's Table 1 layout).
    pub fn render(&self) -> String {
        let headers: Vec<String> = self.columns.iter().map(|(l, _)| l.clone()).collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                headers
                    .iter()
                    .enumerate()
                    .map(|(i, h)| {
                        let s = r.get(h).map(|v| v.to_string()).unwrap_or_default();
                        widths[i] = widths[i].max(s.len());
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        let fmt_row = |cols: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cols.iter().zip(widths) {
                line.push_str(&format!(" {c:w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&headers, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&fmt_row(&sep, &widths));
        for row in &cells {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} rows)\n{}", self.name, self.len(), self.render())
    }
}

/// Builder ergonomic for tests and workload generators: construct a table
/// of `INT` columns from tuples of integers.
pub fn int_table(name: &str, cols: &[&str], data: &[&[i64]]) -> Table {
    let columns: Vec<(String, Ty)> = cols.iter().map(|c| (c.to_string(), Ty::Int)).collect();
    let mut t = Table::new(name, columns);
    for row in data {
        assert_eq!(row.len(), cols.len(), "int_table row arity mismatch");
        let rec = Record::new(
            cols.iter().zip(row.iter()).map(|(c, v)| (c.to_string(), Value::Int(*v))),
        )
        .expect("distinct column names");
        t.insert(rec).expect("schema admits ints");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_semantics_absorbs_duplicates() {
        let mut t = int_table("T", &["a"], &[]);
        let r = Record::new([("a".to_string(), Value::Int(1))]).unwrap();
        assert!(t.insert(r.clone()).unwrap());
        assert!(!t.insert(r).unwrap());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn schema_validation() {
        let mut t = Table::new("T", vec![("a".into(), Ty::Int), ("b".into(), Ty::Str)]);
        let bad_arity = Record::new([("a".to_string(), Value::Int(1))]).unwrap();
        assert!(t.insert(bad_arity).is_err());
        let bad_type = Record::new([
            ("a".to_string(), Value::Int(1)),
            ("b".to_string(), Value::Int(2)),
        ])
        .unwrap();
        assert!(t.insert(bad_type).is_err());
        let good = Record::new([
            ("a".to_string(), Value::Int(1)),
            ("b".to_string(), Value::str("x")),
        ])
        .unwrap();
        assert!(t.insert(good).is_ok());
    }

    #[test]
    fn complex_valued_columns() {
        let mut t = Table::new(
            "DEPT",
            vec![("name".into(), Ty::Str), ("emps".into(), Ty::Set(Box::new(Ty::Any)))],
        );
        let row = Record::new([
            ("name".to_string(), Value::str("CS")),
            ("emps".to_string(), Value::set([Value::str("ann")])),
        ])
        .unwrap();
        t.insert(row).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn same_contents_is_order_insensitive() {
        let a = int_table("A", &["x"], &[&[1], &[2]]);
        let b = int_table("B", &["x"], &[&[2], &[1]]);
        assert!(a.same_contents(&b));
        let c = int_table("C", &["x"], &[&[2]]);
        assert!(!a.same_contents(&c));
    }

    #[test]
    fn to_value_round_trip() {
        let t = int_table("T", &["a", "b"], &[&[1, 2], &[3, 4]]);
        let v = t.to_value();
        assert_eq!(v.as_set().unwrap().len(), 2);
    }

    #[test]
    fn render_is_aligned() {
        let t = int_table("T", &["col", "b"], &[&[1, 22], &[333, 4]]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn batches_cover_all_rows_without_overlap() {
        let t = int_table("T", &["a"], &[&[1], &[2], &[3], &[4], &[5]]);
        let chunks: Vec<&[Record]> = t.batches(2).collect();
        assert_eq!(chunks.iter().map(|c| c.len()).collect::<Vec<_>>(), vec![2, 2, 1]);
        let flat: Vec<&Record> = chunks.into_iter().flatten().collect();
        assert_eq!(flat.len(), t.len());
        // Zero batch size is clamped, not a panic.
        assert_eq!(t.batches(0).next().unwrap().len(), 1);
    }

    #[test]
    fn batch_cursor_access() {
        let t = int_table("T", &["a"], &[&[1], &[2], &[3]]);
        assert_eq!(t.batch(0, 2).len(), 2);
        assert_eq!(t.batch(2, 2).len(), 1);
        assert!(t.batch(3, 2).is_empty());
        assert!(t.batch(usize::MAX, 2).is_empty());
    }

    #[test]
    fn contains_after_insert() {
        let t = int_table("T", &["a"], &[&[5]]);
        let r = Record::new([("a".to_string(), Value::Int(5))]).unwrap();
        assert!(t.contains(&r));
    }
}
