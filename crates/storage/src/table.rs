//! Typed tables with TM set semantics, in memory or disk-backed.
//!
//! A [`Table`] is an ordered schema plus a duplicate-free set of records.
//! Two backings share the type:
//!
//! * **In-memory** (the default): rows live in a vector, duplicates are
//!   absorbed on [`Table::insert`], and scans borrow nothing from disk.
//! * **Disk-backed**: rows live in slotted pages of a
//!   [`crate::pager::PagedStore`] and stream through its buffer pool;
//!   the table holds only the store handle and its
//!   [extent](crate::pager::TableExtent). Disk tables are immutable —
//!   they are created by registering an in-memory table into a
//!   persistent [`crate::Catalog`], which writes the rows through the
//!   pool and records the extent durably.
//!
//! The scan API is backing-agnostic: [`Table::batch`] /
//! [`Table::batches`] return owned row batches (a disk fault can fail,
//! so both are fallible), which is what the streaming executor's scan
//! cursor consumes. [`Table::rows`] keeps the zero-copy borrowed
//! iterator for in-memory tables only.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use tmql_model::{ModelError, Record, Result, Ty, Value};

use crate::pager::{PagedStore, TableExtent};

/// A table: an ordered schema plus a duplicate-free multiset of records.
///
/// TM extensions are *sets* of complex objects, so inserting an already
/// present record is a no-op. Insertion order of first occurrences is
/// preserved so results print deterministically.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    columns: Vec<(String, Ty)>,
    backing: Backing,
}

#[derive(Debug, Clone)]
enum Backing {
    Mem {
        rows: Vec<Record>,
        seen: BTreeSet<Record>,
    },
    Disk {
        store: Arc<PagedStore>,
        extent: Arc<TableExtent>,
    },
}

impl Table {
    /// Create an empty in-memory table with the given column schema.
    pub fn new(name: impl Into<String>, columns: Vec<(String, Ty)>) -> Table {
        Table {
            name: name.into(),
            columns,
            backing: Backing::Mem {
                rows: Vec::new(),
                seen: BTreeSet::new(),
            },
        }
    }

    /// Build an in-memory table directly from rows, validating each
    /// against the schema.
    pub fn from_rows(
        name: impl Into<String>,
        columns: Vec<(String, Ty)>,
        rows: impl IntoIterator<Item = Record>,
    ) -> Result<Table> {
        let mut t = Table::new(name, columns);
        for r in rows {
            t.insert(r)?;
        }
        Ok(t)
    }

    /// A disk-backed table over an extent already written to `store`
    /// (rows were validated and deduplicated before they hit the pages).
    pub(crate) fn disk(
        name: impl Into<String>,
        columns: Vec<(String, Ty)>,
        store: Arc<PagedStore>,
        extent: Arc<TableExtent>,
    ) -> Table {
        Table {
            name: name.into(),
            columns,
            backing: Backing::Disk { store, extent },
        }
    }

    /// Table name (usually the extension name, e.g. `EMP`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column schema in declaration order.
    pub fn columns(&self) -> &[(String, Ty)] {
        &self.columns
    }

    /// The tuple type of one row.
    pub fn row_ty(&self) -> Ty {
        Ty::Tuple(self.columns.clone())
    }

    /// Number of (distinct) rows.
    pub fn len(&self) -> usize {
        match &self.backing {
            Backing::Mem { rows, .. } => rows.len(),
            Backing::Disk { extent, .. } => extent.rows as usize,
        }
    }

    /// True iff the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True iff the rows live in pages of a persistent store.
    pub fn is_disk_backed(&self) -> bool {
        matches!(self.backing, Backing::Disk { .. })
    }

    /// Number of data pages on disk (`None` for in-memory tables) — the
    /// cost model's unit for pricing cold scans.
    pub fn page_count(&self) -> Option<usize> {
        match &self.backing {
            Backing::Mem { .. } => None,
            Backing::Disk { extent, .. } => Some(extent.page_count()),
        }
    }

    /// The store and extent of a disk-backed table.
    pub(crate) fn disk_parts(&self) -> Option<(&Arc<PagedStore>, &Arc<TableExtent>)> {
        match &self.backing {
            Backing::Mem { .. } => None,
            Backing::Disk { store, extent } => Some((store, extent)),
        }
    }

    /// Insert a record. Returns `Ok(true)` if the record was new,
    /// `Ok(false)` if it was a duplicate (set semantics: silently absorbed),
    /// and an error if it does not match the schema — or if the table is
    /// disk-backed (disk tables are immutable; build in memory and
    /// re-register).
    pub fn insert(&mut self, row: Record) -> Result<bool> {
        self.validate(&row)?;
        match &mut self.backing {
            Backing::Mem { rows, seen } => {
                if seen.contains(&row) {
                    return Ok(false);
                }
                seen.insert(row.clone());
                rows.push(row);
                Ok(true)
            }
            Backing::Disk { .. } => Err(ModelError::SchemaError(format!(
                "table `{}` is disk-backed and immutable; build a new table and re-register",
                self.name
            ))),
        }
    }

    /// Validate a record against the column schema: same label set,
    /// admissible values.
    pub fn validate(&self, row: &Record) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(ModelError::SchemaError(format!(
                "table `{}` expects {} columns, row has {}",
                self.name,
                self.columns.len(),
                row.len()
            )));
        }
        for (label, ty) in &self.columns {
            let v = row.get(label)?;
            if !ty.admits(v) {
                return Err(ModelError::SchemaError(format!(
                    "column `{}` of table `{}` has type {}, got {}",
                    label, self.name, ty, v
                )));
            }
        }
        Ok(())
    }

    /// Borrow the in-memory row vector (`None` for disk-backed tables).
    pub fn mem_rows(&self) -> Option<&[Record]> {
        match &self.backing {
            Backing::Mem { rows, .. } => Some(rows),
            Backing::Disk { .. } => None,
        }
    }

    /// Iterate rows in first-insertion order, borrowing them.
    ///
    /// # Panics
    ///
    /// Panics for disk-backed tables, whose rows cannot be borrowed —
    /// use [`Table::batches`] or [`Table::rows_vec`] there. Every
    /// in-engine consumer of disk tables goes through the batch cursor;
    /// this borrowed form stays for the in-memory construction paths
    /// (statistics, workload generators, tests).
    pub fn rows(&self) -> impl Iterator<Item = &Record> {
        self.mem_rows()
            .unwrap_or_else(|| {
                panic!(
                    "Table::rows on disk-backed table `{}`; use batches()/rows_vec()",
                    self.name
                )
            })
            .iter()
    }

    /// All rows, materialized (disk tables stream through the buffer
    /// pool; in-memory tables clone).
    pub fn rows_vec(&self) -> Result<Vec<Record>> {
        match &self.backing {
            Backing::Mem { rows, .. } => Ok(rows.clone()),
            Backing::Disk { store, extent } => store.read_rows(extent, 0, extent.rows as usize),
        }
    }

    /// Iterate the table as owned batches of at most `n` rows (the
    /// streaming executor's scan granularity). Disk-backed tables stream
    /// pages through the buffer pool one batch at a time, so a fault can
    /// fail — each batch is a `Result`.
    pub fn batches(&self, n: usize) -> impl Iterator<Item = Result<Vec<Record>>> + '_ {
        let n = n.max(1);
        let mut pos = 0usize;
        let mut done = false;
        std::iter::from_fn(move || {
            if done {
                return None;
            }
            match self.batch(pos, n) {
                Ok(batch) if batch.is_empty() => None,
                Ok(batch) => {
                    pos += batch.len();
                    Some(Ok(batch))
                }
                Err(e) => {
                    done = true;
                    Some(Err(e))
                }
            }
        })
    }

    /// The batch of up to `n` rows starting at row offset `start` (empty
    /// when `start` is past the end). Cursor-style access for scan
    /// operators; disk-backed tables fault the needed pages through the
    /// buffer pool.
    pub fn batch(&self, start: usize, n: usize) -> Result<Vec<Record>> {
        match &self.backing {
            Backing::Mem { rows, .. } => {
                let lo = start.min(rows.len());
                let hi = start.saturating_add(n).min(rows.len());
                Ok(rows[lo..hi].to_vec())
            }
            Backing::Disk { store, extent } => store.read_rows(extent, start, n),
        }
    }

    /// Fetch the rows at the given ascending positions (an index probe's
    /// result), grouping consecutive runs into single batch reads so a
    /// disk-backed table faults each run's pages once.
    pub fn fetch_rows(&self, positions: &[usize]) -> Result<Vec<Record>> {
        debug_assert!(positions.windows(2).all(|w| w[0] < w[1]));
        let mut out = Vec::with_capacity(positions.len());
        let mut i = 0;
        while i < positions.len() {
            let start = positions[i];
            let mut len = 1;
            while i + len < positions.len() && positions[i + len] == start + len {
                len += 1;
            }
            let batch = self.batch(start, len)?;
            if batch.len() != len {
                return Err(ModelError::Io(format!(
                    "table `{}`: index positions past the end ({} rows)",
                    self.name,
                    self.len()
                )));
            }
            out.extend(batch);
            i += len;
        }
        Ok(out)
    }

    /// Membership test (set semantics makes this well-defined). Constant
    /// time in memory; a scan for disk-backed tables.
    pub fn contains(&self, row: &Record) -> Result<bool> {
        match &self.backing {
            Backing::Mem { seen, .. } => Ok(seen.contains(row)),
            Backing::Disk { .. } => {
                for batch in self.batches(1024) {
                    if batch?.iter().any(|r| r == row) {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
        }
    }

    /// Consume the table into its row vector (materializing disk rows).
    pub fn into_rows(self) -> Result<Vec<Record>> {
        match self.backing {
            Backing::Mem { rows, .. } => Ok(rows),
            Backing::Disk { .. } => self.rows_vec(),
        }
    }

    /// The whole table as a TM set-of-tuples value.
    pub fn to_value(&self) -> Result<Value> {
        Ok(Value::set(self.rows_vec()?.into_iter().map(Value::Tuple)))
    }

    /// Order-insensitive equality of contents (the correct notion of result
    /// equality for set-semantics queries; used pervasively by differential
    /// tests between unnesting strategies and between backings).
    pub fn same_contents(&self, other: &Table) -> Result<bool> {
        fn row_set(t: &Table) -> Result<BTreeSet<Record>> {
            if let Backing::Mem { seen, .. } = &t.backing {
                return Ok(seen.clone());
            }
            Ok(t.rows_vec()?.into_iter().collect())
        }
        Ok(row_set(self)? == row_set(other)?)
    }

    /// Render as an aligned ASCII table (used by examples to reproduce the
    /// paper's Table 1 layout). An I/O failure on a disk-backed table
    /// renders as an error line rather than failing the display.
    pub fn render(&self) -> String {
        let rows = match self.rows_vec() {
            Ok(rows) => rows,
            Err(e) => return format!("<unreadable table `{}`: {e}>\n", self.name),
        };
        let headers: Vec<String> = self.columns.iter().map(|(l, _)| l.clone()).collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let cells: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                headers
                    .iter()
                    .enumerate()
                    .map(|(i, h)| {
                        let s = r.get(h).map(|v| v.to_string()).unwrap_or_default();
                        widths[i] = widths[i].max(s.len());
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        let fmt_row = |cols: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cols.iter().zip(widths) {
                line.push_str(&format!(" {c:w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&headers, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&fmt_row(&sep, &widths));
        for row in &cells {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} rows)\n{}", self.name, self.len(), self.render())
    }
}

/// Builder ergonomic for tests and workload generators: construct a table
/// of `INT` columns from tuples of integers.
pub fn int_table(name: &str, cols: &[&str], data: &[&[i64]]) -> Table {
    let columns: Vec<(String, Ty)> = cols.iter().map(|c| (c.to_string(), Ty::Int)).collect();
    let mut t = Table::new(name, columns);
    for row in data {
        assert_eq!(row.len(), cols.len(), "int_table row arity mismatch");
        let rec = Record::new(
            cols.iter()
                .zip(row.iter())
                .map(|(c, v)| (c.to_string(), Value::Int(*v))),
        )
        .expect("distinct column names");
        t.insert(rec).expect("schema admits ints");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_semantics_absorbs_duplicates() {
        let mut t = int_table("T", &["a"], &[]);
        let r = Record::new([("a".to_string(), Value::Int(1))]).unwrap();
        assert!(t.insert(r.clone()).unwrap());
        assert!(!t.insert(r).unwrap());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn schema_validation() {
        let mut t = Table::new("T", vec![("a".into(), Ty::Int), ("b".into(), Ty::Str)]);
        let bad_arity = Record::new([("a".to_string(), Value::Int(1))]).unwrap();
        assert!(t.insert(bad_arity).is_err());
        let bad_type = Record::new([
            ("a".to_string(), Value::Int(1)),
            ("b".to_string(), Value::Int(2)),
        ])
        .unwrap();
        assert!(t.insert(bad_type).is_err());
        let good = Record::new([
            ("a".to_string(), Value::Int(1)),
            ("b".to_string(), Value::str("x")),
        ])
        .unwrap();
        assert!(t.insert(good).is_ok());
    }

    #[test]
    fn complex_valued_columns() {
        let mut t = Table::new(
            "DEPT",
            vec![
                ("name".into(), Ty::Str),
                ("emps".into(), Ty::Set(Box::new(Ty::Any))),
            ],
        );
        let row = Record::new([
            ("name".to_string(), Value::str("CS")),
            ("emps".to_string(), Value::set([Value::str("ann")])),
        ])
        .unwrap();
        t.insert(row).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn same_contents_is_order_insensitive() {
        let a = int_table("A", &["x"], &[&[1], &[2]]);
        let b = int_table("B", &["x"], &[&[2], &[1]]);
        assert!(a.same_contents(&b).unwrap());
        let c = int_table("C", &["x"], &[&[2]]);
        assert!(!a.same_contents(&c).unwrap());
    }

    #[test]
    fn to_value_round_trip() {
        let t = int_table("T", &["a", "b"], &[&[1, 2], &[3, 4]]);
        let v = t.to_value().unwrap();
        assert_eq!(v.as_set().unwrap().len(), 2);
    }

    #[test]
    fn render_is_aligned() {
        let t = int_table("T", &["col", "b"], &[&[1, 22], &[333, 4]]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn batches_cover_all_rows_without_overlap() {
        let t = int_table("T", &["a"], &[&[1], &[2], &[3], &[4], &[5]]);
        let chunks: Vec<Vec<Record>> = t
            .batches(2)
            .collect::<Result<_>>()
            .expect("in-memory batches");
        assert_eq!(
            chunks.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![2, 2, 1]
        );
        let flat: Vec<Record> = chunks.into_iter().flatten().collect();
        assert_eq!(flat.len(), t.len());
        // Zero batch size is clamped, not a panic.
        assert_eq!(t.batches(0).next().unwrap().unwrap().len(), 1);
    }

    #[test]
    fn batch_cursor_access() {
        let t = int_table("T", &["a"], &[&[1], &[2], &[3]]);
        assert_eq!(t.batch(0, 2).unwrap().len(), 2);
        assert_eq!(t.batch(2, 2).unwrap().len(), 1);
        assert!(t.batch(3, 2).unwrap().is_empty());
        assert!(t.batch(usize::MAX, 2).unwrap().is_empty());
    }

    #[test]
    fn contains_after_insert() {
        let t = int_table("T", &["a"], &[&[5]]);
        let r = Record::new([("a".to_string(), Value::Int(5))]).unwrap();
        assert!(t.contains(&r).unwrap());
    }

    #[test]
    fn in_memory_table_reports_no_pages() {
        let t = int_table("T", &["a"], &[&[5]]);
        assert!(!t.is_disk_backed());
        assert_eq!(t.page_count(), None);
        assert_eq!(t.mem_rows().map(<[Record]>::len), Some(1));
    }
}
