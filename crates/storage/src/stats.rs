//! Table statistics for the cost-based physical planner.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use tmql_model::Value;

use crate::table::Table;

/// Per-column statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of distinct values.
    pub distinct: usize,
    /// Minimum value under the model's total order (None for empty tables).
    pub min: Option<Value>,
    /// Maximum value under the model's total order.
    pub max: Option<Value>,
    /// Fraction of rows in which the value is a set — set-valued attributes
    /// change unnesting decisions (Section 3.2).
    pub set_valued_fraction: f64,
}

/// Statistics for one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Row count (after set-semantics dedup).
    pub cardinality: usize,
    /// Per-column stats keyed by column name.
    pub columns: BTreeMap<String, ColumnStats>,
}

impl TableStats {
    /// Compute statistics with one pass per column.
    pub fn compute(table: &Table) -> TableStats {
        let mut columns = BTreeMap::new();
        for (name, _ty) in table.columns() {
            let mut distinct: BTreeSet<&Value> = BTreeSet::new();
            let mut sets = 0usize;
            for row in table.rows() {
                if let Ok(v) = row.get(name) {
                    if matches!(v, Value::Set(_)) {
                        sets += 1;
                    }
                    distinct.insert(v);
                }
            }
            let min = distinct.iter().next().map(|v| (*v).clone());
            let max = distinct.iter().next_back().map(|v| (*v).clone());
            let n = table.len().max(1);
            columns.insert(
                name.clone(),
                ColumnStats {
                    distinct: distinct.len(),
                    min,
                    max,
                    set_valued_fraction: sets as f64 / n as f64,
                },
            );
        }
        TableStats { cardinality: table.len(), columns }
    }

    /// Estimated selectivity of an equality predicate on `column`
    /// (classic 1/NDV); 0.1 fallback when the column is unknown.
    pub fn eq_selectivity(&self, column: &str) -> f64 {
        match self.columns.get(column) {
            Some(c) if c.distinct > 0 => 1.0 / c.distinct as f64,
            _ => 0.1,
        }
    }

    /// Estimated number of rows matching an equality on `column`.
    pub fn eq_cardinality(&self, column: &str) -> f64 {
        self.cardinality as f64 * self.eq_selectivity(column)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::int_table;
    use crate::table::Table;
    use tmql_model::{Record, Ty};

    #[test]
    fn basic_stats() {
        let t = int_table("R", &["a", "b"], &[&[1, 10], &[2, 10], &[3, 20]]);
        let st = TableStats::compute(&t);
        assert_eq!(st.cardinality, 3);
        assert_eq!(st.columns["a"].distinct, 3);
        assert_eq!(st.columns["b"].distinct, 2);
        assert_eq!(st.columns["a"].min, Some(Value::Int(1)));
        assert_eq!(st.columns["a"].max, Some(Value::Int(3)));
    }

    #[test]
    fn selectivity() {
        let t = int_table("R", &["a"], &[&[1], &[2], &[3], &[4]]);
        let st = TableStats::compute(&t);
        assert!((st.eq_selectivity("a") - 0.25).abs() < 1e-12);
        assert!((st.eq_cardinality("a") - 1.0).abs() < 1e-12);
        assert!((st.eq_selectivity("zz") - 0.1).abs() < 1e-12);
    }

    #[test]
    fn set_valued_fraction() {
        let mut t = Table::new(
            "X",
            vec![("a".into(), Ty::Any)],
        );
        t.insert(Record::new([("a".to_string(), Value::set([Value::Int(1)]))]).unwrap()).unwrap();
        t.insert(Record::new([("a".to_string(), Value::Int(1))]).unwrap()).unwrap();
        let st = TableStats::compute(&t);
        assert!((st.columns["a"].set_valued_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_table_stats() {
        let t = int_table("E", &["a"], &[]);
        let st = TableStats::compute(&t);
        assert_eq!(st.cardinality, 0);
        assert_eq!(st.columns["a"].distinct, 0);
        assert_eq!(st.columns["a"].min, None);
    }
}
