//! Table statistics for the cost-based optimizer and physical planner.
//!
//! Statistics are accumulated **incrementally**: [`StatsBuilder`] observes
//! one row at a time, so [`crate::Catalog::register`] /
//! [`crate::Catalog::replace`] make a single pass over the table instead
//! of one pass per column. The finished [`TableStats`] carry, per column:
//!
//! * distinct count, min/max (classic System-R inputs),
//! * an **equi-width histogram** over numeric values (comparison
//!   selectivities better than a magic constant),
//! * the **null fraction** (the relational baselines introduce NULLs),
//! * the **set-valued / empty-set fractions** and the **average
//!   set-valued fan-out** — the complex-object inputs that drive
//!   `ScanExpr`/`Unnest` cardinality and unnest-strategy choice
//!   (Section 3.2: subqueries over set-valued attributes).

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use tmql_model::Value;

use crate::table::Table;

/// Number of buckets in per-column equi-width histograms. Small on
/// purpose: tables are in-memory and queries are selective enough that
/// 16 buckets bound the estimation error well below the cost gaps the
/// optimizer has to rank.
pub const HISTOGRAM_BUCKETS: usize = 16;

/// An equi-width histogram over the numeric values of one column
/// (`Int` and `Float` values; everything else is ignored).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Lower bound of the value range (inclusive).
    pub lo: f64,
    /// Upper bound of the value range (inclusive).
    pub hi: f64,
    /// Per-bucket value counts over `[lo, hi]` split equi-width.
    pub counts: Vec<u64>,
    /// Total number of values counted.
    pub total: u64,
}

impl Histogram {
    /// Build from a sample of numeric values; `None` when empty.
    pub fn build(values: &[f64]) -> Option<Histogram> {
        if values.is_empty() {
            return None;
        }
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut counts = vec![0u64; HISTOGRAM_BUCKETS];
        let width = (hi - lo).max(f64::MIN_POSITIVE);
        for &v in values {
            let idx = (((v - lo) / width) * HISTOGRAM_BUCKETS as f64) as usize;
            counts[idx.min(HISTOGRAM_BUCKETS - 1)] += 1;
        }
        Some(Histogram { lo, hi, counts, total: values.len() as u64 })
    }

    /// Estimated fraction of values strictly below `v` (linear
    /// interpolation inside the bucket containing `v`).
    pub fn fraction_below(&self, v: f64) -> f64 {
        if v <= self.lo {
            return 0.0;
        }
        if v > self.hi {
            return 1.0;
        }
        let width = (self.hi - self.lo).max(f64::MIN_POSITIVE) / HISTOGRAM_BUCKETS as f64;
        let pos = (v - self.lo) / width;
        let bucket = (pos as usize).min(HISTOGRAM_BUCKETS - 1);
        let within = pos - bucket as f64;
        let below: u64 = self.counts[..bucket].iter().sum();
        (below as f64 + self.counts[bucket] as f64 * within) / self.total.max(1) as f64
    }

    /// Estimated fraction of values strictly above `v`.
    pub fn fraction_above(&self, v: f64) -> f64 {
        if v < self.lo {
            return 1.0;
        }
        (1.0 - self.fraction_below(v)).max(0.0)
    }
}

/// Per-column statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of distinct values.
    pub distinct: usize,
    /// Minimum value under the model's total order (None for empty tables).
    pub min: Option<Value>,
    /// Maximum value under the model's total order.
    pub max: Option<Value>,
    /// Fraction of rows in which the value is NULL (the relational
    /// outerjoin baselines are the only producers of NULLs in TM data).
    pub null_fraction: f64,
    /// Fraction of rows in which the value is a set — set-valued attributes
    /// change unnesting decisions (Section 3.2).
    pub set_valued_fraction: f64,
    /// Fraction of rows in which the value is the **empty** set. Empty sets
    /// make membership-style predicates trivially false and cut the fan-out
    /// of `FROM x.a e` iteration.
    pub empty_set_fraction: f64,
    /// Average cardinality of the set values in this column (0.0 when the
    /// column holds no sets) — the per-column fan-out of `ScanExpr`/unnest.
    pub avg_set_card: f64,
    /// Equi-width histogram over the numeric values, when any exist.
    pub histogram: Option<Histogram>,
}

impl ColumnStats {
    /// Estimated fraction of rows with value `< v` (histogram-based; `None`
    /// when the column has no numeric histogram).
    pub fn fraction_lt(&self, v: f64) -> Option<f64> {
        self.histogram.as_ref().map(|h| h.fraction_below(v))
    }

    /// Estimated fraction of rows with value `> v`.
    pub fn fraction_gt(&self, v: f64) -> Option<f64> {
        self.histogram.as_ref().map(|h| h.fraction_above(v))
    }

    /// Estimated fraction of rows with value `= v`: histogram bucket mass
    /// spread over the distinct values, falling back to 1/NDV.
    pub fn fraction_eq(&self) -> Option<f64> {
        if self.distinct == 0 {
            return None;
        }
        Some(1.0 / self.distinct as f64)
    }
}

/// Incremental per-column accumulator (one [`StatsBuilder::observe`] call
/// per row keeps registration single-pass).
#[derive(Debug, Default)]
struct ColumnAcc {
    distinct: BTreeSet<Value>,
    nulls: usize,
    sets: usize,
    empty_sets: usize,
    set_elems: usize,
    numerics: Vec<f64>,
}

impl ColumnAcc {
    fn observe(&mut self, v: &Value) {
        match v {
            Value::Null => self.nulls += 1,
            Value::Set(s) => {
                self.sets += 1;
                if s.is_empty() {
                    self.empty_sets += 1;
                }
                self.set_elems += s.len();
            }
            Value::Int(i) => self.numerics.push(*i as f64),
            Value::Float(f) => self.numerics.push(*f),
            _ => {}
        }
        if !self.distinct.contains(v) {
            self.distinct.insert(v.clone());
        }
    }

    fn finish(self, rows: usize) -> ColumnStats {
        let n = rows.max(1) as f64;
        ColumnStats {
            min: self.distinct.iter().next().cloned(),
            max: self.distinct.iter().next_back().cloned(),
            null_fraction: self.nulls as f64 / n,
            set_valued_fraction: self.sets as f64 / n,
            empty_set_fraction: self.empty_sets as f64 / n,
            avg_set_card: if self.sets > 0 {
                self.set_elems as f64 / self.sets as f64
            } else {
                0.0
            },
            histogram: Histogram::build(&self.numerics),
            distinct: self.distinct.len(),
        }
    }
}

/// Incremental statistics builder: feed rows one at a time, then
/// [`StatsBuilder::finish`]. [`TableStats::compute`] is the whole-table
/// convenience wrapper used by catalog registration.
#[derive(Debug)]
pub struct StatsBuilder {
    rows: usize,
    columns: Vec<(String, ColumnAcc)>,
}

impl StatsBuilder {
    /// A builder for the given column names.
    pub fn new<'a>(columns: impl IntoIterator<Item = &'a str>) -> StatsBuilder {
        StatsBuilder {
            rows: 0,
            columns: columns.into_iter().map(|c| (c.to_string(), ColumnAcc::default())).collect(),
        }
    }

    /// Observe one row (missing fields are simply not counted).
    pub fn observe(&mut self, row: &tmql_model::Record) {
        self.rows += 1;
        for (name, acc) in &mut self.columns {
            if let Ok(v) = row.get(name) {
                acc.observe(v);
            }
        }
    }

    /// Finish into per-table statistics.
    pub fn finish(self) -> TableStats {
        let rows = self.rows;
        TableStats {
            cardinality: rows,
            columns: self.columns.into_iter().map(|(n, acc)| (n, acc.finish(rows))).collect(),
        }
    }
}

/// Statistics for one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Row count (after set-semantics dedup).
    pub cardinality: usize,
    /// Per-column stats keyed by column name.
    pub columns: BTreeMap<String, ColumnStats>,
}

impl TableStats {
    /// Compute statistics in a single incremental pass over the table.
    pub fn compute(table: &Table) -> TableStats {
        let mut b = StatsBuilder::new(table.columns().iter().map(|(n, _)| n.as_str()));
        for row in table.rows() {
            b.observe(row);
        }
        b.finish()
    }

    /// Per-column stats, `None` for unknown columns.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.get(name)
    }

    /// Estimated selectivity of an equality predicate on `column`
    /// (classic 1/NDV); 0.1 fallback when the column is unknown.
    pub fn eq_selectivity(&self, column: &str) -> f64 {
        match self.columns.get(column) {
            Some(c) if c.distinct > 0 => 1.0 / c.distinct as f64,
            _ => 0.1,
        }
    }

    /// Estimated number of rows matching an equality on `column`.
    pub fn eq_cardinality(&self, column: &str) -> f64 {
        self.cardinality as f64 * self.eq_selectivity(column)
    }

    /// Average set-valued fan-out of `column` — the expected element count
    /// when iterating `x.column` — or `None` when the column is unknown or
    /// holds no sets.
    pub fn avg_set_card(&self, column: &str) -> Option<f64> {
        match self.columns.get(column) {
            Some(c) if c.set_valued_fraction > 0.0 => Some(c.avg_set_card),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::int_table;
    use crate::table::Table;
    use tmql_model::{Record, Ty};

    #[test]
    fn basic_stats() {
        let t = int_table("R", &["a", "b"], &[&[1, 10], &[2, 10], &[3, 20]]);
        let st = TableStats::compute(&t);
        assert_eq!(st.cardinality, 3);
        assert_eq!(st.columns["a"].distinct, 3);
        assert_eq!(st.columns["b"].distinct, 2);
        assert_eq!(st.columns["a"].min, Some(Value::Int(1)));
        assert_eq!(st.columns["a"].max, Some(Value::Int(3)));
    }

    #[test]
    fn selectivity() {
        let t = int_table("R", &["a"], &[&[1], &[2], &[3], &[4]]);
        let st = TableStats::compute(&t);
        assert!((st.eq_selectivity("a") - 0.25).abs() < 1e-12);
        assert!((st.eq_cardinality("a") - 1.0).abs() < 1e-12);
        assert!((st.eq_selectivity("zz") - 0.1).abs() < 1e-12);
    }

    #[test]
    fn set_valued_fraction_and_fanout() {
        let mut t = Table::new("X", vec![("a".into(), Ty::Any)]);
        t.insert(
            Record::new([("a".to_string(), Value::set([Value::Int(1), Value::Int(2)]))]).unwrap(),
        )
        .unwrap();
        t.insert(Record::new([("a".to_string(), Value::set([Value::Int(7)]))]).unwrap()).unwrap();
        t.insert(Record::new([("a".to_string(), Value::empty_set())]).unwrap()).unwrap();
        t.insert(Record::new([("a".to_string(), Value::Int(1))]).unwrap()).unwrap();
        let st = TableStats::compute(&t);
        let c = &st.columns["a"];
        assert!((c.set_valued_fraction - 0.75).abs() < 1e-12);
        assert!((c.empty_set_fraction - 0.25).abs() < 1e-12);
        assert!((c.avg_set_card - 1.0).abs() < 1e-12, "(2 + 1 + 0) / 3 sets");
        assert_eq!(st.avg_set_card("a"), Some(1.0));
        assert_eq!(st.avg_set_card("nope"), None);
    }

    #[test]
    fn null_fraction_counted() {
        let mut t = Table::new("N", vec![("a".into(), Ty::Any)]);
        t.insert(Record::new([("a".to_string(), Value::Null)]).unwrap()).unwrap();
        t.insert(Record::new([("a".to_string(), Value::Int(3))]).unwrap()).unwrap();
        let st = TableStats::compute(&t);
        assert!((st.columns["a"].null_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_fractions() {
        // Uniform 0..100: P(< 25) ≈ 0.25, P(> 75) ≈ 0.25.
        let rows: Vec<Vec<i64>> = (0..100).map(|i| vec![i]).collect();
        let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
        let st = TableStats::compute(&int_table("H", &["a"], &refs));
        let c = &st.columns["a"];
        let below = c.fraction_lt(25.0).unwrap();
        assert!((below - 0.25).abs() < 0.05, "{below}");
        let above = c.fraction_gt(75.0).unwrap();
        assert!((above - 0.25).abs() < 0.05, "{above}");
        // Out-of-range probes clamp.
        assert_eq!(c.fraction_lt(-1.0), Some(0.0));
        assert_eq!(c.fraction_gt(1000.0), Some(0.0));
        assert_eq!(c.fraction_lt(1000.0), Some(1.0));
    }

    #[test]
    fn histogram_skew_visible() {
        // Two distinct clusters (values 0..=9 and 170..=179, one row
        // each under set semantics): the histogram puts half the mass in
        // the low buckets, so P(< 50) ≈ 0.5 — not the uniform ≈ 0.28.
        let rows: Vec<Vec<i64>> =
            (0..10i64).map(|v| vec![v]).chain((170..180).map(|v| vec![v])).collect();
        let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
        let st = TableStats::compute(&int_table("S", &["a"], &refs));
        let below = st.columns["a"].fraction_lt(50.0).unwrap();
        assert!((below - 0.5).abs() < 0.1, "{below}");
    }

    #[test]
    fn empty_table_stats() {
        let t = int_table("E", &["a"], &[]);
        let st = TableStats::compute(&t);
        assert_eq!(st.cardinality, 0);
        assert_eq!(st.columns["a"].distinct, 0);
        assert_eq!(st.columns["a"].min, None);
        assert!(st.columns["a"].histogram.is_none());
        assert_eq!(st.columns["a"].fraction_eq(), None);
    }

    #[test]
    fn incremental_builder_matches_compute() {
        let t = int_table("R", &["a", "b"], &[&[1, 10], &[2, 10], &[3, 20]]);
        let mut b = StatsBuilder::new(["a", "b"]);
        for row in t.rows() {
            b.observe(row);
        }
        assert_eq!(b.finish(), TableStats::compute(&t));
    }
}
