//! Table statistics for the cost-based optimizer and physical planner.
//!
//! Statistics are accumulated **incrementally**: [`StatsBuilder`] observes
//! one row at a time, so [`crate::Catalog::register`] /
//! [`crate::Catalog::replace`] make a single pass over the table instead
//! of one pass per column. The finished [`TableStats`] carry, per column:
//!
//! * distinct count, min/max (classic System-R inputs),
//! * an **equi-width histogram** over numeric values (comparison
//!   selectivities better than a magic constant),
//! * the **null fraction** (the relational baselines introduce NULLs),
//! * the **set-valued / empty-set fractions** and the **average
//!   set-valued fan-out** — the complex-object inputs that drive
//!   `ScanExpr`/`Unnest` cardinality and unnest-strategy choice
//!   (Section 3.2: subqueries over set-valued attributes).

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tmql_model::{Record, Result, Value};

use crate::table::Table;

/// Number of buckets in per-column equi-width histograms. Small on
/// purpose: tables are in-memory and queries are selective enough that
/// 16 buckets bound the estimation error well below the cost gaps the
/// optimizer has to rank.
pub const HISTOGRAM_BUCKETS: usize = 16;

/// Above this many rows, [`StatsBuilder`] switches from an exact full
/// pass to **reservoir sampling**: per-row work becomes an O(1) reservoir
/// update instead of distinct-set maintenance and numeric collection, and
/// the finished statistics are estimated from a uniform
/// [`STATS_SAMPLE_SIZE`]-row sample (row count and min/max stay exact).
pub const STATS_SAMPLE_THRESHOLD: usize = 8192;

/// Reservoir capacity of the sampled statistics pass (Vitter's
/// Algorithm R over the registration stream, deterministic seed).
pub const STATS_SAMPLE_SIZE: usize = 2048;

/// An equi-width histogram over the numeric values of one column
/// (`Int` and `Float` values; everything else is ignored).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Lower bound of the value range (inclusive).
    pub lo: f64,
    /// Upper bound of the value range (inclusive).
    pub hi: f64,
    /// Per-bucket value counts over `[lo, hi]` split equi-width.
    pub counts: Vec<u64>,
    /// Total number of values counted.
    pub total: u64,
}

impl Histogram {
    /// Build from a sample of numeric values; `None` when empty.
    pub fn build(values: &[f64]) -> Option<Histogram> {
        if values.is_empty() {
            return None;
        }
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut counts = vec![0u64; HISTOGRAM_BUCKETS];
        let width = (hi - lo).max(f64::MIN_POSITIVE);
        for &v in values {
            let idx = (((v - lo) / width) * HISTOGRAM_BUCKETS as f64) as usize;
            counts[idx.min(HISTOGRAM_BUCKETS - 1)] += 1;
        }
        Some(Histogram {
            lo,
            hi,
            counts,
            total: values.len() as u64,
        })
    }

    /// Estimated fraction of values strictly below `v` (linear
    /// interpolation inside the bucket containing `v`).
    pub fn fraction_below(&self, v: f64) -> f64 {
        if v <= self.lo {
            return 0.0;
        }
        if v > self.hi {
            return 1.0;
        }
        let width = (self.hi - self.lo).max(f64::MIN_POSITIVE) / HISTOGRAM_BUCKETS as f64;
        let pos = (v - self.lo) / width;
        let bucket = (pos as usize).min(HISTOGRAM_BUCKETS - 1);
        let within = pos - bucket as f64;
        let below: u64 = self.counts[..bucket].iter().sum();
        (below as f64 + self.counts[bucket] as f64 * within) / self.total.max(1) as f64
    }

    /// Estimated fraction of values strictly above `v`.
    pub fn fraction_above(&self, v: f64) -> f64 {
        if v < self.lo {
            return 1.0;
        }
        (1.0 - self.fraction_below(v)).max(0.0)
    }
}

/// Per-column statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of distinct values.
    pub distinct: usize,
    /// Minimum value under the model's total order (None for empty tables).
    pub min: Option<Value>,
    /// Maximum value under the model's total order.
    pub max: Option<Value>,
    /// Fraction of rows in which the value is NULL (the relational
    /// outerjoin baselines are the only producers of NULLs in TM data).
    pub null_fraction: f64,
    /// Fraction of rows in which the value is a set — set-valued attributes
    /// change unnesting decisions (Section 3.2).
    pub set_valued_fraction: f64,
    /// Fraction of rows in which the value is the **empty** set. Empty sets
    /// make membership-style predicates trivially false and cut the fan-out
    /// of `FROM x.a e` iteration.
    pub empty_set_fraction: f64,
    /// Average cardinality of the set values in this column (0.0 when the
    /// column holds no sets) — the per-column fan-out of `ScanExpr`/unnest.
    pub avg_set_card: f64,
    /// Equi-width histogram over the numeric values, when any exist.
    pub histogram: Option<Histogram>,
}

impl ColumnStats {
    /// Estimated fraction of rows with value `< v` (histogram-based; `None`
    /// when the column has no numeric histogram).
    pub fn fraction_lt(&self, v: f64) -> Option<f64> {
        self.histogram.as_ref().map(|h| h.fraction_below(v))
    }

    /// Estimated fraction of rows with value `> v`.
    pub fn fraction_gt(&self, v: f64) -> Option<f64> {
        self.histogram.as_ref().map(|h| h.fraction_above(v))
    }

    /// Estimated fraction of rows with value `= v`: histogram bucket mass
    /// spread over the distinct values, falling back to 1/NDV.
    pub fn fraction_eq(&self) -> Option<f64> {
        if self.distinct == 0 {
            return None;
        }
        Some(1.0 / self.distinct as f64)
    }
}

/// Incremental per-column accumulator (one [`StatsBuilder::observe`] call
/// per row keeps registration single-pass).
#[derive(Debug, Default)]
struct ColumnAcc {
    distinct: BTreeSet<Value>,
    nulls: usize,
    sets: usize,
    empty_sets: usize,
    set_elems: usize,
    numerics: Vec<f64>,
}

impl ColumnAcc {
    fn observe(&mut self, v: &Value) {
        match v {
            Value::Null => self.nulls += 1,
            Value::Set(s) => {
                self.sets += 1;
                if s.is_empty() {
                    self.empty_sets += 1;
                }
                self.set_elems += s.len();
            }
            Value::Int(i) => self.numerics.push(*i as f64),
            Value::Float(f) => self.numerics.push(*f),
            _ => {}
        }
        if !self.distinct.contains(v) {
            self.distinct.insert(v.clone());
        }
    }

    fn finish(self, rows: usize) -> ColumnStats {
        let n = rows.max(1) as f64;
        ColumnStats {
            min: self.distinct.iter().next().cloned(),
            max: self.distinct.iter().next_back().cloned(),
            null_fraction: self.nulls as f64 / n,
            set_valued_fraction: self.sets as f64 / n,
            empty_set_fraction: self.empty_sets as f64 / n,
            avg_set_card: if self.sets > 0 {
                self.set_elems as f64 / self.sets as f64
            } else {
                0.0
            },
            histogram: Histogram::build(&self.numerics),
            distinct: self.distinct.len(),
        }
    }
}

/// Estimate a column's distinct count from a uniform sample of
/// `sample_n` rows out of `total` (Chao1 with the standard bias-corrected
/// fallback). `freq_once`/`freq_twice` count sample values seen exactly
/// once / exactly twice. An all-distinct sample reads as a key column.
fn estimate_distinct(
    d_sample: usize,
    freq_once: usize,
    freq_twice: usize,
    sample_n: usize,
    total: usize,
) -> usize {
    if total <= sample_n || d_sample == 0 {
        return d_sample;
    }
    if d_sample == sample_n {
        // Every sampled value was unique: a key-like column.
        return total;
    }
    let d = d_sample as f64;
    let f1 = freq_once as f64;
    let est = if freq_twice > 0 {
        d + (f1 * f1) / (2.0 * freq_twice as f64)
    } else {
        d + (f1 * (f1 - 1.0)) / 2.0
    };
    (est.round() as usize).clamp(d_sample, total)
}

/// Incremental statistics builder: feed rows one at a time, then
/// [`StatsBuilder::finish`]. [`TableStats::compute`] is the whole-table
/// convenience wrapper used by catalog registration.
///
/// Up to [`STATS_SAMPLE_THRESHOLD`] rows the pass is exact (identical to
/// the pre-sampling behavior). Past the threshold the exact accumulators
/// are dropped and the statistics are estimated from a uniform reservoir
/// of [`STATS_SAMPLE_SIZE`] rows: fractions, fan-outs, and histograms
/// come straight from the sample; distinct counts through
/// a Chao1 estimator; the row count and per-column min/max stay
/// exact (they are O(1) to maintain). [`StatsBuilder::exact`] disables
/// sampling for callers that need the full pass regardless of size
/// (differential tests pin the sampled estimates against it).
#[derive(Debug)]
pub struct StatsBuilder {
    rows: usize,
    names: Vec<String>,
    /// Exact accumulators, dropped once `rows` passes `threshold`.
    exact: Option<Vec<ColumnAcc>>,
    /// Exact running (min, max) per column, kept in both modes.
    extremes: Vec<(Option<Value>, Option<Value>)>,
    reservoir: Vec<Record>,
    rng: StdRng,
    threshold: usize,
}

impl StatsBuilder {
    /// A builder for the given column names (sampling past
    /// [`STATS_SAMPLE_THRESHOLD`] rows).
    pub fn new<'a>(columns: impl IntoIterator<Item = &'a str>) -> StatsBuilder {
        StatsBuilder::with_threshold(columns, STATS_SAMPLE_THRESHOLD)
    }

    /// A builder that never samples — the exact full pass at any size.
    pub fn exact<'a>(columns: impl IntoIterator<Item = &'a str>) -> StatsBuilder {
        StatsBuilder::with_threshold(columns, usize::MAX)
    }

    fn with_threshold<'a>(
        columns: impl IntoIterator<Item = &'a str>,
        threshold: usize,
    ) -> StatsBuilder {
        let names: Vec<String> = columns.into_iter().map(str::to_string).collect();
        StatsBuilder {
            rows: 0,
            exact: Some(names.iter().map(|_| ColumnAcc::default()).collect()),
            extremes: names.iter().map(|_| (None, None)).collect(),
            names,
            reservoir: Vec::new(),
            // Deterministic: registering the same table twice yields the
            // same statistics.
            rng: StdRng::seed_from_u64(0x7153_7461_7473),
            threshold,
        }
    }

    /// Observe one row (missing fields are simply not counted).
    pub fn observe(&mut self, row: &Record) {
        self.rows += 1;
        for (i, name) in self.names.iter().enumerate() {
            if let Ok(v) = row.get(name) {
                let (min, max) = &mut self.extremes[i];
                if min.as_ref().map_or(true, |m| v < m) {
                    *min = Some(v.clone());
                }
                if max.as_ref().map_or(true, |m| v > m) {
                    *max = Some(v.clone());
                }
            }
        }
        if self.rows <= self.threshold {
            let accs = self
                .exact
                .as_mut()
                .expect("exact accumulators live below threshold");
            for (i, name) in self.names.iter().enumerate() {
                if let Ok(v) = row.get(name) {
                    accs[i].observe(v);
                }
            }
        } else {
            // Past the threshold the exact pass is abandoned for good.
            self.exact = None;
        }
        if self.threshold == usize::MAX {
            return; // exact-only builder: no reservoir bookkeeping
        }
        // Algorithm R: every row ends up in the reservoir with
        // probability STATS_SAMPLE_SIZE / rows.
        if self.reservoir.len() < STATS_SAMPLE_SIZE {
            self.reservoir.push(row.clone());
        } else {
            let j = self.rng.gen_range(0..self.rows);
            if j < STATS_SAMPLE_SIZE {
                self.reservoir[j] = row.clone();
            }
        }
    }

    /// Finish into per-table statistics.
    pub fn finish(self) -> TableStats {
        let rows = self.rows;
        if let Some(accs) = self.exact {
            // Exact path: identical to the pre-sampling behavior.
            return TableStats {
                cardinality: rows,
                columns: self
                    .names
                    .into_iter()
                    .zip(accs)
                    .map(|(n, acc)| (n, acc.finish(rows)))
                    .collect(),
            };
        }
        // Sampled path: rebuild accumulators over the reservoir, then
        // correct what sampling biases (distinct counts, min/max).
        let sample_n = self.reservoir.len();
        let mut columns = BTreeMap::new();
        for (i, name) in self.names.iter().enumerate() {
            let mut acc = ColumnAcc::default();
            let mut freq: BTreeMap<&Value, usize> = BTreeMap::new();
            for row in &self.reservoir {
                if let Ok(v) = row.get(name) {
                    acc.observe(v);
                    *freq.entry(v).or_default() += 1;
                }
            }
            let f1 = freq.values().filter(|&&c| c == 1).count();
            let f2 = freq.values().filter(|&&c| c == 2).count();
            let mut cs = acc.finish(sample_n);
            cs.distinct = estimate_distinct(freq.len(), f1, f2, sample_n, rows);
            let (min, max) = self.extremes[i].clone();
            cs.min = min;
            cs.max = max;
            columns.insert(name.clone(), cs);
        }
        TableStats {
            cardinality: rows,
            columns,
        }
    }
}

/// Statistics for one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Row count (after set-semantics dedup).
    pub cardinality: usize,
    /// Per-column stats keyed by column name.
    pub columns: BTreeMap<String, ColumnStats>,
}

impl TableStats {
    /// Compute statistics in a single incremental pass over the table
    /// (sampling past [`STATS_SAMPLE_THRESHOLD`] rows). Infallible for
    /// in-memory tables; for disk-backed tables a failed page read
    /// **stops the pass**, yielding statistics over the readable prefix
    /// only — use [`TableStats::try_compute`] where a scan failure must
    /// surface instead.
    pub fn compute(table: &Table) -> TableStats {
        TableStats::try_compute(table).unwrap_or_else(|_| {
            let mut b = StatsBuilder::new(table.columns().iter().map(|(n, _)| n.as_str()));
            for batch in table.batches(1024) {
                let Ok(batch) = batch else { break };
                batch.iter().for_each(|r| b.observe(r));
            }
            b.finish()
        })
    }

    /// [`TableStats::compute`] that propagates disk read failures rather
    /// than truncating the pass (the persistent catalog uses this so a
    /// corrupted table can never contribute silently-wrong statistics).
    pub fn try_compute(table: &Table) -> Result<TableStats> {
        let mut b = StatsBuilder::new(table.columns().iter().map(|(n, _)| n.as_str()));
        match table.mem_rows() {
            Some(rows) => rows.iter().for_each(|r| b.observe(r)),
            None => {
                for batch in table.batches(1024) {
                    batch?.iter().for_each(|r| b.observe(r));
                }
            }
        }
        Ok(b.finish())
    }

    /// Per-column stats, `None` for unknown columns.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.get(name)
    }

    /// Estimated selectivity of an equality predicate on `column`
    /// (classic 1/NDV); 0.1 fallback when the column is unknown.
    pub fn eq_selectivity(&self, column: &str) -> f64 {
        match self.columns.get(column) {
            Some(c) if c.distinct > 0 => 1.0 / c.distinct as f64,
            _ => 0.1,
        }
    }

    /// Estimated number of rows matching an equality on `column`.
    pub fn eq_cardinality(&self, column: &str) -> f64 {
        self.cardinality as f64 * self.eq_selectivity(column)
    }

    /// Average set-valued fan-out of `column` — the expected element count
    /// when iterating `x.column` — or `None` when the column is unknown or
    /// holds no sets.
    pub fn avg_set_card(&self, column: &str) -> Option<f64> {
        match self.columns.get(column) {
            Some(c) if c.set_valued_fraction > 0.0 => Some(c.avg_set_card),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::int_table;
    use crate::table::Table;
    use tmql_model::{Record, Ty};

    #[test]
    fn basic_stats() {
        let t = int_table("R", &["a", "b"], &[&[1, 10], &[2, 10], &[3, 20]]);
        let st = TableStats::compute(&t);
        assert_eq!(st.cardinality, 3);
        assert_eq!(st.columns["a"].distinct, 3);
        assert_eq!(st.columns["b"].distinct, 2);
        assert_eq!(st.columns["a"].min, Some(Value::Int(1)));
        assert_eq!(st.columns["a"].max, Some(Value::Int(3)));
    }

    #[test]
    fn selectivity() {
        let t = int_table("R", &["a"], &[&[1], &[2], &[3], &[4]]);
        let st = TableStats::compute(&t);
        assert!((st.eq_selectivity("a") - 0.25).abs() < 1e-12);
        assert!((st.eq_cardinality("a") - 1.0).abs() < 1e-12);
        assert!((st.eq_selectivity("zz") - 0.1).abs() < 1e-12);
    }

    #[test]
    fn set_valued_fraction_and_fanout() {
        let mut t = Table::new("X", vec![("a".into(), Ty::Any)]);
        t.insert(
            Record::new([("a".to_string(), Value::set([Value::Int(1), Value::Int(2)]))]).unwrap(),
        )
        .unwrap();
        t.insert(Record::new([("a".to_string(), Value::set([Value::Int(7)]))]).unwrap())
            .unwrap();
        t.insert(Record::new([("a".to_string(), Value::empty_set())]).unwrap())
            .unwrap();
        t.insert(Record::new([("a".to_string(), Value::Int(1))]).unwrap())
            .unwrap();
        let st = TableStats::compute(&t);
        let c = &st.columns["a"];
        assert!((c.set_valued_fraction - 0.75).abs() < 1e-12);
        assert!((c.empty_set_fraction - 0.25).abs() < 1e-12);
        assert!((c.avg_set_card - 1.0).abs() < 1e-12, "(2 + 1 + 0) / 3 sets");
        assert_eq!(st.avg_set_card("a"), Some(1.0));
        assert_eq!(st.avg_set_card("nope"), None);
    }

    #[test]
    fn null_fraction_counted() {
        let mut t = Table::new("N", vec![("a".into(), Ty::Any)]);
        t.insert(Record::new([("a".to_string(), Value::Null)]).unwrap())
            .unwrap();
        t.insert(Record::new([("a".to_string(), Value::Int(3))]).unwrap())
            .unwrap();
        let st = TableStats::compute(&t);
        assert!((st.columns["a"].null_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_fractions() {
        // Uniform 0..100: P(< 25) ≈ 0.25, P(> 75) ≈ 0.25.
        let rows: Vec<Vec<i64>> = (0..100).map(|i| vec![i]).collect();
        let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
        let st = TableStats::compute(&int_table("H", &["a"], &refs));
        let c = &st.columns["a"];
        let below = c.fraction_lt(25.0).unwrap();
        assert!((below - 0.25).abs() < 0.05, "{below}");
        let above = c.fraction_gt(75.0).unwrap();
        assert!((above - 0.25).abs() < 0.05, "{above}");
        // Out-of-range probes clamp.
        assert_eq!(c.fraction_lt(-1.0), Some(0.0));
        assert_eq!(c.fraction_gt(1000.0), Some(0.0));
        assert_eq!(c.fraction_lt(1000.0), Some(1.0));
    }

    #[test]
    fn histogram_skew_visible() {
        // Two distinct clusters (values 0..=9 and 170..=179, one row
        // each under set semantics): the histogram puts half the mass in
        // the low buckets, so P(< 50) ≈ 0.5 — not the uniform ≈ 0.28.
        let rows: Vec<Vec<i64>> = (0..10i64)
            .map(|v| vec![v])
            .chain((170..180).map(|v| vec![v]))
            .collect();
        let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
        let st = TableStats::compute(&int_table("S", &["a"], &refs));
        let below = st.columns["a"].fraction_lt(50.0).unwrap();
        assert!((below - 0.5).abs() < 0.1, "{below}");
    }

    #[test]
    fn empty_table_stats() {
        let t = int_table("E", &["a"], &[]);
        let st = TableStats::compute(&t);
        assert_eq!(st.cardinality, 0);
        assert_eq!(st.columns["a"].distinct, 0);
        assert_eq!(st.columns["a"].min, None);
        assert!(st.columns["a"].histogram.is_none());
        assert_eq!(st.columns["a"].fraction_eq(), None);
    }

    fn wide_rows(n: i64) -> Vec<Record> {
        (0..n)
            .map(|i| {
                Record::new([
                    ("id".to_string(), Value::Int(i)),
                    ("m".to_string(), Value::Int(i % 64)),
                ])
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn sampling_kicks_in_past_the_threshold() {
        let n = (STATS_SAMPLE_THRESHOLD * 3) as i64;
        let mut sampled = StatsBuilder::new(["id", "m"]);
        let mut exact = StatsBuilder::exact(["id", "m"]);
        for row in wide_rows(n) {
            sampled.observe(&row);
            exact.observe(&row);
        }
        let s = sampled.finish();
        let e = exact.finish();
        // Row count and extremes are exact in both modes.
        assert_eq!(s.cardinality, e.cardinality);
        assert_eq!(s.columns["id"].min, e.columns["id"].min);
        assert_eq!(s.columns["id"].max, e.columns["id"].max);
        // Distinct estimates: the key column reads as all-distinct, the
        // modulo column is saturated in the sample.
        assert_eq!(s.columns["id"].distinct, n as usize);
        let q = |est: usize, act: usize| {
            let (e, a) = (est.max(1) as f64, act.max(1) as f64);
            (e / a).max(a / e)
        };
        assert!(
            q(s.columns["m"].distinct, 64) <= 1.5,
            "{}",
            s.columns["m"].distinct
        );
        // Sampled histogram fractions track the exact ones.
        for probe in [n / 4, n / 2, 3 * n / 4] {
            let fs = s.columns["id"].fraction_lt(probe as f64).unwrap();
            let fe = e.columns["id"].fraction_lt(probe as f64).unwrap();
            assert!(
                (fs - fe).abs() < 0.05,
                "probe {probe}: sampled {fs} vs exact {fe}"
            );
        }
    }

    #[test]
    fn small_tables_keep_the_exact_pass() {
        let mut sampled = StatsBuilder::new(["id", "m"]);
        let mut exact = StatsBuilder::exact(["id", "m"]);
        for row in wide_rows(512) {
            sampled.observe(&row);
            exact.observe(&row);
        }
        assert_eq!(
            sampled.finish(),
            exact.finish(),
            "below the threshold nothing changes"
        );
    }

    #[test]
    fn distinct_estimator_shapes() {
        // Saturated sample: estimate equals the sample's distinct count.
        assert_eq!(estimate_distinct(64, 0, 0, 2048, 100_000), 64);
        // All-unique sample: key column, estimate the full cardinality.
        assert_eq!(estimate_distinct(2048, 2048, 0, 2048, 100_000), 100_000);
        // No sampling happened (sample covers the table): exact.
        assert_eq!(estimate_distinct(77, 10, 5, 2048, 2000), 77);
        // Chao1 interior case stays between the sample count and the total.
        let est = estimate_distinct(1000, 500, 250, 2048, 100_000);
        assert!((1000..=100_000).contains(&est), "{est}");
    }

    #[test]
    fn incremental_builder_matches_compute() {
        let t = int_table("R", &["a", "b"], &[&[1, 10], &[2, 10], &[3, 20]]);
        let mut b = StatsBuilder::new(["a", "b"]);
        for row in t.rows() {
            b.observe(row);
        }
        assert_eq!(b.finish(), TableStats::compute(&t));
    }
}
