//! The write-ahead log: redo records that make commits durable before
//! any page write-back.
//!
//! The log is a sidecar file (`<db>.wal`) of length-prefixed,
//! checksummed records in the spill codec's framing style: each record
//! is `[u32 payload len][u64 FNV-1a checksum][payload]`, little-endian.
//! Two payload kinds exist:
//!
//! * **page image** — a page id plus its full [`PAGE_SIZE`] bytes, one
//!   per page a transaction wrote (data, overflow, index-chain, and
//!   catalog-chain pages alike);
//! * **commit** — the transaction's resulting header state (watermark,
//!   catalog chain head/length, free list) plus the pages it freed.
//!
//! A transaction is durable exactly when its commit record is fsynced;
//! page images without a following commit are an in-flight transaction
//! a crash aborted, and recovery ignores them. Replay
//! ([`Wal::scan`] + the store's redo pass) walks records in order,
//! stops at the first torn or corrupt record, and reports what it had
//! to discard — a truncated tail is an expected crash artifact, but it
//! is never silently dropped (see [`RecoveryReport`]).

use std::fs::{File, OpenOptions};
use std::io::Read;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use tmql_model::{ModelError, Result};

use crate::failpoint::{self, IoOp, WriteCheck};
use crate::pager::page::{PageId, PAGE_SIZE};

/// Payload tag for a page-image record.
const KIND_PAGE: u8 = 1;
/// Payload tag for a commit record.
const KIND_COMMIT: u8 = 2;
/// Bytes of framing before each payload: u32 length + u64 checksum.
const FRAME_BYTES: usize = 12;

/// FNV-1a 64-bit, the checksum guarding each record's payload.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn io_err(msg: impl Into<String>) -> ModelError {
    ModelError::Io(msg.into())
}

/// The header state a committed transaction leaves behind, logged as
/// the transaction's commit record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitRecord {
    /// Page allocation watermark after the transaction.
    pub next_page: PageId,
    /// Head of the catalog blob chain.
    pub catalog_first: PageId,
    /// Byte length of the catalog blob.
    pub catalog_len: u64,
    /// Reusable free list as of this commit (already checkpoint-durable
    /// pages only; pages this and earlier WAL-only commits freed are in
    /// `freed`).
    pub free: Vec<PageId>,
    /// Pages this transaction freed; they may be reused only after the
    /// checkpoint that folds them into the durable free list.
    pub freed: Vec<PageId>,
}

impl CommitRecord {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(21 + 4 * (self.free.len() + self.freed.len()));
        out.push(KIND_COMMIT);
        out.extend_from_slice(&self.next_page.to_le_bytes());
        out.extend_from_slice(&self.catalog_first.to_le_bytes());
        out.extend_from_slice(&self.catalog_len.to_le_bytes());
        for list in [&self.free, &self.freed] {
            out.extend_from_slice(&(list.len() as u32).to_le_bytes());
            for pid in list {
                out.extend_from_slice(&pid.to_le_bytes());
            }
        }
        out
    }

    fn decode(payload: &[u8]) -> Result<CommitRecord> {
        let mut pos = 1; // caller consumed the kind tag
        let u32_at = |pos: &mut usize| -> Result<u32> {
            let end = *pos + 4;
            let b = payload
                .get(*pos..end)
                .ok_or_else(|| io_err("wal: truncated commit record"))?;
            *pos = end;
            Ok(u32::from_le_bytes(b.try_into().unwrap()))
        };
        let next_page = u32_at(&mut pos)?;
        let catalog_first = u32_at(&mut pos)?;
        let len_bytes = payload
            .get(pos..pos + 8)
            .ok_or_else(|| io_err("wal: truncated commit record"))?;
        let catalog_len = u64::from_le_bytes(len_bytes.try_into().unwrap());
        pos += 8;
        let mut lists = [Vec::new(), Vec::new()];
        for list in &mut lists {
            let n = u32_at(&mut pos)? as usize;
            list.reserve(n);
            for _ in 0..n {
                list.push(u32_at(&mut pos)?);
            }
        }
        if pos != payload.len() {
            return Err(io_err("wal: trailing bytes in commit record"));
        }
        let [free, freed] = lists;
        Ok(CommitRecord {
            next_page,
            catalog_first,
            catalog_len,
            free,
            freed,
        })
    }
}

/// One durable transaction recovered from the log: the page images it
/// wrote, in order, and its commit record.
#[derive(Debug)]
pub struct WalTxn {
    /// `(page id, full page image)` in write order.
    pub pages: Vec<(PageId, Vec<u8>)>,
    /// The transaction's resulting header state.
    pub commit: CommitRecord,
}

/// What a scan of the log found: the committed transactions to replay,
/// plus an account of everything after the last valid commit.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Committed transactions in log order.
    pub txns: Vec<WalTxn>,
    /// Well-formed records after the last commit (an in-flight
    /// transaction's page images) plus one for a torn or corrupt tail,
    /// if any — all discarded by replay.
    pub discarded_records: usize,
    /// Bytes after the last valid commit record.
    pub discarded_bytes: u64,
}

/// Recovery summary surfaced through `Database::recovery_report` after
/// an open that found work in the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Committed transactions replayed into the database file.
    pub replayed_txns: usize,
    /// Records discarded after the last valid commit (in-flight page
    /// images and/or one torn/corrupt tail record).
    pub discarded_records: usize,
    /// Bytes discarded after the last valid commit.
    pub discarded_bytes: u64,
}

impl RecoveryReport {
    /// True when the open neither replayed nor discarded anything.
    pub fn is_clean(&self) -> bool {
        self.replayed_txns == 0 && self.discarded_records == 0
    }
}

/// A point-in-time snapshot of WAL activity, surfaced through
/// `Catalog::wal_activity` for the metrics registry and shell `\stats`.
///
/// `*_total` fields are monotonic for the lifetime of the open store
/// (they survive checkpoints); `*_since_checkpoint` fields reset when a
/// checkpoint truncates the log. `checkpoints_total` is tracked by the
/// store, not the log — [`Wal::activity`] reports it as 0 and
/// `PagedStore::wal_activity` fills it in.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WalActivity {
    /// Current log size in bytes.
    pub size_bytes: u64,
    /// Records appended since the last checkpoint.
    pub records_since_checkpoint: u64,
    /// Commit records appended since the last checkpoint.
    pub commits_since_checkpoint: u64,
    /// Records appended since the store was opened.
    pub appends_total: u64,
    /// Commit records appended since the store was opened.
    pub commits_total: u64,
    /// Fsyncs of the log since the store was opened.
    pub syncs_total: u64,
    /// Bytes appended (framing included) since the store was opened.
    pub bytes_appended_total: u64,
    /// Checkpoints taken since the store was opened (filled in by the
    /// store, which owns checkpointing).
    pub checkpoints_total: u64,
}

/// Activity counters, atomics so [`Wal::sync`] (`&self`) can count too.
#[derive(Debug, Default)]
struct WalCounters {
    records: AtomicU64,
    commits: AtomicU64,
    appends_total: AtomicU64,
    commits_total: AtomicU64,
    syncs_total: AtomicU64,
    bytes_appended_total: AtomicU64,
}

/// An open write-ahead log: append-only between checkpoints, truncated
/// by them.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    end: u64,
    counters: WalCounters,
}

impl Wal {
    /// The sidecar path for a database file: `<db>.wal`.
    pub fn path_for(db_path: &Path) -> PathBuf {
        let mut os = db_path.as_os_str().to_os_string();
        os.push(".wal");
        PathBuf::from(os)
    }

    /// Open (creating if missing) the log for appending. The caller is
    /// expected to have scanned and replayed first; appends start at
    /// the current end of file.
    pub fn open(path: &Path) -> Result<Wal> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io_err(format!("wal open {}: {e}", path.display())))?;
        let end = file
            .metadata()
            .map_err(|e| io_err(format!("wal stat: {e}")))?
            .len();
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            end,
            counters: WalCounters::default(),
        })
    }

    /// Bytes currently in the log (the checkpoint trigger input).
    pub fn bytes(&self) -> u64 {
        self.end
    }

    /// Snapshot of this log's activity counters.
    /// `checkpoints_total` is 0 here — checkpointing belongs to the
    /// store, which overlays its own count.
    pub fn activity(&self) -> WalActivity {
        let c = &self.counters;
        WalActivity {
            size_bytes: self.end,
            records_since_checkpoint: c.records.load(Ordering::Relaxed),
            commits_since_checkpoint: c.commits.load(Ordering::Relaxed),
            appends_total: c.appends_total.load(Ordering::Relaxed),
            commits_total: c.commits_total.load(Ordering::Relaxed),
            syncs_total: c.syncs_total.load(Ordering::Relaxed),
            bytes_appended_total: c.bytes_appended_total.load(Ordering::Relaxed),
            checkpoints_total: 0,
        }
    }

    fn append(&mut self, payload: &[u8]) -> Result<()> {
        let mut rec = Vec::with_capacity(FRAME_BYTES + payload.len());
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(&fnv1a(payload).to_le_bytes());
        rec.extend_from_slice(payload);
        let allowed =
            match failpoint::check_write(&self.path, IoOp::WalWrite(rec.len()), rec.len())? {
                WriteCheck::Full => rec.len(),
                WriteCheck::Torn(n) => n,
            };
        self.file
            .write_all_at(&rec[..allowed], self.end)
            .map_err(|e| io_err(format!("wal append: {e}")))?;
        if allowed < rec.len() {
            return Err(io_err("injected crash (torn wal append)"));
        }
        self.end += rec.len() as u64;
        self.counters.records.fetch_add(1, Ordering::Relaxed);
        self.counters.appends_total.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes_appended_total
            .fetch_add(rec.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Append a page-image redo record.
    pub fn append_page(&mut self, pid: PageId, image: &[u8]) -> Result<()> {
        debug_assert_eq!(image.len(), PAGE_SIZE);
        let mut payload = Vec::with_capacity(5 + PAGE_SIZE);
        payload.push(KIND_PAGE);
        payload.extend_from_slice(&pid.to_le_bytes());
        payload.extend_from_slice(image);
        self.append(&payload)
    }

    /// Append a commit record; the transaction becomes durable at the
    /// next [`Wal::sync`].
    pub fn append_commit(&mut self, rec: &CommitRecord) -> Result<()> {
        self.append(&rec.encode())?;
        self.counters.commits.fetch_add(1, Ordering::Relaxed);
        self.counters.commits_total.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Fsync the log — the durability point for everything appended.
    pub fn sync(&self) -> Result<()> {
        failpoint::check_sync(&self.path, IoOp::WalSync)?;
        self.file
            .sync_all()
            .map_err(|e| io_err(format!("wal sync: {e}")))?;
        self.counters.syncs_total.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Truncate the log after a checkpoint has made its contents
    /// redundant with the database file.
    pub fn reset(&mut self) -> Result<()> {
        failpoint::check_sync(&self.path, IoOp::WalReset)?;
        self.file
            .set_len(0)
            .map_err(|e| io_err(format!("wal truncate: {e}")))?;
        self.file
            .sync_all()
            .map_err(|e| io_err(format!("wal truncate sync: {e}")))?;
        self.end = 0;
        self.counters.records.store(0, Ordering::Relaxed);
        self.counters.commits.store(0, Ordering::Relaxed);
        Ok(())
    }

    /// Scan a log file for committed transactions. A missing file is an
    /// empty log. The scan stops at the first torn or corrupt record —
    /// nothing after it can be trusted — and accounts for what it
    /// discarded.
    pub fn scan(path: &Path) -> Result<WalScan> {
        let mut data = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut data)
                    .map_err(|e| io_err(format!("wal read: {e}")))?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalScan::default()),
            Err(e) => return Err(io_err(format!("wal open for scan: {e}"))),
        }
        let mut scan = WalScan::default();
        let mut pending: Vec<(PageId, Vec<u8>)> = Vec::new();
        let mut pos = 0usize;
        let mut committed_end = 0usize;
        while pos + FRAME_BYTES <= data.len() {
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
            let end = pos + FRAME_BYTES + len;
            if len == 0 || end > data.len() {
                break; // torn tail
            }
            let sum = u64::from_le_bytes(data[pos + 4..pos + 12].try_into().unwrap());
            let payload = &data[pos + FRAME_BYTES..end];
            if fnv1a(payload) != sum {
                break; // corrupt record
            }
            match payload[0] {
                KIND_PAGE if payload.len() == 5 + PAGE_SIZE => {
                    let pid = PageId::from_le_bytes(payload[1..5].try_into().unwrap());
                    pending.push((pid, payload[5..].to_vec()));
                }
                KIND_COMMIT => {
                    let commit = match CommitRecord::decode(payload) {
                        Ok(c) => c,
                        Err(_) => break,
                    };
                    scan.txns.push(WalTxn {
                        pages: std::mem::take(&mut pending),
                        commit,
                    });
                    committed_end = end;
                }
                _ => break, // unknown kind or malformed page record
            }
            pos = end;
        }
        // Well-formed-but-uncommitted records, plus one for a torn or
        // corrupt tail the parse loop could not get past.
        scan.discarded_records = pending.len() + usize::from(pos < data.len());
        scan.discarded_bytes = (data.len() - committed_end) as u64;
        Ok(scan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tmql-wal-{tag}-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn commit(next: PageId) -> CommitRecord {
        CommitRecord {
            next_page: next,
            catalog_first: 7,
            catalog_len: 42,
            free: vec![3, 4],
            freed: vec![5],
        }
    }

    #[test]
    fn committed_transactions_round_trip() {
        let path = tmp("roundtrip");
        let mut wal = Wal::open(&path).unwrap();
        wal.append_page(2, &vec![0xAB; PAGE_SIZE]).unwrap();
        wal.append_page(3, &vec![0xCD; PAGE_SIZE]).unwrap();
        wal.append_commit(&commit(9)).unwrap();
        wal.sync().unwrap();

        let scan = Wal::scan(&path).unwrap();
        assert_eq!(scan.txns.len(), 1);
        assert_eq!(scan.discarded_records, 0);
        assert_eq!(scan.discarded_bytes, 0);
        let txn = &scan.txns[0];
        assert_eq!(txn.pages.len(), 2);
        assert_eq!(txn.pages[0].0, 2);
        assert_eq!(txn.pages[1].1, vec![0xCD; PAGE_SIZE]);
        assert_eq!(txn.commit, commit(9));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn uncommitted_pages_are_discarded_and_counted() {
        let path = tmp("uncommitted");
        let mut wal = Wal::open(&path).unwrap();
        wal.append_commit(&commit(1)).unwrap();
        wal.append_page(4, &vec![1; PAGE_SIZE]).unwrap();
        wal.append_page(5, &vec![2; PAGE_SIZE]).unwrap();
        let scan = Wal::scan(&path).unwrap();
        assert_eq!(scan.txns.len(), 1);
        assert_eq!(scan.discarded_records, 2);
        assert!(scan.discarded_bytes > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_stops_the_scan() {
        let path = tmp("torn");
        let mut wal = Wal::open(&path).unwrap();
        wal.append_commit(&commit(1)).unwrap();
        let committed = std::fs::read(&path).unwrap();
        wal.append_commit(&commit(2)).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..committed.len() + 5]).unwrap();

        let scan = Wal::scan(&path).unwrap();
        assert_eq!(scan.txns.len(), 1);
        assert_eq!(scan.txns[0].commit, commit(1));
        assert_eq!(scan.discarded_records, 1);
        assert_eq!(scan.discarded_bytes, 5);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_flip_stops_replay_at_the_last_valid_commit() {
        let path = tmp("bitflip");
        let mut wal = Wal::open(&path).unwrap();
        wal.append_commit(&commit(1)).unwrap();
        let one = std::fs::read(&path).unwrap().len();
        wal.append_page(4, &vec![7; PAGE_SIZE]).unwrap();
        wal.append_commit(&commit(2)).unwrap();

        let mut data = std::fs::read(&path).unwrap();
        data[one + FRAME_BYTES + 100] ^= 0x40; // flip a bit inside txn 2's page image
        std::fs::write(&path, &data).unwrap();

        let scan = Wal::scan(&path).unwrap();
        assert_eq!(scan.txns.len(), 1, "replay must stop before the corruption");
        assert_eq!(scan.discarded_records, 1);
        assert_eq!(scan.discarded_bytes, (data.len() - one) as u64);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn activity_counters_track_appends_and_reset() {
        let path = tmp("activity");
        let mut wal = Wal::open(&path).unwrap();
        wal.append_page(2, &vec![0xAB; PAGE_SIZE]).unwrap();
        wal.append_commit(&commit(9)).unwrap();
        wal.sync().unwrap();
        let a = wal.activity();
        assert_eq!(a.records_since_checkpoint, 2);
        assert_eq!(a.commits_since_checkpoint, 1);
        assert_eq!(a.appends_total, 2);
        assert_eq!(a.commits_total, 1);
        assert_eq!(a.syncs_total, 1);
        assert_eq!(a.size_bytes, wal.bytes());
        assert_eq!(a.bytes_appended_total, wal.bytes());

        wal.reset().unwrap();
        let a = wal.activity();
        assert_eq!(a.size_bytes, 0);
        assert_eq!(a.records_since_checkpoint, 0, "since-checkpoint resets");
        assert_eq!(a.commits_since_checkpoint, 0);
        assert_eq!(a.appends_total, 2, "totals survive the checkpoint");
        assert_eq!(a.commits_total, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_empty_log() {
        let scan = Wal::scan(Path::new("/tmp/definitely-not-a-wal-file.wal")).unwrap();
        assert!(scan.txns.is_empty());
        assert_eq!(scan.discarded_records, 0);
    }
}
