//! Single-attribute indexes over stored tables.
//!
//! Both index kinds map an attribute value to the row positions holding it.
//! They back the index-nested-loop execution alternatives and give the
//! sort-merge operators a cheap source of ordered runs.

use std::collections::{BTreeMap, HashMap};

use tmql_model::{Record, Result, Value};

use crate::table::Table;

/// Hash index: attribute value → row indexes.
#[derive(Debug, Clone)]
pub struct HashIndex {
    attr: String,
    map: HashMap<Value, Vec<usize>>,
}

impl HashIndex {
    /// Build over `table.attr`. Fails if some row lacks the attribute.
    pub fn build(table: &Table, attr: &str) -> Result<HashIndex> {
        let mut map: HashMap<Value, Vec<usize>> = HashMap::new();
        for (i, row) in table.rows().enumerate() {
            map.entry(row.get(attr)?.clone()).or_default().push(i);
        }
        Ok(HashIndex {
            attr: attr.to_string(),
            map,
        })
    }

    /// The indexed attribute.
    pub fn attr(&self) -> &str {
        &self.attr
    }

    /// Row positions whose attribute equals `key`.
    pub fn probe(&self, key: &Value) -> &[usize] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

/// Ordered index: attribute value → row indexes, supporting range scans.
#[derive(Debug, Clone)]
pub struct OrdIndex {
    attr: String,
    map: BTreeMap<Value, Vec<usize>>,
}

impl OrdIndex {
    /// Build over `table.attr`. Fails if some row lacks the attribute.
    pub fn build(table: &Table, attr: &str) -> Result<OrdIndex> {
        let mut map: BTreeMap<Value, Vec<usize>> = BTreeMap::new();
        for (i, row) in table.rows().enumerate() {
            map.entry(row.get(attr)?.clone()).or_default().push(i);
        }
        Ok(OrdIndex {
            attr: attr.to_string(),
            map,
        })
    }

    /// The indexed attribute.
    pub fn attr(&self) -> &str {
        &self.attr
    }

    /// Row positions whose attribute equals `key`.
    pub fn probe(&self, key: &Value) -> &[usize] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Row positions with attribute in `[lo, hi]` (inclusive), in key order.
    pub fn range(&self, lo: &Value, hi: &Value) -> Vec<usize> {
        self.map
            .range(lo.clone()..=hi.clone())
            .flat_map(|(_, v)| v.iter().copied())
            .collect()
    }

    /// Iterate `(key, positions)` in key order — yields the table as sorted
    /// runs for merge-based operators.
    pub fn iter(&self) -> impl Iterator<Item = (&Value, &[usize])> {
        self.map.iter().map(|(k, v)| (k, v.as_slice()))
    }
}

/// Fetch records by positions (shared helper for index scans).
pub fn fetch<'a>(table: &'a Table, positions: &[usize]) -> Vec<&'a Record> {
    let rows: Vec<&Record> = table.rows().collect();
    positions.iter().map(|&i| rows[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::int_table;

    #[test]
    fn hash_index_probe() {
        let t = int_table("R", &["a", "b"], &[&[1, 10], &[2, 10], &[3, 20]]);
        let idx = HashIndex::build(&t, "b").unwrap();
        assert_eq!(idx.probe(&Value::Int(10)).len(), 2);
        assert_eq!(idx.probe(&Value::Int(99)).len(), 0);
        assert_eq!(idx.distinct_keys(), 2);
        assert_eq!(idx.attr(), "b");
    }

    #[test]
    fn ord_index_range() {
        let t = int_table("R", &["a"], &[&[5], &[1], &[3], &[9]]);
        let idx = OrdIndex::build(&t, "a").unwrap();
        let hits = idx.range(&Value::Int(2), &Value::Int(6));
        let vals: Vec<i64> = fetch(&t, &hits)
            .iter()
            .map(|r| r.get("a").unwrap().as_int().unwrap())
            .collect();
        assert_eq!(vals, vec![3, 5]);
    }

    #[test]
    fn ord_index_iter_is_sorted() {
        let t = int_table("R", &["a"], &[&[5], &[1], &[3]]);
        let idx = OrdIndex::build(&t, "a").unwrap();
        let keys: Vec<i64> = idx.iter().map(|(k, _)| k.as_int().unwrap()).collect();
        assert_eq!(keys, vec![1, 3, 5]);
    }

    #[test]
    fn build_fails_on_missing_attr() {
        let t = int_table("R", &["a"], &[&[1]]);
        assert!(HashIndex::build(&t, "zz").is_err());
        assert!(OrdIndex::build(&t, "zz").is_err());
    }
}
