//! Single-attribute secondary indexes over stored tables.
//!
//! Both index kinds map an attribute value to the row positions holding
//! it. [`OrdIndex`] is the persistent kind: the planner's `IndexScan` and
//! `IndexNLJoin` operators probe it, and [`crate::Catalog`] maintains one
//! per `create_index` call, rebuilding it on `register`/`replace`
//! write-through and committing it through the pager's header-last
//! catalog protocol (see [`encode_index`] / [`decode_index`]).
//!
//! # Probe semantics: candidate supersets
//!
//! The engine's predicate equality (`Value::sql_eq`) promotes `Int` to
//! `Float`, while the map keys here use [`Value`]'s *total order*
//! (`f64::total_cmp`, so `0.0` and `-0.0` are distinct keys and NaN is
//! self-equal). A probe therefore returns a **candidate superset**: every
//! key that could `sql_eq` (or `sql_cmp` into range of) the probe value
//! is looked up, and callers always re-apply the original predicate to
//! the fetched rows. Over-approximation costs a few extra re-checks;
//! under-approximation (a missed match) is impossible by construction.
//!
//! Rows that *lack* the indexed attribute are simply not indexed — the
//! same semantics a scan-side predicate gives an absent field (it can
//! never compare equal), so index paths and scan paths agree.

use std::collections::{BTreeMap, HashMap};

use tmql_model::{ModelError, Result, Value};

use crate::spill::{decode_value, encode_value};
use crate::table::Table;

/// Batch granularity for index builds (disk tables stream through the
/// buffer pool at this size).
const BUILD_BATCH: usize = 1024;

/// Every key that could `sql_eq` the probe value, in index-key (total
/// order) terms. `Null` equals nothing; `Int`/`Float` promote both ways;
/// every other kind is equal only to itself.
pub fn eq_keys(key: &Value) -> Vec<Value> {
    match key {
        Value::Null => Vec::new(),
        Value::Int(i) => {
            let mut ks = vec![Value::Int(*i), Value::Float(*i as f64)];
            if *i == 0 {
                // `Int(0).sql_eq(Float(-0.0))` holds, but -0.0 is its own
                // total-order key.
                ks.push(Value::Float(-0.0));
            }
            ks
        }
        Value::Float(f) => {
            let mut ks = vec![Value::Float(*f)];
            if *f == 0.0 {
                ks.push(Value::Int(0));
            } else if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 {
                ks.push(Value::Int(*f as i64));
            }
            ks
        }
        other => vec![other.clone()],
    }
}

fn index_rows(table: &Table, attr: &str, mut insert: impl FnMut(Value, usize)) -> Result<()> {
    let mut pos = 0usize;
    for batch in table.batches(BUILD_BATCH) {
        for row in batch? {
            // Rows without the attribute are not indexed (they can never
            // satisfy a predicate over it).
            if let Ok(v) = row.get(attr) {
                insert(v.clone(), pos);
            }
            pos += 1;
        }
    }
    Ok(())
}

/// Hash index: attribute value → row positions. Transient (never
/// persisted); equality probes only.
#[derive(Debug, Clone)]
pub struct HashIndex {
    attr: String,
    map: HashMap<Value, Vec<usize>>,
}

impl HashIndex {
    /// Build over `table.attr`, skipping rows that lack the attribute.
    pub fn build(table: &Table, attr: &str) -> Result<HashIndex> {
        let mut map: HashMap<Value, Vec<usize>> = HashMap::new();
        index_rows(table, attr, |v, pos| map.entry(v).or_default().push(pos))?;
        Ok(HashIndex {
            attr: attr.to_string(),
            map,
        })
    }

    /// The indexed attribute.
    pub fn attr(&self) -> &str {
        &self.attr
    }

    /// Row positions whose attribute is *key-identical* to `key`.
    pub fn probe(&self, key: &Value) -> &[usize] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Candidate row positions for `attr sql_eq key`, ascending. A
    /// superset: the caller re-checks the predicate on the fetched rows.
    pub fn probe_eq(&self, key: &Value) -> Vec<usize> {
        let mut out = Vec::new();
        for k in eq_keys(key) {
            out.extend_from_slice(self.probe(&k));
        }
        out.sort_unstable();
        out
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

/// Ordered index: attribute value → row positions in the attribute's
/// total order, supporting equality and range probes. This is the kind
/// the catalog persists and the planner's index paths probe.
#[derive(Debug, Clone, PartialEq)]
pub struct OrdIndex {
    attr: String,
    map: BTreeMap<Value, Vec<usize>>,
}

impl OrdIndex {
    /// Build over `table.attr`, skipping rows that lack the attribute.
    pub fn build(table: &Table, attr: &str) -> Result<OrdIndex> {
        let mut map: BTreeMap<Value, Vec<usize>> = BTreeMap::new();
        index_rows(table, attr, |v, pos| map.entry(v).or_default().push(pos))?;
        Ok(OrdIndex {
            attr: attr.to_string(),
            map,
        })
    }

    /// Reassemble from decoded `(key, positions)` entries.
    pub fn from_entries(
        attr: impl Into<String>,
        entries: impl IntoIterator<Item = (Value, Vec<usize>)>,
    ) -> OrdIndex {
        OrdIndex {
            attr: attr.into(),
            map: entries.into_iter().collect(),
        }
    }

    /// The indexed attribute.
    pub fn attr(&self) -> &str {
        &self.attr
    }

    /// Row positions whose attribute is *key-identical* to `key`.
    pub fn probe(&self, key: &Value) -> &[usize] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Candidate row positions for `attr sql_eq key`, ascending. A
    /// superset: the caller re-checks the predicate on the fetched rows.
    pub fn probe_eq(&self, key: &Value) -> Vec<usize> {
        let mut out = Vec::new();
        for k in eq_keys(key) {
            out.extend_from_slice(self.probe(&k));
        }
        out.sort_unstable();
        out
    }

    /// Candidate row positions for `lo ≤ attr ≤ hi` under `sql_cmp`
    /// (either bound may be absent), ascending. Numeric bounds probe the
    /// `Int` and `Float` key bands; anything else falls back to every
    /// position. Always a superset — the caller re-checks the predicate.
    pub fn probe_range(&self, lo: Option<&Value>, hi: Option<&Value>) -> Vec<usize> {
        let numeric = |v: &Value| matches!(v, Value::Int(_) | Value::Float(_));
        if lo.is_some_and(|v| !numeric(v)) || hi.is_some_and(|v| !numeric(v)) {
            return self.all_positions();
        }
        // Int-band bounds are exact for `Int` probe values (int/int
        // comparison never promotes); `Float` bounds get slack for the
        // `j as f64` rounding the predicate's promotion performs. The
        // float band tracks the promoted bound verbatim — `sql_cmp` uses
        // the same `i as f64` promotion and the same total order.
        let ib_lo = |v: &Value| match v {
            Value::Int(i) => *i,
            Value::Float(f) => int_lo(*f),
            _ => unreachable!("bounds checked numeric"),
        };
        let ib_hi = |v: &Value| match v {
            Value::Int(i) => *i,
            Value::Float(f) => int_hi(*f),
            _ => unreachable!("bounds checked numeric"),
        };
        let fb = |v: &Value| match v {
            Value::Int(i) => *i as f64,
            Value::Float(f) => *f,
            _ => unreachable!("bounds checked numeric"),
        };
        let mut out = Vec::new();
        match (lo, hi) {
            (None, None) => return self.all_positions(),
            (Some(l), None) => {
                // Ints ≥ lo, every float, and all higher-ranked kinds
                // (which `sql_cmp` orders above any numeric bound).
                self.collect_range(Some(Value::Int(ib_lo(l))), None, &mut out);
            }
            (None, Some(h)) => {
                // Bools sort below the int band and satisfy any numeric
                // upper bound (rank comparison); nulls ride along
                // harmlessly. Then ints and floats up to the bound;
                // higher ranks never satisfy it.
                self.collect_range(None, Some(Value::Int(ib_hi(h))), &mut out);
                self.collect_range(
                    Some(Value::Float(bottom_float())),
                    Some(Value::Float(fb(h))),
                    &mut out,
                );
            }
            (Some(l), Some(h)) => {
                let (il, ih) = (ib_lo(l), ib_hi(h));
                if il <= ih {
                    self.collect_range(Some(Value::Int(il)), Some(Value::Int(ih)), &mut out);
                }
                let (lf, hf) = (fb(l), fb(h));
                if lf.total_cmp(&hf) != std::cmp::Ordering::Greater {
                    self.collect_range(Some(Value::Float(lf)), Some(Value::Float(hf)), &mut out);
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn collect_range(&self, lo: Option<Value>, hi: Option<Value>, out: &mut Vec<usize>) {
        use std::ops::Bound;
        let lo = lo.map_or(Bound::Unbounded, Bound::Included);
        let hi = hi.map_or(Bound::Unbounded, Bound::Included);
        for (_, ps) in self.map.range((lo, hi)) {
            out.extend_from_slice(ps);
        }
    }

    fn all_positions(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self.map.values().flatten().copied().collect();
        out.sort_unstable();
        out
    }

    /// Row positions with attribute in `[lo, hi]` in the keys' total
    /// order, in key order (merge-operator input; not a predicate probe —
    /// see [`OrdIndex::probe_range`] for those).
    pub fn range(&self, lo: &Value, hi: &Value) -> Vec<usize> {
        self.map
            .range(lo.clone()..=hi.clone())
            .flat_map(|(_, v)| v.iter().copied())
            .collect()
    }

    /// Iterate `(key, positions)` in key order — yields the table as sorted
    /// runs for merge-based operators, and feeds the persisted encoding.
    pub fn iter(&self) -> impl Iterator<Item = (&Value, &[usize])> {
        self.map.iter().map(|(k, v)| (k, v.as_slice()))
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Total indexed positions across all keys.
    pub fn len(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    /// True iff no rows are indexed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Persisted encoding (stored as a page chain; committed with the catalog)
// ---------------------------------------------------------------------------

fn w_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn w_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serialize an [`OrdIndex`]'s entries (keys reuse the spill value codec,
/// so NaN floats and complex keys round-trip bit-exactly).
pub fn encode_index(idx: &OrdIndex) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    w_u32(&mut out, idx.map.len() as u32);
    for (k, ps) in idx.iter() {
        let mut key = Vec::new();
        encode_value(&mut key, k);
        w_u32(&mut out, key.len() as u32);
        out.extend_from_slice(&key);
        w_u32(&mut out, ps.len() as u32);
        for &p in ps {
            w_u64(&mut out, p as u64);
        }
    }
    out
}

struct IndexCursor<'a> {
    blob: &'a [u8],
    pos: usize,
}

impl<'a> IndexCursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|e| *e <= self.blob.len())
            .ok_or_else(|| ModelError::Io("index decode: truncated blob".into()))?;
        let s = &self.blob[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
}

/// Decode a persisted index blob (the inverse of [`encode_index`]).
/// Malformed bytes are [`ModelError::Io`], never a panic.
pub fn decode_index(attr: &str, blob: &[u8]) -> Result<OrdIndex> {
    let err = |what: &str| ModelError::Io(format!("index decode ({attr}): {what}"));
    let mut c = IndexCursor { blob, pos: 0 };
    let n_entries = c.u32()? as usize;
    let mut entries = Vec::with_capacity(n_entries.min(4096));
    for _ in 0..n_entries {
        let key_len = c.u32()? as usize;
        let key_bytes = c.take(key_len)?;
        let (key, used) = decode_value(key_bytes)?;
        if used != key_len {
            return Err(err("trailing key bytes"));
        }
        let n_pos = c.u32()? as usize;
        let mut ps = Vec::with_capacity(n_pos.min(1 << 20));
        for _ in 0..n_pos {
            ps.push(c.u64()? as usize);
        }
        entries.push((key, ps));
    }
    if c.pos != blob.len() {
        return Err(err("trailing bytes"));
    }
    Ok(OrdIndex::from_entries(attr, entries))
}

// Widened int-band bounds for range probes: `j as f64` rounds for huge
// magnitudes, so slacken by more than half an ulp to keep the band a
// superset of every int the predicate could admit.

/// The minimum `f64` under `total_cmp` (a negative NaN with full payload).
fn bottom_float() -> f64 {
    f64::from_bits(0xFFFF_FFFF_FFFF_FFFF)
}

/// Ints near a float bound of at most this magnitude promote to `f64`
/// exactly, so the band edge can be tight; past it, `j as f64` rounds and
/// the edge needs slack to stay a superset.
const EXACT_PROMOTION: f64 = 9.0e15; // < 2^53

fn saturate(g: f64) -> i64 {
    if g <= i64::MIN as f64 {
        i64::MIN
    } else if g >= i64::MAX as f64 {
        i64::MAX
    } else {
        g as i64
    }
}

/// Smallest int the band must include for `attr ≥ b`.
fn int_lo(b: f64) -> i64 {
    if b.is_nan() {
        return i64::MIN;
    }
    if b.abs() <= EXACT_PROMOTION {
        return saturate(b.ceil());
    }
    saturate((b - (b.abs() * 1e-15 + 1.0)).floor())
}

/// Largest int the band must include for `attr ≤ b`.
fn int_hi(b: f64) -> i64 {
    if b.is_nan() {
        return i64::MAX;
    }
    if b.abs() <= EXACT_PROMOTION {
        return saturate(b.floor());
    }
    saturate((b + (b.abs() * 1e-15 + 1.0)).ceil())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::int_table;
    use tmql_model::Record;

    #[test]
    fn hash_index_probe() {
        let t = int_table("R", &["a", "b"], &[&[1, 10], &[2, 10], &[3, 20]]);
        let idx = HashIndex::build(&t, "b").unwrap();
        assert_eq!(idx.probe(&Value::Int(10)).len(), 2);
        assert_eq!(idx.probe(&Value::Int(99)).len(), 0);
        assert_eq!(idx.probe_eq(&Value::Float(10.0)), vec![0, 1]);
        assert_eq!(idx.distinct_keys(), 2);
        assert_eq!(idx.attr(), "b");
    }

    #[test]
    fn ord_index_range() {
        let t = int_table("R", &["a"], &[&[5], &[1], &[3], &[9]]);
        let idx = OrdIndex::build(&t, "a").unwrap();
        let hits = idx.range(&Value::Int(2), &Value::Int(6));
        let rows = t.rows_vec().unwrap();
        let vals: Vec<i64> = hits
            .iter()
            .map(|&i| rows[i].get("a").unwrap().as_int().unwrap())
            .collect();
        assert_eq!(vals, vec![3, 5]);
        assert_eq!(
            t.fetch_rows(&[1, 2]).unwrap(),
            t.batch(1, 2).unwrap(),
            "ascending position fetch groups runs"
        );
        assert_eq!(
            idx.probe_range(Some(&Value::Int(2)), Some(&Value::Int(6))),
            vec![0, 2]
        );
        assert_eq!(idx.probe_range(Some(&Value::Float(4.5)), None), vec![0, 3]);
        assert_eq!(idx.probe_range(None, Some(&Value::Int(1))), vec![1]);
        assert_eq!(idx.probe_range(None, None), vec![0, 1, 2, 3]);
    }

    #[test]
    fn ord_index_iter_is_sorted() {
        let t = int_table("R", &["a"], &[&[5], &[1], &[3]]);
        let idx = OrdIndex::build(&t, "a").unwrap();
        let keys: Vec<i64> = idx.iter().map(|(k, _)| k.as_int().unwrap()).collect();
        assert_eq!(keys, vec![1, 3, 5]);
    }

    #[test]
    fn missing_attrs_are_simply_not_indexed() {
        // Rows lacking the attribute are skipped, mirroring scan-side
        // predicate semantics — not an error, not a panic.
        let t = int_table("R", &["a"], &[&[1], &[2]]);
        let h = HashIndex::build(&t, "zz").unwrap();
        assert_eq!(h.distinct_keys(), 0);
        let o = OrdIndex::build(&t, "zz").unwrap();
        assert!(o.is_empty());
        assert_eq!(o.probe_eq(&Value::Int(1)), Vec::<usize>::new());
    }

    #[test]
    fn probe_eq_promotes_across_int_and_float_keys() {
        let mut t = crate::table::Table::new("M", vec![("x".into(), tmql_model::Ty::Any)]);
        let vals = [
            Value::Int(1),
            Value::Float(1.0),
            Value::Int(0),
            Value::Float(0.0),
            Value::Float(-0.0),
            Value::Float(f64::NAN),
            Value::Null,
        ];
        for v in &vals {
            t.insert(Record::new([("x".to_string(), v.clone())]).unwrap())
                .unwrap();
        }
        let idx = OrdIndex::build(&t, "x").unwrap();
        // sql_eq promotion: Int(1) matches Float(1.0) and vice versa.
        assert_eq!(idx.probe_eq(&Value::Int(1)), vec![0, 1]);
        assert_eq!(idx.probe_eq(&Value::Float(1.0)), vec![0, 1]);
        // Zero: Int(0) sql_eq's both float zeros; the superset carries all
        // candidates and the caller's re-check settles it.
        assert_eq!(idx.probe_eq(&Value::Int(0)), vec![2, 3, 4]);
        assert!(idx.probe_eq(&Value::Float(0.0)).contains(&3));
        // NaN is a self-equal key under the total order.
        assert_eq!(idx.probe_eq(&Value::Float(f64::NAN)), vec![5]);
        // Null sql_eq's nothing.
        assert_eq!(idx.probe_eq(&Value::Null), Vec::<usize>::new());
    }

    #[test]
    fn encode_decode_round_trips() {
        let t = int_table("R", &["a", "b"], &[&[1, 10], &[2, 10], &[3, 20]]);
        let idx = OrdIndex::build(&t, "b").unwrap();
        let blob = encode_index(&idx);
        let back = decode_index("b", &blob).unwrap();
        assert_eq!(back, idx);
        assert_eq!(back.len(), 3);
        // Malformed bytes error, never panic.
        assert!(decode_index("b", &blob[..blob.len() - 1]).is_err());
        let mut trailing = blob.clone();
        trailing.push(0);
        assert!(decode_index("b", &trailing).is_err());
        assert!(decode_index("b", &[7]).is_err());
    }
}
