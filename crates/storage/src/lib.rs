#![warn(missing_docs)]

//! # tmql-storage — stored class extensions, in memory and on disk
//!
//! The paper assumes class extensions (`EMP`, `DEPT`, or the relational
//! `R`, `S` of Section 2) are stored tables: "set-valued attributes are
//! stored with the objects themselves (as materialized joins), at least
//! conceptually" (Section 3.2). This crate provides:
//!
//! * [`Table`] — a typed, duplicate-free (set semantics) collection of
//!   [`tmql_model::Record`]s, either in memory or disk-backed through the
//!   pager's buffer pool (scans are batch cursors in both cases);
//! * [`Catalog`] — maps extension names to tables, carries the
//!   [`tmql_model::Schema`]; [`Catalog::open`] makes it **persistent**:
//!   register/replace write rows into pages and commit a durable catalog
//!   image, so a database outlives the process;
//! * [`pager`] — the disk tier: slotted pages, the fixed-capacity
//!   [`pager::BufferPool`] (clock eviction, pin counts, dirty
//!   write-back), table extents, and the persisted catalog image;
//! * [`stats::TableStats`] — cardinality, distinct counts, min/max,
//!   equi-width histograms, null/empty-set fractions, and set-valued
//!   fan-out per column, accumulated incrementally on registration
//!   (switching to reservoir sampling past
//!   [`stats::STATS_SAMPLE_THRESHOLD`] rows) and consumed by the
//!   cost-based optimizer and physical planner;
//! * [`index`] — hash and ordered indexes over one attribute.
//!   [`Catalog::create_index`] builds an [`OrdIndex`], persists it
//!   through the pager, and rebuilds it on register/replace
//!   write-through; the executor's `IndexScan`/`IndexNLJoin` operators
//!   probe it instead of scanning when the planner's crossover favors
//!   probes;
//! * [`wal`] — the write-ahead log: page-image + commit redo records
//!   fsynced before any write-back, replayed on open, truncated at
//!   checkpoints. [`Catalog::begin`]/[`Catalog::commit`]/
//!   [`Catalog::rollback`] make register/replace/create_index atomic
//!   multi-statement units on top of it;
//! * [`failpoint`] — the crash-injection seam over the pager's I/O,
//!   driving the differential crash-recovery test harness;
//! * [`spill`] — on-disk record runs ([`SpillDir`], [`RunWriter`],
//!   [`SpillFile`], [`RunReader`]) with a length-prefixed binary codec, the
//!   substrate of the executor's larger-than-memory (grace-hash /
//!   partitioned) mode — and of the pager's page payloads, which reuse
//!   the same Record/Value codec.

pub mod catalog;
pub mod failpoint;
pub mod index;
pub mod pager;
pub mod spill;
pub mod stats;
pub mod table;
pub mod wal;

pub use catalog::Catalog;
pub use failpoint::{FailMode, IoFailpoint, IoOp};
pub use index::{HashIndex, OrdIndex};
pub use pager::IndexImage;
pub use pager::{BufferPool, PagedStore, PoolStats, TableExtent, DEFAULT_POOL_PAGES};
pub use spill::{RunReader, RunWriter, SpillDir, SpillFile};
pub use stats::{ColumnStats, Histogram, StatsBuilder, TableStats};
pub use table::Table;
pub use wal::{RecoveryReport, Wal, WalActivity};

pub use tmql_model::{ModelError, Result};
