#![warn(missing_docs)]

//! # tmql-storage — in-memory storage for class extensions
//!
//! The paper assumes class extensions (`EMP`, `DEPT`, or the relational
//! `R`, `S` of Section 2) are stored tables: "set-valued attributes are
//! stored with the objects themselves (as materialized joins), at least
//! conceptually" (Section 3.2). This crate provides:
//!
//! * [`Table`] — a typed, duplicate-free (set semantics) collection of
//!   [`tmql_model::Record`]s;
//! * [`Catalog`] — maps extension names to tables, carries the
//!   [`tmql_model::Schema`];
//! * [`stats::TableStats`] — cardinality, distinct counts, min/max,
//!   equi-width histograms, null/empty-set fractions, and set-valued
//!   fan-out per column, accumulated incrementally on registration and
//!   consumed by the cost-based optimizer and physical planner;
//! * [`index`] — hash and ordered indexes over one attribute. The executor
//!   builds equivalent transient structures inside its hash/merge joins;
//!   these persistent variants back index-based access paths and give
//!   tests a reference implementation of key lookup;
//! * [`spill`] — on-disk record runs ([`SpillDir`], [`RunWriter`],
//!   [`SpillFile`], [`RunReader`]) with a length-prefixed binary codec, the
//!   substrate of the executor's larger-than-memory (grace-hash /
//!   partitioned) mode.

pub mod catalog;
pub mod index;
pub mod spill;
pub mod stats;
pub mod table;

pub use catalog::Catalog;
pub use index::{HashIndex, OrdIndex};
pub use spill::{RunReader, RunWriter, SpillDir, SpillFile};
pub use stats::{ColumnStats, Histogram, StatsBuilder, TableStats};
pub use table::Table;

pub use tmql_model::{ModelError, Result};
