//! The catalog: schema + named extensions (tables).

use std::collections::BTreeMap;

use tmql_model::{ModelError, Result, Schema, Ty};

use crate::stats::TableStats;
use crate::table::Table;

/// Maps extension names (`EMP`, `DEPT`, `R`, `S`, ...) to stored tables and
/// carries the TM schema for type resolution.
#[derive(Debug, Default)]
pub struct Catalog {
    schema: Schema,
    tables: BTreeMap<String, Table>,
    stats: BTreeMap<String, TableStats>,
}

impl Catalog {
    /// An empty catalog with an empty schema.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Build a catalog around an existing schema.
    pub fn with_schema(schema: Schema) -> Catalog {
        Catalog { schema, ..Catalog::default() }
    }

    /// The TM schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Mutable access to the schema (for registering classes/sorts).
    pub fn schema_mut(&mut self) -> &mut Schema {
        &mut self.schema
    }

    /// Register a table under its own name. Statistics are computed eagerly
    /// (tables are immutable once registered — the paper's queries are
    /// read-only).
    pub fn register(&mut self, table: Table) -> Result<()> {
        let name = table.name().to_string();
        if self.tables.contains_key(&name) {
            return Err(ModelError::SchemaError(format!("table `{name}` already registered")));
        }
        self.stats.insert(name.clone(), TableStats::compute(&table));
        self.tables.insert(name, table);
        Ok(())
    }

    /// Replace a table (e.g. between benchmark iterations), refreshing stats.
    pub fn replace(&mut self, table: Table) {
        let name = table.name().to_string();
        self.stats.insert(name.clone(), TableStats::compute(&table));
        self.tables.insert(name, table);
    }

    /// Look up a table by extension name.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| ModelError::SchemaError(format!("unknown table `{name}`")))
    }

    /// Look up precomputed statistics for a table.
    pub fn stats(&self, name: &str) -> Option<&TableStats> {
        self.stats.get(name)
    }

    /// The row type of a stored table, falling back to the schema's class
    /// declaration when the table is registered via a class extension.
    pub fn row_ty(&self, name: &str) -> Result<Ty> {
        if let Ok(t) = self.table(name) {
            return Ok(t.row_ty());
        }
        match self.schema.extension_ty(name)? {
            Ty::Set(inner) => Ok(*inner),
            other => Ok(other),
        }
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::int_table;

    #[test]
    fn register_and_lookup() {
        let mut cat = Catalog::new();
        cat.register(int_table("R", &["a", "b"], &[&[1, 2]])).unwrap();
        assert_eq!(cat.table("R").unwrap().len(), 1);
        assert!(cat.table("S").is_err());
        assert!(cat.register(int_table("R", &["a"], &[])).is_err());
    }

    #[test]
    fn stats_computed_on_register() {
        let mut cat = Catalog::new();
        cat.register(int_table("R", &["a"], &[&[1], &[2], &[2]])).unwrap();
        let st = cat.stats("R").unwrap();
        assert_eq!(st.cardinality, 2); // set semantics deduped the 2
    }

    #[test]
    fn replace_refreshes_stats() {
        let mut cat = Catalog::new();
        cat.register(int_table("R", &["a"], &[&[1]])).unwrap();
        cat.replace(int_table("R", &["a"], &[&[1], &[2], &[3]]));
        assert_eq!(cat.stats("R").unwrap().cardinality, 3);
    }

    #[test]
    fn row_ty_from_table() {
        let mut cat = Catalog::new();
        cat.register(int_table("R", &["a", "b"], &[])).unwrap();
        let ty = cat.row_ty("R").unwrap();
        assert_eq!(ty, Ty::Tuple(vec![("a".into(), Ty::Int), ("b".into(), Ty::Int)]));
    }

    #[test]
    fn row_ty_from_schema_when_unregistered() {
        use tmql_model::schema::paper_schema;
        let cat = Catalog::with_schema(paper_schema());
        let ty = cat.row_ty("EMP").unwrap();
        assert!(matches!(ty, Ty::Tuple(_)));
        assert!(cat.row_ty("NOPE").is_err());
    }
}
