//! The catalog: schema + named extensions (tables), in memory or durable.
//!
//! A catalog is either **transient** (the default — tables live in
//! memory, exactly the pre-pager behavior) or **persistent**
//! ([`Catalog::open`]): backed by a [`crate::pager::PagedStore`], where
//! [`Catalog::register`] / [`Catalog::replace`] write the rows into
//! slotted pages and commit a new [catalog image](crate::pager::CatalogImage)
//! — schema, column types, extents, and statistics — so
//! `register → drop → open` round-trips the whole database. Reads stream
//! through the store's buffer pool; the catalog itself keeps only
//! descriptors.
//!
//! # Transactions
//!
//! Every mutating statement (`register`, `replace`, `create_index`,
//! `drop_index`) is transactional. Outside an explicit transaction each
//! statement **auto-commits**: it is its own durability point, exactly
//! the pre-WAL behavior. [`Catalog::begin`] opens a multi-statement
//! transaction: statements mutate the in-memory view and write pages,
//! but nothing commits until [`Catalog::commit`] logs the lot to the
//! write-ahead log as one atomic unit; [`Catalog::rollback`] restores
//! the catalog (schema, tables, stats, indexes) and the store's
//! allocation state to the begin snapshot. A statement that *fails*
//! inside an open transaction aborts the whole transaction — partial
//! transactions are never left half-applied.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use tmql_model::{ModelError, Record, Result, Schema, Ty};

use crate::index::{decode_index, encode_index, OrdIndex};
use crate::pager::{CatalogImage, IndexImage, PageId, PagedStore, PoolStats, TableImage};
use crate::stats::TableStats;
use crate::table::Table;
use crate::wal::{RecoveryReport, WalActivity};
use tmql_obs::MetricsRegistry;

/// One maintained secondary index: the in-memory structure plus (when the
/// catalog is persistent) the page chain holding its encoded entries.
#[derive(Debug, Clone)]
struct IndexEntry {
    ord: OrdIndex,
    chain: Option<(PageId, u64)>,
}

/// The begin-of-transaction snapshot [`Catalog::rollback`] restores,
/// plus the pages statements inside the transaction have freed (handed
/// to the store only at commit).
#[derive(Debug)]
struct TxnState {
    schema: Schema,
    tables: BTreeMap<String, Table>,
    stats: BTreeMap<String, TableStats>,
    indexes: BTreeMap<(String, String), IndexEntry>,
    freed: Vec<PageId>,
}

/// Maps extension names (`EMP`, `DEPT`, `R`, `S`, ...) to stored tables and
/// carries the TM schema for type resolution. See the module docs for the
/// transient/persistent split.
#[derive(Debug, Default)]
pub struct Catalog {
    schema: Schema,
    tables: BTreeMap<String, Table>,
    stats: BTreeMap<String, TableStats>,
    indexes: BTreeMap<(String, String), IndexEntry>,
    store: Option<Arc<PagedStore>>,
    txn: Option<TxnState>,
}

impl Catalog {
    /// An empty transient catalog with an empty schema.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Build a transient catalog around an existing schema.
    pub fn with_schema(schema: Schema) -> Catalog {
        Catalog {
            schema,
            ..Catalog::default()
        }
    }

    /// Open (or create) a persistent catalog at `path` with a buffer pool
    /// of `pool_pages` frames. An existing database loads its persisted
    /// schema, table descriptors, and statistics; rows stay on disk until
    /// scanned.
    pub fn open(path: impl AsRef<Path>, pool_pages: usize) -> Result<Catalog> {
        let path = path.as_ref();
        // An empty file is a fresh database too: a crash during creation
        // (before the header's first byte) leaves exactly that behind.
        let fresh = match std::fs::metadata(path) {
            Ok(m) => m.len() == 0,
            Err(_) => true,
        };
        if fresh {
            let store = PagedStore::create(path, pool_pages)?;
            return Ok(Catalog {
                store: Some(store),
                ..Catalog::default()
            });
        }
        let (store, image) = PagedStore::open(path, pool_pages)?;
        let mut tables = BTreeMap::new();
        let mut stats = BTreeMap::new();
        for t in image.tables {
            let table = Table::disk(t.name.clone(), t.columns, store.clone(), Arc::new(t.extent));
            stats.insert(t.name.clone(), t.stats);
            tables.insert(t.name, table);
        }
        // Indexes load eagerly: they are small relative to their tables,
        // and a corrupted chain must surface here as an I/O error rather
        // than mid-query.
        let mut indexes = BTreeMap::new();
        for ix in image.indexes {
            if !tables.contains_key(&ix.table) {
                return Err(ModelError::Io(format!(
                    "catalog names an index over unknown table `{}`",
                    ix.table
                )));
            }
            let blob = store.read_blob(ix.first, ix.len)?;
            let ord = decode_index(&ix.attr, &blob)?;
            indexes.insert(
                (ix.table, ix.attr),
                IndexEntry {
                    ord,
                    chain: Some((ix.first, ix.len)),
                },
            );
        }
        Ok(Catalog {
            schema: image.schema,
            tables,
            stats,
            indexes,
            store: Some(store),
            txn: None,
        })
    }

    // -- transactions --------------------------------------------------------

    /// Open a multi-statement transaction. Statements issued until the
    /// matching [`Catalog::commit`] become one atomic, durable unit;
    /// [`Catalog::rollback`] (or a failing statement, or dropping the
    /// catalog) discards all of them. Nested transactions are not
    /// supported.
    pub fn begin(&mut self) -> Result<()> {
        if self.txn.is_some() {
            return Err(ModelError::SchemaError(
                "transaction already open (nested transactions are not supported)".into(),
            ));
        }
        if let Some(store) = &self.store {
            store.begin_txn();
        }
        self.txn = Some(TxnState {
            schema: self.schema.clone(),
            tables: self.tables.clone(),
            stats: self.stats.clone(),
            indexes: self.indexes.clone(),
            freed: Vec::new(),
        });
        Ok(())
    }

    /// Commit the open transaction: one catalog image, one WAL commit
    /// record, one fsync — every statement since [`Catalog::begin`]
    /// becomes durable together. On failure the transaction is rolled
    /// back (the catalog never serves state that would vanish on
    /// reopen) and the error is returned.
    pub fn commit(&mut self) -> Result<()> {
        let Some(txn) = self.txn.take() else {
            return Err(ModelError::SchemaError(
                "no open transaction to commit".into(),
            ));
        };
        if let Err(e) = self.sync_freeing(txn.freed.clone()) {
            self.restore(txn);
            if let Some(store) = &self.store {
                store.rollback_txn();
            }
            return Err(e);
        }
        Ok(())
    }

    /// Abandon the open transaction: restore the catalog to its begin
    /// snapshot and reclaim every page the transaction wrote.
    pub fn rollback(&mut self) -> Result<()> {
        let Some(txn) = self.txn.take() else {
            return Err(ModelError::SchemaError(
                "no open transaction to roll back".into(),
            ));
        };
        self.restore(txn);
        if let Some(store) = &self.store {
            store.rollback_txn();
        }
        Ok(())
    }

    /// Whether a [`Catalog::begin`] transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    fn restore(&mut self, txn: TxnState) {
        self.schema = txn.schema;
        self.tables = txn.tables;
        self.stats = txn.stats;
        self.indexes = txn.indexes;
    }

    /// Run one mutating statement with transactional bracketing: outside
    /// a transaction the statement is its own transaction (auto-commit,
    /// with the store's allocations reclaimed on failure); inside one, a
    /// failure aborts the whole transaction before returning the error.
    fn statement<R>(&mut self, f: impl FnOnce(&mut Catalog) -> Result<R>) -> Result<R> {
        let auto = self.txn.is_none();
        if auto {
            if let Some(store) = &self.store {
                store.begin_txn();
            }
        }
        match f(self) {
            Ok(r) => {
                if auto {
                    if let Some(store) = &self.store {
                        // A statement that committed already cleared the
                        // store's snapshot (this is a no-op then); one
                        // that ended up writing nothing (e.g. dropping a
                        // nonexistent index) discards it here.
                        store.rollback_txn();
                    }
                }
                Ok(r)
            }
            Err(e) => {
                if auto {
                    if let Some(store) = &self.store {
                        store.rollback_txn();
                    }
                } else {
                    // A failed statement aborts the enclosing transaction:
                    // the alternative would leave the transaction
                    // half-applied with no way to complete it.
                    let _ = self.rollback();
                }
                Err(e)
            }
        }
    }

    /// Force a checkpoint: flush pages, rewrite the header, truncate the
    /// WAL (see the pager's durability rules). No-op for transient
    /// catalogs; an error while a transaction is open.
    pub fn wal_checkpoint(&self) -> Result<()> {
        if self.txn.is_some() {
            return Err(ModelError::SchemaError(
                "cannot checkpoint while a transaction is open".into(),
            ));
        }
        match &self.store {
            Some(store) => store.checkpoint(),
            None => Ok(()),
        }
    }

    /// Override the WAL-size checkpoint threshold (no-op for transient
    /// catalogs); see [`crate::pager::DEFAULT_WAL_CHECKPOINT_BYTES`].
    pub fn set_wal_checkpoint_bytes(&self, bytes: u64) {
        if let Some(store) = &self.store {
            store.set_checkpoint_bytes(bytes);
        }
    }

    /// What crash recovery found when this catalog was opened (`None`
    /// for transient catalogs).
    pub fn recovery(&self) -> Option<RecoveryReport> {
        self.store.as_ref().map(|s| s.recovery())
    }

    /// True iff this catalog writes through to a paged store.
    pub fn is_persistent(&self) -> bool {
        self.store.is_some()
    }

    /// The persistent store's cumulative buffer-pool counters (`None` for
    /// transient catalogs). The executor diffs snapshots of these into
    /// per-query hit/miss metrics.
    pub fn pool_stats(&self) -> Option<PoolStats> {
        self.store.as_ref().map(|s| s.pool_stats())
    }

    /// Buffer-pool residency of a disk-backed table: `(resident pages,
    /// total pages)`. `None` for transient catalogs and in-memory tables —
    /// the cost model charges page I/O only where pages exist.
    pub fn page_residency(&self, name: &str) -> Option<(usize, usize)> {
        let table = self.tables.get(name)?;
        let (store, extent) = table.disk_parts()?;
        Some((store.resident_pages(extent), extent.page_count()))
    }

    /// Snapshot of the persistent store's WAL activity (`None` for
    /// transient catalogs) — sizes, append/fsync/checkpoint counts; the
    /// input for shell `\stats` and the `tmql_wal_*` metrics series.
    pub fn wal_activity(&self) -> Option<WalActivity> {
        self.store.as_ref().map(|s| s.wal_activity())
    }

    /// `(reusable free pages, checkpoint-quarantined freed pages)` of
    /// the persistent store (`None` for transient catalogs).
    pub fn free_list_len(&self) -> Option<(usize, usize)> {
        self.store.as_ref().map(|s| s.free_list_len())
    }

    /// Register this catalog's storage series into an engine-wide
    /// metrics registry: buffer-pool traffic (`tmql_pool_*`), WAL
    /// activity (`tmql_wal_*`), and allocator free-list gauges. All
    /// series are *polled* — sampled from the store's own atomics at
    /// render time — so nothing is double-counted and the hot paths gain
    /// no new work. A transient (in-memory) catalog registers nothing.
    pub fn register_metrics(&self, reg: &MetricsRegistry) {
        let Some(store) = &self.store else { return };
        let s = store.clone();
        reg.counter_fn(
            "tmql_pool_hits_total",
            "Buffer-pool page requests served from memory",
            {
                let s = s.clone();
                move || s.pool_stats().hits
            },
        );
        reg.counter_fn(
            "tmql_pool_misses_total",
            "Buffer-pool page faults (disk reads)",
            {
                let s = s.clone();
                move || s.pool_stats().misses
            },
        );
        reg.counter_fn("tmql_pool_evictions_total", "Buffer-pool frames evicted", {
            let s = s.clone();
            move || s.pool_stats().evictions
        });
        reg.counter_fn(
            "tmql_pool_writebacks_total",
            "Dirty pages written back by the pool",
            {
                let s = s.clone();
                move || s.pool_stats().writebacks
            },
        );
        reg.gauge_fn("tmql_pool_pages", "Buffer-pool capacity in pages", {
            let s = s.clone();
            move || s.pool_pages() as u64
        });
        reg.gauge_fn("tmql_wal_size_bytes", "Current write-ahead-log size", {
            let s = s.clone();
            move || s.wal_activity().size_bytes
        });
        reg.counter_fn("tmql_wal_appends_total", "WAL records appended", {
            let s = s.clone();
            move || s.wal_activity().appends_total
        });
        reg.counter_fn("tmql_wal_commits_total", "WAL commit records appended", {
            let s = s.clone();
            move || s.wal_activity().commits_total
        });
        reg.counter_fn("tmql_wal_fsyncs_total", "WAL fsyncs (durability points)", {
            let s = s.clone();
            move || s.wal_activity().syncs_total
        });
        reg.counter_fn(
            "tmql_wal_bytes_written_total",
            "Bytes appended to the WAL",
            {
                let s = s.clone();
                move || s.wal_activity().bytes_appended_total
            },
        );
        reg.counter_fn("tmql_wal_checkpoints_total", "Checkpoints taken", {
            let s = s.clone();
            move || s.wal_activity().checkpoints_total
        });
        reg.gauge_fn(
            "tmql_free_list_pages",
            "Reusable free pages in the allocator",
            {
                let s = s.clone();
                move || s.free_list_len().0 as u64
            },
        );
        reg.gauge_fn(
            "tmql_pending_free_pages",
            "Freed pages quarantined until the next checkpoint",
            move || s.free_list_len().1 as u64,
        );
    }

    /// The TM schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Mutable access to the schema (for registering classes/sorts). On a
    /// persistent catalog the change is committed with the next
    /// [`Catalog::register`] / [`Catalog::replace`] (or an explicit
    /// [`Catalog::sync`]).
    pub fn schema_mut(&mut self) -> &mut Schema {
        &mut self.schema
    }

    /// Register a table under its own name. Statistics are computed eagerly
    /// (tables are immutable once registered — the paper's queries are
    /// read-only); on a persistent catalog the rows are written through
    /// the buffer pool and the catalog image is committed durably —
    /// immediately when no transaction is open (auto-commit), at the
    /// enclosing [`Catalog::commit`] otherwise.
    pub fn register(&mut self, table: Table) -> Result<()> {
        let name = table.name().to_string();
        if self.tables.contains_key(&name) {
            return Err(ModelError::SchemaError(format!(
                "table `{name}` already registered"
            )));
        }
        self.statement(|cat| cat.install(name, table))
    }

    /// Replace a table (e.g. between benchmark iterations), refreshing
    /// stats. On a persistent catalog the new rows are written and
    /// committed (participating in any enclosing transaction, like
    /// [`Catalog::register`]); the old extent's pages (including overflow
    /// chains) are returned to the pager's free list at the checkpoint
    /// after the commit and reused by later writes (see the pager's
    /// durability rules).
    pub fn replace(&mut self, table: Table) -> Result<()> {
        let name = table.name().to_string();
        self.statement(|cat| cat.install(name, table))
    }

    /// Install a prepared table + stats and commit the catalog image,
    /// rolling the in-memory view back if the durable commit fails — the
    /// catalog never serves state that would vanish on reopen. Secondary
    /// indexes over the table are rebuilt from the incoming rows
    /// (write-through maintenance) in the same commit. The displaced
    /// table's pages — and the displaced index chains — are freed at
    /// (and only at) a successful commit, so a rollback leaks nothing
    /// and frees nothing. Inside an open transaction nothing syncs yet:
    /// the freed pages accumulate on the transaction and the whole unit
    /// commits at [`Catalog::commit`].
    fn install(&mut self, name: String, table: Table) -> Result<()> {
        // Enumerate everything the displaced state owns *before* mutating,
        // so a failure below leaves the catalog untouched.
        let mut freed = self.displaced_pages(self.tables.get(&name))?;
        let index_keys: Vec<(String, String)> = self
            .indexes
            .keys()
            .filter(|(t, _)| *t == name)
            .cloned()
            .collect();
        for key in &index_keys {
            if let (Some(store), Some((first, len))) =
                (self.store.as_ref(), self.indexes[key].chain)
            {
                freed.extend(store.blob_pages(first, len)?);
            }
        }
        let (table, stats) = self.prepare(table)?;
        // Rebuild the table's indexes over the incoming rows and write
        // their new chains (durable only at the commit below).
        let mut rebuilt = Vec::with_capacity(index_keys.len());
        for key in index_keys {
            let ord = OrdIndex::build(&table, &key.1)?;
            let chain = match self.store.as_ref() {
                Some(store) => Some(store.write_blob(&encode_index(&ord))?),
                None => None,
            };
            rebuilt.push((key, IndexEntry { ord, chain }));
        }
        let prev_stats = self.stats.insert(name.clone(), stats);
        let prev_table = self.tables.insert(name.clone(), table);
        let mut prev_entries = Vec::new();
        for (key, entry) in rebuilt {
            let prev = self.indexes.insert(key.clone(), entry);
            prev_entries.push((key, prev));
        }
        if let Some(txn) = self.txn.as_mut() {
            txn.freed.extend(freed);
            return Ok(());
        }
        if let Err(e) = self.sync_freeing(freed) {
            match prev_table {
                Some(t) => self.tables.insert(name.clone(), t),
                None => self.tables.remove(&name),
            };
            match prev_stats {
                Some(s) => self.stats.insert(name.clone(), s),
                None => self.stats.remove(&name),
            };
            for (key, prev) in prev_entries {
                match prev {
                    Some(p) => self.indexes.insert(key, p),
                    None => self.indexes.remove(&key),
                };
            }
            return Err(e);
        }
        Ok(())
    }

    /// Every page the displaced table owned (empty for transient catalogs
    /// and first registrations).
    fn displaced_pages(&self, prev: Option<&Table>) -> Result<Vec<PageId>> {
        match prev.and_then(|t| t.disk_parts()) {
            Some((store, extent)) => store.extent_pages(extent),
            None => Ok(Vec::new()),
        }
    }

    /// Compute statistics for an incoming table and, when persistent,
    /// write its rows through the store, returning the (possibly now
    /// disk-backed) table to catalog.
    fn prepare(&mut self, table: Table) -> Result<(Table, TableStats)> {
        let Some(store) = self.store.clone() else {
            let stats = TableStats::compute(&table);
            return Ok((table, stats));
        };
        // One pass over the rows feeds both the statistics builder and
        // the page writer. `rows_vec` materializes disk-backed sources
        // (e.g. copying a database) — user registrations are in-memory.
        let rows: Vec<Record> = match table.mem_rows() {
            Some(r) => r.to_vec(),
            None => table.rows_vec()?,
        };
        let mut builder =
            crate::stats::StatsBuilder::new(table.columns().iter().map(|(n, _)| n.as_str()));
        rows.iter().for_each(|r| builder.observe(r));
        let stats = builder.finish();
        let extent = Arc::new(store.write_table(&rows)?);
        let disk = Table::disk(table.name(), table.columns().to_vec(), store, extent);
        Ok((disk, stats))
    }

    /// Commit the current schema and table descriptors to the store
    /// (no-op for transient catalogs). Called automatically by
    /// [`Catalog::register`] / [`Catalog::replace`]; an error while a
    /// transaction is open (commit or roll back instead).
    pub fn sync(&self) -> Result<()> {
        if self.txn.is_some() {
            return Err(ModelError::SchemaError(
                "cannot sync while a transaction is open (commit or roll back first)".into(),
            ));
        }
        self.sync_freeing(Vec::new())
    }

    /// Commit the catalog image, handing `freed` pages (a displaced
    /// table's extent) back to the store's free list at the commit point.
    fn sync_freeing(&self, freed: Vec<PageId>) -> Result<()> {
        let Some(store) = self.store.as_ref() else {
            return Ok(());
        };
        let mut image = CatalogImage {
            schema: self.schema.clone(),
            tables: Vec::new(),
            indexes: Vec::new(),
        };
        for ((table, attr), e) in &self.indexes {
            let (first, len) = e
                .chain
                .expect("every index of a persistent catalog has a chain");
            image.indexes.push(IndexImage {
                table: table.clone(),
                attr: attr.clone(),
                kind: 0,
                first,
                len,
            });
        }
        for (name, table) in &self.tables {
            let (_, extent) = table
                .disk_parts()
                .expect("every table of a persistent catalog is disk-backed");
            let stats = match self.stats.get(name) {
                Some(s) => s.clone(),
                // Every registered table has stats; this fallback only
                // runs for hand-assembled catalogs, and must surface a
                // scan failure rather than persist truncated statistics.
                None => TableStats::try_compute(table)?,
            };
            image.tables.push(TableImage {
                name: name.clone(),
                columns: table.columns().to_vec(),
                extent: (**extent).clone(),
                stats,
            });
        }
        store.save_catalog_freeing(&image, freed)
    }

    /// Create a secondary (ordered) index on `table.attr`. Rows lacking
    /// the attribute are simply not indexed. On a persistent catalog the
    /// index is written through the pager and committed with the catalog
    /// image (at the enclosing [`Catalog::commit`] when a transaction is
    /// open), so it survives a reopen; maintenance on `register`/`replace`
    /// is automatic from then on.
    pub fn create_index(&mut self, table: &str, attr: &str) -> Result<()> {
        let key = (table.to_string(), attr.to_string());
        if self.indexes.contains_key(&key) {
            return Err(ModelError::SchemaError(format!(
                "index on `{table}.{attr}` already exists"
            )));
        }
        self.table(table)?;
        self.statement(|cat| {
            let ord = OrdIndex::build(cat.table(&key.0)?, &key.1)?;
            let chain = match cat.store.as_ref() {
                Some(store) => Some(store.write_blob(&encode_index(&ord))?),
                None => None,
            };
            cat.indexes.insert(key.clone(), IndexEntry { ord, chain });
            if cat.txn.is_some() {
                return Ok(()); // commits with the enclosing transaction
            }
            if let Err(e) = cat.sync() {
                cat.indexes.remove(&key);
                return Err(e);
            }
            Ok(())
        })
    }

    /// Drop the index on `table.attr`, returning whether one existed. On
    /// a persistent catalog its pages return to the free list at the
    /// checkpoint after the commit.
    pub fn drop_index(&mut self, table: &str, attr: &str) -> Result<bool> {
        let key = (table.to_string(), attr.to_string());
        if !self.indexes.contains_key(&key) {
            return Ok(false);
        }
        self.statement(|cat| {
            // Enumerate the chain's pages *before* removing the entry, so
            // an I/O error here leaves the index in place.
            let chain = cat.indexes[&key].chain;
            let freed = match (cat.store.as_ref(), chain) {
                (Some(store), Some((first, len))) => store.blob_pages(first, len)?,
                _ => Vec::new(),
            };
            let entry = cat.indexes.remove(&key).expect("checked above");
            if let Some(txn) = cat.txn.as_mut() {
                txn.freed.extend(freed);
                return Ok(true);
            }
            if let Err(e) = cat.sync_freeing(freed) {
                cat.indexes.insert(key.clone(), entry);
                return Err(e);
            }
            Ok(true)
        })
    }

    /// The index on `table.attr`, if one exists.
    pub fn index_on(&self, table: &str, attr: &str) -> Option<&OrdIndex> {
        self.indexes
            .get(&(table.to_string(), attr.to_string()))
            .map(|e| &e.ord)
    }

    /// All indexes as `(table, attr, index)`, sorted by table then attr.
    pub fn indexes(&self) -> impl Iterator<Item = (&str, &str, &OrdIndex)> {
        self.indexes
            .iter()
            .map(|((t, a), e)| (t.as_str(), a.as_str(), &e.ord))
    }

    /// Look up a table by extension name.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| ModelError::SchemaError(format!("unknown table `{name}`")))
    }

    /// Look up precomputed statistics for a table.
    pub fn stats(&self, name: &str) -> Option<&TableStats> {
        self.stats.get(name)
    }

    /// The row type of a stored table, falling back to the schema's class
    /// declaration when the table is registered via a class extension.
    pub fn row_ty(&self, name: &str) -> Result<Ty> {
        if let Ok(t) = self.table(name) {
            return Ok(t.row_ty());
        }
        match self.schema.extension_ty(name)? {
            Ty::Set(inner) => Ok(*inner),
            other => Ok(other),
        }
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::int_table;

    #[test]
    fn register_and_lookup() {
        let mut cat = Catalog::new();
        cat.register(int_table("R", &["a", "b"], &[&[1, 2]]))
            .unwrap();
        assert_eq!(cat.table("R").unwrap().len(), 1);
        assert!(cat.table("S").is_err());
        assert!(cat.register(int_table("R", &["a"], &[])).is_err());
        assert!(!cat.is_persistent());
        assert_eq!(cat.pool_stats(), None);
        assert_eq!(cat.page_residency("R"), None);
    }

    #[test]
    fn stats_computed_on_register() {
        let mut cat = Catalog::new();
        cat.register(int_table("R", &["a"], &[&[1], &[2], &[2]]))
            .unwrap();
        let st = cat.stats("R").unwrap();
        assert_eq!(st.cardinality, 2); // set semantics deduped the 2
    }

    #[test]
    fn replace_refreshes_stats() {
        let mut cat = Catalog::new();
        cat.register(int_table("R", &["a"], &[&[1]])).unwrap();
        cat.replace(int_table("R", &["a"], &[&[1], &[2], &[3]]))
            .unwrap();
        assert_eq!(cat.stats("R").unwrap().cardinality, 3);
    }

    #[test]
    fn row_ty_from_table() {
        let mut cat = Catalog::new();
        cat.register(int_table("R", &["a", "b"], &[])).unwrap();
        let ty = cat.row_ty("R").unwrap();
        assert_eq!(
            ty,
            Ty::Tuple(vec![("a".into(), Ty::Int), ("b".into(), Ty::Int)])
        );
    }

    #[test]
    fn row_ty_from_schema_when_unregistered() {
        use tmql_model::schema::paper_schema;
        let cat = Catalog::with_schema(paper_schema());
        let ty = cat.row_ty("EMP").unwrap();
        assert!(matches!(ty, Ty::Tuple(_)));
        assert!(cat.row_ty("NOPE").is_err());
    }

    fn scratch(name: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!(
            "tmql-catalog-test-{}-{name}.tmdb",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn persistent_catalog_round_trips_through_reopen() {
        let path = scratch("roundtrip");
        {
            let mut cat = Catalog::open(&path, 16).unwrap();
            assert!(cat.is_persistent());
            cat.register(int_table("R", &["a", "b"], &[&[1, 10], &[2, 20], &[3, 20]]))
                .unwrap();
            let t = cat.table("R").unwrap();
            assert!(t.is_disk_backed(), "registration wrote through the pager");
            assert_eq!(t.len(), 3);
        }
        let cat = Catalog::open(&path, 16).unwrap();
        let t = cat.table("R").unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(
            t.batch(1, 2).unwrap(),
            int_table("X", &["a", "b"], &[&[2, 20], &[3, 20]])
                .batch(0, 2)
                .unwrap(),
            "reopened rows are identical"
        );
        let st = cat.stats("R").unwrap();
        assert_eq!(st.cardinality, 3);
        assert_eq!(st.columns["b"].distinct, 2, "statistics round-tripped");
        let (resident, total) = cat.page_residency("R").unwrap();
        assert!(total >= 1);
        assert!(resident <= total);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn persistent_replace_commits_new_rows() {
        let path = scratch("replace");
        {
            let mut cat = Catalog::open(&path, 16).unwrap();
            cat.register(int_table("R", &["a"], &[&[1]])).unwrap();
            cat.replace(int_table("R", &["a"], &[&[7], &[8]])).unwrap();
        }
        let cat = Catalog::open(&path, 16).unwrap();
        assert_eq!(cat.table("R").unwrap().len(), 2);
        assert_eq!(cat.stats("R").unwrap().cardinality, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn repeated_replaces_do_not_grow_the_file() {
        // PR 5 left `replace` leaking the old extent inside the file; the
        // pager's free list now reuses those pages, so the file size
        // settles after the write-then-free double-buffering warms up.
        let path = scratch("freelist");
        let rows: Vec<Vec<i64>> = (0..500).map(|i| vec![i, i % 13]).collect();
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let mut cat = Catalog::open(&path, 16).unwrap();
        cat.register(int_table("R", &["a", "b"], &refs)).unwrap();
        let size = |p: &std::path::Path| std::fs::metadata(p).unwrap().len();
        let mut settled = 0;
        for i in 0..10 {
            cat.replace(int_table("R", &["a", "b"], &refs)).unwrap();
            // Freed pages recycle only after a checkpoint folds them into
            // the durable free list.
            cat.wal_checkpoint().unwrap();
            if i == 2 {
                settled = size(&path);
            }
        }
        assert_eq!(size(&path), settled, "replaces reuse freed pages");
        // And the data still reads back correctly after all that churn.
        assert_eq!(cat.table("R").unwrap().len(), 500);
        drop(cat);
        let cat = Catalog::open(&path, 16).unwrap();
        assert_eq!(cat.table("R").unwrap().len(), 500);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn index_round_trips_through_reopen() {
        use tmql_model::Value;
        let path = scratch("idx-roundtrip");
        {
            let mut cat = Catalog::open(&path, 16).unwrap();
            cat.register(int_table("R", &["a", "b"], &[&[1, 10], &[2, 10], &[3, 20]]))
                .unwrap();
            cat.create_index("R", "b").unwrap();
            assert!(cat.index_on("R", "b").is_some());
            assert!(cat.create_index("R", "b").is_err(), "duplicate rejected");
            assert!(cat.create_index("NOPE", "b").is_err(), "unknown table");
        }
        let cat = Catalog::open(&path, 16).unwrap();
        let idx = cat.index_on("R", "b").expect("index survived reopen");
        assert_eq!(idx.probe_eq(&Value::Int(10)), vec![0, 1]);
        assert_eq!(idx.probe_eq(&Value::Int(20)), vec![2]);
        assert_eq!(cat.indexes().count(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replace_rebuilds_indexes_write_through() {
        use tmql_model::Value;
        let path = scratch("idx-maint");
        let mut cat = Catalog::open(&path, 16).unwrap();
        cat.register(int_table("R", &["a"], &[&[1]])).unwrap();
        cat.create_index("R", "a").unwrap();
        cat.replace(int_table("R", &["a"], &[&[7], &[8], &[7]]))
            .unwrap();
        let idx = cat.index_on("R", "a").unwrap();
        assert_eq!(idx.probe_eq(&Value::Int(1)), Vec::<usize>::new());
        assert_eq!(idx.probe_eq(&Value::Int(7)), vec![0]);
        assert_eq!(idx.probe_eq(&Value::Int(8)), vec![1]);
        drop(cat);
        let cat = Catalog::open(&path, 16).unwrap();
        let idx = cat.index_on("R", "a").unwrap();
        assert_eq!(
            idx.probe_eq(&Value::Int(8)),
            vec![1],
            "maintained index persisted"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn transient_catalog_indexes_work_without_a_store() {
        use tmql_model::Value;
        let mut cat = Catalog::new();
        cat.register(int_table("R", &["a"], &[&[4], &[5]])).unwrap();
        cat.create_index("R", "a").unwrap();
        assert_eq!(
            cat.index_on("R", "a").unwrap().probe_eq(&Value::Int(5)),
            vec![1]
        );
        cat.replace(int_table("R", &["a"], &[&[9]])).unwrap();
        assert_eq!(
            cat.index_on("R", "a").unwrap().probe_eq(&Value::Int(9)),
            vec![0]
        );
        assert!(cat.drop_index("R", "a").unwrap());
        assert!(!cat.drop_index("R", "a").unwrap());
        assert!(cat.index_on("R", "a").is_none());
    }

    #[test]
    fn drop_index_frees_its_pages() {
        // Index chains join the free list on drop, so a
        // create → drop → create cycle must not grow the file.
        let path = scratch("idx-free");
        let rows: Vec<Vec<i64>> = (0..500).map(|i| vec![i, i % 13]).collect();
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let mut cat = Catalog::open(&path, 16).unwrap();
        cat.register(int_table("R", &["a", "b"], &refs)).unwrap();
        let size = |p: &std::path::Path| std::fs::metadata(p).unwrap().len();
        let mut settled = 0;
        for i in 0..8 {
            cat.create_index("R", "a").unwrap();
            assert!(cat.drop_index("R", "a").unwrap());
            cat.wal_checkpoint().unwrap();
            if i == 2 {
                settled = size(&path);
            }
        }
        assert_eq!(size(&path), settled, "index churn reuses freed pages");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn transaction_commit_is_atomic_and_rollback_restores() {
        use tmql_model::Value;
        let path = scratch("txn");
        let mut cat = Catalog::open(&path, 16).unwrap();
        cat.register(int_table("base", &["a"], &[&[1]])).unwrap();

        // Rolled-back transaction: nothing survives, not even in memory.
        cat.begin().unwrap();
        assert!(cat.in_transaction());
        cat.register(int_table("R", &["a"], &[&[1], &[2]])).unwrap();
        cat.create_index("R", "a").unwrap();
        cat.replace(int_table("base", &["a"], &[&[9]])).unwrap();
        assert_eq!(cat.table("R").unwrap().len(), 2, "txn sees its writes");
        cat.rollback().unwrap();
        assert!(!cat.in_transaction());
        assert!(cat.table("R").is_err());
        assert!(cat.index_on("R", "a").is_none());
        assert_eq!(cat.stats("base").unwrap().cardinality, 1);

        // Committed transaction: all three statements land together.
        cat.begin().unwrap();
        assert!(cat.begin().is_err(), "nested transactions rejected");
        assert!(cat.sync().is_err(), "sync blocked inside a transaction");
        cat.register(int_table("R", &["a"], &[&[1], &[2]])).unwrap();
        cat.create_index("R", "a").unwrap();
        cat.replace(int_table("base", &["a"], &[&[9]])).unwrap();
        cat.commit().unwrap();
        assert!(cat.commit().is_err(), "no transaction left to commit");
        drop(cat);

        let cat = Catalog::open(&path, 16).unwrap();
        assert_eq!(cat.table("R").unwrap().len(), 2);
        assert_eq!(
            cat.index_on("R", "a").unwrap().probe_eq(&Value::Int(2)),
            vec![1]
        );
        assert_eq!(cat.stats("base").unwrap().cardinality, 1);
        assert_eq!(
            cat.table("base").unwrap().batch(0, 1).unwrap()[0]
                .get("a")
                .unwrap(),
            &Value::Int(9)
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failing_statement_aborts_the_enclosing_transaction() {
        use crate::failpoint::IoFailpoint;
        // A two-frame pool forces installs to evict (and so to touch the
        // file), which is where the injected failure lands.
        let path = scratch("txn-abort");
        let mut cat = Catalog::open(&path, 2).unwrap();
        cat.register(int_table("R", &["a"], &[&[1]])).unwrap();
        cat.begin().unwrap();
        cat.replace(int_table("R", &["a"], &[&[2]])).unwrap();
        // A validation failure pre-statement (duplicate register) does
        // not abort the transaction...
        assert!(cat.register(int_table("R", &["a"], &[])).is_err());
        assert!(cat.in_transaction());
        // ...but an I/O failure inside a statement body does.
        let rows: Vec<Vec<i64>> = (0..2000).map(|i| vec![i]).collect();
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let fp = IoFailpoint::kill_at(&path, 0);
        assert!(cat.register(int_table("big", &["a"], &refs)).is_err());
        drop(fp);
        assert!(!cat.in_transaction(), "failed statement aborted the txn");
        assert!(cat.table("big").is_err());
        assert_eq!(cat.stats("R").unwrap().cardinality, 1, "rolled back");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn transaction_rollback_reclaims_pages() {
        // A big rolled-back register must not leave the file grown after
        // a checkpoint: rollback returns its allocations.
        let path = scratch("txn-reclaim");
        let rows: Vec<Vec<i64>> = (0..400).map(|i| vec![i]).collect();
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let mut cat = Catalog::open(&path, 16).unwrap();
        cat.register(int_table("keep", &["a"], &[&[1]])).unwrap();
        cat.wal_checkpoint().unwrap();
        let size = |p: &std::path::Path| std::fs::metadata(p).unwrap().len();
        let before = size(&path);
        for _ in 0..5 {
            cat.begin().unwrap();
            cat.register(int_table("big", &["a"], &refs)).unwrap();
            cat.rollback().unwrap();
        }
        cat.wal_checkpoint().unwrap();
        assert_eq!(size(&path), before, "rolled-back writes reuse no space");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn schema_persists_with_sync() {
        use tmql_model::schema::paper_schema;
        let path = scratch("schema");
        {
            let mut cat = Catalog::open(&path, 16).unwrap();
            *cat.schema_mut() = paper_schema();
            cat.sync().unwrap();
        }
        let cat = Catalog::open(&path, 16).unwrap();
        assert!(cat.schema().class_by_extension("EMP").is_some());
        let _ = std::fs::remove_file(&path);
    }
}
