//! Spill files: on-disk runs of records for larger-than-memory execution.
//!
//! The streaming executor's pipeline breakers (hash-join build sides,
//! grouping state, sort buffers, dedup sets) are the only places resident
//! memory grows with the data. When a breaker's state would exceed the
//! configured `memory_budget_rows`, it spills rows here: a [`RunWriter`]
//! serializes records **length-prefixed** into a file under a per-query
//! [`SpillDir`] in the OS temp directory, and a [`RunReader`] streams them
//! back in batches. Files delete themselves when the owning [`SpillFile`]
//! drops, and the whole directory is removed when the [`SpillDir`] drops —
//! a crash leaves at most one stale `tmql-spill-*` directory per process,
//! inside the OS temp dir where it is reclaimed by the platform.
//!
//! # On-disk format
//!
//! A run is a sequence of frames, each `u32` little-endian payload length
//! followed by the payload: one encoded [`Record`]. Values are encoded with
//! a one-byte kind tag followed by the payload (integers and float bits
//! little-endian, strings and labels as `u32` length + UTF-8, containers as
//! `u32` element count + elements). The codec covers the full [`Value`]
//! universe — nested tuples, sets, lists, and variants round-trip exactly,
//! including `NaN` floats (bit-pattern preserved via `to_bits`).

use std::collections::BTreeSet;
use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tmql_model::{ModelError, Record, Result, Value};

/// Map an I/O failure into the model error type (rendered, since
/// `io::Error` is neither `Clone` nor `PartialEq`).
fn io_err(e: std::io::Error) -> ModelError {
    ModelError::Io(e.to_string())
}

// ---------------------------------------------------------------------------
// Value / Record codec
// ---------------------------------------------------------------------------

mod tag {
    pub const NULL: u8 = 0;
    pub const FALSE: u8 = 1;
    pub const TRUE: u8 = 2;
    pub const INT: u8 = 3;
    pub const FLOAT: u8 = 4;
    pub const STR: u8 = 5;
    pub const TUPLE: u8 = 6;
    pub const SET: u8 = 7;
    pub const LIST: u8 = 8;
    pub const VARIANT: u8 = 9;
}

fn encode_len(out: &mut Vec<u8>, n: usize) {
    out.extend_from_slice(&(n as u32).to_le_bytes());
}

fn encode_str(out: &mut Vec<u8>, s: &str) {
    encode_len(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

/// Append the encoding of one value to `out`.
pub fn encode_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(tag::NULL),
        Value::Bool(false) => out.push(tag::FALSE),
        Value::Bool(true) => out.push(tag::TRUE),
        Value::Int(i) => {
            out.push(tag::INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(tag::FLOAT);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(tag::STR);
            encode_str(out, s);
        }
        Value::Tuple(rec) => {
            out.push(tag::TUPLE);
            encode_fields(out, rec);
        }
        Value::Set(items) => {
            out.push(tag::SET);
            encode_len(out, items.len());
            for item in items {
                encode_value(out, item);
            }
        }
        Value::List(items) => {
            out.push(tag::LIST);
            encode_len(out, items.len());
            for item in items {
                encode_value(out, item);
            }
        }
        Value::Variant(label, inner) => {
            out.push(tag::VARIANT);
            encode_str(out, label);
            encode_value(out, inner);
        }
    }
}

fn encode_fields(out: &mut Vec<u8>, rec: &Record) {
    encode_len(out, rec.len());
    for (label, v) in rec.iter() {
        encode_str(out, label);
        encode_value(out, v);
    }
}

/// Encode one record as a standalone byte payload (no length prefix —
/// framing is the run writer's job).
pub fn encode_record(rec: &Record) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    encode_fields(&mut out, rec);
    out
}

/// Cursor over an encoded payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|e| *e <= self.buf.len())
            .ok_or_else(|| {
                ModelError::Io(format!("spill decode: truncated payload (want {n} bytes)"))
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn str(&mut self) -> Result<&'a str> {
        let n = self.u32()? as usize;
        std::str::from_utf8(self.take(n)?)
            .map_err(|e| ModelError::Io(format!("spill decode: invalid UTF-8: {e}")))
    }

    fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            tag::NULL => Value::Null,
            tag::FALSE => Value::Bool(false),
            tag::TRUE => Value::Bool(true),
            tag::INT => Value::Int(self.u64()? as i64),
            tag::FLOAT => Value::Float(f64::from_bits(self.u64()?)),
            tag::STR => Value::Str(Arc::from(self.str()?)),
            tag::TUPLE => Value::Tuple(self.record()?),
            tag::SET => {
                let n = self.u32()? as usize;
                let mut items = BTreeSet::new();
                for _ in 0..n {
                    items.insert(self.value()?);
                }
                Value::Set(items)
            }
            tag::LIST => {
                let n = self.u32()? as usize;
                let mut items = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    items.push(self.value()?);
                }
                Value::List(items)
            }
            tag::VARIANT => {
                let label = Arc::from(self.str()?);
                Value::Variant(label, Box::new(self.value()?))
            }
            other => {
                return Err(ModelError::Io(format!(
                    "spill decode: unknown value tag {other}"
                )))
            }
        })
    }

    fn record(&mut self) -> Result<Record> {
        let n = self.u32()? as usize;
        let mut fields = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let label = self.str()?.to_string();
            let v = self.value()?;
            fields.push((label, v));
        }
        Record::new(fields)
    }
}

/// Decode one value from the front of a payload (the inverse of
/// [`encode_value`]), returning the value and the number of bytes
/// consumed. The pager's catalog image uses this for statistics min/max
/// values embedded in a larger blob.
pub fn decode_value(payload: &[u8]) -> Result<(Value, usize)> {
    let mut c = Cursor {
        buf: payload,
        pos: 0,
    };
    let v = c.value()?;
    Ok((v, c.pos))
}

/// Decode one record from an encoded payload (the inverse of
/// [`encode_record`]). Fails on truncated or malformed bytes.
pub fn decode_record(payload: &[u8]) -> Result<Record> {
    let mut c = Cursor {
        buf: payload,
        pos: 0,
    };
    let rec = c.record()?;
    if c.pos != payload.len() {
        return Err(ModelError::Io(format!(
            "spill decode: {} trailing bytes after record",
            payload.len() - c.pos
        )));
    }
    Ok(rec)
}

// ---------------------------------------------------------------------------
// Spill directory / runs
// ---------------------------------------------------------------------------

static SPILL_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A per-query scratch directory under the OS temp dir. Created lazily by
/// the executor the first time anything spills; removed (with everything
/// in it) on drop.
#[derive(Debug)]
pub struct SpillDir {
    path: PathBuf,
    run_seq: AtomicU64,
}

impl SpillDir {
    /// Create a fresh, uniquely named spill directory.
    pub fn create() -> Result<SpillDir> {
        let unique = SPILL_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("tmql-spill-{}-{unique}", std::process::id()));
        fs::create_dir_all(&path).map_err(io_err)?;
        Ok(SpillDir {
            path,
            run_seq: AtomicU64::new(0),
        })
    }

    /// The directory path (for diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Open a new run for writing.
    pub fn create_run(&self) -> Result<RunWriter> {
        let n = self.run_seq.fetch_add(1, Ordering::Relaxed);
        let path = self.path.join(format!("run-{n}.spill"));
        let file = File::create(&path).map_err(io_err)?;
        Ok(RunWriter {
            out: BufWriter::new(file),
            path,
            rows: 0,
        })
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        // Best-effort cleanup; leaking a temp dir is not worth a panic.
        let _ = fs::remove_dir_all(&self.path);
    }
}

/// An open spill run being written. Call [`RunWriter::finish`] to flush and
/// turn it into a readable [`SpillFile`].
#[derive(Debug)]
pub struct RunWriter {
    out: BufWriter<File>,
    path: PathBuf,
    rows: u64,
}

impl RunWriter {
    /// Append one record (length-prefixed frame).
    pub fn write(&mut self, rec: &Record) -> Result<()> {
        let payload = encode_record(rec);
        // One frame is capped at u32::MAX bytes. This also guards every
        // inner `as u32` in the codec: an overflowing string or container
        // length implies an overflowing payload.
        let len = u32::try_from(payload.len()).map_err(|_| {
            ModelError::Io(format!(
                "spill frame too large: one record encodes to {} bytes (max {})",
                payload.len(),
                u32::MAX
            ))
        })?;
        self.out.write_all(&len.to_le_bytes()).map_err(io_err)?;
        self.out.write_all(&payload).map_err(io_err)?;
        self.rows += 1;
        Ok(())
    }

    /// Rows written so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Flush and seal the run.
    pub fn finish(mut self) -> Result<SpillFile> {
        self.out.flush().map_err(io_err)?;
        Ok(SpillFile {
            path: self.path,
            rows: self.rows,
        })
    }
}

/// A sealed on-disk run. The file is deleted when this handle drops.
#[derive(Debug)]
pub struct SpillFile {
    path: PathBuf,
    rows: u64,
}

impl SpillFile {
    /// Number of records in the run.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// True iff the run holds no records.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Open the run for a fresh sequential read.
    pub fn reader(&self) -> Result<RunReader> {
        let file = File::open(&self.path).map_err(io_err)?;
        Ok(RunReader {
            input: BufReader::new(file),
            remaining: self.rows,
        })
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Sequential batched reader over a sealed run.
#[derive(Debug)]
pub struct RunReader {
    input: BufReader<File>,
    remaining: u64,
}

impl RunReader {
    /// Records not yet read.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Read up to `n` records; an empty vector means end of run.
    pub fn read_batch(&mut self, n: usize) -> Result<Vec<Record>> {
        let k = (n as u64).min(self.remaining) as usize;
        let mut out = Vec::with_capacity(k);
        let mut payload = Vec::new();
        for _ in 0..k {
            let mut len_buf = [0u8; 4];
            self.input.read_exact(&mut len_buf).map_err(io_err)?;
            let len = u32::from_le_bytes(len_buf) as usize;
            payload.resize(len, 0);
            self.input.read_exact(&mut payload).map_err(io_err)?;
            out.push(decode_record(&payload)?);
            self.remaining -= 1;
        }
        Ok(out)
    }

    /// Read the whole remainder of the run.
    pub fn read_all(&mut self) -> Result<Vec<Record>> {
        let mut out = Vec::with_capacity(self.remaining as usize);
        loop {
            let batch = self.read_batch(4096)?;
            if batch.is_empty() {
                return Ok(out);
            }
            out.extend(batch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rows() -> Vec<Record> {
        let nested = Value::tuple([
            ("name", Value::str("ann")),
            ("tags", Value::set([Value::Int(1), Value::Int(2)])),
        ]);
        vec![
            Record::new([("a".to_string(), Value::Int(1)), ("b".to_string(), nested)]).unwrap(),
            Record::new([
                ("a".to_string(), Value::Float(f64::NAN)),
                (
                    "b".to_string(),
                    Value::List(vec![Value::Bool(true), Value::Null]),
                ),
            ])
            .unwrap(),
            Record::new([
                (
                    "a".to_string(),
                    Value::Variant(Arc::from("left"), Box::new(Value::Int(7))),
                ),
                ("b".to_string(), Value::empty_set()),
            ])
            .unwrap(),
        ]
    }

    #[test]
    fn codec_round_trips_every_value_kind() {
        for rec in sample_rows() {
            let bytes = encode_record(&rec);
            let back = decode_record(&bytes).unwrap();
            assert_eq!(rec, back);
        }
    }

    #[test]
    fn nan_float_round_trips_bit_exact() {
        let rec = Record::new([("x".to_string(), Value::Float(f64::NAN))]).unwrap();
        let back = decode_record(&encode_record(&rec)).unwrap();
        match back.get("x").unwrap() {
            Value::Float(x) => assert!(x.is_nan()),
            other => panic!("expected float, got {other}"),
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_record(&[]).is_err());
        assert!(decode_record(&[1, 0, 0, 0, 0, 0, 0, 0, 255]).is_err());
        // Trailing bytes after a well-formed record are an error too.
        let mut bytes = encode_record(&Record::empty());
        bytes.push(0);
        assert!(decode_record(&bytes).is_err());
    }

    #[test]
    fn run_round_trips_and_batches() {
        let dir = SpillDir::create().unwrap();
        let rows = sample_rows();
        let mut w = dir.create_run().unwrap();
        for r in &rows {
            w.write(r).unwrap();
        }
        assert_eq!(w.rows(), 3);
        let file = w.finish().unwrap();
        assert_eq!(file.rows(), 3);
        let mut r = file.reader().unwrap();
        assert_eq!(r.read_batch(2).unwrap().len(), 2);
        assert_eq!(r.remaining(), 1);
        assert_eq!(r.read_batch(2).unwrap().len(), 1);
        assert!(r.read_batch(2).unwrap().is_empty(), "EOF is an empty batch");
        // A second reader re-reads from the start.
        let again = file.reader().unwrap().read_all().unwrap();
        assert_eq!(again, rows);
    }

    #[test]
    fn spill_files_and_dir_clean_up_after_themselves() {
        let dir = SpillDir::create().unwrap();
        let dir_path = dir.path().to_path_buf();
        let mut w = dir.create_run().unwrap();
        w.write(&Record::empty()).unwrap();
        let file = w.finish().unwrap();
        let file_path = dir_path.join("run-0.spill");
        assert!(file_path.exists());
        drop(file);
        assert!(!file_path.exists(), "SpillFile removes its file on drop");
        drop(dir);
        assert!(!dir_path.exists(), "SpillDir removes itself on drop");
    }

    #[test]
    fn empty_run_is_fine() {
        let dir = SpillDir::create().unwrap();
        let file = dir.create_run().unwrap().finish().unwrap();
        assert!(file.is_empty());
        assert!(file.reader().unwrap().read_all().unwrap().is_empty());
    }
}
