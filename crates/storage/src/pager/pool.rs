//! The buffer pool: a fixed set of in-memory page frames over the
//! database file, with clock (second-chance) eviction, pin counts, and
//! dirty-page write-back.
//!
//! Every page access goes through [`BufferPool::get`] (fault in from disk)
//! or [`BufferPool::create`] (install a fresh zeroed page without a disk
//! read). Frames a caller is actively reading or writing are **pinned**
//! ([`BufferPool::pin`] / [`BufferPool::unpin`]); the clock hand skips
//! pinned frames, and if every frame is pinned the pool reports
//! [`tmql_model::ModelError::Io`] instead of evicting under a live
//! borrow. Evicting a dirty frame writes it back first, so the pool — not
//! its callers — owns the write schedule; [`BufferPool::flush`] forces
//! all dirty frames out (the durability point of a catalog update).
//!
//! [`PoolStats`] counts hits, faults (misses), evictions, and write-backs;
//! the executor reports the per-query delta as `Metrics::pool_hits` /
//! `Metrics::pool_misses`, and the cost model prices cold scans with the
//! pool's current residency.

use std::collections::HashMap;

use tmql_model::{ModelError, Result};

use super::page::{PageId, NO_PAGE, PAGE_SIZE};
use super::store::PagedFile;

/// Monotonic buffer-pool counters (never reset; consumers diff snapshots).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Page requests served from a resident frame.
    pub hits: u64,
    /// Page requests that had to read the page from disk.
    pub misses: u64,
    /// Frames recycled to make room for another page.
    pub evictions: u64,
    /// Dirty frames written back to disk (on eviction or flush).
    pub writebacks: u64,
}

impl PoolStats {
    /// Hit fraction of all page requests so far (1.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Frame {
    /// Resident page, or [`NO_PAGE`] for an empty frame.
    page: PageId,
    buf: Box<[u8]>,
    dirty: bool,
    pins: u32,
    referenced: bool,
}

/// A fixed-capacity pool of page frames (see the module docs).
#[derive(Debug)]
pub struct BufferPool {
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    hand: usize,
    stats: PoolStats,
}

impl BufferPool {
    /// A pool of `capacity` frames (clamped to ≥ 2 so a data page and one
    /// overflow page can be resident together).
    pub fn new(capacity: usize) -> BufferPool {
        let capacity = capacity.max(2);
        let frames = (0..capacity)
            .map(|_| Frame {
                page: NO_PAGE,
                buf: vec![0u8; PAGE_SIZE].into_boxed_slice(),
                dirty: false,
                pins: 0,
                referenced: false,
            })
            .collect();
        BufferPool {
            frames,
            map: HashMap::with_capacity(capacity),
            hand: 0,
            stats: PoolStats::default(),
        }
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// True iff `page` is currently resident (no fault, no stats change).
    pub fn is_resident(&self, page: PageId) -> bool {
        self.map.contains_key(&page)
    }

    /// How many of the given pages are currently resident.
    pub fn resident_among(&self, pages: impl Iterator<Item = PageId>) -> usize {
        pages.filter(|p| self.map.contains_key(p)).count()
    }

    /// Borrow the bytes of frame `idx`.
    pub fn buf(&self, idx: usize) -> &[u8] {
        &self.frames[idx].buf
    }

    /// Borrow the bytes of frame `idx` mutably, marking it dirty.
    pub fn buf_mut(&mut self, idx: usize) -> &mut [u8] {
        self.frames[idx].dirty = true;
        &mut self.frames[idx].buf
    }

    /// Pin frame `idx`: it will not be evicted until unpinned.
    pub fn pin(&mut self, idx: usize) {
        self.frames[idx].pins += 1;
    }

    /// Release one pin on frame `idx`.
    pub fn unpin(&mut self, idx: usize) {
        debug_assert!(self.frames[idx].pins > 0, "unbalanced unpin");
        self.frames[idx].pins = self.frames[idx].pins.saturating_sub(1);
    }

    /// Clock sweep: find a victim frame (empty, or unpinned with its
    /// reference bit already cleared), writing back its dirty contents.
    fn victim(&mut self, file: &mut PagedFile) -> Result<usize> {
        // Two full sweeps: the first clears reference bits, the second
        // must find an unpinned frame unless everything is pinned.
        for _ in 0..2 * self.frames.len() {
            let idx = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            let f = &mut self.frames[idx];
            if f.pins > 0 {
                continue;
            }
            if f.referenced {
                f.referenced = false;
                continue;
            }
            if f.page != NO_PAGE {
                if f.dirty {
                    file.write_page(f.page, &f.buf)?;
                    f.dirty = false;
                    self.stats.writebacks += 1;
                }
                self.map.remove(&f.page);
                self.stats.evictions += 1;
                f.page = NO_PAGE;
            }
            return Ok(idx);
        }
        Err(ModelError::Io(format!(
            "buffer pool exhausted: all {} frames pinned",
            self.frames.len()
        )))
    }

    /// Fault `page` into the pool (or find it resident) and return its
    /// frame index.
    pub fn get(&mut self, page: PageId, file: &mut PagedFile) -> Result<usize> {
        debug_assert_ne!(page, NO_PAGE, "the header page is not pooled");
        if let Some(&idx) = self.map.get(&page) {
            self.stats.hits += 1;
            self.frames[idx].referenced = true;
            return Ok(idx);
        }
        let idx = self.victim(file)?;
        file.read_page(page, &mut self.frames[idx].buf)?;
        self.stats.misses += 1;
        self.frames[idx].page = page;
        self.frames[idx].referenced = true;
        self.map.insert(page, idx);
        Ok(idx)
    }

    /// Install a fresh zeroed frame for a newly allocated `page` (no disk
    /// read) and return its frame index. The frame starts dirty.
    pub fn create(&mut self, page: PageId, file: &mut PagedFile) -> Result<usize> {
        debug_assert!(!self.map.contains_key(&page), "create of a resident page");
        let idx = self.victim(file)?;
        self.frames[idx].buf.fill(0);
        self.frames[idx].page = page;
        self.frames[idx].dirty = true;
        self.frames[idx].referenced = true;
        self.map.insert(page, idx);
        Ok(idx)
    }

    /// Write back every dirty frame (frames stay resident).
    pub fn flush(&mut self, file: &mut PagedFile) -> Result<()> {
        for f in &mut self.frames {
            if f.page != NO_PAGE && f.dirty {
                file.write_page(f.page, &f.buf)?;
                f.dirty = false;
                self.stats.writebacks += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::store::PagedFile;

    fn scratch_file(name: &str) -> PagedFile {
        let path = std::env::temp_dir().join(format!(
            "tmql-pool-test-{}-{name}.pages",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        PagedFile::create(&path).expect("scratch file")
    }

    #[test]
    fn hits_and_misses_counted() {
        let mut file = scratch_file("hits");
        let mut pool = BufferPool::new(4);
        let idx = pool.create(1, &mut file).unwrap();
        pool.buf_mut(idx)[0] = 7;
        assert_eq!(pool.get(1, &mut file).unwrap(), idx, "resident hit");
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 0));
        assert!(pool.is_resident(1));
        assert_eq!(pool.resident_among([1u32, 2, 3].into_iter()), 1);
    }

    #[test]
    fn eviction_writes_back_and_refaults() {
        let mut file = scratch_file("evict");
        let mut pool = BufferPool::new(2);
        for p in 1..=3u32 {
            let idx = pool.create(p, &mut file).unwrap();
            pool.buf_mut(idx)[0] = p as u8;
        }
        // Capacity 2, three pages created: at least one eviction happened,
        // and its dirty contents were written back.
        assert!(pool.stats().evictions >= 1);
        assert!(pool.stats().writebacks >= 1);
        let idx = pool.get(1, &mut file).unwrap();
        assert_eq!(pool.buf(idx)[0], 1, "evicted page re-read intact");
    }

    #[test]
    fn pinned_frames_survive_eviction_pressure() {
        let mut file = scratch_file("pins");
        let mut pool = BufferPool::new(2);
        let idx1 = pool.create(1, &mut file).unwrap();
        pool.buf_mut(idx1)[0] = 11;
        pool.pin(idx1);
        // Fault many other pages through the second frame.
        for p in 2..=6u32 {
            pool.create(p, &mut file).unwrap();
        }
        assert!(pool.is_resident(1), "pinned page was never evicted");
        assert_eq!(pool.buf(idx1)[0], 11);
        pool.unpin(idx1);
    }

    #[test]
    fn all_pinned_is_an_error_not_a_panic() {
        let mut file = scratch_file("allpinned");
        let mut pool = BufferPool::new(2);
        let a = pool.create(1, &mut file).unwrap();
        let b = pool.create(2, &mut file).unwrap();
        pool.pin(a);
        pool.pin(b);
        assert!(matches!(pool.create(3, &mut file), Err(ModelError::Io(_))));
        pool.unpin(a);
        assert!(
            pool.create(3, &mut file).is_ok(),
            "an unpinned frame frees up"
        );
        pool.unpin(b);
    }

    #[test]
    fn flush_clears_dirt() {
        let mut file = scratch_file("flush");
        let mut pool = BufferPool::new(2);
        let idx = pool.create(1, &mut file).unwrap();
        pool.buf_mut(idx)[5] = 9;
        pool.flush(&mut file).unwrap();
        let w = pool.stats().writebacks;
        pool.flush(&mut file).unwrap();
        assert_eq!(
            pool.stats().writebacks,
            w,
            "second flush had nothing to write"
        );
        let mut back = vec![0u8; PAGE_SIZE];
        file.read_page(1, &mut back).unwrap();
        assert_eq!(back[5], 9);
    }
}
