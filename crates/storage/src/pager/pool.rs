//! The buffer pool: a fixed set of page frames shared **concurrently** by
//! every reader of one database file.
//!
//! Since the morsel-parallel executor, scans pin pages from many worker
//! threads at once, so the pool is latch-based rather than hidden behind
//! one big mutex:
//!
//! * each frame carries its own reader/writer **latch** (the page data),
//!   an atomic **pin count**, and atomic dirty/referenced bits;
//! * one small mutex protects only the **mapping table** (page id →
//!   frame) and the clock hand — it is held for map lookups and victim
//!   selection, never across I/O;
//! * [`PoolStats`] counters are atomics, updated lock-free.
//!
//! The latch protocol for a page read ([`BufferPool::read`]):
//!
//! 1. **Hit** — under the map lock: pin the frame and mark it referenced.
//!    Release the map lock, then acquire the frame's shared latch. The pin
//!    taken under the map lock is what keeps victim selection away while
//!    the latch is still being acquired. After latching, re-check that the
//!    frame still holds the wanted page (only [`BufferPool::discard`] or a
//!    failed fault can change it) and retry on a mismatch.
//! 2. **Miss** — still under the map lock: sweep the clock for a victim
//!    frame that is unpinned, has spent its second chance, and whose
//!    exclusive latch can be taken without waiting (`try_write`). The old
//!    mapping is removed, the new one published, the dirty bit claimed,
//!    and the frame pinned — all before the map lock is released. The
//!    write-back of the evicted page and the fault-in read then run
//!    **outside** the map lock, with the exclusive latch held, so other
//!    pages stay fully available during the I/O. A thread that hits the
//!    new mapping meanwhile simply blocks on the shared latch until the
//!    fault completes.
//!
//! Dirty pages exist only for *uncommitted* writes ([`BufferPool::install`]),
//! and writers are serialized by the store's write lock, so the dirty bit
//! is only ever set by one thread at a time; eviction claims it under the
//! map lock, which is what keeps [`BufferPool::flush`] (the commit point)
//! from ever pairing a stale dirty bit with a fresh mapping.
//!
//! Guards release the data latch **before** dropping their pin, so a pin
//! count of zero implies no outstanding latch holders.

use std::collections::HashMap;
use std::ops::Deref;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, TryLockError};

use tmql_model::{ModelError, Result};

use super::page::{PageId, NO_PAGE, PAGE_SIZE};
use super::store::PagedFile;

/// Cumulative buffer-pool counters (monotonic over the pool's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Page requests served from a resident frame.
    pub hits: u64,
    /// Page requests that faulted the page in from disk.
    pub misses: u64,
    /// Frames whose previous page was displaced to serve a fault.
    pub evictions: u64,
    /// Dirty pages written back to the file (evictions + flushes).
    pub writebacks: u64,
}

impl PoolStats {
    /// Fraction of requests served without disk I/O (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One page frame: its data behind a reader/writer latch, plus the atomic
/// bookkeeping victim selection reads without latching.
#[derive(Debug)]
struct Frame {
    /// The page bytes. Shared for readers, exclusive for fault-in/install.
    data: RwLock<Box<[u8]>>,
    /// Pin count: non-zero keeps the frame out of victim selection.
    pins: AtomicU32,
    /// The page this frame holds ([`NO_PAGE`] when free). Mirrors the
    /// mapping table (mutations happen under the map lock); readable
    /// without the map lock for post-latch guard validation.
    page: AtomicU32,
    /// Set by [`BufferPool::install`]; cleared when the page is written
    /// back (eviction or flush) or discarded.
    dirty: AtomicBool,
    /// Clock second-chance bit.
    referenced: AtomicBool,
}

/// The mutex-protected mapping table and clock hand.
#[derive(Debug, Default)]
struct MapState {
    map: HashMap<PageId, usize>,
    clock: usize,
}

/// A fixed-capacity, concurrency-safe page cache with clock eviction.
/// See the module docs for the latch protocol.
#[derive(Debug)]
pub struct BufferPool {
    frames: Vec<Frame>,
    map: Mutex<MapState>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
}

/// A pinned, latched page (or, in the pool-less direct mode, an owned
/// copy of the page bytes). Derefs to the page bytes; dropping releases
/// the latch first and the pin second, so `pins == 0` implies no latch
/// holders.
#[derive(Debug)]
pub struct PageRead<'a> {
    inner: ReadInner<'a>,
}

#[derive(Debug)]
enum ReadInner<'a> {
    Pooled {
        frame: &'a Frame,
        latch: Option<Latch<'a>>,
    },
    /// Zero-capacity pools read straight from the file into an owned
    /// buffer — no frame, no pin, no accounting.
    Direct(Box<[u8]>),
}

#[derive(Debug)]
enum Latch<'a> {
    Shared(RwLockReadGuard<'a, Box<[u8]>>),
    Exclusive(RwLockWriteGuard<'a, Box<[u8]>>),
}

impl Deref for PageRead<'_> {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.inner {
            ReadInner::Pooled { latch, .. } => {
                match latch.as_ref().expect("latch held until drop") {
                    Latch::Shared(g) => g,
                    Latch::Exclusive(g) => g,
                }
            }
            ReadInner::Direct(buf) => buf,
        }
    }
}

impl Drop for PageRead<'_> {
    fn drop(&mut self) {
        if let ReadInner::Pooled { frame, latch } = &mut self.inner {
            *latch = None; // release the latch before the pin
            frame.pins.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

impl BufferPool {
    /// A pool of `capacity` frames (clamped to at least 2, so one pinned
    /// page can never wedge the pool). A capacity of **zero** selects the
    /// pool-less direct mode: reads and installs go straight to the file
    /// with no caching, no eviction, and no stats accounting — the fast
    /// path for workloads that want no pool at all.
    pub fn new(capacity: usize) -> BufferPool {
        let capacity = if capacity == 0 { 0 } else { capacity.max(2) };
        BufferPool {
            frames: (0..capacity)
                .map(|_| Frame {
                    data: RwLock::new(vec![0u8; PAGE_SIZE].into_boxed_slice()),
                    pins: AtomicU32::new(0),
                    page: AtomicU32::new(NO_PAGE),
                    dirty: AtomicBool::new(false),
                    referenced: AtomicBool::new(false),
                })
                .collect(),
            map: Mutex::new(MapState::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            writebacks: AtomicU64::new(0),
        }
    }

    /// Capacity in frames.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
        }
    }

    fn lock_map(&self) -> MutexGuard<'_, MapState> {
        // Map state stays consistent across a panic elsewhere; recover
        // from poisoning instead of propagating it.
        self.map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// True iff `page` is currently resident.
    pub fn is_resident(&self, page: PageId) -> bool {
        self.lock_map().map.contains_key(&page)
    }

    /// How many of `pages` are currently resident.
    pub fn resident_among(&self, pages: impl Iterator<Item = PageId>) -> usize {
        let m = self.lock_map();
        pages.filter(|p| m.map.contains_key(p)).count()
    }

    /// Total outstanding pins across all frames (test/diagnostic hook:
    /// returns to zero when no guards are live).
    pub fn pinned_frames(&self) -> u64 {
        self.frames
            .iter()
            .map(|f| f.pins.load(Ordering::SeqCst) as u64)
            .sum()
    }

    /// Under the map lock: sweep the clock for an evictable frame —
    /// unpinned, second chance spent, exclusive latch available without
    /// waiting. Claims the dirty bit (see module docs) and returns the
    /// latch, the frame index, the displaced page (if any), and whether
    /// its bytes still need writing back.
    #[allow(clippy::type_complexity)]
    fn victim(
        &self,
        m: &mut MapState,
    ) -> Result<(usize, RwLockWriteGuard<'_, Box<[u8]>>, Option<PageId>, bool)> {
        for _ in 0..3 * self.frames.len() {
            let i = m.clock;
            m.clock = (m.clock + 1) % self.frames.len();
            let f = &self.frames[i];
            if f.pins.load(Ordering::SeqCst) != 0 {
                continue;
            }
            if f.referenced.swap(false, Ordering::SeqCst) {
                continue;
            }
            let g = match f.data.try_write() {
                Ok(g) => g,
                Err(TryLockError::Poisoned(p)) => p.into_inner(),
                Err(TryLockError::WouldBlock) => continue,
            };
            let old = match f.page.load(Ordering::SeqCst) {
                NO_PAGE => None,
                p => Some(p),
            };
            let was_dirty = f.dirty.swap(false, Ordering::SeqCst);
            return Ok((i, g, old, was_dirty));
        }
        Err(ModelError::Io(format!(
            "buffer pool exhausted: all {} frames pinned",
            self.frames.len()
        )))
    }

    /// Under the map lock: displace `old` (if any) and map `page` to the
    /// claimed frame. Returns whether an eviction happened — the caller
    /// bumps the stats counter *after* releasing the map lock.
    fn publish(&self, m: &mut MapState, idx: usize, old: Option<PageId>, page: PageId) -> bool {
        let evicted = match old {
            Some(old) => {
                m.map.remove(&old);
                true
            }
            None => false,
        };
        m.map.insert(page, idx);
        self.frames[idx].page.store(page, Ordering::SeqCst);
        self.frames[idx].referenced.store(true, Ordering::SeqCst);
        evicted
    }

    /// Undo a published mapping after a failed fault-in, so waiters
    /// re-fault instead of reading a torn frame. Called while the caller
    /// still holds the frame's exclusive latch.
    fn unpublish(&self, idx: usize, page: PageId) {
        let mut m = self.lock_map();
        if m.map.get(&page) == Some(&idx) {
            m.map.remove(&page);
            self.frames[idx].page.store(NO_PAGE, Ordering::SeqCst);
        }
    }

    /// Latch `page` for reading, faulting it in from `file` on a miss.
    pub fn read<'a>(&'a self, page: PageId, file: &PagedFile) -> Result<PageRead<'a>> {
        if self.frames.is_empty() {
            // Direct mode: no frames, no map, no accounting.
            let mut buf = vec![0u8; PAGE_SIZE].into_boxed_slice();
            file.read_page(page, &mut buf)?;
            return Ok(PageRead {
                inner: ReadInner::Direct(buf),
            });
        }
        loop {
            let mut m = self.lock_map();
            if let Some(&idx) = m.map.get(&page) {
                let f = &self.frames[idx];
                f.pins.fetch_add(1, Ordering::SeqCst);
                f.referenced.store(true, Ordering::SeqCst);
                drop(m);
                self.hits.fetch_add(1, Ordering::Relaxed);
                let g = f.data.read().unwrap_or_else(|e| e.into_inner());
                if f.page.load(Ordering::SeqCst) == page {
                    return Ok(PageRead {
                        inner: ReadInner::Pooled {
                            frame: f,
                            latch: Some(Latch::Shared(g)),
                        },
                    });
                }
                // The mapping moved between pinning and latching
                // (discard or a failed fault): retry from the top.
                drop(g);
                f.pins.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            let (idx, mut g, old, was_dirty) = self.victim(&mut m)?;
            let evicted = self.publish(&mut m, idx, old, page);
            let f = &self.frames[idx];
            f.pins.fetch_add(1, Ordering::SeqCst);
            drop(m);
            // Stats bumps stay fully outside the short map lock.
            self.misses.fetch_add(1, Ordering::Relaxed);
            if evicted {
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
            let res = (|| -> Result<()> {
                if was_dirty {
                    if let Some(old) = old {
                        file.write_page(old, &g)?;
                        self.writebacks.fetch_add(1, Ordering::Relaxed);
                    }
                }
                file.read_page(page, &mut g)
            })();
            if let Err(e) = res {
                self.unpublish(idx, page);
                drop(g);
                f.pins.fetch_sub(1, Ordering::SeqCst);
                return Err(e);
            }
            return Ok(PageRead {
                inner: ReadInner::Pooled {
                    frame: f,
                    latch: Some(Latch::Exclusive(g)),
                },
            });
        }
    }

    /// Install `page` with the given contents and mark it dirty (the
    /// page-writer path: freshly built data/overflow/catalog pages).
    /// Callers serialize installs against [`BufferPool::flush`] — the
    /// store's write lock does this.
    pub fn install(&self, page: PageId, bytes: &[u8], file: &PagedFile) -> Result<()> {
        if self.frames.is_empty() {
            // Direct mode: the write reaches the file immediately (the
            // commit's sync makes it durable), no frame bookkeeping at all.
            return file.write_page(page, bytes);
        }
        debug_assert_eq!(bytes.len(), PAGE_SIZE);
        let mut m = self.lock_map();
        if let Some(&idx) = m.map.get(&page) {
            // Rewriting a resident page in place. Pin under the map lock,
            // then wait for readers on the frame's exclusive latch.
            let f = &self.frames[idx];
            f.pins.fetch_add(1, Ordering::SeqCst);
            f.referenced.store(true, Ordering::SeqCst);
            drop(m);
            {
                let mut g = f.data.write().unwrap_or_else(|e| e.into_inner());
                g.copy_from_slice(bytes);
                f.dirty.store(true, Ordering::SeqCst);
            }
            f.pins.fetch_sub(1, Ordering::SeqCst);
            return Ok(());
        }
        let (idx, mut g, old, was_dirty) = self.victim(&mut m)?;
        let evicted = self.publish(&mut m, idx, old, page);
        let f = &self.frames[idx];
        f.pins.fetch_add(1, Ordering::SeqCst);
        drop(m);
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        let res = (|| -> Result<()> {
            if was_dirty {
                if let Some(old) = old {
                    file.write_page(old, &g)?;
                    self.writebacks.fetch_add(1, Ordering::Relaxed);
                }
            }
            Ok(())
        })();
        let out = match res {
            Ok(()) => {
                g.copy_from_slice(bytes);
                f.dirty.store(true, Ordering::SeqCst);
                Ok(())
            }
            Err(e) => {
                self.unpublish(idx, page);
                Err(e)
            }
        };
        drop(g);
        f.pins.fetch_sub(1, Ordering::SeqCst);
        out
    }

    /// Write every dirty resident page back to the file (the first half of
    /// the commit point). Serialized with installs by the caller;
    /// concurrent readers are unaffected (the latch taken per page is
    /// shared).
    pub fn flush(&self, file: &PagedFile) -> Result<()> {
        let m = self.lock_map();
        for f in &self.frames {
            let page = f.page.load(Ordering::SeqCst);
            if page == NO_PAGE || !f.dirty.swap(false, Ordering::SeqCst) {
                continue;
            }
            let g = f.data.read().unwrap_or_else(|e| e.into_inner());
            file.write_page(page, &g)?;
            self.writebacks.fetch_add(1, Ordering::Relaxed);
        }
        drop(m);
        Ok(())
    }

    /// Drop any resident copies of `pages` without writing them back —
    /// called when pages join the free list, so a later reuse of the id
    /// starts from a clean slate. In-flight guards on a discarded page
    /// stay valid (the frame's bytes are untouched until reclaimed).
    pub fn discard(&self, pages: impl Iterator<Item = PageId>) {
        let mut m = self.lock_map();
        for p in pages {
            if let Some(idx) = m.map.remove(&p) {
                let f = &self.frames[idx];
                f.page.store(NO_PAGE, Ordering::SeqCst);
                f.dirty.store(false, Ordering::SeqCst);
                f.referenced.store(false, Ordering::SeqCst);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::{Path, PathBuf};

    fn scratch(name: &str) -> PathBuf {
        let p =
            std::env::temp_dir().join(format!("tmql-pool-test-{}-{name}.tmdb", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    /// A file whose pages 1..=n hold recognizable byte patterns.
    fn file_with_pages(path: &Path, n: u8) -> PagedFile {
        let file = PagedFile::create(path).unwrap();
        file.write_page(0, &[0u8; PAGE_SIZE]).unwrap();
        for pid in 1..=n {
            file.write_page(pid as PageId, &[pid; PAGE_SIZE]).unwrap();
        }
        file
    }

    #[test]
    fn hits_and_misses_counted() {
        let path = scratch("hits");
        let file = file_with_pages(&path, 3);
        let pool = BufferPool::new(4);
        {
            let g = pool.read(1, &file).unwrap();
            assert_eq!(g[0], 1);
        }
        {
            let g = pool.read(1, &file).unwrap();
            assert_eq!(g[0], 1);
        }
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!(pool.is_resident(1));
        assert_eq!(pool.resident_among([1u32, 2, 3].into_iter()), 1);
        assert_eq!(pool.pinned_frames(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn eviction_writes_back_and_refaults() {
        let path = scratch("evict");
        let file = file_with_pages(&path, 3);
        let pool = BufferPool::new(2);
        // Install a dirty page 1, then evict it by faulting 2 and 3.
        pool.install(1, &[0xAA; PAGE_SIZE], &file).unwrap();
        let _ = pool.read(2, &file).unwrap();
        let _ = pool.read(3, &file).unwrap();
        assert!(!pool.is_resident(1), "page 1 was evicted");
        let s = pool.stats();
        assert!(s.evictions >= 1, "{s:?}");
        assert_eq!(s.writebacks, 1, "dirty page written back on eviction");
        // Refault: the written-back bytes come back from the file.
        let g = pool.read(1, &file).unwrap();
        assert_eq!(g[0], 0xAA);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn pinned_frames_survive_eviction_pressure() {
        let path = scratch("pin");
        let file = file_with_pages(&path, 4);
        let pool = BufferPool::new(2);
        let g1 = pool.read(1, &file).unwrap();
        let _ = pool.read(2, &file).unwrap();
        let _ = pool.read(3, &file).unwrap();
        let _ = pool.read(4, &file).unwrap();
        assert!(pool.is_resident(1), "pinned page was never evicted");
        assert_eq!(g1[0], 1);
        drop(g1);
        assert_eq!(pool.pinned_frames(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn all_pinned_is_an_error_not_a_panic() {
        let path = scratch("wedge");
        let file = file_with_pages(&path, 3);
        let pool = BufferPool::new(2);
        let _g1 = pool.read(1, &file).unwrap();
        let _g2 = pool.read(2, &file).unwrap();
        let err = pool.read(3, &file).unwrap_err();
        assert!(matches!(err, ModelError::Io(_)), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flush_clears_dirt() {
        let path = scratch("flush");
        let file = file_with_pages(&path, 1);
        let pool = BufferPool::new(2);
        pool.install(1, &[0xBB; PAGE_SIZE], &file).unwrap();
        pool.flush(&file).unwrap();
        assert_eq!(pool.stats().writebacks, 1);
        // A second flush writes nothing new.
        pool.flush(&file).unwrap();
        assert_eq!(pool.stats().writebacks, 1);
        let mut buf = vec![0u8; PAGE_SIZE];
        file.read_page(1, &mut buf).unwrap();
        assert_eq!(buf[0], 0xBB, "flush reached the file");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn discard_forgets_pages_without_writeback() {
        let path = scratch("discard");
        let file = file_with_pages(&path, 1);
        let pool = BufferPool::new(2);
        pool.install(1, &[0xCC; PAGE_SIZE], &file).unwrap();
        pool.discard([1u32].into_iter());
        assert!(!pool.is_resident(1));
        pool.flush(&file).unwrap();
        assert_eq!(pool.stats().writebacks, 0, "discarded dirt is not flushed");
        let mut buf = vec![0u8; PAGE_SIZE];
        file.read_page(1, &mut buf).unwrap();
        assert_eq!(buf[0], 1, "file bytes untouched");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn zero_capacity_pool_is_direct_io() {
        let path = scratch("direct");
        let file = file_with_pages(&path, 3);
        let pool = BufferPool::new(0);
        assert_eq!(pool.capacity(), 0);
        {
            let g = pool.read(2, &file).unwrap();
            assert_eq!(g[0], 2);
            assert_eq!(g.len(), PAGE_SIZE);
        }
        // Nothing is cached and nothing is accounted.
        assert!(!pool.is_resident(2));
        assert_eq!(pool.stats(), PoolStats::default());
        assert_eq!(pool.pinned_frames(), 0);
        // Installs write straight through; flush has nothing to do.
        pool.install(1, &[0xDD; PAGE_SIZE], &file).unwrap();
        pool.flush(&file).unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        file.read_page(1, &mut buf).unwrap();
        assert_eq!(buf[0], 0xDD);
        assert_eq!(pool.read(1, &file).unwrap()[0], 0xDD);
        pool.discard([1u32].into_iter());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_scans_share_a_tiny_pool() {
        // The satellite stress test: N threads hammer a 4-frame pool over
        // 8 pages; every read sees the right bytes, the hit/miss counters
        // account for every request, and all pins return to zero.
        const THREADS: usize = 8;
        const ITERS: usize = 200;
        const PAGES: u8 = 8;
        let path = scratch("stress");
        let file = file_with_pages(&path, PAGES);
        let pool = BufferPool::new(4);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let pool = &pool;
                let file = &file;
                s.spawn(move || {
                    for i in 0..ITERS {
                        let pid = ((t * 31 + i * 7) % PAGES as usize + 1) as PageId;
                        let g = pool.read(pid, file).unwrap();
                        assert_eq!(g[0], pid as u8, "torn read of page {pid}");
                        assert_eq!(g[PAGE_SIZE - 1], pid as u8);
                    }
                });
            }
        });
        let s = pool.stats();
        assert_eq!(
            s.hits + s.misses,
            (THREADS * ITERS) as u64,
            "no lost hits/misses: {s:?}"
        );
        assert_eq!(pool.pinned_frames(), 0, "all pins released");
        let _ = std::fs::remove_file(&path);
    }
}
