//! Disk-backed table storage: slotted pages, a buffer pool, and a
//! persistent catalog.
//!
//! This is the tier that lifts the base-data ceiling: where the spill
//! machinery ([`crate::spill`]) bounds *operator state*, the pager bounds
//! *stored tables*. A database is one file of fixed-size
//! [pages](page::PAGE_SIZE); registered tables are written as slotted
//! [data pages](page) (reusing the spill crate's Record/Value codec, so
//! the full complex-object universe round-trips bit-exactly), faulted in
//! on demand through a fixed-capacity, **latch-based concurrent**
//! [`BufferPool`] with clock eviction, atomic pin counts, and dirty
//! write-back, and described by a [catalog image](image::CatalogImage)
//! whose header-last commit makes register/replace durable. Pages a
//! replace displaces join a header-resident free list at that same commit
//! and are reused by later writes.
//!
//! The pieces:
//!
//! * [`page`] — byte-level slotted/overflow page layout;
//! * [`pool`] — the buffer pool ([`BufferPool`], [`PoolStats`]);
//! * [`store`] — the database file, extents, and the [`PagedStore`]
//!   façade tables and the catalog share;
//! * [`image`] — the persisted catalog blob (schema + extents + stats).

pub mod image;
pub mod page;
pub mod pool;
pub mod store;

pub use image::{CatalogImage, IndexImage, TableImage};
pub use page::{PageId, PAGE_SIZE};
pub use pool::{BufferPool, PoolStats};
pub use store::{PagedStore, TableExtent, DEFAULT_POOL_PAGES, DEFAULT_WAL_CHECKPOINT_BYTES};
