//! Slotted pages: the byte-level layout of one fixed-size disk page.
//!
//! Two page kinds share the [`PAGE_SIZE`] frame:
//!
//! * **Data pages** hold records in the classic slotted layout: a small
//!   header, a slot directory growing forward from the header, and record
//!   payloads growing backward from the end of the page. Each slot is
//!   either *inline* (offset + length of an encoded record within this
//!   page) or an *overflow reference* (first overflow page id + total
//!   byte length) for records too large to inline.
//! * **Overflow pages** hold one chunk of an oversized record's bytes
//!   plus the id of the next page in the chain (`NO_PAGE` terminates).
//!
//! All accessors validate offsets against the buffer and return
//! [`ModelError::Io`] on malformed bytes — a corrupted or truncated page
//! surfaces as an error, never a panic or out-of-bounds read.

use tmql_model::{ModelError, Result};

/// Size of one page in bytes. 8 KiB balances slot overhead against
/// read amplification for the small complex-object records the TM
/// workloads store.
pub const PAGE_SIZE: usize = 8192;

/// Page identifier: an offset into the database file in [`PAGE_SIZE`]
/// units. Page 0 is the file header and is never handed out, so 0 doubles
/// as the null sentinel [`NO_PAGE`].
pub type PageId = u32;

/// Null page id (the header page is never referenced as data).
pub const NO_PAGE: PageId = 0;

/// Page-kind tag of a data (slotted) page.
pub const KIND_DATA: u8 = 1;
/// Page-kind tag of an overflow (record continuation) page.
pub const KIND_OVERFLOW: u8 = 2;

/// Data-page header: kind (1) + pad (1) + slot count (2) + free offset (2).
const DATA_HDR: usize = 6;
/// One slot directory entry: payload offset (2) + flags/length (2).
const SLOT_BYTES: usize = 4;
/// Overflow-page header: kind (1) + pad (1) + next page (4) + length (2).
const OVF_HDR: usize = 8;
/// High bit of a slot's length word marks an overflow reference.
const OVERFLOW_FLAG: u16 = 0x8000;
/// Byte size of an overflow reference payload: first page (4) + total (4).
const OVF_REF_BYTES: usize = 8;

/// Largest record payload that can be stored inline in a data page slot
/// (bounded by the 15 length bits and by what fits next to the header and
/// one slot).
pub const MAX_INLINE: usize = PAGE_SIZE - DATA_HDR - SLOT_BYTES;

/// Byte capacity of one overflow page.
pub const OVF_CAPACITY: usize = PAGE_SIZE - OVF_HDR;

const _: () = assert!(MAX_INLINE < OVERFLOW_FLAG as usize, "length fits 15 bits");

fn get_u16(buf: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([buf[at], buf[at + 1]])
}

fn put_u16(buf: &mut [u8], at: usize, v: u16) {
    buf[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

fn get_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]])
}

fn put_u32(buf: &mut [u8], at: usize, v: u32) {
    buf[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

fn corrupt(what: &str) -> ModelError {
    ModelError::Io(format!("corrupted page: {what}"))
}

/// The page-kind tag (first byte).
pub fn kind(buf: &[u8]) -> u8 {
    buf[0]
}

// ---------------------------------------------------------------------------
// Data pages
// ---------------------------------------------------------------------------

/// Initialize `buf` as an empty data page.
pub fn init_data(buf: &mut [u8]) {
    buf[..DATA_HDR].fill(0);
    buf[0] = KIND_DATA;
    put_u16(buf, 4, PAGE_SIZE as u16); // free offset: payloads grow down
}

/// Number of slots in a data page.
pub fn slot_count(buf: &[u8]) -> usize {
    get_u16(buf, 2) as usize
}

fn free_off(buf: &[u8]) -> usize {
    let off = get_u16(buf, 4) as usize;
    // A fresh page stores PAGE_SIZE, which wraps to 0 in u16 only if
    // PAGE_SIZE were 65536; at 8192 the raw value is exact.
    off
}

/// Free bytes between the slot directory and the payload region.
pub fn free_space(buf: &[u8]) -> usize {
    free_off(buf).saturating_sub(DATA_HDR + SLOT_BYTES * slot_count(buf))
}

/// True iff an inline payload of `len` bytes (plus its slot) fits.
pub fn fits_inline(buf: &[u8], len: usize) -> bool {
    len <= MAX_INLINE && free_space(buf) >= len + SLOT_BYTES
}

/// True iff an overflow reference (plus its slot) fits.
pub fn fits_overflow_ref(buf: &[u8]) -> bool {
    free_space(buf) >= OVF_REF_BYTES + SLOT_BYTES
}

fn push_slot(buf: &mut [u8], payload: &[u8], flags: u16) {
    let n = slot_count(buf);
    let off = free_off(buf) - payload.len();
    buf[off..off + payload.len()].copy_from_slice(payload);
    put_u16(buf, DATA_HDR + SLOT_BYTES * n, off as u16);
    put_u16(
        buf,
        DATA_HDR + SLOT_BYTES * n + 2,
        payload.len() as u16 | flags,
    );
    put_u16(buf, 2, (n + 1) as u16);
    put_u16(buf, 4, off as u16);
}

/// Append an inline record payload. The caller must have checked
/// [`fits_inline`].
pub fn push_inline(buf: &mut [u8], payload: &[u8]) {
    debug_assert!(fits_inline(buf, payload.len()));
    push_slot(buf, payload, 0);
}

/// Append an overflow reference to a record of `total` bytes whose chain
/// starts at `first`. The caller must have checked [`fits_overflow_ref`].
pub fn push_overflow_ref(buf: &mut [u8], first: PageId, total: u32) {
    debug_assert!(fits_overflow_ref(buf));
    let mut payload = [0u8; OVF_REF_BYTES];
    payload[..4].copy_from_slice(&first.to_le_bytes());
    payload[4..].copy_from_slice(&total.to_le_bytes());
    push_slot(buf, &payload, OVERFLOW_FLAG);
}

/// One resolved slot of a data page.
#[derive(Debug, PartialEq, Eq)]
pub enum SlotRef<'a> {
    /// The record's encoded bytes live inline in this page.
    Inline(&'a [u8]),
    /// The record's bytes live in an overflow chain.
    Overflow {
        /// First overflow page of the chain.
        first: PageId,
        /// Total byte length across the chain.
        total: u32,
    },
}

/// Resolve slot `i` of a data page, validating every offset.
pub fn slot(buf: &[u8], i: usize) -> Result<SlotRef<'_>> {
    if kind(buf) != KIND_DATA {
        return Err(corrupt("expected a data page"));
    }
    if i >= slot_count(buf) {
        return Err(corrupt("slot index out of range"));
    }
    let off = get_u16(buf, DATA_HDR + SLOT_BYTES * i) as usize;
    let lenflags = get_u16(buf, DATA_HDR + SLOT_BYTES * i + 2);
    let len = (lenflags & !OVERFLOW_FLAG) as usize;
    if off + len > PAGE_SIZE || off < DATA_HDR {
        return Err(corrupt("slot payload out of bounds"));
    }
    let payload = &buf[off..off + len];
    if lenflags & OVERFLOW_FLAG == 0 {
        return Ok(SlotRef::Inline(payload));
    }
    if len != OVF_REF_BYTES {
        return Err(corrupt("malformed overflow reference"));
    }
    Ok(SlotRef::Overflow {
        first: get_u32(payload, 0),
        total: get_u32(payload, 4),
    })
}

// ---------------------------------------------------------------------------
// Overflow pages
// ---------------------------------------------------------------------------

/// Initialize `buf` as an overflow page holding `data`, chaining to `next`.
pub fn init_overflow(buf: &mut [u8], next: PageId, data: &[u8]) {
    debug_assert!(data.len() <= OVF_CAPACITY);
    buf[..OVF_HDR].fill(0);
    buf[0] = KIND_OVERFLOW;
    put_u32(buf, 2, next);
    put_u16(buf, 6, data.len() as u16);
    buf[OVF_HDR..OVF_HDR + data.len()].copy_from_slice(data);
}

/// The next page in an overflow chain ([`NO_PAGE`] terminates).
pub fn ovf_next(buf: &[u8]) -> Result<PageId> {
    if kind(buf) != KIND_OVERFLOW {
        return Err(corrupt("expected an overflow page"));
    }
    Ok(get_u32(buf, 2))
}

/// The byte chunk stored in an overflow page.
pub fn ovf_data(buf: &[u8]) -> Result<&[u8]> {
    if kind(buf) != KIND_OVERFLOW {
        return Err(corrupt("expected an overflow page"));
    }
    let len = get_u16(buf, 6) as usize;
    if OVF_HDR + len > PAGE_SIZE {
        return Err(corrupt("overflow chunk out of bounds"));
    }
    Ok(&buf[OVF_HDR..OVF_HDR + len])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_slots_round_trip() {
        let mut buf = vec![0u8; PAGE_SIZE];
        init_data(&mut buf);
        assert_eq!(slot_count(&buf), 0);
        push_inline(&mut buf, b"hello");
        push_inline(&mut buf, b"world!");
        assert_eq!(slot_count(&buf), 2);
        assert_eq!(slot(&buf, 0).unwrap(), SlotRef::Inline(b"hello"));
        assert_eq!(slot(&buf, 1).unwrap(), SlotRef::Inline(b"world!"));
        assert!(slot(&buf, 2).is_err(), "out-of-range slot is an error");
    }

    #[test]
    fn page_fills_up_and_reports_it() {
        let mut buf = vec![0u8; PAGE_SIZE];
        init_data(&mut buf);
        let payload = vec![7u8; 1000];
        let mut pushed = 0;
        while fits_inline(&buf, payload.len()) {
            push_inline(&mut buf, &payload);
            pushed += 1;
        }
        assert_eq!(pushed, 8, "8 × (1000 + 4 slot bytes) fit in 8 KiB");
        assert!(!fits_inline(&buf, payload.len()));
        assert!(fits_inline(&buf, 16), "small records still fit");
    }

    #[test]
    fn overflow_refs_round_trip() {
        let mut buf = vec![0u8; PAGE_SIZE];
        init_data(&mut buf);
        push_overflow_ref(&mut buf, 42, 100_000);
        assert_eq!(
            slot(&buf, 0).unwrap(),
            SlotRef::Overflow {
                first: 42,
                total: 100_000
            }
        );
    }

    #[test]
    fn overflow_pages_round_trip() {
        let mut buf = vec![0u8; PAGE_SIZE];
        init_overflow(&mut buf, 9, b"chunk");
        assert_eq!(ovf_next(&buf).unwrap(), 9);
        assert_eq!(ovf_data(&buf).unwrap(), b"chunk");
    }

    #[test]
    fn corrupted_pages_error_not_panic() {
        let zeroed = vec![0u8; PAGE_SIZE];
        assert!(slot(&zeroed, 0).is_err(), "kind 0 is not a data page");
        assert!(ovf_next(&zeroed).is_err());

        let mut buf = vec![0u8; PAGE_SIZE];
        init_data(&mut buf);
        push_inline(&mut buf, b"ok");
        // Scribble the slot offset out of bounds.
        put_u16(&mut buf, 6, 0xFFFF);
        assert!(matches!(slot(&buf, 0), Err(ModelError::Io(_))));
    }
}
