//! The persisted catalog image: schema, table descriptors, and statistics
//! serialized into one blob (stored as a page chain by
//! [`super::store::PagedStore`]'s header-last catalog commit).
//!
//! Values (statistics min/max) reuse the spill codec
//! ([`crate::spill::encode_value`] / [`crate::spill::decode_value`]), so
//! the full complex-object universe — NaN floats included — round-trips
//! bit-exactly. Everything else (types, histograms, fractions) has a
//! straightforward tagged little-endian encoding; malformed bytes decode
//! to [`ModelError::Io`], never a panic.

use std::collections::BTreeMap;

use tmql_model::schema::{AttrDef, ClassDef, Schema, SortDef};
use tmql_model::{ModelError, Result, Ty, Value};

use super::page::PageId;
use super::store::TableExtent;
use crate::spill::{decode_value, encode_value};
use crate::stats::{ColumnStats, Histogram, TableStats};

/// One persisted table: its identity, schema, extent, and statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct TableImage {
    /// Extension name.
    pub name: String,
    /// Column schema in declaration order.
    pub columns: Vec<(String, Ty)>,
    /// Data pages on disk.
    pub extent: TableExtent,
    /// Statistics computed at registration.
    pub stats: TableStats,
}

/// One persisted secondary index: its identity plus the page chain
/// holding its encoded entries (see [`crate::index::encode_index`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexImage {
    /// Table the index is over.
    pub table: String,
    /// Indexed attribute.
    pub attr: String,
    /// Index kind (0 = ordered; reserved for future kinds).
    pub kind: u8,
    /// Head page of the entry chain ([`super::page::NO_PAGE`] when empty).
    pub first: PageId,
    /// Byte length of the encoded entries.
    pub len: u64,
}

/// The whole persisted catalog.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CatalogImage {
    /// The TM schema (classes and sorts).
    pub schema: Schema,
    /// All registered tables.
    pub tables: Vec<TableImage>,
    /// All secondary indexes. Encoded as a trailing section, so files
    /// written before indexes existed (which end at the tables) still
    /// decode; new files always carry the section, even when empty.
    pub indexes: Vec<IndexImage>,
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn w_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn w_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn w_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn w_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn w_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn w_str(out: &mut Vec<u8>, s: &str) {
    w_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

mod ty_tag {
    pub const BOOL: u8 = 0;
    pub const INT: u8 = 1;
    pub const FLOAT: u8 = 2;
    pub const STR: u8 = 3;
    pub const TUPLE: u8 = 4;
    pub const SET: u8 = 5;
    pub const LIST: u8 = 6;
    pub const VARIANT: u8 = 7;
    pub const CLASS: u8 = 8;
    pub const ANY: u8 = 9;
}

fn w_ty(out: &mut Vec<u8>, ty: &Ty) {
    match ty {
        Ty::Bool => w_u8(out, ty_tag::BOOL),
        Ty::Int => w_u8(out, ty_tag::INT),
        Ty::Float => w_u8(out, ty_tag::FLOAT),
        Ty::Str => w_u8(out, ty_tag::STR),
        Ty::Tuple(fields) => {
            w_u8(out, ty_tag::TUPLE);
            w_u32(out, fields.len() as u32);
            for (l, t) in fields {
                w_str(out, l);
                w_ty(out, t);
            }
        }
        Ty::Set(t) => {
            w_u8(out, ty_tag::SET);
            w_ty(out, t);
        }
        Ty::List(t) => {
            w_u8(out, ty_tag::LIST);
            w_ty(out, t);
        }
        Ty::Variant(alts) => {
            w_u8(out, ty_tag::VARIANT);
            w_u32(out, alts.len() as u32);
            for (l, t) in alts {
                w_str(out, l);
                w_ty(out, t);
            }
        }
        Ty::Class(n) => {
            w_u8(out, ty_tag::CLASS);
            w_str(out, n);
        }
        Ty::Any => w_u8(out, ty_tag::ANY),
    }
}

fn w_value(out: &mut Vec<u8>, v: &Value) {
    let mut bytes = Vec::new();
    encode_value(&mut bytes, v);
    w_u32(out, bytes.len() as u32);
    out.extend_from_slice(&bytes);
}

fn w_opt_value(out: &mut Vec<u8>, v: &Option<Value>) {
    match v {
        None => w_u8(out, 0),
        Some(v) => {
            w_u8(out, 1);
            w_value(out, v);
        }
    }
}

fn w_histogram(out: &mut Vec<u8>, h: &Option<Histogram>) {
    match h {
        None => w_u8(out, 0),
        Some(h) => {
            w_u8(out, 1);
            w_f64(out, h.lo);
            w_f64(out, h.hi);
            w_u32(out, h.counts.len() as u32);
            for &c in &h.counts {
                w_u64(out, c);
            }
            w_u64(out, h.total);
        }
    }
}

fn w_column_stats(out: &mut Vec<u8>, c: &ColumnStats) {
    w_u64(out, c.distinct as u64);
    w_opt_value(out, &c.min);
    w_opt_value(out, &c.max);
    w_f64(out, c.null_fraction);
    w_f64(out, c.set_valued_fraction);
    w_f64(out, c.empty_set_fraction);
    w_f64(out, c.avg_set_card);
    w_histogram(out, &c.histogram);
}

fn w_table_stats(out: &mut Vec<u8>, s: &TableStats) {
    w_u64(out, s.cardinality as u64);
    w_u32(out, s.columns.len() as u32);
    for (name, c) in &s.columns {
        w_str(out, name);
        w_column_stats(out, c);
    }
}

/// Serialize a catalog image into one blob.
pub fn encode_catalog(img: &CatalogImage) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    // Schema: classes then sorts.
    w_u32(&mut out, img.schema.classes().len() as u32);
    for c in img.schema.classes() {
        w_str(&mut out, &c.name);
        w_str(&mut out, &c.extension);
        w_u32(&mut out, c.attributes.len() as u32);
        for a in &c.attributes {
            w_str(&mut out, &a.name);
            w_ty(&mut out, &a.ty);
        }
    }
    w_u32(&mut out, img.schema.sorts().len() as u32);
    for s in img.schema.sorts() {
        w_str(&mut out, &s.name);
        w_ty(&mut out, &s.ty);
    }
    // Tables.
    w_u32(&mut out, img.tables.len() as u32);
    for t in &img.tables {
        w_str(&mut out, &t.name);
        w_u32(&mut out, t.columns.len() as u32);
        for (l, ty) in &t.columns {
            w_str(&mut out, l);
            w_ty(&mut out, ty);
        }
        w_u64(&mut out, t.extent.rows);
        w_u32(&mut out, t.extent.pages.len() as u32);
        for &(pid, rows) in &t.extent.pages {
            w_u32(&mut out, pid);
            w_u16(&mut out, rows);
        }
        w_table_stats(&mut out, &t.stats);
    }
    // Indexes (trailing section; absent in pre-index files).
    w_u32(&mut out, img.indexes.len() as u32);
    for ix in &img.indexes {
        w_str(&mut out, &ix.table);
        w_str(&mut out, &ix.attr);
        w_u8(&mut out, ix.kind);
        w_u32(&mut out, ix.first);
        w_u64(&mut out, ix.len);
    }
    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|e| *e <= self.buf.len())
            .ok_or_else(|| {
                ModelError::Io(format!("catalog decode: truncated blob (want {n} bytes)"))
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        std::str::from_utf8(self.take(n)?)
            .map(str::to_string)
            .map_err(|e| ModelError::Io(format!("catalog decode: invalid UTF-8: {e}")))
    }

    fn ty(&mut self) -> Result<Ty> {
        Ok(match self.u8()? {
            ty_tag::BOOL => Ty::Bool,
            ty_tag::INT => Ty::Int,
            ty_tag::FLOAT => Ty::Float,
            ty_tag::STR => Ty::Str,
            ty_tag::TUPLE => {
                let n = self.u32()? as usize;
                let mut fields = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let l = self.str()?;
                    fields.push((l, self.ty()?));
                }
                Ty::Tuple(fields)
            }
            ty_tag::SET => Ty::Set(Box::new(self.ty()?)),
            ty_tag::LIST => Ty::List(Box::new(self.ty()?)),
            ty_tag::VARIANT => {
                let n = self.u32()? as usize;
                let mut alts = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let l = self.str()?;
                    alts.push((l, self.ty()?));
                }
                Ty::Variant(alts)
            }
            ty_tag::CLASS => Ty::Class(self.str()?),
            ty_tag::ANY => Ty::Any,
            other => {
                return Err(ModelError::Io(format!(
                    "catalog decode: unknown type tag {other}"
                )))
            }
        })
    }

    fn value(&mut self) -> Result<Value> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        let (v, used) = decode_value(bytes)?;
        if used != n {
            return Err(ModelError::Io(
                "catalog decode: trailing value bytes".into(),
            ));
        }
        Ok(v)
    }

    fn opt_value(&mut self) -> Result<Option<Value>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.value()?)),
            other => Err(ModelError::Io(format!(
                "catalog decode: bad option tag {other}"
            ))),
        }
    }

    fn histogram(&mut self) -> Result<Option<Histogram>> {
        match self.u8()? {
            0 => Ok(None),
            1 => {
                let lo = self.f64()?;
                let hi = self.f64()?;
                let n = self.u32()? as usize;
                let mut counts = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    counts.push(self.u64()?);
                }
                let total = self.u64()?;
                Ok(Some(Histogram {
                    lo,
                    hi,
                    counts,
                    total,
                }))
            }
            other => Err(ModelError::Io(format!(
                "catalog decode: bad histogram tag {other}"
            ))),
        }
    }

    fn column_stats(&mut self) -> Result<ColumnStats> {
        Ok(ColumnStats {
            distinct: self.u64()? as usize,
            min: self.opt_value()?,
            max: self.opt_value()?,
            null_fraction: self.f64()?,
            set_valued_fraction: self.f64()?,
            empty_set_fraction: self.f64()?,
            avg_set_card: self.f64()?,
            histogram: self.histogram()?,
        })
    }

    fn table_stats(&mut self) -> Result<TableStats> {
        let cardinality = self.u64()? as usize;
        let n = self.u32()? as usize;
        let mut columns = BTreeMap::new();
        for _ in 0..n {
            let name = self.str()?;
            columns.insert(name, self.column_stats()?);
        }
        Ok(TableStats {
            cardinality,
            columns,
        })
    }
}

/// Decode a catalog blob (the inverse of [`encode_catalog`]).
pub fn decode_catalog(blob: &[u8]) -> Result<CatalogImage> {
    let mut c = Cursor { buf: blob, pos: 0 };
    let mut schema = Schema::new();
    for _ in 0..c.u32()? {
        let name = c.str()?;
        let extension = c.str()?;
        let n_attrs = c.u32()? as usize;
        let mut attributes = Vec::with_capacity(n_attrs.min(4096));
        for _ in 0..n_attrs {
            let a = c.str()?;
            attributes.push(AttrDef::new(a, c.ty()?));
        }
        schema.add_class(ClassDef::new(name, extension, attributes))?;
    }
    for _ in 0..c.u32()? {
        let name = c.str()?;
        let ty = c.ty()?;
        schema.add_sort(SortDef { name, ty })?;
    }
    let n_tables = c.u32()? as usize;
    let mut tables = Vec::with_capacity(n_tables.min(4096));
    for _ in 0..n_tables {
        let name = c.str()?;
        let n_cols = c.u32()? as usize;
        let mut columns = Vec::with_capacity(n_cols.min(4096));
        for _ in 0..n_cols {
            let l = c.str()?;
            columns.push((l, c.ty()?));
        }
        let rows = c.u64()?;
        let n_pages = c.u32()? as usize;
        let mut pages = Vec::with_capacity(n_pages.min(1 << 20));
        for _ in 0..n_pages {
            let pid = c.u32()?;
            pages.push((pid, c.u16()?));
        }
        let stats = c.table_stats()?;
        tables.push(TableImage {
            name,
            columns,
            extent: TableExtent { pages, rows },
            stats,
        });
    }
    // Index section: files written before indexes existed end exactly at
    // the tables, so only read it when bytes remain.
    let mut indexes = Vec::new();
    if c.pos < blob.len() {
        let n = c.u32()? as usize;
        indexes.reserve(n.min(4096));
        for _ in 0..n {
            let table = c.str()?;
            let attr = c.str()?;
            let kind = c.u8()?;
            let first = c.u32()?;
            let len = c.u64()?;
            indexes.push(IndexImage {
                table,
                attr,
                kind,
                first,
                len,
            });
        }
    }
    if c.pos != blob.len() {
        return Err(ModelError::Io(format!(
            "catalog decode: {} trailing bytes",
            blob.len() - c.pos
        )));
    }
    Ok(CatalogImage {
        schema,
        tables,
        indexes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::int_table;
    use tmql_model::schema::paper_schema;

    #[test]
    fn catalog_image_round_trips() {
        let t = int_table("R", &["a", "b"], &[&[1, 10], &[2, 10], &[3, 20]]);
        let stats = TableStats::compute(&t);
        let img = CatalogImage {
            schema: paper_schema(),
            tables: vec![TableImage {
                name: "R".into(),
                columns: t.columns().to_vec(),
                extent: TableExtent {
                    pages: vec![(1, 2), (2, 1)],
                    rows: 3,
                },
                stats,
            }],
            indexes: vec![IndexImage {
                table: "R".into(),
                attr: "b".into(),
                kind: 0,
                first: 7,
                len: 123,
            }],
        };
        let blob = encode_catalog(&img);
        let back = decode_catalog(&blob).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn pre_index_blobs_still_decode() {
        // A blob that ends at the tables section (how pre-index files
        // look) must decode to an index-less image.
        let img = CatalogImage {
            schema: paper_schema(),
            ..CatalogImage::default()
        };
        let mut blob = encode_catalog(&img);
        blob.truncate(blob.len() - 4); // drop the (empty) index section
        let back = decode_catalog(&blob).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn nan_min_max_survive_the_round_trip() {
        let mut stats = TableStats {
            cardinality: 1,
            columns: BTreeMap::new(),
        };
        stats.columns.insert(
            "x".into(),
            ColumnStats {
                distinct: 1,
                min: Some(Value::Float(f64::NAN)),
                max: Some(Value::Float(f64::NAN)),
                null_fraction: 0.0,
                set_valued_fraction: 0.0,
                empty_set_fraction: 0.0,
                avg_set_card: 0.0,
                histogram: None,
            },
        );
        let img = CatalogImage {
            schema: Schema::new(),
            tables: vec![TableImage {
                name: "N".into(),
                columns: vec![("x".into(), Ty::Float)],
                extent: TableExtent::default(),
                stats,
            }],
            indexes: Vec::new(),
        };
        let back = decode_catalog(&encode_catalog(&img)).unwrap();
        match &back.tables[0].stats.columns["x"].min {
            Some(Value::Float(f)) => assert!(f.is_nan()),
            other => panic!("expected NaN min, got {other:?}"),
        }
    }

    #[test]
    fn garbage_blobs_error_not_panic() {
        assert!(decode_catalog(&[1, 2, 3]).is_err());
        let mut blob = encode_catalog(&CatalogImage::default());
        blob.push(0);
        assert!(
            decode_catalog(&blob).is_err(),
            "trailing bytes are an error"
        );
    }
}
