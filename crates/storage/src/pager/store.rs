//! The paged database file and the store façade over it.
//!
//! One database is one file. Page 0 is the header (magic, page size, the
//! allocation watermark, the free list, and a pointer to the current
//! catalog chain); every other page is a [data or overflow](super::page)
//! page reached through the [`BufferPool`]. Tables occupy *extents* —
//! ordered lists of data pages, each knowing how many rows it holds — so a
//! scan cursor can map a row offset to a page without touching earlier
//! pages. A sidecar write-ahead log (`<db>.wal`, [`crate::wal`]) makes
//! commits durable before any page write-back.
//!
//! # Concurrency
//!
//! Reads ([`PagedStore::read_rows`]) are fully concurrent: the file uses
//! positional I/O (`&self`), and the pool is latch-based (see
//! [`super::pool`]), so parallel scan morsels share the store without a
//! global lock. Writers ([`PagedStore::write_table`],
//! [`PagedStore::save_catalog`]) serialize on one write lock; the header
//! state (watermark + free list) sits behind its own small mutex.
//!
//! # Durability rules
//!
//! * Data and catalog pages are written through the pool; eviction and
//!   [`BufferPool::flush`] perform the actual file writes, at any time.
//! * A catalog update ([`PagedStore::save_catalog`]) is the commit point:
//!   every page the transaction wrote is appended to the WAL as a full
//!   image, followed by a commit record carrying the resulting header
//!   state, and the WAL is fsynced **before** the in-memory state
//!   advances. Nothing else need reach the database file for the commit
//!   to survive — redo on open replays the images.
//! * A **checkpoint** ([`PagedStore::checkpoint`], triggered when the
//!   WAL exceeds its threshold and on close) flushes all pages, syncs
//!   the file, rewrites the header to the committed state, syncs again,
//!   and only then truncates the WAL. A crash at any point leaves either
//!   a header or a WAL (or both) describing the last committed state.
//! * Pages freed by a commit (a replaced table's extent + overflow
//!   chains, superseded index chains, and the superseded catalog chain)
//!   are quarantined in a *pending* list and join the reusable **free
//!   list** only at the next checkpoint. The allocator therefore only
//!   ever writes pages that are dead in the checkpointed on-disk state,
//!   so eviction-time write-back of uncommitted pages can never corrupt
//!   what recovery reconstructs. The free list is minimal: it holds up
//!   to [`FREE_LIST_CAP`] page ids in the header page; anything past
//!   that is leaked until the database is copied
//!   ([`Table`](crate::Table) re-registration into a fresh file).
//! * Recovery on open scans the WAL, replays every committed
//!   transaction's page images in order, adopts the last commit's
//!   header state, and checkpoints. A torn or corrupt record stops the
//!   scan at the last valid commit; what follows is discarded and
//!   **reported** (see [`crate::wal::RecoveryReport`]), never silently
//!   dropped.

use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use tmql_model::{ModelError, Record, Result};

use super::image::{decode_catalog, encode_catalog, CatalogImage};
use super::page::{self, PageId, NO_PAGE, OVF_CAPACITY, PAGE_SIZE};
use super::pool::{BufferPool, PoolStats};
use crate::failpoint::{self, IoOp, WriteCheck};
use crate::spill::{decode_record, encode_record};
use crate::wal::{CommitRecord, RecoveryReport, Wal, WalActivity};

/// Default buffer-pool capacity in pages (2 MiB at the 8 KiB page size).
pub const DEFAULT_POOL_PAGES: usize = 256;

/// Default WAL size (bytes) past which a commit triggers a checkpoint.
/// Override per store with [`PagedStore::set_checkpoint_bytes`] or
/// process-wide with `TMQL_WAL_CHECKPOINT_BYTES` (read at open/create;
/// `1` forces a checkpoint after every commit — the starved-WAL test
/// setting).
pub const DEFAULT_WAL_CHECKPOINT_BYTES: u64 = 1 << 20;

const MAGIC: [u8; 4] = *b"TMQB";
const VERSION: u16 = 1;

/// Fixed header bytes before the free list (magic, version, page size,
/// watermark, catalog pointer + length).
const META_BYTES: usize = 26;

/// Maximum free-page ids the header page can record (the rest of the page
/// after the fixed fields, 4 bytes per id).
pub const FREE_LIST_CAP: usize = (PAGE_SIZE - META_BYTES - 4) / 4;

fn io_err(e: std::io::Error) -> ModelError {
    ModelError::Io(e.to_string())
}

fn checkpoint_bytes_from_env() -> u64 {
    std::env::var("TMQL_WAL_CHECKPOINT_BYTES")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(DEFAULT_WAL_CHECKPOINT_BYTES)
}

// ---------------------------------------------------------------------------
// The file
// ---------------------------------------------------------------------------

/// Raw page-granular I/O over the database file. Positional reads/writes
/// (`pread`/`pwrite`) take `&self`, so concurrent page faults never
/// serialize on a seek cursor. Every operation passes the
/// [`crate::failpoint`] seam, which is how the crash harness injects
/// kills and torn writes at each I/O boundary.
#[derive(Debug)]
pub struct PagedFile {
    file: File,
    path: PathBuf,
}

impl PagedFile {
    /// Create (truncating) a database file.
    pub fn create(path: &Path) -> Result<PagedFile> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(io_err)?;
        Ok(PagedFile {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Open an existing database file.
    pub fn open(path: &Path) -> Result<PagedFile> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(io_err)?;
        Ok(PagedFile {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Read page `pid` into `buf` (exactly one page).
    pub fn read_page(&self, pid: PageId, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        failpoint::check_read(&self.path)?;
        self.file
            .read_exact_at(buf, pid as u64 * PAGE_SIZE as u64)
            .map_err(|e| {
                if e.kind() == std::io::ErrorKind::UnexpectedEof {
                    ModelError::Io(format!("truncated database file: page {pid} is missing"))
                } else {
                    io_err(e)
                }
            })
    }

    /// Write page `pid` from `buf`.
    pub fn write_page(&self, pid: PageId, buf: &[u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        let allowed = match failpoint::check_write(&self.path, IoOp::PageWrite(pid), buf.len())? {
            WriteCheck::Full => buf.len(),
            WriteCheck::Torn(n) => n,
        };
        self.file
            .write_all_at(&buf[..allowed], pid as u64 * PAGE_SIZE as u64)
            .map_err(io_err)?;
        if allowed < buf.len() {
            return Err(ModelError::Io("injected crash (torn page write)".into()));
        }
        Ok(())
    }

    /// Force everything to stable storage.
    pub fn sync(&self) -> Result<()> {
        failpoint::check_sync(&self.path, IoOp::FileSync)?;
        self.file.sync_all().map_err(io_err)
    }
}

// ---------------------------------------------------------------------------
// Header / meta
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct Meta {
    /// Next never-allocated page id (page 0 is the header).
    next_page: PageId,
    /// First page of the current catalog chain ([`NO_PAGE`] when empty).
    catalog_first: PageId,
    /// Byte length of the current catalog blob.
    catalog_len: u64,
}

impl Meta {
    /// Encode the header page: fixed fields, then the free list
    /// (count + ids). Files written before the free list existed decode
    /// with `free_count == 0`, so the format version is unchanged.
    fn encode(&self, free: &[PageId]) -> Vec<u8> {
        debug_assert!(free.len() <= FREE_LIST_CAP);
        let mut buf = vec![0u8; PAGE_SIZE];
        buf[..4].copy_from_slice(&MAGIC);
        buf[4..6].copy_from_slice(&VERSION.to_le_bytes());
        buf[6..10].copy_from_slice(&(PAGE_SIZE as u32).to_le_bytes());
        buf[10..14].copy_from_slice(&self.next_page.to_le_bytes());
        buf[14..18].copy_from_slice(&self.catalog_first.to_le_bytes());
        buf[18..26].copy_from_slice(&self.catalog_len.to_le_bytes());
        buf[26..30].copy_from_slice(&(free.len() as u32).to_le_bytes());
        for (i, pid) in free.iter().enumerate() {
            let at = 30 + 4 * i;
            buf[at..at + 4].copy_from_slice(&pid.to_le_bytes());
        }
        buf
    }

    fn decode(buf: &[u8]) -> Result<(Meta, Vec<PageId>)> {
        if buf[..4] != MAGIC {
            return Err(ModelError::Io(
                "not a tmql database file (bad magic)".into(),
            ));
        }
        let version = u16::from_le_bytes([buf[4], buf[5]]);
        if version != VERSION {
            return Err(ModelError::Io(format!(
                "unsupported database format version {version} (this build reads {VERSION})"
            )));
        }
        let page_size = u32::from_le_bytes(buf[6..10].try_into().expect("4 bytes"));
        if page_size as usize != PAGE_SIZE {
            return Err(ModelError::Io(format!(
                "database page size {page_size} does not match this build's {PAGE_SIZE}"
            )));
        }
        let meta = Meta {
            next_page: u32::from_le_bytes(buf[10..14].try_into().expect("4 bytes")),
            catalog_first: u32::from_le_bytes(buf[14..18].try_into().expect("4 bytes")),
            catalog_len: u64::from_le_bytes(buf[18..26].try_into().expect("8 bytes")),
        };
        let free_count = u32::from_le_bytes(buf[26..30].try_into().expect("4 bytes")) as usize;
        if free_count > FREE_LIST_CAP {
            return Err(ModelError::Io(format!(
                "corrupted header: free list claims {free_count} pages"
            )));
        }
        let free = (0..free_count)
            .map(|i| {
                let at = 30 + 4 * i;
                u32::from_le_bytes(buf[at..at + 4].try_into().expect("4 bytes"))
            })
            .collect();
        Ok((meta, free))
    }
}

/// The begin-of-transaction snapshot a rollback restores.
#[derive(Debug)]
struct TxnSnapshot {
    meta: Meta,
    free: Vec<PageId>,
}

/// Header state: the allocation watermark plus the in-memory free list
/// and the transaction bookkeeping around them. Mutated only by writers
/// (serialized by the store's write lock).
#[derive(Debug)]
struct MetaState {
    meta: Meta,
    /// Pages reusable now: free in the checkpointed on-disk state.
    free: Vec<PageId>,
    /// Pages freed by WAL-committed transactions; they become reusable
    /// only at the next checkpoint (see the module's durability rules).
    pending_free: Vec<PageId>,
    /// Pages allocated (and therefore written) since the last commit —
    /// what the next commit logs to the WAL, and what a rollback
    /// discards.
    txn_pages: Vec<PageId>,
    /// Present while an explicit transaction is open.
    snapshot: Option<TxnSnapshot>,
}

impl MetaState {
    /// Allocate one page: reuse the free list before growing the file.
    fn alloc(&mut self) -> PageId {
        let pid = if let Some(pid) = self.free.pop() {
            pid
        } else {
            let pid = self.meta.next_page;
            self.meta.next_page += 1;
            pid
        };
        self.txn_pages.push(pid);
        pid
    }
}

// ---------------------------------------------------------------------------
// Extents
// ---------------------------------------------------------------------------

/// The on-disk footprint of one table: its data pages in scan order, each
/// with its row count (overflow chains hang off individual slots and are
/// not listed here).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TableExtent {
    /// `(page id, rows in page)` in scan order.
    pub pages: Vec<(PageId, u16)>,
    /// Total rows across all pages.
    pub rows: u64,
}

impl TableExtent {
    /// The extent's data page ids in scan order.
    pub fn page_ids(&self) -> impl Iterator<Item = PageId> + '_ {
        self.pages.iter().map(|(p, _)| *p)
    }

    /// Number of data pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }
}

/// In-progress table write: sealed pages plus the page being filled
/// (built in a local buffer, installed into the pool when sealed).
#[derive(Debug, Default)]
struct TableBuild {
    pages: Vec<(PageId, u16)>,
    cur: Option<(PageId, Box<[u8]>)>,
    rows_in_cur: u16,
    rows: u64,
}

// ---------------------------------------------------------------------------
// The thread-safe store
// ---------------------------------------------------------------------------

/// A shared handle to one paged database: the file, its buffer pool, its
/// write-ahead log, and its header state. Cloned freely via `Arc` —
/// every disk-backed [`crate::Table`] of a database holds one. Reads are
/// concurrent; writes serialize on an internal write lock (see the
/// module docs).
#[derive(Debug)]
pub struct PagedStore {
    file: PagedFile,
    pool: BufferPool,
    state: Mutex<MetaState>,
    /// Serializes writers (`write_table` / `save_catalog`); readers never
    /// take it. Also what makes pool installs/flushes single-threaded.
    write_lock: Mutex<()>,
    wal: Mutex<Wal>,
    /// WAL size past which a commit checkpoints.
    checkpoint_bytes: AtomicU64,
    /// Checkpoints taken since this store was opened.
    checkpoints: AtomicU64,
    /// What recovery found when this store was opened.
    recovery: RecoveryReport,
    path: PathBuf,
}

impl PagedStore {
    /// Create a fresh database file (and an empty write-ahead log,
    /// truncating any stale sidecar from a previous database at the
    /// same path).
    pub fn create(path: impl AsRef<Path>, pool_pages: usize) -> Result<Arc<PagedStore>> {
        let path = path.as_ref().to_path_buf();
        let file = PagedFile::create(&path)?;
        let meta = Meta {
            next_page: 1,
            catalog_first: NO_PAGE,
            catalog_len: 0,
        };
        file.write_page(0, &meta.encode(&[]))?;
        file.sync()?;
        let mut wal = Wal::open(&Wal::path_for(&path))?;
        if wal.bytes() > 0 {
            wal.reset()?;
        }
        Ok(Arc::new(PagedStore {
            file,
            pool: BufferPool::new(pool_pages),
            state: Mutex::new(MetaState {
                meta,
                free: Vec::new(),
                pending_free: Vec::new(),
                txn_pages: Vec::new(),
                snapshot: None,
            }),
            write_lock: Mutex::new(()),
            wal: Mutex::new(wal),
            checkpoint_bytes: AtomicU64::new(checkpoint_bytes_from_env()),
            checkpoints: AtomicU64::new(0),
            recovery: RecoveryReport {
                replayed_txns: 0,
                discarded_records: 0,
                discarded_bytes: 0,
            },
            path,
        }))
    }

    /// Open an existing database file without touching its catalog:
    /// scan the WAL, replay every committed transaction's page images,
    /// adopt the last commit's header state, and checkpoint.
    fn open_store(path: &Path, pool_pages: usize) -> Result<Arc<PagedStore>> {
        let file = PagedFile::open(path)?;
        let wal_path = Wal::path_for(path);
        let scan = Wal::scan(&wal_path)?;
        let mut buf = vec![0u8; PAGE_SIZE];
        let header = file
            .read_page(0, &mut buf)
            .and_then(|()| Meta::decode(&buf));
        // The WAL's last commit is always at least as new as the header
        // (checkpoints truncate the log only after the header is synced),
        // so prefer it — which also recovers from a torn header write,
        // as long as at least one commit survives in the log.
        let (meta, free) = match (header, scan.txns.last()) {
            (_, Some(last)) => (
                Meta {
                    next_page: last.commit.next_page,
                    catalog_first: last.commit.catalog_first,
                    catalog_len: last.commit.catalog_len,
                },
                last.commit.free.clone(),
            ),
            (Ok((meta, free)), None) => (meta, free),
            (Err(e), None) => return Err(e),
        };
        let pending_free: Vec<PageId> = scan
            .txns
            .iter()
            .flat_map(|t| t.commit.freed.iter().copied())
            .collect();
        for txn in &scan.txns {
            for (pid, image) in &txn.pages {
                file.write_page(*pid, image)?;
            }
        }
        let dirty = !scan.txns.is_empty() || scan.discarded_bytes > 0;
        let wal = Wal::open(&wal_path)?;
        let store = Arc::new(PagedStore {
            file,
            pool: BufferPool::new(pool_pages),
            state: Mutex::new(MetaState {
                meta,
                free,
                pending_free,
                txn_pages: Vec::new(),
                snapshot: None,
            }),
            write_lock: Mutex::new(()),
            wal: Mutex::new(wal),
            checkpoint_bytes: AtomicU64::new(checkpoint_bytes_from_env()),
            checkpoints: AtomicU64::new(0),
            recovery: RecoveryReport {
                replayed_txns: scan.txns.len(),
                discarded_records: scan.discarded_records,
                discarded_bytes: scan.discarded_bytes,
            },
            path: path.to_path_buf(),
        });
        if dirty {
            // Make the replay durable and truncate the log (discarding
            // any torn tail with it). Idempotent: a crash anywhere in
            // here just replays again on the next open.
            store.checkpoint()?;
        }
        Ok(store)
    }

    /// Open an existing database file and decode its persisted catalog.
    pub fn open(
        path: impl AsRef<Path>,
        pool_pages: usize,
    ) -> Result<(Arc<PagedStore>, CatalogImage)> {
        let store = PagedStore::open_store(path.as_ref(), pool_pages)?;
        let image = match store.read_catalog()? {
            Some(blob) => decode_catalog(&blob)?,
            None => CatalogImage::default(),
        };
        Ok((store, image))
    }

    fn state(&self) -> MutexGuard<'_, MetaState> {
        // A panic while holding the lock leaves no torn in-memory state we
        // could not keep using (the WAL commit protocol guards the file),
        // so recover from poisoning instead of propagating it.
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn write_lock(&self) -> MutexGuard<'_, ()> {
        self.write_lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn wal(&self) -> MutexGuard<'_, Wal> {
        self.wal
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The database file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn alloc(&self) -> PageId {
        self.state().alloc()
    }

    // -- transactions --------------------------------------------------------

    /// Start an explicit transaction: snapshot the header state so a
    /// rollback can restore it. Commit is [`PagedStore::save_catalog`]
    /// (whichever flavor), which clears the snapshot.
    pub(crate) fn begin_txn(&self) {
        let mut st = self.state();
        let snap = TxnSnapshot {
            meta: st.meta,
            free: st.free.clone(),
        };
        st.snapshot = Some(snap);
    }

    /// Abandon everything written since [`PagedStore::begin_txn`] (or
    /// since the last commit, for an auto-commit statement that failed):
    /// restore the header snapshot and drop the written pages from the
    /// pool so their frames never reach the file as live data.
    pub(crate) fn rollback_txn(&self) {
        let pages = {
            let mut st = self.state();
            if let Some(snap) = st.snapshot.take() {
                st.meta = snap.meta;
                st.free = snap.free;
            }
            std::mem::take(&mut st.txn_pages)
        };
        self.pool.discard(pages.into_iter());
    }

    /// Whether an explicit transaction snapshot is open.
    pub(crate) fn txn_open(&self) -> bool {
        self.state().snapshot.is_some()
    }

    // -- writing ------------------------------------------------------------

    fn start_data_page(&self, build: &mut TableBuild) {
        let pid = self.alloc();
        let mut buf = vec![0u8; PAGE_SIZE].into_boxed_slice();
        page::init_data(&mut buf);
        build.cur = Some((pid, buf));
        build.rows_in_cur = 0;
    }

    fn seal_data_page(&self, build: &mut TableBuild) -> Result<()> {
        if let Some((pid, buf)) = build.cur.take() {
            self.pool.install(pid, &buf, &self.file)?;
            build.pages.push((pid, build.rows_in_cur));
            build.rows_in_cur = 0;
        }
        Ok(())
    }

    /// Append one encoded record to an in-progress table build.
    fn append_row(&self, build: &mut TableBuild, rec: &Record) -> Result<()> {
        let bytes = encode_record(rec);
        if build.cur.is_none() {
            self.start_data_page(build);
        }
        if bytes.len() <= page::MAX_INLINE {
            if !page::fits_inline(&build.cur.as_ref().expect("open page").1, bytes.len()) {
                self.seal_data_page(build)?;
                self.start_data_page(build);
            }
            let (_, buf) = build.cur.as_mut().expect("open page");
            page::push_inline(buf, &bytes);
        } else {
            // Oversized record: spill its bytes into an overflow chain,
            // then reference the chain from the data page.
            let chunks: Vec<&[u8]> = bytes.chunks(OVF_CAPACITY).collect();
            let ids: Vec<PageId> = chunks.iter().map(|_| self.alloc()).collect();
            let mut ovf = vec![0u8; PAGE_SIZE].into_boxed_slice();
            for (i, chunk) in chunks.iter().enumerate() {
                let next = ids.get(i + 1).copied().unwrap_or(NO_PAGE);
                page::init_overflow(&mut ovf, next, chunk);
                self.pool.install(ids[i], &ovf, &self.file)?;
            }
            if !page::fits_overflow_ref(&build.cur.as_ref().expect("open page").1) {
                self.seal_data_page(build)?;
                self.start_data_page(build);
            }
            let (_, buf) = build.cur.as_mut().expect("open page");
            page::push_overflow_ref(buf, ids[0], bytes.len() as u32);
        }
        build.rows_in_cur += 1;
        build.rows += 1;
        Ok(())
    }

    /// Write a whole table and return its extent.
    pub fn write_table(&self, rows: &[Record]) -> Result<TableExtent> {
        let _w = self.write_lock();
        let mut build = TableBuild::default();
        for rec in rows {
            self.append_row(&mut build, rec)?;
        }
        let rows = build.rows;
        self.seal_data_page(&mut build)?;
        Ok(TableExtent {
            pages: build.pages,
            rows,
        })
    }

    // -- reading ------------------------------------------------------------

    /// Assemble the full bytes of an overflow chain starting at `first`.
    fn read_chain(&self, first: PageId, total: u32) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(total as usize);
        let mut pid = first;
        // A well-formed chain of `total` bytes spans at most this many
        // pages; anything longer (including zero-length-chunk cycles,
        // which never grow `out`) is corruption, not progress.
        let mut pages_left = total as usize / OVF_CAPACITY + 2;
        while pid != NO_PAGE {
            if out.len() > total as usize || pages_left == 0 {
                return Err(ModelError::Io(
                    "corrupted page: overflow chain too long".into(),
                ));
            }
            pages_left -= 1;
            let g = self.pool.read(pid, &self.file)?;
            out.extend_from_slice(page::ovf_data(&g)?);
            pid = page::ovf_next(&g)?;
        }
        if out.len() != total as usize {
            return Err(ModelError::Io(format!(
                "corrupted page: overflow chain holds {} bytes, expected {total}",
                out.len()
            )));
        }
        Ok(out)
    }

    /// The page ids of an overflow chain (same walk as [`read_chain`],
    /// without assembling the bytes) — the freeing side's enumeration.
    fn chain_pages(&self, first: PageId, total: u32, out: &mut Vec<PageId>) -> Result<()> {
        let mut pid = first;
        let mut pages_left = total as usize / OVF_CAPACITY + 2;
        while pid != NO_PAGE {
            if pages_left == 0 {
                return Err(ModelError::Io(
                    "corrupted page: overflow chain too long".into(),
                ));
            }
            pages_left -= 1;
            out.push(pid);
            let g = self.pool.read(pid, &self.file)?;
            pid = page::ovf_next(&g)?;
        }
        Ok(())
    }

    /// Read up to `n` decoded rows starting at row offset `start`.
    /// Fully concurrent: parallel scan morsels call this from worker
    /// threads against disjoint row ranges.
    pub fn read_rows(&self, extent: &TableExtent, start: usize, n: usize) -> Result<Vec<Record>> {
        let mut out = Vec::with_capacity(n.min(extent.rows as usize));
        let mut skip = start;
        for &(pid, rows_in_page) in &extent.pages {
            let rows_in_page = rows_in_page as usize;
            if skip >= rows_in_page {
                skip -= rows_in_page;
                continue;
            }
            if out.len() >= n {
                break;
            }
            // Copy the needed slots out under the page latch, then resolve
            // overflow chains (which fault other pages) with it released.
            enum Slot {
                Inline(Vec<u8>),
                Chain(PageId, u32),
            }
            let copied = {
                let g = self.pool.read(pid, &self.file)?;
                if page::kind(&g) != page::KIND_DATA || page::slot_count(&g) != rows_in_page {
                    return Err(ModelError::Io(format!(
                        "corrupted page: data page {pid} does not match the catalog extent"
                    )));
                }
                let take = (rows_in_page - skip).min(n - out.len());
                (skip..skip + take)
                    .map(|i| {
                        Ok(match page::slot(&g, i)? {
                            page::SlotRef::Inline(b) => Slot::Inline(b.to_vec()),
                            page::SlotRef::Overflow { first, total } => Slot::Chain(first, total),
                        })
                    })
                    .collect::<Result<Vec<Slot>>>()?
            };
            for slot in copied {
                let rec = match slot {
                    Slot::Inline(bytes) => decode_record(&bytes)?,
                    Slot::Chain(first, total) => decode_record(&self.read_chain(first, total)?)?,
                };
                out.push(rec);
            }
            skip = 0;
        }
        Ok(out)
    }

    /// Every page an extent owns: its data pages plus all overflow chains
    /// hanging off their slots. This is what a replace frees.
    pub fn extent_pages(&self, extent: &TableExtent) -> Result<Vec<PageId>> {
        let mut out: Vec<PageId> = extent.page_ids().collect();
        for &(pid, _) in &extent.pages {
            let mut chains = Vec::new();
            {
                let g = self.pool.read(pid, &self.file)?;
                for i in 0..page::slot_count(&g) {
                    if let page::SlotRef::Overflow { first, total } = page::slot(&g, i)? {
                        chains.push((first, total));
                    }
                }
            }
            for (first, total) in chains {
                self.chain_pages(first, total, &mut out)?;
            }
        }
        Ok(out)
    }

    // -- standalone blobs (index chains) ------------------------------------

    /// Write a standalone blob as an overflow-page chain and return its
    /// head page and byte length. **Not a commit**: the chain becomes
    /// durable only at the next catalog commit, whose WAL records carry
    /// the chain's pages and the moved watermark. A crash (or rollback)
    /// before that commit leaves the old catalog intact and the
    /// allocation is reclaimed — which is what makes index writes
    /// crash-safe.
    pub fn write_blob(&self, blob: &[u8]) -> Result<(PageId, u64)> {
        let _w = self.write_lock();
        if blob.is_empty() {
            return Ok((NO_PAGE, 0));
        }
        let chunks: Vec<&[u8]> = blob.chunks(OVF_CAPACITY).collect();
        let ids: Vec<PageId> = chunks.iter().map(|_| self.alloc()).collect();
        let mut buf = vec![0u8; PAGE_SIZE].into_boxed_slice();
        for (i, chunk) in chunks.iter().enumerate() {
            let next = ids.get(i + 1).copied().unwrap_or(NO_PAGE);
            page::init_overflow(&mut buf, next, chunk);
            self.pool.install(ids[i], &buf, &self.file)?;
        }
        Ok((ids[0], blob.len() as u64))
    }

    /// Read back a blob written by [`PagedStore::write_blob`].
    pub fn read_blob(&self, first: PageId, len: u64) -> Result<Vec<u8>> {
        if first == NO_PAGE {
            return Ok(Vec::new());
        }
        self.read_chain(first, len as u32)
    }

    /// The page ids of a blob chain — what freeing it hands back to the
    /// free list at a commit.
    pub fn blob_pages(&self, first: PageId, len: u64) -> Result<Vec<PageId>> {
        let mut out = Vec::new();
        if first != NO_PAGE {
            self.chain_pages(first, len as u32, &mut out)?;
        }
        Ok(out)
    }

    // -- committing ---------------------------------------------------------

    /// Persist a new catalog blob — the transaction commit. Every page
    /// written since the last commit is appended to the WAL as a full
    /// image, followed by a commit record with the resulting header
    /// state; the WAL fsync is the durability point. `freed` pages —
    /// plus the superseded catalog chain — are quarantined until the
    /// next checkpoint (see the module's durability rules).
    fn write_catalog(&self, blob: &[u8], mut freed: Vec<PageId>) -> Result<()> {
        let _w = self.write_lock();
        // The chain being superseded is freed by this commit too.
        let (old_first, old_len) = {
            let st = self.state();
            (st.meta.catalog_first, st.meta.catalog_len)
        };
        if old_first != NO_PAGE {
            self.chain_pages(old_first, old_len as u32, &mut freed)?;
        }
        // Write the new chain. Allocation draws on the *current* free
        // list (pages free in the checkpointed state) — never on `freed`
        // or the pending list, which recovery may still need intact.
        let mut first = NO_PAGE;
        if !blob.is_empty() {
            let chunks: Vec<&[u8]> = blob.chunks(OVF_CAPACITY).collect();
            let ids: Vec<PageId> = chunks.iter().map(|_| self.alloc()).collect();
            let mut buf = vec![0u8; PAGE_SIZE].into_boxed_slice();
            for (i, chunk) in chunks.iter().enumerate() {
                let next = ids.get(i + 1).copied().unwrap_or(NO_PAGE);
                page::init_overflow(&mut buf, next, chunk);
                self.pool.install(ids[i], &buf, &self.file)?;
            }
            first = ids[0];
        }
        freed.sort_unstable();
        freed.dedup();
        // Log every page this transaction wrote — minus pages it also
        // freed (created and dropped within the transaction), which no
        // committed state references — then the commit record itself.
        let (to_log, commit) = {
            let st = self.state();
            let mut pages = st.txn_pages.clone();
            pages.sort_unstable();
            pages.dedup();
            pages.retain(|p| freed.binary_search(p).is_err());
            let commit = CommitRecord {
                next_page: st.meta.next_page,
                catalog_first: first,
                catalog_len: blob.len() as u64,
                free: st.free.clone(),
                freed: freed.clone(),
            };
            (pages, commit)
        };
        {
            let mut wal = self.wal();
            for &pid in &to_log {
                let g = self.pool.read(pid, &self.file)?;
                wal.append_page(pid, &g)?;
            }
            wal.append_commit(&commit)?;
            // The durability point: after this fsync the transaction
            // survives any crash, before it none of it does.
            wal.sync()?;
        }
        {
            let mut st = self.state();
            st.meta.catalog_first = first;
            st.meta.catalog_len = blob.len() as u64;
            st.pending_free.extend(freed.iter().copied());
            st.txn_pages.clear();
            st.snapshot = None;
        }
        // Freed pages are dead in every state a recovery can produce
        // from here on; drop any resident copies so stale frames never
        // shadow later contents.
        self.pool.discard(freed.into_iter());
        // The commit is durable in the log; a checkpoint failure must
        // not un-commit it, so it is swallowed here and the checkpoint
        // retried at the next commit or at close.
        let _ = self.maybe_checkpoint_locked();
        Ok(())
    }

    /// Read the current catalog blob ([`None`] when the database is empty).
    fn read_catalog(&self) -> Result<Option<Vec<u8>>> {
        let (first, len) = {
            let st = self.state();
            (st.meta.catalog_first, st.meta.catalog_len)
        };
        if first == NO_PAGE {
            return Ok(None);
        }
        self.read_chain(first, len as u32).map(Some)
    }

    /// Persist the catalog image (the commit point of register/replace).
    pub fn save_catalog(&self, image: &CatalogImage) -> Result<()> {
        self.save_catalog_freeing(image, Vec::new())
    }

    /// Persist the catalog image, returning `freed` pages (a replaced
    /// table's extent and overflow chains) to the free list at the next
    /// checkpoint after the commit.
    pub fn save_catalog_freeing(&self, image: &CatalogImage, freed: Vec<PageId>) -> Result<()> {
        self.write_catalog(&encode_catalog(image), freed)
    }

    // -- checkpointing -------------------------------------------------------

    /// Checkpoint: flush all pages, sync the file, rewrite the header to
    /// the committed state (folding quarantined freed pages into the
    /// free list), sync again, then truncate the WAL. After it, the
    /// database file alone describes the last committed state.
    pub fn checkpoint(&self) -> Result<()> {
        let _w = self.write_lock();
        self.checkpoint_locked()
    }

    fn checkpoint_locked(&self) -> Result<()> {
        let idle = { self.wal().bytes() == 0 } && { self.state().pending_free.is_empty() };
        if idle {
            return Ok(());
        }
        self.pool.flush(&self.file)?;
        self.file.sync()?;
        {
            let mut st = self.state();
            let pending = std::mem::take(&mut st.pending_free);
            st.free.extend(pending);
            st.free.sort_unstable();
            st.free.dedup();
            if st.free.len() > FREE_LIST_CAP {
                // Minimal free list: overflow leaks until the database is
                // copied, exactly like the pre-free-list behavior.
                st.free.truncate(FREE_LIST_CAP);
            }
            self.file.write_page(0, &st.meta.encode(&st.free))?;
        }
        self.file.sync()?;
        self.wal().reset()?;
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn maybe_checkpoint_locked(&self) -> Result<()> {
        if self.wal().bytes() >= self.checkpoint_bytes.load(Ordering::Relaxed) {
            self.checkpoint_locked()
        } else {
            Ok(())
        }
    }

    /// Override the WAL-size checkpoint threshold for this store
    /// (`1` checkpoints after every commit, `u64::MAX` never
    /// auto-checkpoints — close still does).
    pub fn set_checkpoint_bytes(&self, bytes: u64) {
        self.checkpoint_bytes.store(bytes, Ordering::Relaxed);
    }

    /// Current WAL size in bytes (diagnostic/test hook).
    pub fn wal_bytes(&self) -> u64 {
        self.wal().bytes()
    }

    /// Snapshot of WAL activity since this store was opened, with the
    /// store's checkpoint count folded in.
    pub fn wal_activity(&self) -> WalActivity {
        let mut a = self.wal().activity();
        a.checkpoints_total = self.checkpoints.load(Ordering::Relaxed);
        a
    }

    /// `(reusable free pages, checkpoint-quarantined freed pages)` —
    /// the allocator free list and the `pending_free` quarantine that
    /// the next checkpoint folds into it.
    pub fn free_list_len(&self) -> (usize, usize) {
        let st = self.state();
        (st.free.len(), st.pending_free.len())
    }

    /// What recovery found when this store was opened.
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    // -- introspection ------------------------------------------------------

    /// Cumulative buffer-pool counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Buffer-pool capacity in pages.
    pub fn pool_pages(&self) -> usize {
        self.pool.capacity()
    }

    /// How many of the extent's data pages are currently resident — the
    /// cost model's input for pricing a cold vs. warm scan.
    pub fn resident_pages(&self, extent: &TableExtent) -> usize {
        self.pool.resident_among(extent.page_ids())
    }

    /// Total outstanding page pins (test/diagnostic hook).
    pub fn pinned_pages(&self) -> u64 {
        self.pool.pinned_frames()
    }
}

impl Drop for PagedStore {
    /// Best-effort clean shutdown: roll back any transaction left open
    /// (dropping a database mid-transaction aborts it), then checkpoint
    /// so the next open needs no replay. Errors are ignored — a failed
    /// close is exactly a crash, and recovery covers crashes.
    fn drop(&mut self) {
        if self.txn_open() {
            self.rollback_txn();
        }
        let _ = self.checkpoint();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failpoint::IoFailpoint;
    use tmql_model::Value;

    fn scratch(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!(
            "tmql-store-test-{}-{name}.tmdb",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        let _ = std::fs::remove_file(Wal::path_for(&p));
        p
    }

    fn int_rows(n: i64) -> Vec<Record> {
        (0..n)
            .map(|i| {
                Record::new([
                    ("a".to_string(), Value::Int(i)),
                    ("b".to_string(), Value::Int(i % 7)),
                ])
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn write_and_read_rows_across_pages() {
        let path = scratch("rw");
        let store = PagedStore::create(&path, 4).unwrap();
        let rows = int_rows(2000);
        let extent = store.write_table(&rows).unwrap();
        assert_eq!(extent.rows, 2000);
        assert!(extent.page_count() > 1, "2000 rows span multiple pages");
        // Sequential cursor reads reassemble the exact row sequence.
        let mut got = Vec::new();
        let mut pos = 0;
        loop {
            let batch = store.read_rows(&extent, pos, 300).unwrap();
            if batch.is_empty() {
                break;
            }
            pos += batch.len();
            got.extend(batch);
        }
        assert_eq!(got, rows);
        // Random-access batch in the middle.
        assert_eq!(store.read_rows(&extent, 1500, 5).unwrap(), rows[1500..1505]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn oversized_records_take_overflow_chains() {
        let path = scratch("ovf");
        let store = PagedStore::create(&path, 4).unwrap();
        // A record whose encoding far exceeds one page.
        let big = Record::new([(
            "s".to_string(),
            Value::Str(std::sync::Arc::from("x".repeat(3 * PAGE_SIZE))),
        )])
        .unwrap();
        let small = Record::new([("s".to_string(), Value::str("tiny"))]).unwrap();
        let rows = vec![small.clone(), big.clone(), small.clone()];
        let extent = store.write_table(&rows).unwrap();
        assert_eq!(store.read_rows(&extent, 0, 10).unwrap(), rows);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn catalog_blob_round_trips_through_reopen() {
        let path = scratch("cat");
        {
            let store = PagedStore::create(&path, 4).unwrap();
            store
                .write_catalog(&vec![9u8; 3 * OVF_CAPACITY + 17], Vec::new())
                .unwrap();
        }
        let store = PagedStore::open_store(&path, 4).unwrap();
        let blob = store.read_catalog().unwrap().expect("catalog present");
        assert_eq!(blob.len(), 3 * OVF_CAPACITY + 17);
        assert!(blob.iter().all(|&b| b == 9));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn commit_survives_a_crash_before_any_checkpoint() {
        // The WAL property in one test: commit, then "kill the process"
        // (a sticky failpoint fails the close-time checkpoint), reopen,
        // and the committed catalog is there — replayed from the log.
        let path = scratch("wal-replay");
        {
            let store = PagedStore::create(&path, 4).unwrap();
            store.set_checkpoint_bytes(u64::MAX);
            store
                .write_catalog(&vec![5u8; 2 * OVF_CAPACITY], Vec::new())
                .unwrap();
            let _fp = IoFailpoint::kill_at(&path, 0); // everything from here fails
            drop(store); // close-time checkpoint dies
        }
        let store = PagedStore::open_store(&path, 4).unwrap();
        assert_eq!(store.recovery().replayed_txns, 1);
        let blob = store.read_catalog().unwrap().expect("catalog replayed");
        assert_eq!(blob, vec![5u8; 2 * OVF_CAPACITY]);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(Wal::path_for(&path));
    }

    #[test]
    fn rollback_restores_watermark_and_free_list() {
        let path = scratch("rollback");
        let store = PagedStore::create(&path, 4).unwrap();
        let before = {
            let st = store.state();
            (st.meta.next_page, st.free.clone())
        };
        store.begin_txn();
        let _ = store.write_table(&int_rows(500)).unwrap();
        assert!(store.state().meta.next_page > before.0);
        store.rollback_txn();
        let after = {
            let st = store.state();
            (st.meta.next_page, st.free.clone())
        };
        assert_eq!(after, before, "rollback restores the allocation state");
        assert!(store.state().txn_pages.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cyclic_overflow_chain_errors_instead_of_hanging() {
        // Hand-craft a database whose catalog chain is a self-referential
        // overflow page with a zero-length chunk: the byte count never
        // grows, so only the page bound can stop the walk.
        let path = scratch("cycle");
        {
            let store = PagedStore::create(&path, 4).unwrap();
            let mut buf = vec![0u8; PAGE_SIZE];
            page::init_overflow(&mut buf, 1, b""); // page 1 → page 1, 0 bytes
            store.file.write_page(1, &buf).unwrap();
            let mut st = store.state();
            st.meta.next_page = 2;
            st.meta.catalog_first = 1;
            st.meta.catalog_len = 64;
            store.file.write_page(0, &st.meta.encode(&st.free)).unwrap();
            store.file.sync().unwrap();
        }
        let store = PagedStore::open_store(&path, 4).unwrap();
        let err = store.read_catalog().unwrap_err();
        assert!(matches!(err, ModelError::Io(_)), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_rejects_non_database_files() {
        let path = scratch("magic");
        std::fs::write(&path, vec![0u8; 2 * PAGE_SIZE]).unwrap();
        assert!(matches!(
            PagedStore::open_store(&path, 4),
            Err(ModelError::Io(_))
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_file_reads_error_not_panic() {
        let path = scratch("trunc");
        let extent;
        {
            let store = PagedStore::create(&path, 4).unwrap();
            extent = store.write_table(&int_rows(1000)).unwrap();
            store.write_catalog(b"x", Vec::new()).unwrap();
        } // close-time checkpoint flushes + syncs everything
          // Chop the file after the header: every data page is gone.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(PAGE_SIZE as u64).unwrap();
        drop(f);
        let store2 = PagedStore::open_store(&path, 4).unwrap();
        let err = store2.read_rows(&extent, 0, 10).unwrap_err();
        assert!(matches!(err, ModelError::Io(_)), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn pool_stats_reflect_scan_temperature() {
        let path = scratch("temp");
        let store = PagedStore::create(&path, 64).unwrap();
        let extent = store.write_table(&int_rows(2000)).unwrap();
        let before = store.pool_stats();
        let _ = store.read_rows(&extent, 0, 2000).unwrap();
        let warm = store.pool_stats();
        assert_eq!(
            warm.misses, before.misses,
            "freshly written pages are resident"
        );
        assert!(warm.hits > before.hits);
        assert_eq!(store.resident_pages(&extent), extent.page_count());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn free_list_round_trips_through_the_header() {
        let path = scratch("freelist-hdr");
        {
            let store = PagedStore::create(&path, 4).unwrap();
            let extent = store.write_table(&int_rows(500)).unwrap();
            let freed = store.extent_pages(&extent).unwrap();
            assert!(!freed.is_empty());
            store.write_catalog(b"v2", freed.clone()).unwrap();
            // Freed pages are quarantined until the checkpoint...
            assert!(store.state().free.is_empty());
            store.checkpoint().unwrap();
            // ...and reusable after it.
            assert_eq!(store.state().free.len(), freed.len());
        }
        let store = PagedStore::open_store(&path, 4).unwrap();
        assert!(
            !store.state().free.is_empty(),
            "free list survived the reopen"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replaces_reuse_freed_pages_keeping_file_size_bounded() {
        // The PR-5 leak, pinned shut: repeatedly replacing a table (write
        // new extent, then commit freeing the old one) must not grow the
        // file once the double-buffering steady state is reached. Includes
        // an oversized record so overflow chains are freed too. Each
        // iteration checkpoints, since only checkpointed pages recycle.
        let path = scratch("freelist-size");
        let store = PagedStore::create(&path, 8).unwrap();
        let mut rows = int_rows(600);
        rows.push(
            Record::new([(
                "s".to_string(),
                Value::Str(std::sync::Arc::from("y".repeat(2 * PAGE_SIZE))),
            )])
            .unwrap(),
        );
        let mut extent = store.write_table(&rows).unwrap();
        store.write_catalog(b"c0", Vec::new()).unwrap();
        store.checkpoint().unwrap();
        let size = |p: &PathBuf| std::fs::metadata(p).unwrap().len();
        let mut settled = 0;
        for i in 0..10 {
            let freed = store.extent_pages(&extent).unwrap();
            extent = store.write_table(&rows).unwrap();
            store.write_catalog(b"cx", freed).unwrap();
            store.checkpoint().unwrap();
            if i == 2 {
                settled = size(&path);
            }
        }
        assert_eq!(
            size(&path),
            settled,
            "replaces reuse freed pages instead of growing the file"
        );
        let _ = std::fs::remove_file(&path);
    }
}
