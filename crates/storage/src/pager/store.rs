//! The paged database file and the store façade over it.
//!
//! One database is one file. Page 0 is the header (magic, page size, the
//! allocation watermark, and a pointer to the current catalog chain);
//! every other page is a [data or overflow](super::page) page reached
//! through the [`BufferPool`]. Tables occupy *extents* — ordered lists of
//! data pages, each knowing how many rows it holds — so a scan cursor can
//! map a row offset to a page without touching earlier pages.
//!
//! # Durability rules
//!
//! * Data and catalog pages are written through the pool; eviction and
//!   [`BufferPool::flush`] perform the actual file writes.
//! * A catalog update ([`Pager::write_catalog`]) is the commit point: all
//!   dirty pages are flushed and synced **before** the header is
//!   rewritten to point at the new catalog chain, then the header is
//!   synced. A crash between the two leaves the previous catalog intact —
//!   readers see the old state, never a torn one.
//! * Replaced tables leak their old pages inside the file (there is no
//!   free list); the space is reclaimed by copying the database
//!   (re-registering into a fresh file).

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

use tmql_model::{ModelError, Record, Result};

use super::image::{decode_catalog, encode_catalog, CatalogImage};
use super::page::{self, PageId, NO_PAGE, OVF_CAPACITY, PAGE_SIZE};
use super::pool::{BufferPool, PoolStats};
use crate::spill::{decode_record, encode_record};

/// Default buffer-pool capacity in pages (2 MiB at the 8 KiB page size).
pub const DEFAULT_POOL_PAGES: usize = 256;

const MAGIC: [u8; 4] = *b"TMQB";
const VERSION: u16 = 1;

fn io_err(e: std::io::Error) -> ModelError {
    ModelError::Io(e.to_string())
}

// ---------------------------------------------------------------------------
// The file
// ---------------------------------------------------------------------------

/// Raw page-granular I/O over the database file.
#[derive(Debug)]
pub struct PagedFile {
    file: File,
}

impl PagedFile {
    /// Create (truncating) a database file.
    pub fn create(path: &Path) -> Result<PagedFile> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(io_err)?;
        Ok(PagedFile { file })
    }

    /// Open an existing database file.
    pub fn open(path: &Path) -> Result<PagedFile> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(io_err)?;
        Ok(PagedFile { file })
    }

    /// Read page `pid` into `buf` (exactly one page).
    pub fn read_page(&mut self, pid: PageId, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        self.file
            .seek(SeekFrom::Start(pid as u64 * PAGE_SIZE as u64))
            .map_err(io_err)?;
        self.file.read_exact(buf).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                ModelError::Io(format!("truncated database file: page {pid} is missing"))
            } else {
                io_err(e)
            }
        })
    }

    /// Write page `pid` from `buf`.
    pub fn write_page(&mut self, pid: PageId, buf: &[u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        self.file
            .seek(SeekFrom::Start(pid as u64 * PAGE_SIZE as u64))
            .map_err(io_err)?;
        self.file.write_all(buf).map_err(io_err)
    }

    /// Force everything to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_all().map_err(io_err)
    }
}

// ---------------------------------------------------------------------------
// Header / meta
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct Meta {
    /// Next unallocated page id (page 0 is the header).
    next_page: PageId,
    /// First page of the current catalog chain ([`NO_PAGE`] when empty).
    catalog_first: PageId,
    /// Byte length of the current catalog blob.
    catalog_len: u64,
}

impl Meta {
    fn encode(&self) -> Vec<u8> {
        let mut buf = vec![0u8; PAGE_SIZE];
        buf[..4].copy_from_slice(&MAGIC);
        buf[4..6].copy_from_slice(&VERSION.to_le_bytes());
        buf[6..10].copy_from_slice(&(PAGE_SIZE as u32).to_le_bytes());
        buf[10..14].copy_from_slice(&self.next_page.to_le_bytes());
        buf[14..18].copy_from_slice(&self.catalog_first.to_le_bytes());
        buf[18..26].copy_from_slice(&self.catalog_len.to_le_bytes());
        buf
    }

    fn decode(buf: &[u8]) -> Result<Meta> {
        if buf[..4] != MAGIC {
            return Err(ModelError::Io(
                "not a tmql database file (bad magic)".into(),
            ));
        }
        let version = u16::from_le_bytes([buf[4], buf[5]]);
        if version != VERSION {
            return Err(ModelError::Io(format!(
                "unsupported database format version {version} (this build reads {VERSION})"
            )));
        }
        let page_size = u32::from_le_bytes(buf[6..10].try_into().expect("4 bytes"));
        if page_size as usize != PAGE_SIZE {
            return Err(ModelError::Io(format!(
                "database page size {page_size} does not match this build's {PAGE_SIZE}"
            )));
        }
        Ok(Meta {
            next_page: u32::from_le_bytes(buf[10..14].try_into().expect("4 bytes")),
            catalog_first: u32::from_le_bytes(buf[14..18].try_into().expect("4 bytes")),
            catalog_len: u64::from_le_bytes(buf[18..26].try_into().expect("8 bytes")),
        })
    }
}

// ---------------------------------------------------------------------------
// Extents
// ---------------------------------------------------------------------------

/// The on-disk footprint of one table: its data pages in scan order, each
/// with its row count (overflow chains hang off individual slots and are
/// not listed here).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TableExtent {
    /// `(page id, rows in page)` in scan order.
    pub pages: Vec<(PageId, u16)>,
    /// Total rows across all pages.
    pub rows: u64,
}

impl TableExtent {
    /// The extent's data page ids in scan order.
    pub fn page_ids(&self) -> impl Iterator<Item = PageId> + '_ {
        self.pages.iter().map(|(p, _)| *p)
    }

    /// Number of data pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }
}

/// In-progress table write (see [`Pager::append_row`]).
#[derive(Debug, Default)]
struct TableBuild {
    pages: Vec<(PageId, u16)>,
    cur: PageId,
    rows_in_cur: u16,
    rows: u64,
}

// ---------------------------------------------------------------------------
// The pager
// ---------------------------------------------------------------------------

/// Single-threaded core of the store: the file, the pool, and the header.
#[derive(Debug)]
pub struct Pager {
    file: PagedFile,
    pool: BufferPool,
    meta: Meta,
}

impl Pager {
    fn create(path: &Path, pool_pages: usize) -> Result<Pager> {
        let mut file = PagedFile::create(path)?;
        let meta = Meta {
            next_page: 1,
            catalog_first: NO_PAGE,
            catalog_len: 0,
        };
        file.write_page(0, &meta.encode())?;
        file.sync()?;
        Ok(Pager {
            file,
            pool: BufferPool::new(pool_pages),
            meta,
        })
    }

    fn open(path: &Path, pool_pages: usize) -> Result<Pager> {
        let mut file = PagedFile::open(path)?;
        let mut buf = vec![0u8; PAGE_SIZE];
        file.read_page(0, &mut buf)?;
        let meta = Meta::decode(&buf)?;
        Ok(Pager {
            file,
            pool: BufferPool::new(pool_pages),
            meta,
        })
    }

    fn alloc(&mut self) -> PageId {
        let pid = self.meta.next_page;
        self.meta.next_page += 1;
        pid
    }

    /// Append one encoded record to an in-progress table build.
    fn append_row(&mut self, build: &mut TableBuild, rec: &Record) -> Result<()> {
        let bytes = encode_record(rec);
        if build.cur == NO_PAGE {
            self.start_data_page(build)?;
        }
        if bytes.len() <= page::MAX_INLINE {
            let idx = self.pool.get(build.cur, &mut self.file)?;
            if !page::fits_inline(self.pool.buf(idx), bytes.len()) {
                self.seal_data_page(build);
                self.start_data_page(build)?;
            }
            let idx = self.pool.get(build.cur, &mut self.file)?;
            page::push_inline(self.pool.buf_mut(idx), &bytes);
        } else {
            // Oversized record: spill its bytes into an overflow chain,
            // then reference the chain from the data page.
            let chunks: Vec<&[u8]> = bytes.chunks(OVF_CAPACITY).collect();
            let ids: Vec<PageId> = chunks.iter().map(|_| self.alloc()).collect();
            for (i, chunk) in chunks.iter().enumerate() {
                let next = ids.get(i + 1).copied().unwrap_or(NO_PAGE);
                let idx = self.pool.create(ids[i], &mut self.file)?;
                page::init_overflow(self.pool.buf_mut(idx), next, chunk);
            }
            let idx = self.pool.get(build.cur, &mut self.file)?;
            if !page::fits_overflow_ref(self.pool.buf(idx)) {
                self.seal_data_page(build);
                self.start_data_page(build)?;
            }
            let idx = self.pool.get(build.cur, &mut self.file)?;
            page::push_overflow_ref(self.pool.buf_mut(idx), ids[0], bytes.len() as u32);
        }
        build.rows_in_cur += 1;
        build.rows += 1;
        Ok(())
    }

    fn start_data_page(&mut self, build: &mut TableBuild) -> Result<()> {
        let pid = self.alloc();
        let idx = self.pool.create(pid, &mut self.file)?;
        page::init_data(self.pool.buf_mut(idx));
        build.cur = pid;
        build.rows_in_cur = 0;
        Ok(())
    }

    fn seal_data_page(&mut self, build: &mut TableBuild) {
        if build.cur != NO_PAGE {
            build.pages.push((build.cur, build.rows_in_cur));
            build.cur = NO_PAGE;
            build.rows_in_cur = 0;
        }
    }

    /// Write a whole table and return its extent.
    pub fn write_table(&mut self, rows: &[Record]) -> Result<TableExtent> {
        let mut build = TableBuild::default();
        for rec in rows {
            self.append_row(&mut build, rec)?;
        }
        let rows = build.rows;
        self.seal_data_page(&mut build);
        Ok(TableExtent {
            pages: build.pages,
            rows,
        })
    }

    /// Assemble the full bytes of an overflow chain starting at `first`.
    fn read_chain(&mut self, first: PageId, total: u32) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(total as usize);
        let mut pid = first;
        // A well-formed chain of `total` bytes spans at most this many
        // pages; anything longer (including zero-length-chunk cycles,
        // which never grow `out`) is corruption, not progress.
        let mut pages_left = total as usize / OVF_CAPACITY + 2;
        while pid != NO_PAGE {
            if out.len() > total as usize || pages_left == 0 {
                return Err(ModelError::Io(
                    "corrupted page: overflow chain too long".into(),
                ));
            }
            pages_left -= 1;
            let idx = self.pool.get(pid, &mut self.file)?;
            self.pool.pin(idx);
            let res = (|| -> Result<PageId> {
                let buf = self.pool.buf(idx);
                out.extend_from_slice(page::ovf_data(buf)?);
                page::ovf_next(buf)
            })();
            self.pool.unpin(idx);
            pid = res?;
        }
        if out.len() != total as usize {
            return Err(ModelError::Io(format!(
                "corrupted page: overflow chain holds {} bytes, expected {total}",
                out.len()
            )));
        }
        Ok(out)
    }

    /// Read up to `n` decoded rows starting at row offset `start`.
    pub fn read_rows(
        &mut self,
        extent: &TableExtent,
        start: usize,
        n: usize,
    ) -> Result<Vec<Record>> {
        let mut out = Vec::with_capacity(n.min(extent.rows as usize));
        let mut skip = start;
        for &(pid, rows_in_page) in &extent.pages {
            let rows_in_page = rows_in_page as usize;
            if skip >= rows_in_page {
                skip -= rows_in_page;
                continue;
            }
            if out.len() >= n {
                break;
            }
            // Copy the needed slots out under a pin, then resolve overflow
            // chains (which fault other pages) with the pin released.
            enum Slot {
                Inline(Vec<u8>),
                Chain(PageId, u32),
            }
            let idx = self.pool.get(pid, &mut self.file)?;
            self.pool.pin(idx);
            let copied = (|| -> Result<Vec<Slot>> {
                let buf = self.pool.buf(idx);
                if page::kind(buf) != page::KIND_DATA || page::slot_count(buf) != rows_in_page {
                    return Err(ModelError::Io(format!(
                        "corrupted page: data page {pid} does not match the catalog extent"
                    )));
                }
                let take = (rows_in_page - skip).min(n - out.len());
                (skip..skip + take)
                    .map(|i| {
                        Ok(match page::slot(buf, i)? {
                            page::SlotRef::Inline(b) => Slot::Inline(b.to_vec()),
                            page::SlotRef::Overflow { first, total } => Slot::Chain(first, total),
                        })
                    })
                    .collect()
            })();
            self.pool.unpin(idx);
            for slot in copied? {
                let rec = match slot {
                    Slot::Inline(bytes) => decode_record(&bytes)?,
                    Slot::Chain(first, total) => decode_record(&self.read_chain(first, total)?)?,
                };
                out.push(rec);
            }
            skip = 0;
        }
        Ok(out)
    }

    /// Persist a new catalog blob: write its chain, flush everything, then
    /// commit by rewriting the header (see the module's durability rules).
    pub fn write_catalog(&mut self, blob: &[u8]) -> Result<()> {
        let mut first = NO_PAGE;
        if !blob.is_empty() {
            let chunks: Vec<&[u8]> = blob.chunks(OVF_CAPACITY).collect();
            let ids: Vec<PageId> = chunks.iter().map(|_| self.alloc()).collect();
            for (i, chunk) in chunks.iter().enumerate() {
                let next = ids.get(i + 1).copied().unwrap_or(NO_PAGE);
                let idx = self.pool.create(ids[i], &mut self.file)?;
                page::init_overflow(self.pool.buf_mut(idx), next, chunk);
            }
            first = ids[0];
        }
        self.pool.flush(&mut self.file)?;
        self.file.sync()?;
        self.meta.catalog_first = first;
        self.meta.catalog_len = blob.len() as u64;
        self.file.write_page(0, &self.meta.encode())?;
        self.file.sync()
    }

    /// Read the current catalog blob ([`None`] when the database is empty).
    pub fn read_catalog(&mut self) -> Result<Option<Vec<u8>>> {
        if self.meta.catalog_first == NO_PAGE {
            return Ok(None);
        }
        self.read_chain(self.meta.catalog_first, self.meta.catalog_len as u32)
            .map(Some)
    }
}

// ---------------------------------------------------------------------------
// The thread-safe store façade
// ---------------------------------------------------------------------------

/// A shared handle to one paged database: the file, its buffer pool, and
/// its header, behind a mutex. Cloned freely via `Arc` — every
/// disk-backed [`crate::Table`] of a database holds one.
#[derive(Debug)]
pub struct PagedStore {
    inner: Mutex<Pager>,
    path: PathBuf,
}

impl PagedStore {
    /// Create a fresh database file.
    pub fn create(path: impl AsRef<Path>, pool_pages: usize) -> Result<Arc<PagedStore>> {
        let path = path.as_ref().to_path_buf();
        let pager = Pager::create(&path, pool_pages)?;
        Ok(Arc::new(PagedStore {
            inner: Mutex::new(pager),
            path,
        }))
    }

    /// Open an existing database file and decode its persisted catalog.
    pub fn open(
        path: impl AsRef<Path>,
        pool_pages: usize,
    ) -> Result<(Arc<PagedStore>, CatalogImage)> {
        let path = path.as_ref().to_path_buf();
        let mut pager = Pager::open(&path, pool_pages)?;
        let image = match pager.read_catalog()? {
            Some(blob) => decode_catalog(&blob)?,
            None => CatalogImage::default(),
        };
        Ok((
            Arc::new(PagedStore {
                inner: Mutex::new(pager),
                path,
            }),
            image,
        ))
    }

    fn lock(&self) -> MutexGuard<'_, Pager> {
        // A panic while holding the lock leaves no torn in-memory state we
        // could not keep using (the header commit protocol guards the
        // file), so recover from poisoning instead of propagating it.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The database file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Write a table's rows, returning its extent.
    pub fn write_table(&self, rows: &[Record]) -> Result<TableExtent> {
        self.lock().write_table(rows)
    }

    /// Read up to `n` rows of `extent` starting at row offset `start`.
    pub fn read_rows(&self, extent: &TableExtent, start: usize, n: usize) -> Result<Vec<Record>> {
        self.lock().read_rows(extent, start, n)
    }

    /// Persist the catalog image (the commit point of register/replace).
    pub fn save_catalog(&self, image: &CatalogImage) -> Result<()> {
        self.lock().write_catalog(&encode_catalog(image))
    }

    /// Cumulative buffer-pool counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.lock().pool.stats()
    }

    /// Buffer-pool capacity in pages.
    pub fn pool_pages(&self) -> usize {
        self.lock().pool.capacity()
    }

    /// How many of the extent's data pages are currently resident — the
    /// cost model's input for pricing a cold vs. warm scan.
    pub fn resident_pages(&self, extent: &TableExtent) -> usize {
        self.lock().pool.resident_among(extent.page_ids())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmql_model::Value;

    fn scratch(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!(
            "tmql-store-test-{}-{name}.tmdb",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn int_rows(n: i64) -> Vec<Record> {
        (0..n)
            .map(|i| {
                Record::new([
                    ("a".to_string(), Value::Int(i)),
                    ("b".to_string(), Value::Int(i % 7)),
                ])
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn write_and_read_rows_across_pages() {
        let path = scratch("rw");
        let store = PagedStore::create(&path, 4).unwrap();
        let rows = int_rows(2000);
        let extent = store.write_table(&rows).unwrap();
        assert_eq!(extent.rows, 2000);
        assert!(extent.page_count() > 1, "2000 rows span multiple pages");
        // Sequential cursor reads reassemble the exact row sequence.
        let mut got = Vec::new();
        let mut pos = 0;
        loop {
            let batch = store.read_rows(&extent, pos, 300).unwrap();
            if batch.is_empty() {
                break;
            }
            pos += batch.len();
            got.extend(batch);
        }
        assert_eq!(got, rows);
        // Random-access batch in the middle.
        assert_eq!(store.read_rows(&extent, 1500, 5).unwrap(), rows[1500..1505]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn oversized_records_take_overflow_chains() {
        let path = scratch("ovf");
        let store = PagedStore::create(&path, 4).unwrap();
        // A record whose encoding far exceeds one page.
        let big = Record::new([(
            "s".to_string(),
            Value::Str(std::sync::Arc::from("x".repeat(3 * PAGE_SIZE))),
        )])
        .unwrap();
        let small = Record::new([("s".to_string(), Value::str("tiny"))]).unwrap();
        let rows = vec![small.clone(), big.clone(), small.clone()];
        let extent = store.write_table(&rows).unwrap();
        assert_eq!(store.read_rows(&extent, 0, 10).unwrap(), rows);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn catalog_blob_round_trips_through_reopen() {
        let path = scratch("cat");
        {
            let store = PagedStore::create(&path, 4).unwrap();
            store
                .lock()
                .write_catalog(&vec![9u8; 3 * OVF_CAPACITY + 17])
                .unwrap();
        }
        let mut pager = Pager::open(&path, 4).unwrap();
        let blob = pager.read_catalog().unwrap().expect("catalog present");
        assert_eq!(blob.len(), 3 * OVF_CAPACITY + 17);
        assert!(blob.iter().all(|&b| b == 9));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cyclic_overflow_chain_errors_instead_of_hanging() {
        // Hand-craft a database whose catalog chain is a self-referential
        // overflow page with a zero-length chunk: the byte count never
        // grows, so only the page bound can stop the walk.
        let path = scratch("cycle");
        {
            let mut pager = Pager::create(&path, 4).unwrap();
            let mut buf = vec![0u8; PAGE_SIZE];
            page::init_overflow(&mut buf, 1, b""); // page 1 → page 1, 0 bytes
            pager.file.write_page(1, &buf).unwrap();
            pager.meta.next_page = 2;
            pager.meta.catalog_first = 1;
            pager.meta.catalog_len = 64;
            pager.file.write_page(0, &pager.meta.encode()).unwrap();
            pager.file.sync().unwrap();
        }
        let mut pager = Pager::open(&path, 4).unwrap();
        let err = pager.read_catalog().unwrap_err();
        assert!(matches!(err, ModelError::Io(_)), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_rejects_non_database_files() {
        let path = scratch("magic");
        std::fs::write(&path, vec![0u8; 2 * PAGE_SIZE]).unwrap();
        assert!(matches!(Pager::open(&path, 4), Err(ModelError::Io(_))));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_file_reads_error_not_panic() {
        let path = scratch("trunc");
        let extent;
        {
            let store = PagedStore::create(&path, 4).unwrap();
            extent = store.write_table(&int_rows(1000)).unwrap();
            store.lock().write_catalog(b"x").unwrap(); // flush + sync everything
        }
        // Chop the file after the header: every data page is gone.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(PAGE_SIZE as u64).unwrap();
        drop(f);
        let store2 = PagedStore {
            inner: Mutex::new(Pager::open(&path, 4).unwrap()),
            path: path.clone(),
        };
        let err = store2.read_rows(&extent, 0, 10).unwrap_err();
        assert!(matches!(err, ModelError::Io(_)), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn pool_stats_reflect_scan_temperature() {
        let path = scratch("temp");
        let store = PagedStore::create(&path, 64).unwrap();
        let extent = store.write_table(&int_rows(2000)).unwrap();
        let before = store.pool_stats();
        let _ = store.read_rows(&extent, 0, 2000).unwrap();
        let warm = store.pool_stats();
        assert_eq!(
            warm.misses, before.misses,
            "freshly written pages are resident"
        );
        assert!(warm.hits > before.hits);
        assert_eq!(store.resident_pages(&extent), extent.page_count());
        let _ = std::fs::remove_file(&path);
    }
}
