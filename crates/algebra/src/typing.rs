//! Output-type derivation for plans and scalar expressions.
//!
//! Typing is best-effort: anything the rules cannot determine becomes
//! [`Ty::Any`]. It is used by the physical planner (e.g. to know a nest
//! join label is set-typed) and by the facade for result schema display,
//! not for rejecting programs — the language front end does full checking.

use std::collections::BTreeMap;

use tmql_model::{ModelError, Result, Ty};

use crate::plan::Plan;
use crate::scalar::{AggFn, ArithOp, ScalarExpr};

/// Source of row types for stored tables; implemented by the storage
/// catalog (kept abstract so `tmql-algebra` does not depend on storage).
pub trait TableTypes {
    /// The tuple type of one row of `table`.
    fn row_ty(&self, table: &str) -> Result<Ty>;
}

/// A var → type environment.
pub type TyEnv = BTreeMap<String, Ty>;

/// Infer the type of a scalar expression under a variable typing.
pub fn infer_scalar(expr: &ScalarExpr, vars: &TyEnv) -> Ty {
    match expr {
        ScalarExpr::Lit(v) => Ty::of(v),
        ScalarExpr::Var(n) => vars.get(n).cloned().unwrap_or(Ty::Any),
        ScalarExpr::Field(e, label) => match infer_scalar(e, vars) {
            Ty::Tuple(fs) => fs
                .into_iter()
                .find(|(l, _)| l == label)
                .map(|(_, t)| t)
                .unwrap_or(Ty::Any),
            _ => Ty::Any,
        },
        ScalarExpr::Cmp(..)
        | ScalarExpr::And(..)
        | ScalarExpr::Or(..)
        | ScalarExpr::Not(_)
        | ScalarExpr::SetCmp(..)
        | ScalarExpr::Quant { .. }
        | ScalarExpr::IsNull(_) => Ty::Bool,
        ScalarExpr::Arith(op, a, b) => {
            let (ta, tb) = (infer_scalar(a, vars), infer_scalar(b, vars));
            match (op, ta, tb) {
                (_, Ty::Float, _) | (_, _, Ty::Float) | (ArithOp::Div, Ty::Int, Ty::Int) => {
                    // Int/Int division stays Int in eval; report Int.
                    if matches!(op, ArithOp::Div) {
                        Ty::Int
                    } else {
                        Ty::Float
                    }
                }
                (_, Ty::Int, Ty::Int) => Ty::Int,
                _ => Ty::Any,
            }
        }
        ScalarExpr::SetBin(_, a, b) => {
            let ta = infer_scalar(a, vars);
            match ta {
                Ty::Set(_) => ta,
                _ => infer_scalar(b, vars),
            }
        }
        ScalarExpr::Agg(f, e) => match f {
            AggFn::Count => Ty::Int,
            AggFn::Avg => Ty::Float,
            AggFn::Sum | AggFn::Min | AggFn::Max => match infer_scalar(e, vars) {
                Ty::Set(el) => *el,
                _ => Ty::Any,
            },
        },
        ScalarExpr::Tuple(fs) => Ty::Tuple(
            fs.iter()
                .map(|(l, e)| (l.clone(), infer_scalar(e, vars)))
                .collect(),
        ),
        ScalarExpr::SetLit(es) => {
            let el = es.first().map(|e| infer_scalar(e, vars)).unwrap_or(Ty::Any);
            Ty::Set(Box::new(el))
        }
        ScalarExpr::Unnest(e) => match infer_scalar(e, vars) {
            Ty::Set(inner) => match *inner {
                Ty::Set(_) => *inner,
                _ => Ty::Set(Box::new(Ty::Any)),
            },
            _ => Ty::Set(Box::new(Ty::Any)),
        },
    }
}

/// Derive the output variable typing of a plan. `outer` supplies types of
/// correlation variables when typing the inner plan of an `Apply`.
pub fn derive(plan: &Plan, tables: &dyn TableTypes, outer: &TyEnv) -> Result<TyEnv> {
    Ok(match plan {
        Plan::ScanTable { table, var } => {
            let mut env = TyEnv::new();
            env.insert(var.clone(), tables.row_ty(table)?);
            env
        }
        Plan::ScanExpr { expr, var } => {
            let elem = match infer_scalar(expr, outer) {
                Ty::Set(el) => *el,
                _ => Ty::Any,
            };
            let mut env = TyEnv::new();
            env.insert(var.clone(), elem);
            env
        }
        Plan::Select { input, .. } => derive(input, tables, outer)?,
        Plan::Map { input, expr, var } => {
            let mut in_env = derive(input, tables, outer)?;
            merge_outer(&mut in_env, outer);
            let t = infer_scalar(expr, &in_env);
            let mut env = TyEnv::new();
            env.insert(var.clone(), t);
            env
        }
        Plan::Extend { input, expr, var } => {
            let mut env = derive(input, tables, outer)?;
            let mut scope = env.clone();
            merge_outer(&mut scope, outer);
            env.insert(var.clone(), infer_scalar(expr, &scope));
            env
        }
        Plan::Project { input, vars } => {
            let env = derive(input, tables, outer)?;
            let mut out = TyEnv::new();
            for v in vars {
                let t = env.get(v).cloned().ok_or_else(|| {
                    ModelError::SchemaError(format!("projection references unknown variable `{v}`"))
                })?;
                out.insert(v.clone(), t);
            }
            out
        }
        Plan::Join { left, right, .. } | Plan::LeftOuterJoin { left, right, .. } => {
            let mut env = derive(left, tables, outer)?;
            env.extend(derive(right, tables, outer)?);
            env
        }
        Plan::SemiJoin { left, .. } | Plan::AntiJoin { left, .. } => derive(left, tables, outer)?,
        Plan::NestJoin {
            left,
            right,
            func,
            label,
            ..
        } => {
            let mut env = derive(left, tables, outer)?;
            let mut scope = env.clone();
            scope.extend(derive(right, tables, outer)?);
            merge_outer(&mut scope, outer);
            env.insert(label.clone(), Ty::Set(Box::new(infer_scalar(func, &scope))));
            env
        }
        Plan::Nest {
            input,
            keys,
            value,
            label,
            ..
        } => {
            let in_env = derive(input, tables, outer)?;
            let mut env = TyEnv::new();
            for k in keys {
                env.insert(k.clone(), in_env.get(k).cloned().unwrap_or(Ty::Any));
            }
            env.insert(
                label.clone(),
                Ty::Set(Box::new(infer_scalar(value, &in_env))),
            );
            env
        }
        Plan::Unnest {
            input,
            expr,
            elem_var,
            drop_vars,
        } => {
            let mut env = derive(input, tables, outer)?;
            let elem = match infer_scalar(expr, &env) {
                Ty::Set(el) => *el,
                _ => Ty::Any,
            };
            for d in drop_vars {
                env.remove(d);
            }
            env.insert(elem_var.clone(), elem);
            env
        }
        Plan::GroupAgg {
            input,
            keys,
            aggs,
            var,
        } => {
            let mut in_env = derive(input, tables, outer)?;
            merge_outer(&mut in_env, outer);
            let mut fields = Vec::new();
            for (l, e) in keys {
                fields.push((l.clone(), infer_scalar(e, &in_env)));
            }
            for (l, f, e) in aggs {
                let t = match f {
                    AggFn::Count => Ty::Int,
                    AggFn::Avg => Ty::Float,
                    _ => infer_scalar(e, &in_env),
                };
                fields.push((l.clone(), t));
            }
            let mut env = TyEnv::new();
            env.insert(var.clone(), Ty::Tuple(fields));
            env
        }
        Plan::Apply {
            input,
            subquery,
            label,
        } => {
            let mut env = derive(input, tables, outer)?;
            let mut inner_outer = env.clone();
            merge_outer(&mut inner_outer, outer);
            let sub_env = derive(subquery, tables, &inner_outer)?;
            let elem = single_output_ty(&sub_env);
            env.insert(label.clone(), Ty::Set(Box::new(elem)));
            env
        }
        Plan::SetOp { left, var, .. } => {
            let l_env = derive(left, tables, outer)?;
            let mut env = TyEnv::new();
            env.insert(var.clone(), single_output_ty(&l_env));
            env
        }
    })
}

fn merge_outer(env: &mut TyEnv, outer: &TyEnv) {
    for (k, v) in outer {
        env.entry(k.clone()).or_insert_with(|| v.clone());
    }
}

fn single_output_ty(env: &TyEnv) -> Ty {
    if env.len() == 1 {
        env.values().next().expect("len checked").clone()
    } else {
        Ty::Tuple(env.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
    }
}

/// A [`TableTypes`] backed by a fixed map — convenient for tests.
#[derive(Debug, Default)]
pub struct StaticTables(pub BTreeMap<String, Ty>);

impl TableTypes for StaticTables {
    fn row_ty(&self, table: &str) -> Result<Ty> {
        self.0
            .get(table)
            .cloned()
            .ok_or_else(|| ModelError::SchemaError(format!("unknown table `{table}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::ScalarExpr as E;

    fn tables() -> StaticTables {
        let mut m = BTreeMap::new();
        m.insert(
            "X".to_string(),
            Ty::Tuple(vec![
                ("a".into(), Ty::Set(Box::new(Ty::Int))),
                ("b".into(), Ty::Int),
            ]),
        );
        m.insert(
            "Y".to_string(),
            Ty::Tuple(vec![("a".into(), Ty::Int), ("b".into(), Ty::Int)]),
        );
        StaticTables(m)
    }

    #[test]
    fn scan_and_join_types() {
        let p = Plan::scan("X", "x").join(Plan::scan("Y", "y"), E::lit(true));
        let env = derive(&p, &tables(), &TyEnv::new()).unwrap();
        assert_eq!(env["x"].field("b"), Some(&Ty::Int));
        assert_eq!(env["y"].field("a"), Some(&Ty::Int));
    }

    #[test]
    fn nest_join_label_is_set_typed() {
        let p = Plan::scan("X", "x").nest_join(
            Plan::scan("Y", "y"),
            E::eq(E::path("x", &["b"]), E::path("y", &["b"])),
            E::path("y", &["a"]),
            "ys",
        );
        let env = derive(&p, &tables(), &TyEnv::new()).unwrap();
        assert_eq!(env["ys"], Ty::Set(Box::new(Ty::Int)));
    }

    #[test]
    fn apply_binds_set_of_subquery_results() {
        let sub = Plan::scan("Y", "y")
            .select(E::eq(E::path("x", &["b"]), E::path("y", &["b"])))
            .map(E::path("y", &["a"]), "v");
        let p = Plan::scan("X", "x").apply(sub, "z");
        let env = derive(&p, &tables(), &TyEnv::new()).unwrap();
        assert_eq!(env["z"], Ty::Set(Box::new(Ty::Int)));
    }

    #[test]
    fn agg_and_scan_expr_types() {
        let vars: TyEnv = [("z".to_string(), Ty::Set(Box::new(Ty::Int)))]
            .into_iter()
            .collect();
        assert_eq!(
            infer_scalar(&E::agg(AggFn::Count, E::var("z")), &vars),
            Ty::Int
        );
        assert_eq!(
            infer_scalar(&E::agg(AggFn::Max, E::var("z")), &vars),
            Ty::Int
        );
        let p = Plan::ScanExpr {
            expr: E::var("z"),
            var: "v".into(),
        };
        let env = derive(&p, &tables(), &vars).unwrap();
        assert_eq!(env["v"], Ty::Int);
    }

    #[test]
    fn project_unknown_var_errors() {
        let p = Plan::scan("X", "x").project(&["nope"]);
        assert!(derive(&p, &tables(), &TyEnv::new()).is_err());
    }

    #[test]
    fn group_agg_tuple_type() {
        let p = Plan::GroupAgg {
            input: Box::new(Plan::scan("Y", "y")),
            keys: vec![("c".into(), E::path("y", &["b"]))],
            aggs: vec![("cnt".into(), AggFn::Count, E::var("y"))],
            var: "t".into(),
        };
        let env = derive(&p, &tables(), &TyEnv::new()).unwrap();
        let t = &env["t"];
        assert_eq!(t.field("c"), Some(&Ty::Int));
        assert_eq!(t.field("cnt"), Some(&Ty::Int));
    }
}
