//! Evaluation of scalar expressions against variable environments.

use std::collections::BTreeSet;

use tmql_model::{setops, ModelError, Record, Result, Value};

use crate::scalar::{AggFn, ArithOp, CmpOp, Quantifier, ScalarExpr, SetBinOp, SetCmpOp};

/// A variable environment: an ordered stack of bindings. Later bindings
/// shadow earlier ones (inner scopes push on top). Rows flowing through the
/// algebra are [`Record`]s of bindings, so an env is usually built from one
/// or two rows plus quantifier bindings.
#[derive(Debug, Clone, Default)]
pub struct Env {
    bindings: Vec<(String, Value)>,
}

impl Env {
    /// Empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// Environment holding the bindings of one row.
    pub fn from_row(row: &Record) -> Env {
        Env {
            bindings: row
                .iter()
                .map(|(l, v)| (l.to_string(), v.clone()))
                .collect(),
        }
    }

    /// Push a binding (shadows any previous binding of the same name).
    pub fn push(&mut self, name: impl Into<String>, value: Value) {
        self.bindings.push((name.into(), value));
    }

    /// Pop the most recent binding.
    pub fn pop(&mut self) {
        self.bindings.pop();
    }

    /// Push all bindings of a row (used by `Apply` to expose outer
    /// variables to the inner plan).
    pub fn push_row(&mut self, row: &Record) {
        for (l, v) in row.iter() {
            self.push(l, v.clone());
        }
    }

    /// Pop `n` bindings.
    pub fn pop_n(&mut self, n: usize) {
        for _ in 0..n {
            self.pop();
        }
    }

    /// Look up a variable, innermost binding first.
    pub fn get(&self, name: &str) -> Result<&Value> {
        self.bindings
            .iter()
            .rev()
            .find(|(l, _)| l == name)
            .map(|(_, v)| v)
            .ok_or_else(|| ModelError::SchemaError(format!("unbound variable `{name}`")))
    }

    /// Number of bindings currently on the stack.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// True iff no bindings.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }
}

/// Evaluate an expression to a value.
pub fn eval(expr: &ScalarExpr, env: &mut Env) -> Result<Value> {
    match expr {
        ScalarExpr::Lit(v) => Ok(v.clone()),
        ScalarExpr::Var(name) => env.get(name).cloned(),
        ScalarExpr::Field(e, label) => {
            let v = eval(e, env)?;
            // NULL propagates through field access (relational baseline:
            // NULL-extended outerjoin tuples have no fields).
            if v.is_null() {
                return Ok(Value::Null);
            }
            v.as_tuple()?.get(label).cloned()
        }
        ScalarExpr::Cmp(op, a, b) => {
            let (va, vb) = (eval(a, env)?, eval(b, env)?);
            Ok(Value::Bool(eval_cmp(*op, &va, &vb)))
        }
        ScalarExpr::Arith(op, a, b) => {
            let (va, vb) = (eval(a, env)?, eval(b, env)?);
            if va.is_null() || vb.is_null() {
                return Ok(Value::Null);
            }
            match op {
                ArithOp::Add => va.add(&vb),
                ArithOp::Sub => va.sub(&vb),
                ArithOp::Mul => va.mul(&vb),
                ArithOp::Div => va.div(&vb),
            }
        }
        ScalarExpr::And(a, b) => {
            // Short-circuit; two-valued logic (NULL comparisons are false).
            if !eval(a, env)?.as_bool()? {
                return Ok(Value::Bool(false));
            }
            Ok(Value::Bool(eval(b, env)?.as_bool()?))
        }
        ScalarExpr::Or(a, b) => {
            if eval(a, env)?.as_bool()? {
                return Ok(Value::Bool(true));
            }
            Ok(Value::Bool(eval(b, env)?.as_bool()?))
        }
        ScalarExpr::Not(e) => Ok(Value::Bool(!eval(e, env)?.as_bool()?)),
        ScalarExpr::SetBin(op, a, b) => {
            let (va, vb) = (eval(a, env)?, eval(b, env)?);
            match op {
                SetBinOp::Union => setops::union(&va, &vb),
                SetBinOp::Intersect => setops::intersect(&va, &vb),
                SetBinOp::Difference => setops::difference(&va, &vb),
            }
        }
        ScalarExpr::SetCmp(op, a, b) => {
            let (va, vb) = (eval(a, env)?, eval(b, env)?);
            Ok(Value::Bool(eval_set_cmp(*op, &va, &vb)?))
        }
        ScalarExpr::Agg(f, e) => {
            let v = eval(e, env)?;
            eval_agg(*f, &v)
        }
        ScalarExpr::Tuple(fields) => {
            let mut rec = Record::empty();
            for (l, e) in fields {
                rec.push(l.clone(), eval(e, env)?)?;
            }
            Ok(Value::Tuple(rec))
        }
        ScalarExpr::SetLit(items) => {
            let mut out = BTreeSet::new();
            for e in items {
                out.insert(eval(e, env)?);
            }
            Ok(Value::Set(out))
        }
        ScalarExpr::Quant { q, var, over, pred } => {
            let set = eval(over, env)?;
            let set = set.as_set()?.clone();
            match q {
                Quantifier::Exists => {
                    for item in set {
                        env.push(var.clone(), item);
                        let hit = eval(pred, env)?.as_bool();
                        env.pop();
                        if hit? {
                            return Ok(Value::Bool(true));
                        }
                    }
                    Ok(Value::Bool(false))
                }
                Quantifier::Forall => {
                    for item in set {
                        env.push(var.clone(), item);
                        let hit = eval(pred, env)?.as_bool();
                        env.pop();
                        if !hit? {
                            return Ok(Value::Bool(false));
                        }
                    }
                    Ok(Value::Bool(true))
                }
            }
        }
        ScalarExpr::Unnest(e) => {
            let v = eval(e, env)?;
            setops::unnest(&v)
        }
        ScalarExpr::IsNull(e) => Ok(Value::Bool(eval(e, env)?.is_null())),
    }
}

/// Evaluate a predicate to a boolean.
pub fn eval_predicate(expr: &ScalarExpr, env: &mut Env) -> Result<bool> {
    eval(expr, env)?.as_bool()
}

fn eval_cmp(op: CmpOp, a: &Value, b: &Value) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Eq => a.sql_eq(b),
        CmpOp::Ne => !a.is_null() && !b.is_null() && !a.sql_eq(b),
        CmpOp::Lt => matches!(a.sql_cmp(b), Some(Less)),
        CmpOp::Le => matches!(a.sql_cmp(b), Some(Less | Equal)),
        CmpOp::Gt => matches!(a.sql_cmp(b), Some(Greater)),
        CmpOp::Ge => matches!(a.sql_cmp(b), Some(Greater | Equal)),
    }
}

fn eval_set_cmp(op: SetCmpOp, a: &Value, b: &Value) -> Result<bool> {
    match op {
        SetCmpOp::In => setops::member(a, b),
        SetCmpOp::NotIn => Ok(!setops::member(a, b)?),
        SetCmpOp::SubsetEq => setops::subseteq(a, b),
        SetCmpOp::Subset => setops::subset(a, b),
        SetCmpOp::SupersetEq => setops::superseteq(a, b),
        SetCmpOp::Superset => setops::superset(a, b),
        SetCmpOp::SetEq => Ok(a.as_set()? == b.as_set()?),
        SetCmpOp::SetNe => Ok(a.as_set()? != b.as_set()?),
        SetCmpOp::Disjoint => setops::disjoint(a, b),
        SetCmpOp::Intersects => Ok(!setops::disjoint(a, b)?),
    }
}

/// Evaluate an aggregate over a set value.
///
/// `COUNT(∅) = 0`; the other aggregates return NULL on the empty set —
/// exactly the asymmetry that makes COUNT the famous bug ([Ganski & Wong
/// 87]): a lost dangling tuple is indistinguishable from NULL for
/// SUM/MIN/MAX/AVG but not for COUNT.
pub fn eval_agg(f: AggFn, v: &Value) -> Result<Value> {
    match f {
        AggFn::Count => Ok(Value::Int(setops::count(v)?)),
        AggFn::Sum => setops::aggregate::sum(v),
        AggFn::Min => Ok(setops::aggregate::min(v)?.unwrap_or(Value::Null)),
        AggFn::Max => Ok(setops::aggregate::max(v)?.unwrap_or(Value::Null)),
        AggFn::Avg => Ok(setops::aggregate::avg(v)?.unwrap_or(Value::Null)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_xy() -> Env {
        let mut env = Env::new();
        env.push(
            "x",
            Value::tuple([
                ("a", Value::Int(2)),
                ("b", Value::set([Value::Int(1), Value::Int(2)])),
            ]),
        );
        env.push("y", Value::tuple([("c", Value::Int(5))]));
        env
    }

    #[test]
    fn var_and_field() {
        let mut env = env_xy();
        let v = eval(&ScalarExpr::path("x", &["a"]), &mut env).unwrap();
        assert_eq!(v, Value::Int(2));
        assert!(eval(&ScalarExpr::path("x", &["zz"]), &mut env).is_err());
        assert!(eval(&ScalarExpr::var("nope"), &mut env).is_err());
    }

    #[test]
    fn shadowing_lookup() {
        let mut env = Env::new();
        env.push("v", Value::Int(1));
        env.push("v", Value::Int(2));
        assert_eq!(env.get("v").unwrap(), &Value::Int(2));
        env.pop();
        assert_eq!(env.get("v").unwrap(), &Value::Int(1));
    }

    #[test]
    fn comparisons_and_null() {
        let mut env = Env::new();
        let t = eval_predicate(
            &ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::lit(1i64), ScalarExpr::lit(2i64)),
            &mut env,
        )
        .unwrap();
        assert!(t);
        // NULL = NULL is false; NULL ≠ 1 is false (unknown → false).
        let e = ScalarExpr::eq(ScalarExpr::Lit(Value::Null), ScalarExpr::Lit(Value::Null));
        assert!(!eval_predicate(&e, &mut env).unwrap());
        let e = ScalarExpr::cmp(
            CmpOp::Ne,
            ScalarExpr::Lit(Value::Null),
            ScalarExpr::lit(1i64),
        );
        assert!(!eval_predicate(&e, &mut env).unwrap());
    }

    #[test]
    fn null_propagates_through_field_access() {
        let mut env = Env::new();
        env.push("y", Value::Null);
        let v = eval(&ScalarExpr::path("y", &["c"]), &mut env).unwrap();
        assert!(v.is_null());
        let is_null = ScalarExpr::IsNull(Box::new(ScalarExpr::path("y", &["c"])));
        assert!(eval_predicate(&is_null, &mut env).unwrap());
    }

    #[test]
    fn quantifiers() {
        let mut env = env_xy();
        // ∃v ∈ x.b (v = x.a) — 2 ∈ {1,2}
        let e = ScalarExpr::quant(
            Quantifier::Exists,
            "v",
            ScalarExpr::path("x", &["b"]),
            ScalarExpr::eq(ScalarExpr::var("v"), ScalarExpr::path("x", &["a"])),
        );
        assert!(eval_predicate(&e, &mut env).unwrap());
        // ∀v ∈ x.b (v < 2) — false since 2 ∈ x.b
        let e = ScalarExpr::quant(
            Quantifier::Forall,
            "v",
            ScalarExpr::path("x", &["b"]),
            ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::var("v"), ScalarExpr::lit(2i64)),
        );
        assert!(!eval_predicate(&e, &mut env).unwrap());
        // Quantifier over empty set: ∃ false, ∀ true.
        let empty = ScalarExpr::Lit(Value::empty_set());
        let ex = ScalarExpr::quant(
            Quantifier::Exists,
            "v",
            empty.clone(),
            ScalarExpr::lit(true),
        );
        assert!(!eval_predicate(&ex, &mut env).unwrap());
        let fa = ScalarExpr::quant(Quantifier::Forall, "v", empty, ScalarExpr::lit(false));
        assert!(eval_predicate(&fa, &mut env).unwrap());
    }

    #[test]
    fn env_is_restored_after_quantifier() {
        let mut env = env_xy();
        let depth = env.len();
        let e = ScalarExpr::quant(
            Quantifier::Exists,
            "v",
            ScalarExpr::path("x", &["b"]),
            ScalarExpr::lit(false),
        );
        let _ = eval_predicate(&e, &mut env).unwrap();
        assert_eq!(env.len(), depth);
    }

    #[test]
    fn aggregates_count_vs_others_on_empty() {
        assert_eq!(
            eval_agg(AggFn::Count, &Value::empty_set()).unwrap(),
            Value::Int(0)
        );
        assert_eq!(
            eval_agg(AggFn::Sum, &Value::empty_set()).unwrap(),
            Value::Int(0)
        );
        assert!(eval_agg(AggFn::Min, &Value::empty_set()).unwrap().is_null());
        assert!(eval_agg(AggFn::Max, &Value::empty_set()).unwrap().is_null());
        assert!(eval_agg(AggFn::Avg, &Value::empty_set()).unwrap().is_null());
    }

    #[test]
    fn tuple_and_set_construction() {
        let mut env = env_xy();
        let e = ScalarExpr::Tuple(vec![
            ("a".into(), ScalarExpr::path("x", &["a"])),
            ("c".into(), ScalarExpr::path("y", &["c"])),
        ]);
        let v = eval(&e, &mut env).unwrap();
        assert_eq!(
            v,
            Value::tuple([("a", Value::Int(2)), ("c", Value::Int(5))])
        );
        let s = ScalarExpr::SetLit(vec![ScalarExpr::lit(1i64), ScalarExpr::lit(1i64)]);
        assert_eq!(eval(&s, &mut env).unwrap().as_set().unwrap().len(), 1);
    }

    #[test]
    fn arithmetic_with_null() {
        let mut env = Env::new();
        let e = ScalarExpr::Arith(
            ArithOp::Add,
            Box::new(ScalarExpr::Lit(Value::Null)),
            Box::new(ScalarExpr::lit(1i64)),
        );
        assert!(eval(&e, &mut env).unwrap().is_null());
    }

    #[test]
    fn short_circuit_and() {
        let mut env = Env::new();
        // Second conjunct would error (unbound var) if evaluated.
        let e = ScalarExpr::and(ScalarExpr::lit(false), ScalarExpr::var("boom"));
        assert!(!eval_predicate(&e, &mut env).unwrap());
        let e = ScalarExpr::or(ScalarExpr::lit(true), ScalarExpr::var("boom"));
        assert!(eval_predicate(&e, &mut env).unwrap());
    }
}
