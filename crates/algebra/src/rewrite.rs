//! A small plan-transformation framework.
//!
//! The unnesting strategies in `tmql-core` are expressed as bottom-up or
//! top-down rewrites over [`Plan`] trees. The framework is deliberately
//! plain — a rewrite is any `FnMut(Plan) -> Plan` — with fixpoint iteration
//! layered on top.

use crate::plan::Plan;

/// Rebuild a node with new children (same operator, children replaced in
/// left-to-right order). `children` must have the node's arity.
pub fn with_children(plan: Plan, mut children: Vec<Plan>) -> Plan {
    debug_assert_eq!(children.len(), plan.children().len(), "arity mismatch");
    let mut next = || Box::new(children.remove(0));
    match plan {
        p @ (Plan::ScanTable { .. } | Plan::ScanExpr { .. }) => p,
        Plan::Select { pred, .. } => Plan::Select {
            input: next(),
            pred,
        },
        Plan::Map { expr, var, .. } => Plan::Map {
            input: next(),
            expr,
            var,
        },
        Plan::Extend { expr, var, .. } => Plan::Extend {
            input: next(),
            expr,
            var,
        },
        Plan::Project { vars, .. } => Plan::Project {
            input: next(),
            vars,
        },
        Plan::Join { pred, .. } => Plan::Join {
            left: next(),
            right: next(),
            pred,
        },
        Plan::SemiJoin { pred, .. } => Plan::SemiJoin {
            left: next(),
            right: next(),
            pred,
        },
        Plan::AntiJoin { pred, .. } => Plan::AntiJoin {
            left: next(),
            right: next(),
            pred,
        },
        Plan::LeftOuterJoin { pred, .. } => Plan::LeftOuterJoin {
            left: next(),
            right: next(),
            pred,
        },
        Plan::NestJoin {
            pred, func, label, ..
        } => Plan::NestJoin {
            left: next(),
            right: next(),
            pred,
            func,
            label,
        },
        Plan::Nest {
            keys,
            value,
            label,
            star,
            ..
        } => Plan::Nest {
            input: next(),
            keys,
            value,
            label,
            star,
        },
        Plan::Unnest {
            expr,
            elem_var,
            drop_vars,
            ..
        } => Plan::Unnest {
            input: next(),
            expr,
            elem_var,
            drop_vars,
        },
        Plan::GroupAgg {
            keys, aggs, var, ..
        } => Plan::GroupAgg {
            input: next(),
            keys,
            aggs,
            var,
        },
        Plan::Apply { label, .. } => Plan::Apply {
            input: next(),
            subquery: next(),
            label,
        },
        Plan::SetOp { kind, var, .. } => Plan::SetOp {
            kind,
            left: next(),
            right: next(),
            var,
        },
    }
}

/// Take ownership of a node's children (left-to-right).
pub fn take_children(plan: &Plan) -> Vec<Plan> {
    plan.children().into_iter().cloned().collect()
}

/// Bottom-up transform: children first, then the rebuilt node is handed to
/// `f`. `f` returns the (possibly) replaced node.
pub fn transform_up(plan: Plan, f: &mut impl FnMut(Plan) -> Plan) -> Plan {
    let children: Vec<Plan> = take_children(&plan)
        .into_iter()
        .map(|c| transform_up(c, f))
        .collect();
    f(with_children(plan, children))
}

/// Top-down transform: `f` first (repeatedly until it no longer changes the
/// node), then recurse into the result's children.
pub fn transform_down(plan: Plan, f: &mut impl FnMut(Plan) -> Plan) -> Plan {
    let mut node = plan;
    loop {
        let before = node.clone();
        node = f(node);
        if node == before {
            break;
        }
    }
    let children: Vec<Plan> = take_children(&node)
        .into_iter()
        .map(|c| transform_down(c, f))
        .collect();
    with_children(node, children)
}

/// Apply `f` bottom-up until a fixpoint is reached, with a safety bound of
/// `max_rounds` full passes.
pub fn fixpoint(mut plan: Plan, max_rounds: usize, f: &mut impl FnMut(Plan) -> Plan) -> Plan {
    for _ in 0..max_rounds {
        let next = transform_up(plan.clone(), f);
        if next == plan {
            return plan;
        }
        plan = next;
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::ScalarExpr as E;
    use tmql_model::Value;

    fn truep() -> E {
        E::lit(true)
    }

    #[test]
    fn with_children_round_trips() {
        let p = Plan::scan("X", "x").join(Plan::scan("Y", "y"), truep());
        let rebuilt = with_children(p.clone(), take_children(&p));
        assert_eq!(p, rebuilt);
    }

    #[test]
    fn transform_up_renames_scans() {
        let p = Plan::scan("X", "x").join(Plan::scan("Y", "y"), truep());
        let out = transform_up(p, &mut |n| match n {
            Plan::ScanTable { table, var } => Plan::ScanTable {
                table: format!("{table}2"),
                var,
            },
            other => other,
        });
        let tables: Vec<String> = collect_tables(&out);
        assert_eq!(tables, vec!["X2", "Y2"]);
    }

    #[test]
    fn transform_down_reaches_fixpoint_per_node() {
        // A rule that peels nested Selects one at a time.
        let p = Plan::scan("X", "x").select(truep()).select(truep());
        let out = transform_down(p, &mut |n| match n {
            Plan::Select { input, pred } if matches!(*input, Plan::Select { .. }) => {
                let Plan::Select {
                    input: inner,
                    pred: ip,
                } = *input
                else {
                    unreachable!()
                };
                Plan::Select {
                    input: inner,
                    pred: E::and(ip, pred),
                }
            }
            other => other,
        });
        // Both selects fused into one conjunction.
        assert_eq!(
            out.count_nodes(&mut |n| matches!(n, Plan::Select { .. })),
            1
        );
    }

    #[test]
    fn fixpoint_terminates_on_nonconverging_rule() {
        // A rule that flips the literal forever: the round bound stops it.
        let p = Plan::scan("X", "x").select(E::lit(true));
        let out = fixpoint(p, 4, &mut |n| match n {
            Plan::Select { input, pred } => {
                let flipped = if pred == E::lit(true) {
                    E::lit(false)
                } else {
                    E::lit(true)
                };
                let _ = pred;
                Plan::Select {
                    input,
                    pred: flipped,
                }
            }
            other => other,
        });
        // Terminated; value after an even number of rounds is `true`.
        assert!(matches!(out, Plan::Select { .. }));
        let _ = Value::Bool(true);
    }

    fn collect_tables(p: &Plan) -> Vec<String> {
        let mut out = Vec::new();
        fn go(p: &Plan, out: &mut Vec<String>) {
            if let Plan::ScanTable { table, .. } = p {
                out.push(table.clone());
            }
            for c in p.children() {
                go(c, out);
            }
        }
        go(p, &mut out);
        out
    }
}
