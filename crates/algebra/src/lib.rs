#![warn(missing_docs)]

//! # tmql-algebra — an algebra for complex objects (ADL-like)
//!
//! The paper translates TM into "ADL, an algebra for complex objects which
//! is an extension of the NF² algebra of [Schek & Scholl 86]" (Section 1).
//! This crate is that algebra:
//!
//! * [`scalar::ScalarExpr`] — the expression language inside operators:
//!   paths, comparisons, boolean connectives, set operators and comparisons
//!   (`∈ ⊆ ⊂ ⊇ ⊃ ∩=∅ …`), aggregates (`COUNT/SUM/MIN/MAX/AVG`), tuple and
//!   set construction, and **bounded quantifiers** `∃v ∈ s (p)` /
//!   `∀v ∈ s (p)` — the calculus forms Theorem 1 rewrites into;
//! * [`plan::Plan`] — logical operators: scans, select, map (generalized
//!   projection), the join family (join, semijoin ⋉, antijoin ▷,
//!   left outerjoin ⟕, **nest join Δ**), grouping (`ν` nest / `ν*` /
//!   group-aggregate), `μ` unnest, set operations, and the correlated
//!   [`plan::Plan::Apply`] that gives nested SFW expressions their
//!   nested-loop semantics before unnesting;
//! * [`mod@eval`] — scalar evaluation against variable environments;
//! * [`typing`] — output-variable type derivation;
//! * [`rewrite`] — a small bottom-up plan-transformation framework used by
//!   the unnesting strategies in `tmql-core`;
//! * [`pretty`] — `EXPLAIN`-style plan rendering.
//!
//! ## Row representation
//!
//! A row is a [`tmql_model::Record`] whose top-level fields are **variable
//! bindings**: scanning `X x` yields rows `(x = ⟨tuple⟩)`; a join of `X x`
//! and `Y y` yields `(x = …, y = …)`; a nest join yields `(x = …, ys = {…})`.
//! This mirrors the paper's notation `x ++ (a = z)` directly and makes
//! variable scoping explicit instead of positional.

pub mod eval;
pub mod plan;
pub mod pretty;
pub mod rewrite;
pub mod scalar;
pub mod typing;

pub use eval::{eval, eval_predicate, Env};
pub use plan::{AggFn, Plan, SetOpKind};
pub use scalar::{ArithOp, CmpOp, Quantifier, ScalarExpr, SetBinOp, SetCmpOp};

pub use tmql_model::{ModelError, Result};
