//! The scalar expression language used inside algebra operators.

use std::collections::BTreeSet;
use std::fmt;

use tmql_model::Value;

/// Comparison operators on atomic values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl CmpOp {
    /// The operator with operand sides swapped (`a < b` ⟷ `b > a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Logical negation (`<` ⟷ `≥`).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// Binary set-to-set operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetBinOp {
    /// `∪`
    Union,
    /// `∩`
    Intersect,
    /// `\`
    Difference,
}

/// Set comparison predicates — the forms of Section 4.1 / Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetCmpOp {
    /// `a ∈ s`
    In,
    /// `a ∉ s`
    NotIn,
    /// `a ⊆ s`
    SubsetEq,
    /// `a ⊂ s`
    Subset,
    /// `a ⊇ s`
    SupersetEq,
    /// `a ⊃ s`
    Superset,
    /// `a = s` (set equality)
    SetEq,
    /// `a ≠ s`
    SetNe,
    /// `a ∩ s = ∅`
    Disjoint,
    /// `a ∩ s ≠ ∅`
    Intersects,
}

/// Aggregate functions `H` in predicates `x.a OP H(z)` (Section 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFn {
    /// Cardinality; total even on ∅ — the root of the COUNT bug.
    Count,
    /// Sum (0 on ∅).
    Sum,
    /// Minimum (undefined on ∅).
    Min,
    /// Maximum (undefined on ∅).
    Max,
    /// Average (undefined on ∅).
    Avg,
}

impl fmt::Display for AggFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFn::Count => "COUNT",
            AggFn::Sum => "SUM",
            AggFn::Min => "MIN",
            AggFn::Max => "MAX",
            AggFn::Avg => "AVG",
        };
        write!(f, "{s}")
    }
}

/// Bounded quantifiers over set values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quantifier {
    /// `∃ v ∈ s (p)`
    Exists,
    /// `∀ v ∈ s (p)`
    Forall,
}

/// A scalar expression evaluated against an environment of variable
/// bindings. Predicates are scalar expressions of boolean type.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// Literal value.
    Lit(Value),
    /// Variable reference (an iteration variable such as `x`).
    Var(String),
    /// Tuple field access `e.label`.
    Field(Box<ScalarExpr>, String),
    /// Comparison of atomic values.
    Cmp(CmpOp, Box<ScalarExpr>, Box<ScalarExpr>),
    /// Arithmetic.
    Arith(ArithOp, Box<ScalarExpr>, Box<ScalarExpr>),
    /// Conjunction.
    And(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Disjunction.
    Or(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Negation.
    Not(Box<ScalarExpr>),
    /// Binary set operator (∪ ∩ \).
    SetBin(SetBinOp, Box<ScalarExpr>, Box<ScalarExpr>),
    /// Set comparison predicate (∈ ⊆ …).
    SetCmp(SetCmpOp, Box<ScalarExpr>, Box<ScalarExpr>),
    /// Aggregate application `H(s)`.
    Agg(AggFn, Box<ScalarExpr>),
    /// Tuple construction `(a = e1, b = e2)`.
    Tuple(Vec<(String, ScalarExpr)>),
    /// Set construction `{e1, e2, …}` (duplicates collapse).
    SetLit(Vec<ScalarExpr>),
    /// Bounded quantifier `Q v ∈ s (p)`; binds `v` inside `p`.
    Quant {
        /// ∃ or ∀.
        q: Quantifier,
        /// Bound variable.
        var: String,
        /// Set expression ranged over.
        over: Box<ScalarExpr>,
        /// Body predicate.
        pred: Box<ScalarExpr>,
    },
    /// `UNNEST(s)`: collapse a set of sets (Section 5).
    Unnest(Box<ScalarExpr>),
    /// `IS NULL` test — for the relational (Ganski–Wong) baseline only.
    IsNull(Box<ScalarExpr>),
}

impl ScalarExpr {
    /// Variable reference.
    pub fn var(name: impl Into<String>) -> ScalarExpr {
        ScalarExpr::Var(name.into())
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> ScalarExpr {
        ScalarExpr::Lit(v.into())
    }

    /// Dotted path `var.f1.f2…`.
    pub fn path(var: impl Into<String>, fields: &[&str]) -> ScalarExpr {
        let mut e = ScalarExpr::var(var);
        for f in fields {
            e = ScalarExpr::Field(Box::new(e), f.to_string());
        }
        e
    }

    /// Field access.
    pub fn field(self, label: impl Into<String>) -> ScalarExpr {
        ScalarExpr::Field(Box::new(self), label.into())
    }

    /// Comparison builder.
    pub fn cmp(op: CmpOp, lhs: ScalarExpr, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Cmp(op, Box::new(lhs), Box::new(rhs))
    }

    /// Equality shorthand.
    pub fn eq(lhs: ScalarExpr, rhs: ScalarExpr) -> ScalarExpr {
        Self::cmp(CmpOp::Eq, lhs, rhs)
    }

    /// Conjunction shorthand.
    pub fn and(lhs: ScalarExpr, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::And(Box::new(lhs), Box::new(rhs))
    }

    /// Disjunction shorthand.
    pub fn or(lhs: ScalarExpr, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Or(Box::new(lhs), Box::new(rhs))
    }

    /// Negation shorthand.
    #[allow(clippy::should_implement_trait)] // domain term, takes by value
    pub fn not(e: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Not(Box::new(e))
    }

    /// Set-comparison builder.
    pub fn set_cmp(op: SetCmpOp, lhs: ScalarExpr, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::SetCmp(op, Box::new(lhs), Box::new(rhs))
    }

    /// Aggregate builder.
    pub fn agg(f: AggFn, e: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Agg(f, Box::new(e))
    }

    /// Quantifier builder.
    pub fn quant(
        q: Quantifier,
        var: impl Into<String>,
        over: ScalarExpr,
        pred: ScalarExpr,
    ) -> ScalarExpr {
        ScalarExpr::Quant {
            q,
            var: var.into(),
            over: Box::new(over),
            pred: Box::new(pred),
        }
    }

    /// Conjunction of many terms (`true` for the empty list).
    pub fn conj(terms: impl IntoIterator<Item = ScalarExpr>) -> ScalarExpr {
        let mut it = terms.into_iter();
        match it.next() {
            None => ScalarExpr::Lit(Value::Bool(true)),
            Some(first) => it.fold(first, ScalarExpr::and),
        }
    }

    /// Free variables: variables referenced but not bound by an enclosing
    /// quantifier. This is the analysis that detects correlated subqueries
    /// ("subqueries in which free variables occur", Section 3.2).
    pub fn free_vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_free(&mut BTreeSet::new(), &mut out);
        out
    }

    fn collect_free(&self, bound: &mut BTreeSet<String>, out: &mut BTreeSet<String>) {
        match self {
            ScalarExpr::Lit(_) => {}
            ScalarExpr::Var(v) => {
                if !bound.contains(v) {
                    out.insert(v.clone());
                }
            }
            ScalarExpr::Field(e, _)
            | ScalarExpr::Not(e)
            | ScalarExpr::Agg(_, e)
            | ScalarExpr::Unnest(e)
            | ScalarExpr::IsNull(e) => e.collect_free(bound, out),
            ScalarExpr::Cmp(_, a, b)
            | ScalarExpr::Arith(_, a, b)
            | ScalarExpr::And(a, b)
            | ScalarExpr::Or(a, b)
            | ScalarExpr::SetBin(_, a, b)
            | ScalarExpr::SetCmp(_, a, b) => {
                a.collect_free(bound, out);
                b.collect_free(bound, out);
            }
            ScalarExpr::Tuple(fs) => {
                for (_, e) in fs {
                    e.collect_free(bound, out);
                }
            }
            ScalarExpr::SetLit(es) => {
                for e in es {
                    e.collect_free(bound, out);
                }
            }
            ScalarExpr::Quant {
                var, over, pred, ..
            } => {
                over.collect_free(bound, out);
                let fresh = bound.insert(var.clone());
                pred.collect_free(bound, out);
                if fresh {
                    bound.remove(var);
                }
            }
        }
    }

    /// True iff `var` occurs free in the expression.
    pub fn mentions(&self, var: &str) -> bool {
        self.free_vars().contains(var)
    }

    /// Substitute every free occurrence of variable `var` by `replacement`.
    /// Quantifier bindings shadow as expected.
    pub fn substitute(&self, var: &str, replacement: &ScalarExpr) -> ScalarExpr {
        match self {
            ScalarExpr::Lit(_) => self.clone(),
            ScalarExpr::Var(v) => {
                if v == var {
                    replacement.clone()
                } else {
                    self.clone()
                }
            }
            ScalarExpr::Field(e, l) => {
                ScalarExpr::Field(Box::new(e.substitute(var, replacement)), l.clone())
            }
            ScalarExpr::Not(e) => ScalarExpr::not(e.substitute(var, replacement)),
            ScalarExpr::Agg(f, e) => ScalarExpr::agg(*f, e.substitute(var, replacement)),
            ScalarExpr::Unnest(e) => ScalarExpr::Unnest(Box::new(e.substitute(var, replacement))),
            ScalarExpr::IsNull(e) => ScalarExpr::IsNull(Box::new(e.substitute(var, replacement))),
            ScalarExpr::Cmp(op, a, b) => ScalarExpr::cmp(
                *op,
                a.substitute(var, replacement),
                b.substitute(var, replacement),
            ),
            ScalarExpr::Arith(op, a, b) => ScalarExpr::Arith(
                *op,
                Box::new(a.substitute(var, replacement)),
                Box::new(b.substitute(var, replacement)),
            ),
            ScalarExpr::And(a, b) => ScalarExpr::and(
                a.substitute(var, replacement),
                b.substitute(var, replacement),
            ),
            ScalarExpr::Or(a, b) => ScalarExpr::or(
                a.substitute(var, replacement),
                b.substitute(var, replacement),
            ),
            ScalarExpr::SetBin(op, a, b) => ScalarExpr::SetBin(
                *op,
                Box::new(a.substitute(var, replacement)),
                Box::new(b.substitute(var, replacement)),
            ),
            ScalarExpr::SetCmp(op, a, b) => ScalarExpr::set_cmp(
                *op,
                a.substitute(var, replacement),
                b.substitute(var, replacement),
            ),
            ScalarExpr::Tuple(fs) => ScalarExpr::Tuple(
                fs.iter()
                    .map(|(l, e)| (l.clone(), e.substitute(var, replacement)))
                    .collect(),
            ),
            ScalarExpr::SetLit(es) => {
                ScalarExpr::SetLit(es.iter().map(|e| e.substitute(var, replacement)).collect())
            }
            ScalarExpr::Quant {
                q,
                var: bv,
                over,
                pred,
            } => {
                let over2 = over.substitute(var, replacement);
                let pred2 = if bv == var {
                    (**pred).clone()
                } else {
                    pred.substitute(var, replacement)
                };
                ScalarExpr::quant(*q, bv.clone(), over2, pred2)
            }
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "≠",
            CmpOp::Lt => "<",
            CmpOp::Le => "≤",
            CmpOp::Gt => ">",
            CmpOp::Ge => "≥",
        };
        write!(f, "{s}")
    }
}

impl fmt::Display for SetCmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SetCmpOp::In => "∈",
            SetCmpOp::NotIn => "∉",
            SetCmpOp::SubsetEq => "⊆",
            SetCmpOp::Subset => "⊂",
            SetCmpOp::SupersetEq => "⊇",
            SetCmpOp::Superset => "⊃",
            SetCmpOp::SetEq => "=",
            SetCmpOp::SetNe => "≠",
            SetCmpOp::Disjoint => "∩=∅",
            SetCmpOp::Intersects => "∩≠∅",
        };
        write!(f, "{s}")
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Lit(v) => write!(f, "{v}"),
            ScalarExpr::Var(v) => write!(f, "{v}"),
            ScalarExpr::Field(e, l) => write!(f, "{e}.{l}"),
            ScalarExpr::Cmp(op, a, b) => write!(f, "({a} {op} {b})"),
            ScalarExpr::Arith(op, a, b) => {
                let s = match op {
                    ArithOp::Add => "+",
                    ArithOp::Sub => "-",
                    ArithOp::Mul => "*",
                    ArithOp::Div => "/",
                };
                write!(f, "({a} {s} {b})")
            }
            ScalarExpr::And(a, b) => write!(f, "({a} ∧ {b})"),
            ScalarExpr::Or(a, b) => write!(f, "({a} ∨ {b})"),
            ScalarExpr::Not(e) => write!(f, "¬{e}"),
            ScalarExpr::SetBin(op, a, b) => {
                let s = match op {
                    SetBinOp::Union => "∪",
                    SetBinOp::Intersect => "∩",
                    SetBinOp::Difference => "\\",
                };
                write!(f, "({a} {s} {b})")
            }
            ScalarExpr::SetCmp(op, a, b) => match op {
                SetCmpOp::Disjoint => write!(f, "({a} ∩ {b} = ∅)"),
                SetCmpOp::Intersects => write!(f, "({a} ∩ {b} ≠ ∅)"),
                _ => write!(f, "({a} {op} {b})"),
            },
            ScalarExpr::Agg(fun, e) => write!(f, "{fun}({e})"),
            ScalarExpr::Tuple(fs) => {
                write!(f, "(")?;
                for (i, (l, e)) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{l} = {e}")?;
                }
                write!(f, ")")
            }
            ScalarExpr::SetLit(es) => {
                write!(f, "{{")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "}}")
            }
            ScalarExpr::Quant { q, var, over, pred } => {
                let s = match q {
                    Quantifier::Exists => "∃",
                    Quantifier::Forall => "∀",
                };
                write!(f, "{s}{var} ∈ {over} ({pred})")
            }
            ScalarExpr::Unnest(e) => write!(f, "UNNEST({e})"),
            ScalarExpr::IsNull(e) => write!(f, "({e} IS NULL)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_vars_respect_quantifier_binding() {
        // ∃v ∈ z (v = x.a): free = {z, x}
        let e = ScalarExpr::quant(
            Quantifier::Exists,
            "v",
            ScalarExpr::var("z"),
            ScalarExpr::eq(ScalarExpr::var("v"), ScalarExpr::path("x", &["a"])),
        );
        let fv = e.free_vars();
        assert_eq!(
            fv.into_iter().collect::<Vec<_>>(),
            vec!["x".to_string(), "z".to_string()]
        );
    }

    #[test]
    fn shadowed_var_stays_bound() {
        // ∃x ∈ s (x = 1) — x is bound, s free.
        let e = ScalarExpr::quant(
            Quantifier::Exists,
            "x",
            ScalarExpr::var("s"),
            ScalarExpr::eq(ScalarExpr::var("x"), ScalarExpr::lit(1i64)),
        );
        assert!(!e.mentions("x"));
        assert!(e.mentions("s"));
    }

    #[test]
    fn substitute_respects_shadowing() {
        let e = ScalarExpr::quant(
            Quantifier::Exists,
            "v",
            ScalarExpr::var("z"),
            ScalarExpr::eq(ScalarExpr::var("v"), ScalarExpr::var("w")),
        );
        let sub = e.substitute("w", &ScalarExpr::lit(7i64));
        assert!(!sub.mentions("w"));
        // Substituting the bound name is a no-op inside the body.
        let sub2 = e.substitute("v", &ScalarExpr::lit(7i64));
        assert_eq!(sub2, e);
    }

    #[test]
    fn cmp_op_algebra() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Lt.negate(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
    }

    #[test]
    fn conj_of_empty_is_true() {
        assert_eq!(ScalarExpr::conj([]), ScalarExpr::Lit(Value::Bool(true)));
    }

    #[test]
    fn display_paper_predicate() {
        // x.a ⊆ z prints recognizably.
        let e = ScalarExpr::set_cmp(
            SetCmpOp::SubsetEq,
            ScalarExpr::path("x", &["a"]),
            ScalarExpr::var("z"),
        );
        assert_eq!(e.to_string(), "(x.a ⊆ z)");
    }
}
