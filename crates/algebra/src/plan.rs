//! Logical plan operators for the complex object algebra.

use std::fmt;

use tmql_model::{Record, Value};

pub use crate::scalar::AggFn;
use crate::scalar::ScalarExpr;

/// Set operations between plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOpKind {
    /// `∪`
    Union,
    /// `∩`
    Intersect,
    /// `\`
    Except,
}

/// A logical plan. Rows are [`Record`]s of variable bindings; see the crate
/// docs for the representation.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Scan a stored table (class extension), binding each tuple to `var`.
    ScanTable {
        /// Extension / table name.
        table: String,
        /// Iteration variable.
        var: String,
    },
    /// Iterate a set-valued expression (e.g. `d.emps`, or a constant set),
    /// binding each element to `var`. The expression may reference outer
    /// variables when this plan appears under an [`Plan::Apply`].
    ScanExpr {
        /// Set expression to iterate.
        expr: ScalarExpr,
        /// Iteration variable.
        var: String,
    },
    /// Selection σ.
    Select {
        /// Input plan.
        input: Box<Plan>,
        /// Filter predicate over the input's variables.
        pred: ScalarExpr,
    },
    /// Generalized projection: replace each row by the single binding
    /// `var = expr(row)`. Output is deduplicated (set semantics).
    Map {
        /// Input plan.
        input: Box<Plan>,
        /// Result expression.
        expr: ScalarExpr,
        /// Output variable.
        var: String,
    },
    /// Add a binding `var = expr(row)` to every row, keeping existing ones.
    Extend {
        /// Input plan.
        input: Box<Plan>,
        /// Expression for the new binding.
        expr: ScalarExpr,
        /// New variable name.
        var: String,
    },
    /// Keep only the named variables (π). Deduplicated.
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// Variables to keep.
        vars: Vec<String>,
    },
    /// Regular join ⋈ on an arbitrary predicate.
    Join {
        /// Left operand.
        left: Box<Plan>,
        /// Right operand.
        right: Box<Plan>,
        /// Join predicate over both sides' variables.
        pred: ScalarExpr,
    },
    /// Semijoin ⋉: left rows with at least one matching right row.
    SemiJoin {
        /// Left operand.
        left: Box<Plan>,
        /// Right operand.
        right: Box<Plan>,
        /// Join predicate.
        pred: ScalarExpr,
    },
    /// Antijoin ▷: left rows with no matching right row.
    AntiJoin {
        /// Left operand.
        left: Box<Plan>,
        /// Right operand.
        right: Box<Plan>,
        /// Join predicate.
        pred: ScalarExpr,
    },
    /// Left outerjoin ⟕: like join, but dangling left rows survive with the
    /// right side's variables bound to NULL. **Relational baseline only** —
    /// the nest join makes this unnecessary in the complex object model.
    LeftOuterJoin {
        /// Left operand.
        left: Box<Plan>,
        /// Right operand.
        right: Box<Plan>,
        /// Join predicate.
        pred: ScalarExpr,
    },
    /// The paper's **nest join** Δ (Section 6): each left row is extended
    /// with `label = { func(l ++ r) | r ∈ right, pred(l ++ r) }`. Dangling
    /// left rows get `label = ∅`.
    NestJoin {
        /// Left operand.
        left: Box<Plan>,
        /// Right operand.
        right: Box<Plan>,
        /// Join predicate Q(x, y).
        pred: ScalarExpr,
        /// Join function G(x, y) applied to matching right rows.
        func: ScalarExpr,
        /// Fresh label for the nested set ("an arbitrary label not occurring
        /// on the top level of X").
        label: String,
    },
    /// The nest operator ν (and its ν* variant): group rows by the values
    /// of `keys`, collapsing each group to one row with
    /// `label = { value(row) | row ∈ group }`.
    ///
    /// With `star = true` this is ν* of [Scholl 86] as used in Section 6:
    /// payload values stemming from NULL-extended tuples are dropped, so a
    /// group consisting only of NULL payloads yields ∅.
    Nest {
        /// Input plan.
        input: Box<Plan>,
        /// Grouping variables (kept in the output).
        keys: Vec<String>,
        /// Payload expression collected into the nested set.
        value: ScalarExpr,
        /// Label of the nested set.
        label: String,
        /// ν* NULL-elision flag.
        star: bool,
    },
    /// Unnest μ: for each row, iterate the set bound to `set_var`'s
    /// expression and bind each element to `elem_var` (the inverse of ν).
    Unnest {
        /// Input plan.
        input: Box<Plan>,
        /// Expression yielding the set to flatten (usually a variable).
        expr: ScalarExpr,
        /// Variable bound to each element.
        elem_var: String,
        /// If true, drop the variables listed here after unnesting.
        drop_vars: Vec<String>,
    },
    /// Relational grouping with aggregates (GROUP BY) — used by the Kim and
    /// Ganski–Wong baselines (Section 2).
    GroupAgg {
        /// Input plan.
        input: Box<Plan>,
        /// Group-key expressions with output labels.
        keys: Vec<(String, ScalarExpr)>,
        /// Aggregates: output label, function, argument expression.
        /// `Count` counts rows in the group regardless of its argument.
        aggs: Vec<(String, AggFn, ScalarExpr)>,
        /// Output variable holding the (keys ++ aggs) tuple.
        var: String,
    },
    /// Correlated apply: for each input row, run `subquery` with the row's
    /// variables in scope and bind the *set* of its results to `label`.
    /// This is the direct semantics of a nested SFW expression — the
    /// paper's "nested-loop processing" baseline — and the construct every
    /// unnesting strategy tries to eliminate.
    Apply {
        /// Outer plan.
        input: Box<Plan>,
        /// Correlated inner plan.
        subquery: Box<Plan>,
        /// Label for the subquery result set.
        label: String,
    },
    /// Set operation between two plans; rows are compared by their
    /// [output value](Plan::row_output_value) and rebound to `var`.
    SetOp {
        /// Which operation.
        kind: SetOpKind,
        /// Left operand.
        left: Box<Plan>,
        /// Right operand.
        right: Box<Plan>,
        /// Output variable.
        var: String,
    },
}

impl Plan {
    /// Scan builder.
    pub fn scan(table: impl Into<String>, var: impl Into<String>) -> Plan {
        Plan::ScanTable {
            table: table.into(),
            var: var.into(),
        }
    }

    /// Selection builder.
    pub fn select(self, pred: ScalarExpr) -> Plan {
        Plan::Select {
            input: Box::new(self),
            pred,
        }
    }

    /// Map builder.
    pub fn map(self, expr: ScalarExpr, var: impl Into<String>) -> Plan {
        Plan::Map {
            input: Box::new(self),
            expr,
            var: var.into(),
        }
    }

    /// Extend builder.
    pub fn extend(self, expr: ScalarExpr, var: impl Into<String>) -> Plan {
        Plan::Extend {
            input: Box::new(self),
            expr,
            var: var.into(),
        }
    }

    /// Project builder.
    pub fn project(self, vars: &[&str]) -> Plan {
        Plan::Project {
            input: Box::new(self),
            vars: vars.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Join builder.
    pub fn join(self, right: Plan, pred: ScalarExpr) -> Plan {
        Plan::Join {
            left: Box::new(self),
            right: Box::new(right),
            pred,
        }
    }

    /// Semijoin builder.
    pub fn semi_join(self, right: Plan, pred: ScalarExpr) -> Plan {
        Plan::SemiJoin {
            left: Box::new(self),
            right: Box::new(right),
            pred,
        }
    }

    /// Antijoin builder.
    pub fn anti_join(self, right: Plan, pred: ScalarExpr) -> Plan {
        Plan::AntiJoin {
            left: Box::new(self),
            right: Box::new(right),
            pred,
        }
    }

    /// Nest join builder.
    pub fn nest_join(
        self,
        right: Plan,
        pred: ScalarExpr,
        func: ScalarExpr,
        label: impl Into<String>,
    ) -> Plan {
        Plan::NestJoin {
            left: Box::new(self),
            right: Box::new(right),
            pred,
            func,
            label: label.into(),
        }
    }

    /// Apply builder.
    pub fn apply(self, subquery: Plan, label: impl Into<String>) -> Plan {
        Plan::Apply {
            input: Box::new(self),
            subquery: Box::new(subquery),
            label: label.into(),
        }
    }

    /// The variables bound in this plan's output rows, in order.
    pub fn output_vars(&self) -> Vec<String> {
        match self {
            Plan::ScanTable { var, .. } | Plan::ScanExpr { var, .. } => vec![var.clone()],
            Plan::Select { input, .. } => input.output_vars(),
            Plan::Map { var, .. } => vec![var.clone()],
            Plan::Extend { input, var, .. } => {
                let mut v = input.output_vars();
                v.push(var.clone());
                v
            }
            Plan::Project { vars, .. } => vars.clone(),
            Plan::Join { left, right, .. } | Plan::LeftOuterJoin { left, right, .. } => {
                let mut v = left.output_vars();
                v.extend(right.output_vars());
                v
            }
            Plan::SemiJoin { left, .. } | Plan::AntiJoin { left, .. } => left.output_vars(),
            Plan::NestJoin { left, label, .. } => {
                let mut v = left.output_vars();
                v.push(label.clone());
                v
            }
            Plan::Nest { keys, label, .. } => {
                let mut v = keys.clone();
                v.push(label.clone());
                v
            }
            Plan::Unnest {
                input,
                elem_var,
                drop_vars,
                ..
            } => {
                let mut v: Vec<String> = input
                    .output_vars()
                    .into_iter()
                    .filter(|x| !drop_vars.contains(x))
                    .collect();
                v.push(elem_var.clone());
                v
            }
            Plan::GroupAgg { var, .. } => vec![var.clone()],
            Plan::Apply { input, label, .. } => {
                let mut v = input.output_vars();
                v.push(label.clone());
                v
            }
            Plan::SetOp { var, .. } => vec![var.clone()],
        }
    }

    /// The value a row denotes when the plan is used as a set expression
    /// (subquery result, set operand, final query result): single-variable
    /// rows unwrap to the bound value; multi-variable rows stay a tuple of
    /// bindings.
    pub fn row_output_value(row: &Record) -> Value {
        if row.len() == 1 {
            row.values().next().expect("len checked").clone()
        } else {
            Value::Tuple(row.clone())
        }
    }

    /// Immutable child plans, left to right.
    pub fn children(&self) -> Vec<&Plan> {
        match self {
            Plan::ScanTable { .. } | Plan::ScanExpr { .. } => vec![],
            Plan::Select { input, .. }
            | Plan::Map { input, .. }
            | Plan::Extend { input, .. }
            | Plan::Project { input, .. }
            | Plan::Nest { input, .. }
            | Plan::Unnest { input, .. }
            | Plan::GroupAgg { input, .. } => vec![input],
            Plan::Join { left, right, .. }
            | Plan::SemiJoin { left, right, .. }
            | Plan::AntiJoin { left, right, .. }
            | Plan::LeftOuterJoin { left, right, .. }
            | Plan::NestJoin { left, right, .. }
            | Plan::SetOp { left, right, .. } => vec![left, right],
            Plan::Apply {
                input, subquery, ..
            } => vec![input, subquery],
        }
    }

    /// Operator name for explain output.
    pub fn op_name(&self) -> &'static str {
        match self {
            Plan::ScanTable { .. } => "ScanTable",
            Plan::ScanExpr { .. } => "ScanExpr",
            Plan::Select { .. } => "Select",
            Plan::Map { .. } => "Map",
            Plan::Extend { .. } => "Extend",
            Plan::Project { .. } => "Project",
            Plan::Join { .. } => "Join",
            Plan::SemiJoin { .. } => "SemiJoin",
            Plan::AntiJoin { .. } => "AntiJoin",
            Plan::LeftOuterJoin { .. } => "LeftOuterJoin",
            Plan::NestJoin { .. } => "NestJoin",
            Plan::Nest { .. } => "Nest",
            Plan::Unnest { .. } => "Unnest",
            Plan::GroupAgg { .. } => "GroupAgg",
            Plan::Apply { .. } => "Apply",
            Plan::SetOp { .. } => "SetOp",
        }
    }

    /// Number of operators in the plan tree.
    pub fn size(&self) -> usize {
        1 + self.children().iter().map(|c| c.size()).sum::<usize>()
    }

    /// True iff any node satisfies the predicate.
    pub fn any_node(&self, pred: &mut impl FnMut(&Plan) -> bool) -> bool {
        if pred(self) {
            return true;
        }
        self.children().into_iter().any(|c| c.any_node(pred))
    }

    /// Count nodes satisfying a predicate.
    pub fn count_nodes(&self, pred: &mut impl FnMut(&Plan) -> bool) -> usize {
        let own = usize::from(pred(self));
        own + self
            .children()
            .into_iter()
            .map(|c| c.count_nodes(pred))
            .sum::<usize>()
    }

    /// Free variables of the plan: variables referenced by any expression
    /// in the tree that are not bound anywhere within the tree itself
    /// (scan/iteration variables, labels, quantifier variables). A plan
    /// with free variables is **correlated** — it can only run under an
    /// [`Plan::Apply`] that supplies those bindings; a closed plan can be
    /// decorrelated into a join (the precondition of every unnesting
    /// strategy).
    pub fn free_vars(&self) -> std::collections::BTreeSet<String> {
        let mut referenced = std::collections::BTreeSet::new();
        let mut bound = std::collections::BTreeSet::new();
        self.collect_vars(&mut referenced, &mut bound);
        referenced.difference(&bound).cloned().collect()
    }

    fn collect_vars(
        &self,
        referenced: &mut std::collections::BTreeSet<String>,
        bound: &mut std::collections::BTreeSet<String>,
    ) {
        let add_expr = |e: &ScalarExpr, referenced: &mut std::collections::BTreeSet<String>| {
            referenced.extend(e.free_vars());
        };
        match self {
            Plan::ScanTable { var, .. } => {
                bound.insert(var.clone());
            }
            Plan::ScanExpr { expr, var } => {
                add_expr(expr, referenced);
                bound.insert(var.clone());
            }
            Plan::Select { pred, .. } => add_expr(pred, referenced),
            Plan::Map { expr, var, .. } | Plan::Extend { expr, var, .. } => {
                add_expr(expr, referenced);
                bound.insert(var.clone());
            }
            Plan::Project { vars, .. } => referenced.extend(vars.iter().cloned()),
            Plan::Join { pred, .. }
            | Plan::SemiJoin { pred, .. }
            | Plan::AntiJoin { pred, .. }
            | Plan::LeftOuterJoin { pred, .. } => add_expr(pred, referenced),
            Plan::NestJoin {
                pred, func, label, ..
            } => {
                add_expr(pred, referenced);
                add_expr(func, referenced);
                bound.insert(label.clone());
            }
            Plan::Nest {
                keys, value, label, ..
            } => {
                referenced.extend(keys.iter().cloned());
                add_expr(value, referenced);
                bound.insert(label.clone());
            }
            Plan::Unnest { expr, elem_var, .. } => {
                add_expr(expr, referenced);
                bound.insert(elem_var.clone());
            }
            Plan::GroupAgg {
                keys, aggs, var, ..
            } => {
                for (_, e) in keys {
                    add_expr(e, referenced);
                }
                for (_, _, e) in aggs {
                    add_expr(e, referenced);
                }
                bound.insert(var.clone());
            }
            Plan::Apply { label, .. } => {
                bound.insert(label.clone());
            }
            Plan::SetOp { var, .. } => {
                bound.insert(var.clone());
            }
        }
        for c in self.children() {
            c.collect_vars(referenced, bound);
        }
    }

    /// True iff the plan still contains a correlated [`Plan::Apply`] —
    /// i.e. unnesting has not (fully) happened.
    pub fn has_apply(&self) -> bool {
        self.any_node(&mut |p| matches!(p, Plan::Apply { .. }))
    }

    /// True iff the plan contains a nest join.
    pub fn has_nest_join(&self) -> bool {
        self.any_node(&mut |p| matches!(p, Plan::NestJoin { .. }))
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::pretty::explain(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::ScalarExpr as E;

    fn sample() -> Plan {
        Plan::scan("X", "x")
            .join(
                Plan::scan("Y", "y"),
                E::eq(E::path("x", &["b"]), E::path("y", &["b"])),
            )
            .map(E::var("x"), "out")
    }

    #[test]
    fn output_vars_compose() {
        let j = Plan::scan("X", "x").join(Plan::scan("Y", "y"), E::lit(true));
        assert_eq!(j.output_vars(), vec!["x", "y"]);
        assert_eq!(sample().output_vars(), vec!["out"]);
        let nj =
            Plan::scan("X", "x").nest_join(Plan::scan("Y", "y"), E::lit(true), E::var("y"), "ys");
        assert_eq!(nj.output_vars(), vec!["x", "ys"]);
        let semi = Plan::scan("X", "x").semi_join(Plan::scan("Y", "y"), E::lit(true));
        assert_eq!(semi.output_vars(), vec!["x"]);
    }

    #[test]
    fn unnest_output_vars_drop() {
        let u = Plan::Unnest {
            input: Box::new(Plan::scan("X", "x").apply(Plan::scan("Y", "y"), "zs")),
            expr: E::var("zs"),
            elem_var: "z".into(),
            drop_vars: vec!["zs".into()],
        };
        assert_eq!(u.output_vars(), vec!["x", "z"]);
    }

    #[test]
    fn row_output_value_unwraps_singletons() {
        let mut r = Record::empty();
        r.push("x", Value::Int(1)).unwrap();
        assert_eq!(Plan::row_output_value(&r), Value::Int(1));
        r.push("y", Value::Int(2)).unwrap();
        assert_eq!(Plan::row_output_value(&r), Value::Tuple(r.clone()));
    }

    #[test]
    fn free_vars_detect_correlation() {
        // Subquery SELECT y.c FROM Y y WHERE x.b = y.b: `x` is free.
        let sub = Plan::scan("Y", "y")
            .select(E::eq(E::path("x", &["b"]), E::path("y", &["b"])))
            .map(E::path("y", &["c"]), "v");
        let fv = sub.free_vars();
        assert_eq!(fv.into_iter().collect::<Vec<_>>(), vec!["x".to_string()]);
        // The full Apply is closed.
        let full = Plan::scan("X", "x").apply(
            Plan::scan("Y", "y")
                .select(E::eq(E::path("x", &["b"]), E::path("y", &["b"])))
                .map(E::path("y", &["c"]), "v"),
            "z",
        );
        assert!(full.free_vars().is_empty());
    }

    #[test]
    fn scan_expr_over_attribute_is_correlated() {
        // FROM d.emps e — references outer d.
        let p = Plan::ScanExpr {
            expr: E::path("d", &["emps"]),
            var: "e".into(),
        };
        assert!(p.free_vars().contains("d"));
    }

    #[test]
    fn tree_queries() {
        let p = sample();
        assert_eq!(p.size(), 4);
        assert!(!p.has_apply());
        let a = Plan::scan("X", "x").apply(Plan::scan("Y", "y"), "z");
        assert!(a.has_apply());
        assert_eq!(
            a.count_nodes(&mut |n| matches!(n, Plan::ScanTable { .. })),
            2
        );
    }
}
