//! `EXPLAIN`-style rendering of logical plans.

use std::fmt::Write as _;

use crate::plan::{Plan, SetOpKind};

/// Render a plan as an indented operator tree, one operator per line, using
/// the paper's operator symbols where they exist (⋈ ⋉ ▷ ⟕ Δ ν μ σ π).
pub fn explain(plan: &Plan) -> String {
    explain_annotated(plan, &mut |_| None)
}

/// [`explain`] with a per-node annotation hook: whatever the callback
/// returns is appended to that operator's line as `  -- note`. The
/// facade uses this to print estimated rows next to each operator.
pub fn explain_annotated(
    plan: &Plan,
    annotate: &mut impl FnMut(&Plan) -> Option<String>,
) -> String {
    fn go(
        plan: &Plan,
        depth: usize,
        annotate: &mut impl FnMut(&Plan) -> Option<String>,
        out: &mut String,
    ) {
        let pad = "  ".repeat(depth);
        match annotate(plan) {
            Some(note) => {
                let _ = writeln!(out, "{pad}{}  -- {note}", head(plan));
            }
            None => {
                let _ = writeln!(out, "{pad}{}", head(plan));
            }
        }
        for c in plan.children() {
            go(c, depth + 1, annotate, out);
        }
    }
    let mut out = String::new();
    go(plan, 0, annotate, &mut out);
    out
}

/// The one-line operator header (no indentation, no children).
fn head(plan: &Plan) -> String {
    match plan {
        Plan::ScanTable { table, var } => format!("Scan {table} {var}"),
        Plan::ScanExpr { expr, var } => format!("ScanExpr {expr} {var}"),
        Plan::Select { pred, .. } => format!("σ [{pred}]"),
        Plan::Map { expr, var, .. } => format!("Map [{var} := {expr}]"),
        Plan::Extend { expr, var, .. } => format!("Extend [{var} := {expr}]"),
        Plan::Project { vars, .. } => format!("π [{}]", vars.join(", ")),
        Plan::Join { pred, .. } => format!("⋈ [{pred}]"),
        Plan::SemiJoin { pred, .. } => format!("⋉ semijoin [{pred}]"),
        Plan::AntiJoin { pred, .. } => format!("▷ antijoin [{pred}]"),
        Plan::LeftOuterJoin { pred, .. } => format!("⟕ outerjoin [{pred}]"),
        Plan::NestJoin {
            pred, func, label, ..
        } => {
            format!("Δ nestjoin [{pred}; {label} := {{{func}}}]")
        }
        Plan::Nest {
            keys,
            value,
            label,
            star,
            ..
        } => {
            let star_s = if *star { "ν*" } else { "ν" };
            format!("{star_s} [by {}; {label} := {{{value}}}]", keys.join(", "))
        }
        Plan::Unnest {
            expr,
            elem_var,
            drop_vars,
            ..
        } => {
            let drop = if drop_vars.is_empty() {
                String::new()
            } else {
                format!("; drop {}", drop_vars.join(", "))
            };
            format!("μ [{elem_var} ∈ {expr}{drop}]")
        }
        Plan::GroupAgg {
            keys, aggs, var, ..
        } => {
            let ks: Vec<String> = keys.iter().map(|(l, e)| format!("{l} := {e}")).collect();
            let ags: Vec<String> = aggs
                .iter()
                .map(|(l, f, e)| format!("{l} := {f}({e})"))
                .collect();
            format!("γ [{var}: by {}; {}]", ks.join(", "), ags.join(", "))
        }
        Plan::Apply { label, .. } => format!("Apply [{label} := subquery]"),
        Plan::SetOp { kind, var, .. } => {
            let sym = match kind {
                SetOpKind::Union => "∪",
                SetOpKind::Intersect => "∩",
                SetOpKind::Except => "\\",
            };
            format!("{sym} [{var}]")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::ScalarExpr as E;

    #[test]
    fn explain_shows_structure() {
        let p = Plan::scan("X", "x")
            .nest_join(
                Plan::scan("Y", "y"),
                E::eq(E::path("x", &["b"]), E::path("y", &["b"])),
                E::path("y", &["a"]),
                "ys",
            )
            .select(E::set_cmp(
                crate::scalar::SetCmpOp::SubsetEq,
                E::path("x", &["a"]),
                E::var("ys"),
            ));
        let s = explain(&p);
        assert!(s.contains("Δ nestjoin"), "{s}");
        assert!(s.contains("σ"), "{s}");
        assert!(s.contains("Scan X x"), "{s}");
        // Indentation: scans one level under the nest join.
        assert!(s.lines().any(|l| l.starts_with("    Scan X x")), "{s}");
    }

    #[test]
    fn explain_apply() {
        let p = Plan::scan("X", "x").apply(Plan::scan("Y", "y"), "z");
        let s = explain(&p);
        assert!(s.starts_with("Apply [z := subquery]"), "{s}");
    }

    #[test]
    fn annotations_attach_per_node() {
        let p = Plan::scan("X", "x").select(E::lit(true));
        let s = explain_annotated(&p, &mut |n| match n {
            Plan::ScanTable { .. } => Some("~3 rows".into()),
            _ => None,
        });
        assert!(s.contains("Scan X x  -- ~3 rows"), "{s}");
        assert!(s.lines().next().unwrap().ends_with("σ [true]"), "{s}");
    }
}
