//! `EXPLAIN`-style rendering of logical plans.

use std::fmt::Write as _;

use crate::plan::{Plan, SetOpKind};

/// Render a plan as an indented operator tree, one operator per line, using
/// the paper's operator symbols where they exist (⋈ ⋉ ▷ ⟕ Δ ν μ σ π).
pub fn explain(plan: &Plan) -> String {
    let mut out = String::new();
    render(plan, 0, &mut out);
    out
}

fn render(plan: &Plan, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match plan {
        Plan::ScanTable { table, var } => {
            let _ = writeln!(out, "{pad}Scan {table} {var}");
        }
        Plan::ScanExpr { expr, var } => {
            let _ = writeln!(out, "{pad}ScanExpr {expr} {var}");
        }
        Plan::Select { input, pred } => {
            let _ = writeln!(out, "{pad}σ [{pred}]");
            render(input, depth + 1, out);
        }
        Plan::Map { input, expr, var } => {
            let _ = writeln!(out, "{pad}Map [{var} := {expr}]");
            render(input, depth + 1, out);
        }
        Plan::Extend { input, expr, var } => {
            let _ = writeln!(out, "{pad}Extend [{var} := {expr}]");
            render(input, depth + 1, out);
        }
        Plan::Project { input, vars } => {
            let _ = writeln!(out, "{pad}π [{}]", vars.join(", "));
            render(input, depth + 1, out);
        }
        Plan::Join { left, right, pred } => {
            let _ = writeln!(out, "{pad}⋈ [{pred}]");
            render(left, depth + 1, out);
            render(right, depth + 1, out);
        }
        Plan::SemiJoin { left, right, pred } => {
            let _ = writeln!(out, "{pad}⋉ semijoin [{pred}]");
            render(left, depth + 1, out);
            render(right, depth + 1, out);
        }
        Plan::AntiJoin { left, right, pred } => {
            let _ = writeln!(out, "{pad}▷ antijoin [{pred}]");
            render(left, depth + 1, out);
            render(right, depth + 1, out);
        }
        Plan::LeftOuterJoin { left, right, pred } => {
            let _ = writeln!(out, "{pad}⟕ outerjoin [{pred}]");
            render(left, depth + 1, out);
            render(right, depth + 1, out);
        }
        Plan::NestJoin { left, right, pred, func, label } => {
            let _ = writeln!(out, "{pad}Δ nestjoin [{pred}; {label} := {{{func}}}]");
            render(left, depth + 1, out);
            render(right, depth + 1, out);
        }
        Plan::Nest { input, keys, value, label, star } => {
            let star_s = if *star { "ν*" } else { "ν" };
            let _ = writeln!(out, "{pad}{star_s} [by {}; {label} := {{{value}}}]", keys.join(", "));
            render(input, depth + 1, out);
        }
        Plan::Unnest { input, expr, elem_var, drop_vars } => {
            let drop = if drop_vars.is_empty() {
                String::new()
            } else {
                format!("; drop {}", drop_vars.join(", "))
            };
            let _ = writeln!(out, "{pad}μ [{elem_var} ∈ {expr}{drop}]");
            render(input, depth + 1, out);
        }
        Plan::GroupAgg { input, keys, aggs, var } => {
            let ks: Vec<String> = keys.iter().map(|(l, e)| format!("{l} := {e}")).collect();
            let ags: Vec<String> =
                aggs.iter().map(|(l, f, e)| format!("{l} := {f}({e})")).collect();
            let _ = writeln!(out, "{pad}γ [{var}: by {}; {}]", ks.join(", "), ags.join(", "));
            render(input, depth + 1, out);
        }
        Plan::Apply { input, subquery, label } => {
            let _ = writeln!(out, "{pad}Apply [{label} := subquery]");
            render(input, depth + 1, out);
            render(subquery, depth + 1, out);
        }
        Plan::SetOp { kind, left, right, var } => {
            let sym = match kind {
                SetOpKind::Union => "∪",
                SetOpKind::Intersect => "∩",
                SetOpKind::Except => "\\",
            };
            let _ = writeln!(out, "{pad}{sym} [{var}]");
            render(left, depth + 1, out);
            render(right, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::ScalarExpr as E;

    #[test]
    fn explain_shows_structure() {
        let p = Plan::scan("X", "x")
            .nest_join(
                Plan::scan("Y", "y"),
                E::eq(E::path("x", &["b"]), E::path("y", &["b"])),
                E::path("y", &["a"]),
                "ys",
            )
            .select(E::set_cmp(
                crate::scalar::SetCmpOp::SubsetEq,
                E::path("x", &["a"]),
                E::var("ys"),
            ));
        let s = explain(&p);
        assert!(s.contains("Δ nestjoin"), "{s}");
        assert!(s.contains("σ"), "{s}");
        assert!(s.contains("Scan X x"), "{s}");
        // Indentation: scans one level under the nest join.
        assert!(s.lines().any(|l| l.starts_with("    Scan X x")), "{s}");
    }

    #[test]
    fn explain_apply() {
        let p = Plan::scan("X", "x").apply(Plan::scan("Y", "y"), "z");
        let s = explain(&p);
        assert!(s.starts_with("Apply [z := subquery]"), "{s}");
    }
}
