//! Property tests for the plan-rewriting framework: `with_children` /
//! `take_children` must round-trip arbitrary plans, transforms must
//! preserve node counts when the callback is the identity, and
//! `output_vars` / `free_vars` must be stable under identity rewriting.

use proptest::prelude::*;
use tmql_algebra::rewrite::{take_children, transform_down, transform_up, with_children};
use tmql_algebra::{Plan, ScalarExpr as E};

fn ident() -> impl Strategy<Value = String> {
    "[a-c]".prop_map(|s| format!("v{s}"))
}

fn arb_scalar() -> impl Strategy<Value = E> {
    prop_oneof![
        (0i64..10).prop_map(E::lit),
        ident().prop_map(E::var),
        (ident(), "[a-c]").prop_map(|(v, f)| E::path(v, &[f.as_str()])),
        (ident(), ident()).prop_map(|(a, b)| E::eq(E::var(a), E::var(b))),
    ]
}

fn arb_plan() -> impl Strategy<Value = Plan> {
    let leaf = prop_oneof![
        ("[A-C]", ident()).prop_map(|(t, v)| Plan::scan(t, v)),
        (arb_scalar(), ident()).prop_map(|(e, v)| Plan::ScanExpr { expr: e, var: v }),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), arb_scalar()).prop_map(|(p, e)| p.select(e)),
            (inner.clone(), arb_scalar(), ident()).prop_map(|(p, e, v)| p.map(e, v)),
            (inner.clone(), inner.clone(), arb_scalar()).prop_map(|(l, r, e)| l.join(r, e)),
            (inner.clone(), inner.clone(), arb_scalar()).prop_map(|(l, r, e)| l.semi_join(r, e)),
            (
                inner.clone(),
                inner.clone(),
                arb_scalar(),
                arb_scalar(),
                ident()
            )
                .prop_map(|(l, r, p, g, lbl)| l.nest_join(r, p, g, lbl)),
            (inner.clone(), inner.clone(), ident()).prop_map(|(l, r, lbl)| l.apply(r, lbl)),
            (
                inner.clone(),
                prop::collection::vec(ident(), 0..2),
                arb_scalar(),
                ident()
            )
                .prop_map(|(p, keys, v, lbl)| Plan::Nest {
                    input: Box::new(p),
                    keys,
                    value: v,
                    label: lbl,
                    star: false,
                }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn with_children_round_trips(p in arb_plan()) {
        let rebuilt = with_children(p.clone(), take_children(&p));
        prop_assert_eq!(rebuilt, p);
    }

    #[test]
    fn identity_transforms_are_identity(p in arb_plan()) {
        let up = transform_up(p.clone(), &mut |n| n);
        prop_assert_eq!(&up, &p);
        let down = transform_down(p.clone(), &mut |n| n);
        prop_assert_eq!(&down, &p);
    }

    #[test]
    fn size_matches_children_recursion(p in arb_plan()) {
        fn count(p: &Plan) -> usize {
            1 + p.children().iter().map(|c| count(c)).sum::<usize>()
        }
        prop_assert_eq!(p.size(), count(&p));
    }

    #[test]
    fn output_vars_nonempty_and_stable(p in arb_plan()) {
        let vars = p.output_vars();
        prop_assert!(!vars.is_empty(), "every operator binds something");
        let rebuilt = with_children(p.clone(), take_children(&p));
        prop_assert_eq!(rebuilt.output_vars(), vars);
    }

    #[test]
    fn free_vars_shrink_under_apply(l in arb_plan(), r in arb_plan(), lbl in ident()) {
        // Wrapping r under Apply(l, r) can only *remove* free variables
        // (those now supplied by l's bindings), never add new ones beyond
        // l's own.
        let fv_l = l.free_vars();
        let fv_r = r.free_vars();
        let applied = l.apply(r, lbl);
        let fv = applied.free_vars();
        for v in &fv {
            prop_assert!(
                fv_l.contains(v) || fv_r.contains(v),
                "free var {} appeared from nowhere", v
            );
        }
    }
}
