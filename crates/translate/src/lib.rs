#![warn(missing_docs)]

//! # tmql-translate — lowering TM SFW expressions into the algebra
//!
//! Produces the *canonical translated shape* that the unnesting optimizer
//! in `tmql-core` pattern-matches (its Section 9 "formal algorithm to
//! translate general SFW-query blocks of TM into the algebra"):
//!
//! * every SFW block becomes `Map F (Select P (FROM-plan))`;
//! * every (correlated or constant) subquery in the WHERE or SELECT clause
//!   is pulled out into an `Plan::Apply` binding a fresh label — i.e.
//!   translation gives every nested query its **nested-loop semantics**
//!   first, and optimization is then a semantics-preserving rewrite of the
//!   `Apply`s;
//! * `FROM` items over set-valued attributes (`FROM d.emps e`) become μ
//!   (`Plan::Unnest`) over the outer rows — these are the operands the
//!   paper says not to flatten (Section 3.2);
//! * top-level `UNNEST(SELECT (SELECT …))` becomes the plan-level μ shape
//!   that `tmql-core`'s Section 5 collapse rule recognizes.

pub mod lower;

pub use lower::{translate_query, TranslateError, Translator};
