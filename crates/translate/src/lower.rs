//! The translation algorithm.

use std::collections::BTreeSet;
use std::fmt;

use tmql_algebra::{Plan, ScalarExpr, SetCmpOp, SetOpKind};
use tmql_lang::ast::{Expr, FromItem};
use tmql_lang::token::Span;

/// A translation error with source location.
#[derive(Debug, Clone, PartialEq)]
pub struct TranslateError {
    /// Message.
    pub message: String,
    /// Source span.
    pub span: Span,
}

impl TranslateError {
    fn new(message: impl Into<String>, span: Span) -> TranslateError {
        TranslateError {
            message: message.into(),
            span,
        }
    }

    /// Render with line/column against the source.
    pub fn render(&self, source: &str) -> String {
        let (line, col) = self.span.line_col(source);
        format!("translation error at {line}:{col}: {}", self.message)
    }
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "translation error: {}", self.message)
    }
}

impl std::error::Error for TranslateError {}

/// Translate a parsed query into a logical plan. `extensions` are the
/// known class extension (table) names.
pub fn translate_query(expr: &Expr, extensions: &BTreeSet<String>) -> Result<Plan, TranslateError> {
    Translator::new(extensions).query(expr)
}

/// The stateful translator (fresh-name counter + scope stack).
pub struct Translator<'a> {
    extensions: &'a BTreeSet<String>,
    scope: Vec<String>,
    counter: usize,
}

impl<'a> Translator<'a> {
    /// Create a translator over the given extension names.
    pub fn new(extensions: &'a BTreeSet<String>) -> Translator<'a> {
        Translator {
            extensions,
            scope: Vec::new(),
            counter: 0,
        }
    }

    fn fresh(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("{prefix}#{}", self.counter)
    }

    fn in_scope(&self, name: &str) -> bool {
        self.scope.iter().any(|v| v == name)
    }

    /// Translate a top-level query expression.
    pub fn query(&mut self, expr: &Expr) -> Result<Plan, TranslateError> {
        match expr {
            Expr::Sfw { .. } => self.sfw(expr),
            // Top-level UNNEST(query): plan-level μ, in the shape the
            // Section 5 collapse rule recognizes.
            Expr::Unnest(inner, _) if matches!(**inner, Expr::Sfw { .. }) => {
                let sub = self.sfw(inner)?;
                let mvar = sub.output_vars().pop().expect("sfw plans bind one var");
                let elem = self.fresh("u");
                Ok(Plan::Unnest {
                    input: Box::new(sub),
                    expr: ScalarExpr::var(&mvar),
                    elem_var: elem,
                    drop_vars: vec![mvar],
                })
            }
            // Top-level set operations between queries.
            Expr::SetBin(op, a, b)
                if matches!(**a, Expr::Sfw { .. } | Expr::SetBin(..))
                    && matches!(**b, Expr::Sfw { .. } | Expr::SetBin(..)) =>
            {
                let left = self.query(a)?;
                let right = self.query(b)?;
                let kind = match op {
                    tmql_algebra::SetBinOp::Union => SetOpKind::Union,
                    tmql_algebra::SetBinOp::Intersect => SetOpKind::Intersect,
                    tmql_algebra::SetBinOp::Difference => SetOpKind::Except,
                };
                let var = self.fresh("q");
                Ok(Plan::SetOp {
                    kind,
                    left: Box::new(left),
                    right: Box::new(right),
                    var,
                })
            }
            // A constant scalar expression as a query: a one-row plan.
            other => {
                let mut applies = Vec::new();
                let scalar = self.to_scalar(other, &mut applies)?;
                let var = self.fresh("q");
                if applies.is_empty() {
                    return Ok(Plan::ScanExpr {
                        expr: ScalarExpr::SetLit(vec![scalar]),
                        var,
                    });
                }
                // Constant subqueries inside the expression (rare path,
                // e.g. the bare query `COUNT((SELECT …))`): bind them with
                // Applys around a one-row scan, then project the value.
                let unit_var = self.fresh("q");
                let mut plan = Plan::ScanExpr {
                    expr: ScalarExpr::SetLit(vec![ScalarExpr::lit(0i64)]),
                    var: unit_var,
                };
                for (label, sub) in applies {
                    plan = plan.apply(sub, label);
                }
                Ok(plan.map(scalar, var))
            }
        }
    }

    /// Translate an SFW block into `Map(select) ∘ Select(where) ∘ FROM`.
    fn sfw(&mut self, expr: &Expr) -> Result<Plan, TranslateError> {
        let Expr::Sfw {
            select,
            from,
            where_clause,
            with_bindings,
            ..
        } = expr
        else {
            return Err(TranslateError::new("expected an SFW block", expr.span()));
        };
        let depth = self.scope.len();
        let result = self.sfw_inner(select, from, where_clause.as_deref(), with_bindings);
        self.scope.truncate(depth);
        result
    }

    fn sfw_inner(
        &mut self,
        select: &Expr,
        from: &[FromItem],
        where_clause: Option<&Expr>,
        with_bindings: &[(String, Expr)],
    ) -> Result<Plan, TranslateError> {
        // FROM items, left to right.
        let mut plan: Option<Plan> = None;
        for item in from {
            let item_plan = self.from_operand(&item.operand, &item.var)?;
            plan = Some(match plan {
                None => item_plan,
                Some(acc) => {
                    if item_plan.free_vars().is_empty() {
                        // Independent table: cartesian product (the flat
                        // "join query" format of Section 4).
                        acc.join(item_plan, ScalarExpr::lit(true))
                    } else {
                        // Depends on earlier FROM variables: iterate per
                        // row. For a ScanExpr this is exactly μ.
                        match item_plan {
                            Plan::ScanExpr { expr, var } => Plan::Unnest {
                                input: Box::new(acc),
                                expr,
                                elem_var: var,
                                drop_vars: vec![],
                            },
                            other => {
                                // Correlated derived table: Apply + μ.
                                let label = self.fresh("z");
                                let elem = other
                                    .output_vars()
                                    .pop()
                                    .expect("plans bind at least one var");
                                let applied = acc.apply(other, label.clone());
                                let _ = elem;
                                Plan::Unnest {
                                    input: Box::new(applied),
                                    expr: ScalarExpr::var(&label),
                                    elem_var: item.var.clone(),
                                    drop_vars: vec![label],
                                }
                            }
                        }
                    }
                }
            });
            self.scope.push(item.var.clone());
        }
        let mut plan = plan.expect("parser guarantees at least one FROM item");

        // WITH bindings (the paper's local definitions, Section 4): a
        // subquery binding becomes an Apply with the user's label — i.e.
        // `WITH z = (SELECT …)` is *literally* the canonical nested shape;
        // a plain expression becomes an Extend.
        for (var, e) in with_bindings {
            match e {
                Expr::Sfw { .. } => {
                    let sub = self.sfw(e)?;
                    plan = plan.apply(sub, var.clone());
                }
                other => {
                    let mut applies = Vec::new();
                    let scalar = self.to_scalar(other, &mut applies)?;
                    for (label, sub) in applies {
                        plan = plan.apply(sub, label);
                    }
                    plan = plan.extend(scalar, var.clone());
                }
            }
            self.scope.push(var.clone());
        }

        // WHERE clause: extract subqueries as Applys *under* the Select.
        if let Some(w) = where_clause {
            let mut applies = Vec::new();
            let pred = self.to_scalar(w, &mut applies)?;
            for (label, sub) in applies {
                plan = plan.apply(sub, label);
            }
            plan = plan.select(pred);
        }

        // SELECT clause: subqueries become Applys above the Select (bare
        // Applys — SELECT-clause nesting, Section 5).
        let mut applies = Vec::new();
        let out = self.to_scalar(select, &mut applies)?;
        for (label, sub) in applies {
            plan = plan.apply(sub, label);
        }
        let var = self.fresh("q");
        Ok(plan.map(out, var))
    }

    /// Translate one FROM operand binding `var`.
    #[allow(clippy::wrong_self_convention)] // "from" = the FROM clause, not a conversion
    fn from_operand(&mut self, operand: &Expr, var: &str) -> Result<Plan, TranslateError> {
        match operand {
            // An extension name not shadowed by an iteration variable.
            Expr::Var(name, _) if !self.in_scope(name) && self.extensions.contains(name) => {
                Ok(Plan::scan(name, var))
            }
            Expr::Var(name, span) if !self.in_scope(name) => Err(TranslateError::new(
                format!("unknown extension or variable `{name}` in FROM"),
                *span,
            )),
            // A derived table: rebind the subquery's output variable.
            Expr::Sfw { .. } => {
                let sub = self.sfw(operand)?;
                let out = sub.output_vars().pop().expect("sfw binds one var");
                Ok(sub.map(ScalarExpr::var(&out), var))
            }
            // Any set-valued expression (`d.emps`, `{1,2}`, `a UNION b`…).
            other => {
                if other.has_subquery() {
                    return Err(TranslateError::new(
                        "subquery inside a FROM operand expression is not supported; \
                         use FROM (SELECT …) v instead",
                        other.span(),
                    ));
                }
                let mut no_applies = Vec::new();
                let scalar = self.to_scalar(other, &mut no_applies)?;
                debug_assert!(no_applies.is_empty());
                Ok(Plan::ScanExpr {
                    expr: scalar,
                    var: var.to_string(),
                })
            }
        }
    }

    /// Convert an AST expression to a scalar expression, extracting every
    /// nested SFW block (and extension-as-value reference) into `applies`
    /// as `(label, plan)` pairs and replacing it with `Var(label)`.
    #[allow(clippy::wrong_self_convention)] // "to" = lowering direction, not a conversion
    fn to_scalar(
        &mut self,
        expr: &Expr,
        applies: &mut Vec<(String, Plan)>,
    ) -> Result<ScalarExpr, TranslateError> {
        Ok(match expr {
            Expr::Int(i, _) => ScalarExpr::lit(*i),
            Expr::Float(x, _) => ScalarExpr::lit(*x),
            Expr::Str(s, _) => ScalarExpr::lit(s.as_str()),
            Expr::Bool(b, _) => ScalarExpr::lit(*b),
            Expr::Var(name, span) => {
                if self.in_scope(name) {
                    ScalarExpr::var(name)
                } else if self.extensions.contains(name) {
                    // Extension used as a set value: a constant subquery.
                    let label = self.fresh("z");
                    let v = self.fresh("q");
                    let plan = Plan::scan(name, &v).map(ScalarExpr::var(&v), self.fresh("q"));
                    applies.push((label.clone(), plan));
                    ScalarExpr::var(&label)
                } else {
                    return Err(TranslateError::new(
                        format!("unbound variable `{name}`"),
                        *span,
                    ));
                }
            }
            Expr::Field(base, label, _) => {
                ScalarExpr::Field(Box::new(self.to_scalar(base, applies)?), label.clone())
            }
            Expr::Cmp(op, a, b) => {
                // `=`/`<>` between syntactically set-valued operands is
                // set (in)equality — required so `z = {}` classifies per
                // Table 2.
                if matches!(op, tmql_algebra::CmpOp::Eq | tmql_algebra::CmpOp::Ne)
                    && (is_setish(a) || is_setish(b))
                {
                    let sop = if matches!(op, tmql_algebra::CmpOp::Eq) {
                        SetCmpOp::SetEq
                    } else {
                        SetCmpOp::SetNe
                    };
                    return Ok(ScalarExpr::set_cmp(
                        sop,
                        self.to_scalar(a, applies)?,
                        self.to_scalar(b, applies)?,
                    ));
                }
                ScalarExpr::cmp(
                    *op,
                    self.to_scalar(a, applies)?,
                    self.to_scalar(b, applies)?,
                )
            }
            Expr::SetCmp(op, a, b) => ScalarExpr::set_cmp(
                *op,
                self.to_scalar(a, applies)?,
                self.to_scalar(b, applies)?,
            ),
            Expr::Arith(op, a, b) => ScalarExpr::Arith(
                *op,
                Box::new(self.to_scalar(a, applies)?),
                Box::new(self.to_scalar(b, applies)?),
            ),
            Expr::SetBin(op, a, b) => ScalarExpr::SetBin(
                *op,
                Box::new(self.to_scalar(a, applies)?),
                Box::new(self.to_scalar(b, applies)?),
            ),
            Expr::And(a, b) => {
                ScalarExpr::and(self.to_scalar(a, applies)?, self.to_scalar(b, applies)?)
            }
            Expr::Or(a, b) => {
                ScalarExpr::or(self.to_scalar(a, applies)?, self.to_scalar(b, applies)?)
            }
            Expr::Not(e) => ScalarExpr::not(self.to_scalar(e, applies)?),
            Expr::Agg(f, e, _) => ScalarExpr::agg(*f, self.to_scalar(e, applies)?),
            Expr::Quant {
                q, var, over, pred, ..
            } => {
                let over_s = self.to_scalar(over, applies)?;
                self.scope.push(var.clone());
                let pred_s = self.to_scalar(pred, applies);
                self.scope.pop();
                ScalarExpr::quant(*q, var.clone(), over_s, pred_s?)
            }
            Expr::TupleLit(fields, _) => {
                let mut out = Vec::with_capacity(fields.len());
                for (l, e) in fields {
                    out.push((l.clone(), self.to_scalar(e, applies)?));
                }
                ScalarExpr::Tuple(out)
            }
            Expr::SetLit(items, _) => {
                let mut out = Vec::with_capacity(items.len());
                for e in items {
                    out.push(self.to_scalar(e, applies)?);
                }
                ScalarExpr::SetLit(out)
            }
            Expr::Unnest(e, _) => ScalarExpr::Unnest(Box::new(self.to_scalar(e, applies)?)),
            Expr::Sfw { .. } => {
                // The heart of the translation: a nested SFW becomes a
                // fresh Apply label (correlated nested-loop semantics;
                // the optimizer will unnest it).
                let sub = self.sfw(expr)?;
                let label = self.fresh("z");
                applies.push((label.clone(), sub));
                ScalarExpr::var(&label)
            }
        })
    }
}

/// Syntactic set-ness (for `=`/`<>` disambiguation).
fn is_setish(e: &Expr) -> bool {
    matches!(
        e,
        Expr::SetLit(..) | Expr::Sfw { .. } | Expr::SetBin(..) | Expr::Unnest(..)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmql_lang::parse_query;

    fn exts() -> BTreeSet<String> {
        ["X", "Y", "Z", "R", "S", "EMP", "DEPT"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    fn translate(src: &str) -> Plan {
        let ast = parse_query(src).expect("parses");
        translate_query(&ast, &exts()).unwrap_or_else(|e| panic!("{}", e.render(src)))
    }

    #[test]
    fn flat_query_shape() {
        let p = translate("SELECT x.a FROM X x WHERE x.b = 3");
        let Plan::Map { input, .. } = p else {
            panic!("map root")
        };
        let Plan::Select { input, .. } = *input else {
            panic!("select")
        };
        assert!(matches!(*input, Plan::ScanTable { .. }));
    }

    #[test]
    fn where_subquery_becomes_apply_under_select() {
        let p = translate("SELECT x FROM X x WHERE x.b IN (SELECT y.a FROM Y y WHERE x.b = y.b)");
        let Plan::Map { input, .. } = p else {
            panic!("map root")
        };
        let Plan::Select { input, pred } = *input else {
            panic!("select")
        };
        assert!(pred.mentions("z#2"), "{pred}");
        let Plan::Apply {
            input,
            subquery,
            label,
        } = *input
        else {
            panic!("apply")
        };
        assert_eq!(label, "z#2");
        assert!(matches!(*input, Plan::ScanTable { .. }));
        // Canonical subquery shape: Map(Select(Scan)).
        let Plan::Map { input: si, .. } = *subquery else {
            panic!("sub map")
        };
        assert!(matches!(*si, Plan::Select { .. }));
    }

    #[test]
    fn select_subquery_becomes_bare_apply() {
        let p = translate(
            "SELECT (dname = d.name, es = (SELECT e FROM EMP e WHERE e.sal > 0)) FROM DEPT d",
        );
        let Plan::Map { input, .. } = p else {
            panic!("map root")
        };
        assert!(
            matches!(*input, Plan::Apply { .. }),
            "bare apply for SELECT nesting"
        );
    }

    #[test]
    fn set_valued_attribute_from_is_unnest() {
        let p = translate("SELECT c.name FROM EMP e, e.children c");
        assert!(p.any_node(&mut |n| matches!(n, Plan::Unnest { .. })));
        assert!(!p.has_apply());
    }

    #[test]
    fn two_tables_cartesian() {
        let p = translate("SELECT (a = x.a, b = y.b) FROM X x, Y y WHERE x.b = y.b");
        assert!(p.any_node(&mut |n| matches!(
            n,
            Plan::Join {
                pred: ScalarExpr::Lit(tmql_model::Value::Bool(true)),
                ..
            }
        )));
    }

    #[test]
    fn unnest_query_shape_collapsible() {
        let p = translate("UNNEST(SELECT (SELECT y.b FROM Y y WHERE x.b = y.a) FROM X x)");
        let Plan::Unnest { .. } = &p else {
            panic!("unnest root")
        };
        // The core rule must fire on this exact shape.
        let collapsed = tmql_core::rules::unnest_collapse(&p).expect("collapse fires");
        assert!(!collapsed.has_apply());
    }

    #[test]
    fn empty_set_comparison_is_set_eq() {
        let p = translate("SELECT x FROM X x WHERE (SELECT y.a FROM Y y WHERE x.b = y.b) = {}");
        let has_set_eq = p.any_node(&mut |n| {
            matches!(n, Plan::Select { pred, .. }
                if matches!(pred, ScalarExpr::SetCmp(SetCmpOp::SetEq, ..)))
        });
        assert!(has_set_eq, "{p}");
    }

    #[test]
    fn extension_as_value() {
        let p = translate("SELECT x FROM X x WHERE COUNT(Y) = x.b");
        assert!(p.has_apply());
    }

    #[test]
    fn union_of_queries() {
        let p = translate("(SELECT x.a FROM X x) UNION (SELECT y.a FROM Y y)");
        assert!(matches!(
            p,
            Plan::SetOp {
                kind: SetOpKind::Union,
                ..
            }
        ));
    }

    #[test]
    fn derived_table_in_from() {
        let p = translate("SELECT v FROM (SELECT x.a FROM X x) v WHERE v > 1");
        assert!(!p.has_apply());
        assert!(p.any_node(&mut |n| matches!(n, Plan::Map { var, .. } if var == "v")));
    }

    #[test]
    fn errors_located() {
        let ast = parse_query("SELECT q FROM X x").unwrap();
        let err = translate_query(&ast, &exts()).unwrap_err();
        assert!(err.message.contains("unbound"), "{err:?}");
        let ast = parse_query("SELECT x FROM NOPE x").unwrap();
        let err = translate_query(&ast, &exts()).unwrap_err();
        assert!(err.message.contains("unknown extension"), "{err:?}");
        let ast = parse_query("SELECT c FROM EMP e, (SELECT k FROM (SELECT e2 FROM EMP e2) k) c")
            .unwrap();
        assert!(translate_query(&ast, &exts()).is_ok());
    }

    #[test]
    fn quantifier_scope_in_translation() {
        let p = translate("SELECT e FROM EMP e WHERE EXISTS c IN e.children (c.age < 10)");
        let ok = p.any_node(&mut |n| {
            matches!(n, Plan::Select { pred, .. } if matches!(pred, ScalarExpr::Quant { .. }))
        });
        assert!(ok);
    }
}
