#![warn(missing_docs)]

//! # tmql-bench — shared benchmark plumbing
//!
//! Each Criterion bench target under `benches/` regenerates one experiment
//! from `EXPERIMENTS.md` (B1–B6 plus the Table 1 micro-benchmark). This
//! library holds the shared helpers: standard Criterion configuration and
//! a one-shot work-metrics reporter so every benchmark also logs the
//! executor's machine-independent counters.

use std::time::Duration;

use criterion::Criterion;
use tmql::{Database, QueryOptions};

/// Criterion tuned for interpreter-scale workloads: modest sample counts,
/// short measurement windows (the comparisons here are 2–100×, far above
/// noise).
pub fn criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .configure_from_args()
}

/// Run once and log the executor work counters (rows scanned, comparisons,
/// hash traffic, subquery invocations) — the "shape" data EXPERIMENTS.md
/// quotes alongside wall time.
pub fn report_work(tag: &str, db: &Database, src: &str, opts: QueryOptions) {
    match db.query_with(src, opts) {
        Ok(r) => eprintln!(
            "[work] {tag}: rows={} {} total={}",
            r.len(),
            r.metrics,
            r.metrics.total_work()
        ),
        Err(e) => eprintln!("[work] {tag}: ERROR {e}"),
    }
}

/// The standard cardinality ladder. Nested-loop configurations skip the
/// top rung (quadratic blow-up would dominate the whole run).
pub const SIZES: [usize; 3] = [256, 1024, 4096];

/// Cap for strategies with quadratic behaviour.
pub const NL_CAP: usize = 1024;
