#![warn(missing_docs)]

//! # tmql-bench — shared benchmark plumbing
//!
//! Each Criterion bench target under `benches/` regenerates one experiment
//! from `EXPERIMENTS.md` (B1–B6 plus the Table 1 micro-benchmark). This
//! library holds the shared helpers: standard Criterion configuration, a
//! one-shot work-metrics reporter so every benchmark also logs the
//! executor's machine-independent counters, and the **quick-smoke mode**
//! (`TMQL_BENCH_QUICK=1`) CI uses to actually *execute* every bench target
//! in seconds instead of minutes: tiny sample counts and the smallest rung
//! of every cardinality ladder.

use std::time::Duration;

use criterion::Criterion;
use tmql::{Database, QueryOptions};

/// True when `TMQL_BENCH_QUICK` is set (to anything but `0`/empty):
/// shrink sampling and ladders so a full `cargo bench` run finishes in CI
/// smoke time while still executing every benchmark at least once.
pub fn quick_mode() -> bool {
    std::env::var("TMQL_BENCH_QUICK")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// Criterion tuned for interpreter-scale workloads: modest sample counts,
/// short measurement windows (the comparisons here are 2–100×, far above
/// noise). In [`quick_mode`] the windows collapse to smoke-test length.
pub fn criterion() -> Criterion {
    if quick_mode() {
        Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(40))
            .configure_from_args()
    } else {
        Criterion::default()
            .sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(2))
            .configure_from_args()
    }
}

/// Run once and log the executor work counters (rows scanned, comparisons,
/// hash traffic, subquery invocations) — the "shape" data EXPERIMENTS.md
/// quotes alongside wall time.
pub fn report_work(tag: &str, db: &Database, src: &str, opts: QueryOptions) {
    match db.query_with(src, opts) {
        Ok(r) => eprintln!(
            "[work] {tag}: rows={} {} total={}",
            r.len(),
            r.metrics,
            r.metrics.total_work()
        ),
        Err(e) => eprintln!("[work] {tag}: ERROR {e}"),
    }
}

/// The standard cardinality ladder. Nested-loop configurations skip the
/// top rung (quadratic blow-up would dominate the whole run); quick mode
/// keeps only the smallest rung.
pub fn sizes() -> Vec<usize> {
    ladder(&[256, 1024, 4096])
}

/// Truncate a per-bench scale ladder to its smallest rung in
/// [`quick_mode`], pass it through unchanged otherwise.
pub fn ladder<T: Clone>(full: &[T]) -> Vec<T> {
    if quick_mode() {
        full[..1.min(full.len())].to_vec()
    } else {
        full.to_vec()
    }
}

/// Cap for strategies with quadratic behaviour.
pub const NL_CAP: usize = 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_full_without_quick_env() {
        // The test process does not set TMQL_BENCH_QUICK, so ladders pass
        // through untouched.
        if !quick_mode() {
            assert_eq!(sizes(), vec![256, 1024, 4096]);
            assert_eq!(ladder(&[1, 2, 3]), vec![1, 2, 3]);
        }
    }
}
