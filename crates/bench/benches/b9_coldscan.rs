//! B9 — the storage tier: cold vs warm buffer pool vs in-memory scans as
//! table sizes grow.
//!
//! Three rungs per table size, all running the same scan-dominated query:
//!
//! * **memory** — the pre-pager in-memory table (the baseline every disk
//!   configuration is measured against);
//! * **disk-warm** — a disk-backed database whose buffer pool holds the
//!   whole extent: after one warming scan, every page request is a hit
//!   (`pmiss=0` in the `[work]` lines);
//! * **disk-cold** — a pool of [`COLD_POOL`] pages, far below the
//!   extent: every scan re-faults the table, so the rung prices the full
//!   page-I/O path (read + slot decode per page).
//!
//! The recorded trajectory lives in `BENCH_coldscan.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tmql::{Database, QueryOptions, Record, Table, Ty, Value};
use tmql_bench::{criterion, ladder, report_work};

/// Pool size (pages) of the cold configuration — a handful of frames, so
/// any table on the ladder evicts continuously.
const COLD_POOL: usize = 8;

/// Pool size (pages) of the warm configuration — comfortably holds every
/// ladder rung.
const WARM_POOL: usize = 4096;

/// Scan-dominated probe: selects nothing, touches every row.
const SCAN: &str = "SELECT x.n FROM X x WHERE x.n < 0";

fn table(n: usize) -> Table {
    let mut t = Table::new("X", vec![("n".into(), Ty::Int), ("b".into(), Ty::Int)]);
    for i in 0..n as i64 {
        t.insert(
            Record::new([
                ("n".to_string(), Value::Int(i)),
                ("b".to_string(), Value::Int(i % 64)),
            ])
            .expect("distinct labels"),
        )
        .expect("valid row");
    }
    t
}

fn disk_db(n: usize, pool: usize, tag: &str) -> (Database, std::path::PathBuf) {
    let path = std::env::temp_dir().join(format!(
        "tmql-bench-coldscan-{}-{tag}-{n}.tmdb",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    {
        let mut db = Database::open_with(&path, pool).expect("create db");
        db.register_table(table(n)).expect("register");
    }
    // Reopen so the pool starts empty — registration leaves pages warm.
    (Database::open_with(&path, pool).expect("reopen db"), path)
}

fn bench_coldscan(c: &mut Criterion) {
    let mut g = c.benchmark_group("b9_coldscan");
    let opts = QueryOptions::default();
    for n in ladder(&[4096usize, 16384, 65536]) {
        let mem = {
            let mut db = Database::new();
            db.register_table(table(n)).expect("register");
            db
        };
        let (cold, cold_path) = disk_db(n, COLD_POOL, "cold");
        let (warm, warm_path) = disk_db(n, WARM_POOL, "warm");
        // One warming scan: afterwards the warm pool holds the extent.
        let _ = warm.query_with(SCAN, opts).expect("warming scan");

        report_work(&format!("b9-coldscan/memory/{n}"), &mem, SCAN, opts);
        report_work(&format!("b9-coldscan/disk-warm/{n}"), &warm, SCAN, opts);
        report_work(&format!("b9-coldscan/disk-cold/{n}"), &cold, SCAN, opts);

        g.bench_with_input(BenchmarkId::new("memory", n), &n, |b, _| {
            b.iter(|| mem.query_with(SCAN, opts).expect("runs").len())
        });
        g.bench_with_input(BenchmarkId::new("disk-warm", n), &n, |b, _| {
            b.iter(|| warm.query_with(SCAN, opts).expect("runs").len())
        });
        g.bench_with_input(BenchmarkId::new("disk-cold", n), &n, |b, _| {
            b.iter(|| cold.query_with(SCAN, opts).expect("runs").len())
        });

        let _ = std::fs::remove_file(&cold_path);
        let _ = std::fs::remove_file(&warm_path);
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = criterion();
    targets = bench_coldscan
}
criterion_main!(benches);
