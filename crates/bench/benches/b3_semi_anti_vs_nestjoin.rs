//! B3 — semijoin/antijoin replacement beats nest join + filter
//! (Sections 7–8).
//!
//! For grouping-free predicates (`x.n ∈ z`, `x.n ∉ z`), the paper replaces
//! the nest join by a flat join: "the semi- and antijoin can be
//! implemented more efficiently than the nest (or regular) join operator".
//! We run each query under FlattenSemiAnti (⋉/▷) and under a forced
//! NestJoin-then-filter plan, plus the grouping-required `x.a ⊆ z` twin
//! where only the nest join applies — locating the boundary that Theorem 1
//! draws.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tmql::{Database, QueryOptions, UnnestStrategy};
use tmql_bench::{criterion, report_work, sizes};
use tmql_workload::gen::{gen_xy, GenConfig};
use tmql_workload::queries::{MEMBERSHIP, NON_MEMBERSHIP, SUBSETEQ_BUG};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("b3_semi_anti_vs_nestjoin");
    let cases: [(&str, &str, &[UnnestStrategy]); 3] = [
        (
            "membership",
            MEMBERSHIP,
            &[UnnestStrategy::FlattenSemiAnti, UnnestStrategy::NestJoin],
        ),
        (
            "non-membership",
            NON_MEMBERSHIP,
            &[UnnestStrategy::FlattenSemiAnti, UnnestStrategy::NestJoin],
        ),
        // ⊆ cannot flatten: nest join only (Theorem 1's boundary).
        ("subseteq", SUBSETEQ_BUG, &[UnnestStrategy::NestJoin]),
    ];
    for n in sizes() {
        let db = Database::from_catalog(gen_xy(&GenConfig::sized(n)));
        for (case, src, strats) in &cases {
            for strat in *strats {
                let label = format!("{case}/{}", strat.name());
                let opts = QueryOptions::default().strategy(*strat);
                report_work(&format!("b3/{label}/{n}"), &db, src, opts);
                g.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                    b.iter(|| db.query_with(src, opts).expect("runs").len())
                });
            }
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = criterion();
    targets = bench
}
criterion_main!(benches);
