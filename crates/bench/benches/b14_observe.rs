//! B14 — observability overhead: per-operator wall-clock timing (the
//! `collect_timing` default) and JSONL query logging must stay under a
//! 5% tax on representative queries.
//!
//! Three modes over the same queries and data:
//!
//! * `timing-off` — `collect_timing(false)`: no clock reads at all, the
//!   pre-observability baseline.
//! * `timing-on` — the default: one `Instant` pair per `pull`/`open`/
//!   `close` call, inclusive spans per operator.
//! * `log-on` — timing plus a JSONL query-log record appended (and
//!   flushed) per statement.
//!
//! The query mix mirrors the earlier experiments: B1's flattenable
//! correlated IN (semijoin after unnesting), B7's COUNT-aggregate
//! nesting (the count-bug shape), and B10's parallel variant (four
//! worker threads), so the timing tax is measured on serial, aggregate,
//! and worker-wave execution alike. Recorded full-mode numbers live in
//! `BENCH_observe.json`; the acceptance pin is timing-on within 5% of
//! timing-off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tmql::{Database, QueryOptions};
use tmql_bench::{criterion, ladder, quick_mode, report_work};
use tmql_workload::gen::{gen_xy, GenConfig};

/// B1-style: correlated IN, flattens to a semijoin.
const Q_FLAT: &str = "SELECT x.n FROM X x WHERE x.n IN (SELECT y.a FROM Y y WHERE x.b = y.b)";

/// B7-style: COUNT over a correlated subquery (the count-bug shape,
/// outer-join + grouping after unnesting).
const Q_AGG: &str = "SELECT x.n FROM X x WHERE COUNT((SELECT y.a FROM Y y WHERE x.b = y.b)) > 125";

fn modes() -> Vec<(&'static str, QueryOptions)> {
    let base = QueryOptions::default().threads(1);
    vec![
        ("timing-off", base.collect_timing(false)),
        ("timing-on", base.collect_timing(true)),
        // Query logging implies timing: the record carries wall time.
        // The log sink is attached per-database below.
        ("log-on", base.collect_timing(true)),
        ("timing-off-par4", base.threads(4).collect_timing(false)),
        ("timing-on-par4", base.threads(4).collect_timing(true)),
    ]
}

fn bench_observe(c: &mut Criterion) {
    let mut g = c.benchmark_group("b14_observe");
    let log_path =
        std::env::temp_dir().join(format!("tmql-bench-observe-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&log_path);

    for n in ladder(&[1024, 4096]) {
        let db = Database::from_catalog(gen_xy(&GenConfig::sized(n)));
        // Only the `log-on` mode actually writes: other modes run on a
        // database without a log (the common case), `log-on` on one with
        // the sink attached — the difference between them is the
        // append+flush price.
        let mut logged_db = Database::from_catalog(gen_xy(&GenConfig::sized(n)));
        logged_db.set_query_log(tmql_obs::QueryLog::create(&log_path).expect("log file"));

        for query in [Q_FLAT, Q_AGG] {
            let tag = if query == Q_FLAT { "flat" } else { "agg" };
            for (mode, opts) in modes() {
                let target = if mode == "log-on" { &logged_db } else { &db };
                g.bench_with_input(BenchmarkId::new(format!("{tag}/{mode}"), n), &n, |b, _| {
                    b.iter(|| target.query_with(query, opts).expect("query runs").len())
                });
            }
        }
        if !quick_mode() {
            report_work(
                &format!("b14 n={n} flat"),
                &db,
                Q_FLAT,
                QueryOptions::default(),
            );
            report_work(
                &format!("b14 n={n} agg"),
                &db,
                Q_AGG,
                QueryOptions::default(),
            );
        }
    }
    let _ = std::fs::remove_file(&log_path);
    g.finish();
}

criterion_group! {
    name = benches;
    config = criterion();
    targets = bench_observe
}
criterion_main!(benches);
