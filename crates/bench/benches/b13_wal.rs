//! B13 — WAL commit batching: per-statement auto-commit vs one
//! multi-statement transaction.
//!
//! The durability protocol charges every commit one WAL append group and
//! one `fsync` (plus a fresh catalog image). Registering `K` tables as
//! `K` auto-committed statements therefore pays that price `K` times —
//! `K` catalog images, `K` commit records, `K` syncs — while
//! `BEGIN … COMMIT` around the same statements pays it once, logging all
//! `K` tables' pages under a single commit record. Both modes run the
//! identical `replace` workload against a disk-backed database; the
//! transaction's batched commit must be at least 2× the per-statement
//! throughput (the acceptance floor; the recorded full-mode trajectory
//! lives in `BENCH_wal.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tmql::{Database, Record, Table, Ty, Value};
use tmql_bench::{criterion, quick_mode};

/// Statements per batch (full mode).
const STATEMENTS: usize = 32;

/// Rows per replaced table (full mode). Small on purpose: the benchmark
/// isolates the *per-commit* price (catalog image + commit record +
/// sync), which batching amortizes; bulk page writes are paid equally by
/// both modes.
const ROWS: usize = 32;

fn table(slot: usize, rows: usize) -> Table {
    let mut t = Table::new(
        format!("T{slot}"),
        vec![("a".into(), Ty::Int), ("b".into(), Ty::Int)],
    );
    for i in 0..rows as i64 {
        t.insert(
            Record::new([
                ("a".to_string(), Value::Int(i * (slot as i64 + 1))),
                ("b".to_string(), Value::Int(i % 16)),
            ])
            .expect("distinct labels"),
        )
        .expect("valid row");
    }
    t
}

fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("tmql-bench-wal-{}-{tag}.tmdb", std::process::id()))
}

fn clean(path: &std::path::Path) {
    let _ = std::fs::remove_file(path);
    let mut wal = path.to_path_buf().into_os_string();
    wal.push(".wal");
    let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
}

fn bench_wal(c: &mut Criterion) {
    let mut g = c.benchmark_group("b13_wal");
    let (k, rows) = if quick_mode() {
        (4, 64)
    } else {
        (STATEMENTS, ROWS)
    };

    // Per-statement: every replace is its own commit — K catalog images,
    // K commit records, K WAL syncs per iteration.
    let path = scratch("stmt");
    clean(&path);
    let mut db = Database::open_with(&path, 64).expect("create db");
    g.bench_with_input(BenchmarkId::new("per-statement", k), &k, |b, _| {
        b.iter(|| {
            for s in 0..k {
                db.catalog_mut().replace(table(s, rows)).expect("replace");
            }
        })
    });
    drop(db);
    clean(&path);

    // Transaction-batched: the same K replaces under one BEGIN…COMMIT —
    // one catalog image, one commit record, one WAL sync per iteration.
    let path = scratch("txn");
    clean(&path);
    let mut db = Database::open_with(&path, 64).expect("create db");
    g.bench_with_input(BenchmarkId::new("txn-batched", k), &k, |b, _| {
        b.iter(|| {
            db.begin().expect("begin");
            for s in 0..k {
                db.catalog_mut().replace(table(s, rows)).expect("replace");
            }
            db.commit().expect("commit");
        })
    });
    drop(db);
    clean(&path);

    g.finish();
}

criterion_group! {
    name = benches;
    config = criterion();
    targets = bench_wal
}
criterion_main!(benches);
