//! B11 — secondary indexes: probe vs scan across a selectivity ladder.
//!
//! One 64k-row table, equality predicate `x.b = 0`, and a ladder over the
//! number of distinct values `d` in the indexed column — so the predicate
//! selects `n/d` rows (selectivity `1/d`). Each ladder step runs the same
//! query two ways in three storage temperatures:
//!
//! * **scan** — no index: the planner's only path is the full scan;
//! * **probe** — an index on `X.b`: the planner picks `IndexScan` exactly
//!   when the cost model prices the probe below the scan (at `d = 1`
//!   every row matches and the scan must win; by `d = 64` the probe is
//!   fetching ≤ 1.6% of the table).
//!
//! Temperatures: `memory` (in-memory table), `disk-warm` (pool holds the
//! whole extent), `disk-cold` ([`COLD_POOL`] pages — the probe's win is
//! bigger here because it also skips the page faults of a full scan).
//!
//! The `[work]` lines show the flip: scan rungs report `iprobe=0` and
//! `scanned=n`; probe rungs report `scanned=0` with `iprobe`/`ihit`
//! traffic instead. The recorded trajectory lives in `BENCH_index.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tmql::{Database, QueryOptions, Record, Table, Ty, Value};
use tmql_bench::{criterion, ladder, quick_mode, report_work};

/// Pool size (pages) of the cold configuration — far below the extent.
const COLD_POOL: usize = 8;

/// Pool size (pages) of the warm configuration — holds every rung.
const WARM_POOL: usize = 4096;

/// Equality probe: selects `n/d` of the `n` rows.
const QUERY: &str = "SELECT x.n FROM X x WHERE x.b = 0";

/// Rows; the quick CI smoke shrinks this via [`ladder`].
const ROWS: usize = 65536;

fn table(n: usize, d: usize) -> Table {
    let mut t = Table::new("X", vec![("n".into(), Ty::Int), ("b".into(), Ty::Int)]);
    for i in 0..n as i64 {
        t.insert(
            Record::new([
                ("n".to_string(), Value::Int(i)),
                ("b".to_string(), Value::Int(i % d as i64)),
            ])
            .expect("distinct labels"),
        )
        .expect("valid row");
    }
    t
}

fn mem_db(n: usize, d: usize, indexed: bool) -> Database {
    let mut db = Database::new();
    db.register_table(table(n, d)).expect("register");
    if indexed {
        db.create_index("X", "b").expect("index");
    }
    db
}

fn disk_db(
    n: usize,
    d: usize,
    pool: usize,
    indexed: bool,
    tag: &str,
) -> (Database, std::path::PathBuf) {
    let path = std::env::temp_dir().join(format!(
        "tmql-bench-index-{}-{tag}-{d}.tmdb",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    {
        let mut db = Database::open_with(&path, pool).expect("create db");
        db.register_table(table(n, d)).expect("register");
        if indexed {
            db.create_index("X", "b").expect("index");
        }
    }
    // Reopen so the pool starts empty — registration leaves pages warm.
    (Database::open_with(&path, pool).expect("reopen db"), path)
}

fn bench_index(c: &mut Criterion) {
    let mut g = c.benchmark_group("b11_index");
    let opts = QueryOptions::default();
    let n = if quick_mode() { 4096 } else { ROWS };
    for d in ladder(&[64usize, 256, 1024]) {
        let rungs: Vec<(String, Database, Vec<std::path::PathBuf>)> = {
            let mem_scan = mem_db(n, d, false);
            let mem_probe = mem_db(n, d, true);
            let (warm_scan, p1) = disk_db(n, d, WARM_POOL, false, "warmscan");
            let (warm_probe, p2) = disk_db(n, d, WARM_POOL, true, "warmprobe");
            let (cold_scan, p3) = disk_db(n, d, COLD_POOL, false, "coldscan");
            let (cold_probe, p4) = disk_db(n, d, COLD_POOL, true, "coldprobe");
            // One warming run each on the warm pair.
            let _ = warm_scan.query_with(QUERY, opts).expect("warming");
            let _ = warm_probe.query_with(QUERY, opts).expect("warming");
            vec![
                ("memory-scan".into(), mem_scan, vec![]),
                ("memory-probe".into(), mem_probe, vec![]),
                ("disk-warm-scan".into(), warm_scan, vec![p1]),
                ("disk-warm-probe".into(), warm_probe, vec![p2]),
                ("disk-cold-scan".into(), cold_scan, vec![p3]),
                ("disk-cold-probe".into(), cold_probe, vec![p4]),
            ]
        };
        for (tag, db, _) in &rungs {
            report_work(&format!("b11-index/{tag}/d{d}"), db, QUERY, opts);
        }
        for (tag, db, _) in &rungs {
            g.bench_with_input(BenchmarkId::new(tag.as_str(), d), &d, |b, _| {
                b.iter(|| db.query_with(QUERY, opts).expect("runs").len())
            });
        }
        for (_, _, paths) in rungs {
            for p in paths {
                let _ = std::fs::remove_file(p);
            }
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = criterion();
    targets = bench_index
}
criterion_main!(benches);
