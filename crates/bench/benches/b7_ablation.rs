//! B7 — ablation of the design choices DESIGN.md calls out.
//!
//! 1. **Rule cleanup on/off**: selection pushdown + projection elimination
//!    (Section 6's algebraic identities) on a membership query with an
//!    extra outer filter — how much do the identities buy on top of
//!    unnesting?
//! 2. **UNNEST collapse on/off** (Section 5): the special case rule vs.
//!    building the set-of-sets with a nest join and flattening it.
//! 3. **All strategies** on the COUNT-bug query at one size — the
//!    complete survey ranking in a single chart.
//! 4. **Rule-based vs cost-based selection**: `Optimal` (Section 8 rules)
//!    against `CostBased` (statistics-ranked candidates) on the COUNT-bug
//!    query across fan-outs. At fan-out ≈ 1 the choices coincide (nest
//!    join); at high fan-out the cost model switches to the group-first
//!    plan, which touches each inner row once instead of materializing a
//!    set per outer row.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tmql::{Database, QueryOptions, UnnestStrategy};
use tmql_bench::{criterion, ladder, report_work};
use tmql_workload::gen::{gen_rs, gen_xy, GenConfig};
use tmql_workload::queries::{where_query, COUNT_BUG, UNNEST_COLLAPSE};

fn bench_rules(c: &mut Criterion) {
    let mut g = c.benchmark_group("b7_rules_onoff");
    // Membership plus a selective outer filter: pushdown shrinks the
    // semijoin's probe side.
    let src = where_query("x.n < 4 AND x.n IN {Z}");
    for n in ladder(&[1024usize, 4096]) {
        let db = Database::from_catalog(gen_xy(&GenConfig::sized(n)));
        for (label, apply_rules) in [("rules-on", true), ("rules-off", false)] {
            let opts = QueryOptions {
                apply_rules,
                ..QueryOptions::default()
            };
            report_work(&format!("b7-rules/{label}/{n}"), &db, &src, opts);
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| db.query_with(&src, opts).expect("runs").len())
            });
        }
    }
    g.finish();
}

fn bench_collapse(c: &mut Criterion) {
    let mut g = c.benchmark_group("b7_unnest_collapse");
    for n in ladder(&[1024usize, 4096]) {
        let db = Database::from_catalog(gen_xy(&GenConfig::sized(n)));
        let collapse_on = QueryOptions::default();
        let collapse_off = QueryOptions {
            apply_rules: false,
            ..QueryOptions::default().strategy(UnnestStrategy::NestJoin)
        };
        for (label, opts) in [
            ("collapse", collapse_on),
            ("nestjoin-then-flatten", collapse_off),
        ] {
            report_work(
                &format!("b7-collapse/{label}/{n}"),
                &db,
                UNNEST_COLLAPSE,
                opts,
            );
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| db.query_with(UNNEST_COLLAPSE, opts).expect("runs").len())
            });
        }
    }
    g.finish();
}

fn bench_all_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("b7_strategy_survey");
    let n = if tmql_bench::quick_mode() { 256 } else { 1024 };
    let cfg = GenConfig {
        outer: n,
        inner: n,
        dangling_fraction: 0.25,
        ..GenConfig::default()
    };
    let db = Database::from_catalog(gen_rs(&cfg));
    for strat in UnnestStrategy::ALL {
        let opts = QueryOptions::default().strategy(strat);
        report_work(
            &format!("b7-survey/{}/{n}", strat.name()),
            &db,
            COUNT_BUG,
            opts,
        );
        g.bench_function(BenchmarkId::new(strat.name(), n), |b| {
            b.iter(|| db.query_with(COUNT_BUG, opts).expect("runs").len())
        });
    }
    g.finish();
}

fn bench_costmodel(c: &mut Criterion) {
    let mut g = c.benchmark_group("b7_costmodel");
    let base = if tmql_bench::quick_mode() { 128 } else { 1024 };
    // Inner/outer fan-out ladder: 1× (choices coincide) to 8× (the cost
    // model switches the COUNT-bug block to group-first).
    for fanout in ladder(&[1usize, 4, 8]) {
        let cfg = GenConfig {
            outer: base,
            inner: base * fanout,
            dangling_fraction: 0.25,
            ..GenConfig::default()
        };
        let db = Database::from_catalog(gen_rs(&cfg));
        for strat in [UnnestStrategy::Optimal, UnnestStrategy::CostBased] {
            let opts = QueryOptions::default().strategy(strat);
            report_work(
                &format!("b7-costmodel/{}/x{fanout}", strat.name()),
                &db,
                COUNT_BUG,
                opts,
            );
            g.bench_with_input(BenchmarkId::new(strat.name(), fanout), &fanout, |b, _| {
                b.iter(|| db.query_with(COUNT_BUG, opts).expect("runs").len())
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = criterion();
    targets = bench_rules, bench_collapse, bench_all_strategies, bench_costmodel
}
criterion_main!(benches);
