//! B8 — spill-to-disk: budget-bounded vs unbounded execution as table
//! sizes grow past `memory_budget_rows`.
//!
//! The membership query flattens to a hash semijoin whose build side is
//! the full Y extension. With the budget pinned at [`BUDGET`] rows, the
//! ladder starts at 4× the budget and grows past 32× — every budgeted
//! rung runs grace-hash (build + probe partitioned to disk, partitions
//! joined one at a time, `peak_resident_rows ≈ BUDGET`), while the
//! unbounded twin keeps the whole build side resident. The `[work]` lines
//! record `spilled=`/`parts=`/`peak=` next to wall time; the recorded
//! trajectory lives in `BENCH_spill.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tmql::{Database, QueryOptions, Record, Table, Ty, Value};
use tmql_bench::{criterion, ladder, report_work};

/// Breaker budget for the bounded configurations (rows).
const BUDGET: usize = 1024;

/// Flattens to a hash semijoin on (n = a, b = b); projecting `x.b` keeps
/// the result (and its dedup set) small so the join dominates residency.
const MEMBER: &str = "SELECT x.b FROM X x WHERE x.n IN (SELECT y.a FROM Y y WHERE x.b = y.b)";

/// X(n, b) / Y(a, b), `b = id % 64` on both sides: every X row has
/// partners, the build side is all of Y.
fn join_db(n: usize) -> Database {
    let mut db = Database::new();
    for (name, c0, c1) in [("X", "n", "b"), ("Y", "a", "b")] {
        let mut t = Table::new(name, vec![(c0.into(), Ty::Int), (c1.into(), Ty::Int)]);
        for i in 0..n as i64 {
            t.insert(
                Record::new([
                    (c0.to_string(), Value::Int(i)),
                    (c1.to_string(), Value::Int(i % 64)),
                ])
                .expect("distinct labels"),
            )
            .expect("valid row");
        }
        db.register_table(t).expect("fresh table");
    }
    db
}

fn bench_spill(c: &mut Criterion) {
    let mut g = c.benchmark_group("b8_spill");
    for n in ladder(&[4096usize, 16384, 32768]) {
        let db = join_db(n);
        for (label, opts) in [
            ("unbounded", QueryOptions::default()),
            ("budget-1024", QueryOptions::default().memory_budget(BUDGET)),
        ] {
            report_work(&format!("b8-spill/{label}/{n}"), &db, MEMBER, opts);
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| db.query_with(MEMBER, opts).expect("runs").len())
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = criterion();
    targets = bench_spill
}
criterion_main!(benches);
