//! B10 — morsel-driven parallelism: the spill-forcing membership join at
//! 1/2/4/8 worker threads.
//!
//! With a `memory_budget_rows` far below the build side, the semijoin
//! runs grace-hash and its partitions become the units of parallel work
//! (partition-per-worker waves); table scans additionally fan out
//! batch-sized morsels. `threads = 1` is the exactly-serial executor, so
//! the 1-thread rung doubles as the parity baseline — the recorded
//! trajectory (and the host's `available_parallelism`, which caps real
//! speedup) lives in `BENCH_parallel.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tmql::{Database, QueryOptions, Record, Table, Ty, Value};
use tmql_bench::{criterion, ladder, report_work};

/// Breaker budget (rows): small enough that every rung spills into many
/// grace partitions, giving the workers real partition-level parallelism.
const BUDGET: usize = 512;

/// Flattens to a hash semijoin on (n = a, b = b); projecting `x.b` keeps
/// the dedup set small so the partitioned join dominates the runtime.
const MEMBER: &str = "SELECT x.b FROM X x WHERE x.n IN (SELECT y.a FROM Y y WHERE x.b = y.b)";

/// X(n, b) / Y(a, b), `b = id % 64` on both sides: every X row has
/// partners and the build side is all of Y.
fn join_db(n: usize) -> Database {
    let mut db = Database::new();
    for (name, c0, c1) in [("X", "n", "b"), ("Y", "a", "b")] {
        let mut t = Table::new(name, vec![(c0.into(), Ty::Int), (c1.into(), Ty::Int)]);
        for i in 0..n as i64 {
            t.insert(
                Record::new([
                    (c0.to_string(), Value::Int(i)),
                    (c1.to_string(), Value::Int(i % 64)),
                ])
                .expect("distinct labels"),
            )
            .expect("valid row");
        }
        db.register_table(t).expect("fresh table");
    }
    db
}

fn bench_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("b10_parallel");
    for n in ladder(&[8192usize, 32768]) {
        let db = join_db(n);
        for threads in [1usize, 2, 4, 8] {
            let opts = QueryOptions::default()
                .memory_budget(BUDGET)
                .threads(threads);
            report_work(&format!("b10-parallel/t{threads}/{n}"), &db, MEMBER, opts);
            g.bench_with_input(BenchmarkId::new(format!("t{threads}"), n), &n, |b, _| {
                b.iter(|| db.query_with(MEMBER, opts).expect("runs").len())
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = criterion();
    targets = bench_parallel
}
criterion_main!(benches);
