//! B5 — the Section 8 three-block pipeline at scale.
//!
//! The full strategies on the linear nested query (both the ⊆ version,
//! which needs two nest joins, and the ∈/∉ version, which flattens to
//! semijoin + antijoin). Expected shape: nested loop is cubic-ish and
//! falls off the chart early; Optimal ≈ NestJoin on the ⊆ version; Optimal
//! beats forced-NestJoin on the ∈/∉ version (that gap *is* Theorem 1's
//! payoff).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tmql::{Database, QueryOptions, UnnestStrategy};
use tmql_bench::{criterion, ladder, report_work};
use tmql_workload::gen::{gen_xyz, GenConfig};
use tmql_workload::queries::{SECTION8, SECTION8_FLAT};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("b5_multilevel");
    for n in ladder(&[128usize, 512, 2048]) {
        let cfg = GenConfig {
            outer: n,
            inner: n,
            dangling_fraction: 0.25,
            ..GenConfig::default()
        };
        let db = Database::from_catalog(gen_xyz(&cfg));
        for (qname, src) in [("subseteq", SECTION8), ("in-notin", SECTION8_FLAT)] {
            for strat in [
                UnnestStrategy::NestedLoop,
                UnnestStrategy::NestJoin,
                UnnestStrategy::Optimal,
            ] {
                // Nested-loop over three blocks explodes fast.
                if strat == UnnestStrategy::NestedLoop && n > 128 {
                    continue;
                }
                let label = format!("{qname}/{}", strat.name());
                let opts = QueryOptions::default().strategy(strat);
                report_work(&format!("b5/{label}/{n}"), &db, src, opts);
                g.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                    b.iter(|| db.query_with(src, opts).expect("runs").len())
                });
            }
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = criterion();
    targets = bench
}
criterion_main!(benches);
