//! B1 — flattening beats nested-loop processing (Sections 1–2).
//!
//! The membership query `x.n ∈ (SELECT y.a FROM Y y WHERE x.b = y.b)`
//! under (a) nested-loop Apply (the query's direct semantics), (b) the
//! flattened semijoin with a *forced nested-loop* implementation (what
//! rewriting alone buys), and (c) the flattened semijoin with a hash
//! implementation — "after transformation to a join query the optimizer
//! can choose the most suitable join execution method".
//!
//! Expected shape: (a) quadratic, (b) quadratic but cheaper constants
//! (semijoin short-circuits), (c) near-linear; crossover immediate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tmql::{Database, JoinAlgo, QueryOptions, UnnestStrategy};
use tmql_bench::{criterion, report_work, sizes, NL_CAP};
use tmql_workload::gen::{gen_xy, GenConfig};
use tmql_workload::queries::MEMBERSHIP;

fn configs() -> Vec<(&'static str, QueryOptions)> {
    vec![
        (
            "apply-nested-loop",
            QueryOptions::default().strategy(UnnestStrategy::NestedLoop),
        ),
        (
            "semijoin-nested-loop",
            QueryOptions::default()
                .strategy(UnnestStrategy::Optimal)
                .join_algo(JoinAlgo::NestedLoop),
        ),
        (
            "semijoin-hash",
            QueryOptions::default()
                .strategy(UnnestStrategy::Optimal)
                .join_algo(JoinAlgo::Hash),
        ),
        (
            "semijoin-sort-merge",
            QueryOptions::default()
                .strategy(UnnestStrategy::Optimal)
                .join_algo(JoinAlgo::SortMerge),
        ),
    ]
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("b1_flatten_vs_apply");
    for n in sizes() {
        let db = Database::from_catalog(gen_xy(&GenConfig::sized(n)));
        for (label, opts) in configs() {
            if label.contains("nested-loop") && n > NL_CAP {
                continue;
            }
            report_work(&format!("b1/{label}/{n}"), &db, MEMBERSHIP, opts);
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| db.query_with(MEMBERSHIP, opts).expect("runs").len())
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = criterion();
    targets = bench
}
criterion_main!(benches);
