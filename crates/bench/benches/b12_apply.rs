//! B12 — batched Apply: binding memoization across duplicate correlation
//! values.
//!
//! The membership query `x.n ∈ (SELECT y.a FROM Y y WHERE x.b = y.b)`
//! forced through nested-loop Apply (the query's direct semantics), on a
//! duplicate-binding ladder: the correlated column `x.b` carries `d`
//! distinct values over `n` outer rows (`d/n` ∈ {1%, 10%, 100%}). Each
//! rung runs the same plan two ways:
//!
//! * **uncached** — `apply_cache(false)`: the pre-batching executor, one
//!   inner execution per outer row (`ainv = n`);
//! * **cached** — the default: the inner operator tree is built once and
//!   rebound, completed result sets are memoized per distinct binding,
//!   and the whole-inner eq-selection hoists to a transient hash probe
//!   (`ainv = d`, `ahit = n - d`).
//!
//! Expected shape: at 1% distinct the cached run does ~1% of the inner
//! work and wins by well over an order of magnitude; at 100% distinct
//! every binding is new, the cache never hits, and the two runs stay at
//! parity (the cached side still amortizes the hoisted hash build). The
//! `[work]` lines pin the mechanism: `ainv` drops from `n` to `d` while
//! the row counts stay identical. Recorded trajectory: `BENCH_apply.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tmql::{Database, QueryOptions, Record, Table, Ty, UnnestStrategy, Value};
use tmql_bench::{criterion, ladder, quick_mode, report_work, NL_CAP};

/// Membership with a correlated equality — lowers to Apply under the
/// forced nested-loop strategy.
const QUERY: &str = "SELECT x.n FROM X x WHERE x.n IN (SELECT y.a FROM Y y WHERE x.b = y.b)";

/// Percent of outer rows carrying a distinct correlation binding.
const DISTINCT_PCT: &[usize] = &[1, 10, 100];

fn db(n: usize, d: usize) -> Database {
    let mut x = Table::new("X", vec![("n".into(), Ty::Int), ("b".into(), Ty::Int)]);
    let mut y = Table::new("Y", vec![("a".into(), Ty::Int), ("b".into(), Ty::Int)]);
    for i in 0..n as i64 {
        x.insert(
            Record::new([
                ("n".to_string(), Value::Int(i)),
                ("b".to_string(), Value::Int(i % d as i64)),
            ])
            .expect("distinct labels"),
        )
        .expect("valid row");
        // Even rows of Y share X's binding domain so roughly half the
        // outer rows find a match; odd rows are dangling inner tuples.
        y.insert(
            Record::new([
                ("a".to_string(), Value::Int(i)),
                (
                    "b".to_string(),
                    Value::Int(if i % 2 == 0 { i % d as i64 } else { -1 }),
                ),
            ])
            .expect("distinct labels"),
        )
        .expect("valid row");
    }
    let mut db = Database::new();
    db.register_table(x).expect("register X");
    db.register_table(y).expect("register Y");
    db
}

fn configs() -> Vec<(&'static str, QueryOptions)> {
    let apply = QueryOptions::default()
        .strategy(UnnestStrategy::NestedLoop)
        .threads(1);
    vec![("uncached", apply.apply_cache(false)), ("cached", apply)]
}

fn bench_apply(c: &mut Criterion) {
    let mut g = c.benchmark_group("b12_apply");
    // The quick CI smoke shrinks the outer table below the quadratic
    // baseline's pain threshold while still exercising both configs.
    let ns: Vec<usize> = if quick_mode() {
        vec![256]
    } else {
        vec![1024, 4096]
    };
    for n in ns {
        for pct in ladder(DISTINCT_PCT) {
            let d = (n * pct / 100).max(1);
            let db = db(n, d);
            for (label, opts) in configs() {
                // The per-row baseline is quadratic; skip it above the
                // nested-loop cap (the cached side keeps climbing).
                if label == "uncached" && n > NL_CAP {
                    continue;
                }
                report_work(
                    &format!("b12-apply/{label}/n{n}-d{pct}pct"),
                    &db,
                    QUERY,
                    opts,
                );
                g.bench_with_input(
                    BenchmarkId::new(label, format!("n{n}-d{pct}pct")),
                    &d,
                    |b, _| b.iter(|| db.query_with(QUERY, opts).expect("runs").len()),
                );
            }
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = criterion();
    targets = bench_apply
}
criterion_main!(benches);
