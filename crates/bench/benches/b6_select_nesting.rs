//! B6 — nesting in the SELECT clause (Sections 5–6).
//!
//! A Q2-style nested-result query over a generated company database:
//! every department paired with the set of its same-city employees.
//! "Queries having subqueries in the SELECT clause often describe nested
//! results, so processing by means of the nest join operation will be an
//! appropriate method" — compared against the nested loop and against
//! Ganski–Wong (outerjoin + ν*, which must manufacture and then elide
//! NULLs for employee-less cities).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tmql::{Database, QueryOptions, UnnestStrategy};
use tmql_bench::{criterion, ladder, report_work, NL_CAP};
use tmql_workload::gen::{gen_company, GenConfig};

const Q2_GEN: &str = "\
SELECT (dname = d.name,
        emps = (SELECT e.name
                FROM EMP e
                WHERE e.address.city = d.address.city))
FROM DEPT d";

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("b6_select_nesting");
    for (depts, emps) in ladder(&[(64usize, 512usize), (256, 2048), (512, 8192)]) {
        let cfg = GenConfig {
            outer: depts,
            inner: emps,
            dangling_fraction: 0.25,
            ..GenConfig::default()
        };
        let db = Database::from_catalog(gen_company(&cfg));
        for strat in [
            UnnestStrategy::NestedLoop,
            UnnestStrategy::GanskiWong,
            UnnestStrategy::NestJoin,
        ] {
            if strat == UnnestStrategy::NestedLoop && emps > NL_CAP * 4 {
                continue;
            }
            let opts = QueryOptions::default().strategy(strat);
            let label = strat.name();
            report_work(&format!("b6/{label}/{depts}x{emps}"), &db, Q2_GEN, opts);
            g.bench_with_input(
                BenchmarkId::new(label, format!("{depts}x{emps}")),
                &depts,
                |b, _| b.iter(|| db.query_with(Q2_GEN, opts).expect("runs").len()),
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = criterion();
    targets = bench
}
criterion_main!(benches);
