//! B4 — nest join implementations (Section 6, "Implementation").
//!
//! "To implement the nest join, common join implementation methods like
//! the sort-merge join, or the hash join can be used." This bench compares
//! the nested-loop, hash (build = right operand, the paper's restriction),
//! and sort-merge nest joins on the SUBSETEQ query, across sizes and
//! right-operand fan-out (rows per key).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tmql::{Database, JoinAlgo, QueryOptions, UnnestStrategy};
use tmql_bench::{criterion, report_work, sizes, NL_CAP};
use tmql_workload::gen::{gen_xy, GenConfig};
use tmql_workload::queries::SUBSETEQ_BUG;

const ALGOS: [(&str, JoinAlgo); 3] = [
    ("nested-loop", JoinAlgo::NestedLoop),
    ("hash", JoinAlgo::Hash),
    ("sort-merge", JoinAlgo::SortMerge),
];

fn bench_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("b4_size_sweep");
    for n in sizes() {
        let db = Database::from_catalog(gen_xy(&GenConfig::sized(n)));
        for (label, algo) in ALGOS {
            if algo == JoinAlgo::NestedLoop && n > NL_CAP {
                continue;
            }
            let opts = QueryOptions::default()
                .strategy(UnnestStrategy::NestJoin)
                .join_algo(algo);
            report_work(&format!("b4/{label}/{n}"), &db, SUBSETEQ_BUG, opts);
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| db.query_with(SUBSETEQ_BUG, opts).expect("runs").len())
            });
        }
    }
    g.finish();
}

fn bench_fanout(c: &mut Criterion) {
    // Fix |X| and sweep |Y| (average matches per probe row).
    let mut g = c.benchmark_group("b4_fanout_sweep");
    for fanout in [1usize, 4, 16, 64] {
        let cfg = GenConfig {
            outer: 1024,
            inner: 1024 * fanout.min(16),
            dangling_fraction: 0.25,
            ..GenConfig::default()
        };
        let db = Database::from_catalog(gen_xy(&cfg));
        for (label, algo) in ALGOS {
            if algo == JoinAlgo::NestedLoop && fanout > 4 {
                continue;
            }
            let opts = QueryOptions::default()
                .strategy(UnnestStrategy::NestJoin)
                .join_algo(algo);
            g.bench_with_input(BenchmarkId::new(label, fanout), &fanout, |b, _| {
                b.iter(|| db.query_with(SUBSETEQ_BUG, opts).expect("runs").len())
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = criterion();
    targets = bench_sizes, bench_fanout
}
criterion_main!(benches);
