//! B2 — the nest join vs. the relational repair (Sections 2 and 6).
//!
//! The COUNT-bug query under (a) Ganski–Wong: outerjoin ⟕ then ν*
//! grouping over NULL payloads (two passes, materializes the full
//! outerjoin), and (b) the paper's nest join Δ: grouping *during* the
//! join, one pass, no NULLs. Both are correct; the nest join should win
//! modestly at every scale and dangling fraction (it also wins on memory,
//! which the work counters show as emitted rows).
//!
//! Also includes the nested-loop baseline at small scale, and a dangling
//! fraction sweep at fixed size — the more dangling tuples, the more
//! NULL-extended rows Ganski–Wong manufactures and then discards.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tmql::{Database, QueryOptions, UnnestStrategy};
use tmql_bench::{criterion, report_work, sizes, NL_CAP};
use tmql_workload::gen::{gen_rs, GenConfig};
use tmql_workload::queries::COUNT_BUG;

fn strategies() -> Vec<(&'static str, UnnestStrategy)> {
    vec![
        ("nested-loop", UnnestStrategy::NestedLoop),
        ("ganski-wong", UnnestStrategy::GanskiWong),
        ("nest-join", UnnestStrategy::NestJoin),
    ]
}

fn bench_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("b2_size_sweep");
    for n in sizes() {
        let cfg = GenConfig {
            outer: n,
            inner: n,
            dangling_fraction: 0.25,
            ..GenConfig::default()
        };
        let db = Database::from_catalog(gen_rs(&cfg));
        for (label, strat) in strategies() {
            if strat == UnnestStrategy::NestedLoop && n > NL_CAP {
                continue;
            }
            let opts = QueryOptions::default().strategy(strat);
            report_work(&format!("b2/{label}/{n}"), &db, COUNT_BUG, opts);
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| db.query_with(COUNT_BUG, opts).expect("runs").len())
            });
        }
    }
    g.finish();
}

fn bench_dangling(c: &mut Criterion) {
    let mut g = c.benchmark_group("b2_dangling_sweep");
    for dangling in [0.0, 0.25, 0.5, 0.9] {
        let cfg = GenConfig {
            outer: 2048,
            inner: 2048,
            dangling_fraction: dangling,
            ..GenConfig::default()
        };
        let db = Database::from_catalog(gen_rs(&cfg));
        for (label, strat) in strategies() {
            if strat == UnnestStrategy::NestedLoop {
                continue;
            }
            let opts = QueryOptions::default().strategy(strat);
            let pct = (dangling * 100.0) as u32;
            report_work(&format!("b2/{label}/dangling{pct}"), &db, COUNT_BUG, opts);
            g.bench_with_input(BenchmarkId::new(label, pct), &pct, |b, _| {
                b.iter(|| db.query_with(COUNT_BUG, opts).expect("runs").len())
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = criterion();
    targets = bench_sizes, bench_dangling
}
criterion_main!(benches);
