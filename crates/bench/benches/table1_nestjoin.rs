//! T1 micro-benchmark — the Table 1 nest join itself.
//!
//! The paper's fixed 3×3 example (correctness is asserted in
//! `tests/table1.rs`; here we measure the operator dispatch overhead) plus
//! a 1k×1k generated version under all three implementations, as the
//! smallest self-contained illustration that the nest join is "a simple
//! modification of any common join implementation method".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tmql_algebra::{Env, Plan, ScalarExpr as E};
use tmql_bench::criterion;
use tmql_exec::{execute, lower, ExecConfig, ExecContext, JoinAlgo};
use tmql_workload::gen::{gen_xy, GenConfig};
use tmql_workload::schemas::table1_catalog;

fn nest_join(table_x: &str, key_x: &str, table_y: &str, key_y: &str) -> Plan {
    Plan::scan(table_x, "x").nest_join(
        Plan::scan(table_y, "y"),
        E::eq(E::path("x", &[key_x]), E::path("y", &[key_y])),
        E::var("y"),
        "s",
    )
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_nestjoin");
    let algos = [
        ("nested-loop", JoinAlgo::NestedLoop),
        ("hash", JoinAlgo::Hash),
        ("sort-merge", JoinAlgo::SortMerge),
    ];

    // The paper's exact fixture.
    let cat = table1_catalog();
    let plan = nest_join("X", "d", "Y", "b");
    for (label, algo) in algos {
        let phys = lower(&plan, &cat, &ExecConfig::with_join_algo(algo)).expect("lowers");
        g.bench_function(BenchmarkId::new("paper-3x3", label), |b| {
            b.iter(|| {
                let mut ctx = ExecContext::new(&cat);
                execute(&phys, &mut ctx, &Env::new()).expect("runs").len()
            })
        });
    }

    // A generated 1k×1k version (smaller under the CI quick-smoke mode).
    let big_n = if tmql_bench::quick_mode() { 256 } else { 1024 };
    let big = gen_xy(&GenConfig::sized(big_n));
    let plan = nest_join("X", "b", "Y", "b");
    for (label, algo) in algos {
        let phys = lower(&plan, &big, &ExecConfig::with_join_algo(algo)).expect("lowers");
        g.bench_function(BenchmarkId::new("generated-1k", label), |b| {
            b.iter(|| {
                let mut ctx = ExecContext::new(&big);
                execute(&phys, &mut ctx, &Env::new()).expect("runs").len()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = criterion();
    targets = bench
}
criterion_main!(benches);
