//! Streaming-executor invariants: for random small plans, execution is
//! insensitive to the batch size — identical row multisets and identical
//! `rows_scanned` for batch sizes {1, 2, 7, 1024} — and peak resident
//! rows stay below the total intermediate row count (streaming streams).

use proptest::prelude::*;
use tmql_algebra::{AggFn, CmpOp, Plan, ScalarExpr as E};
use tmql_exec::{run, ExecConfig, JoinAlgo};
use tmql_model::Record;
use tmql_storage::{table::int_table, Catalog};

const BATCH_SIZES: [usize; 4] = [1, 2, 7, 1024];

fn catalog(x: &[(i64, i64)], y: &[(i64, i64)]) -> Catalog {
    let mut cat = Catalog::new();
    let xr: Vec<Vec<i64>> = x.iter().map(|(a, b)| vec![*a, *b]).collect();
    let yr: Vec<Vec<i64>> = y.iter().map(|(b, c)| vec![*b, *c]).collect();
    cat.register(int_table(
        "X",
        &["a", "b"],
        &xr.iter().map(Vec::as_slice).collect::<Vec<_>>(),
    ))
    .unwrap();
    cat.register(int_table(
        "Y",
        &["b", "c"],
        &yr.iter().map(Vec::as_slice).collect::<Vec<_>>(),
    ))
    .unwrap();
    cat
}

/// A corpus of plan shapes covering every streaming operator and every
/// pipeline breaker: filters/maps, all five join kinds, grouping, ν+μ
/// round-trips, set ops, and the correlated Apply.
fn plan_corpus(lim: i64) -> Vec<(&'static str, Plan)> {
    let equi = || E::eq(E::path("x", &["b"]), E::path("y", &["b"]));
    let sub = || {
        Plan::scan("Y", "y")
            .select(E::eq(E::path("x", &["b"]), E::path("y", &["b"])))
            .map(E::path("y", &["c"]), "s")
    };
    vec![
        (
            "filter-map",
            Plan::scan("X", "x")
                .select(E::cmp(CmpOp::Lt, E::path("x", &["a"]), E::lit(lim)))
                .map(E::path("x", &["a"]), "v"),
        ),
        (
            "join",
            Plan::scan("X", "x").join(Plan::scan("Y", "y"), equi()),
        ),
        (
            "semi",
            Plan::scan("X", "x").semi_join(Plan::scan("Y", "y"), equi()),
        ),
        (
            "anti",
            Plan::scan("X", "x").anti_join(Plan::scan("Y", "y"), equi()),
        ),
        (
            "outer",
            Plan::LeftOuterJoin {
                left: Box::new(Plan::scan("X", "x")),
                right: Box::new(Plan::scan("Y", "y")),
                pred: equi(),
            },
        ),
        (
            "nestjoin",
            Plan::scan("X", "x").nest_join(
                Plan::scan("Y", "y"),
                equi(),
                E::path("y", &["c"]),
                "cs",
            ),
        ),
        (
            "nest-unnest",
            Plan::Unnest {
                input: Box::new(Plan::Nest {
                    input: Box::new(Plan::scan("X", "x")),
                    keys: vec![],
                    value: E::var("x"),
                    label: "xs".into(),
                    star: false,
                }),
                expr: E::var("xs"),
                elem_var: "x".into(),
                drop_vars: vec!["xs".into()],
            },
        ),
        (
            "group-agg",
            Plan::GroupAgg {
                input: Box::new(Plan::scan("Y", "y")),
                keys: vec![("b".into(), E::path("y", &["b"]))],
                aggs: vec![("n".into(), AggFn::Count, E::var("y"))],
                var: "g".into(),
            },
        ),
        (
            "setop",
            Plan::SetOp {
                kind: tmql_algebra::SetOpKind::Except,
                left: Box::new(Plan::scan("X", "x").map(E::path("x", &["b"]), "v")),
                right: Box::new(Plan::scan("Y", "y").map(E::path("y", &["b"]), "v")),
                var: "v".into(),
            },
        ),
        (
            "apply",
            Plan::scan("X", "x")
                .apply(sub(), "z")
                .map(E::var("z"), "out"),
        ),
    ]
}

fn multiset(rows: Vec<Record>) -> Vec<Record> {
    let mut rows = rows;
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batch_size_invariance(
        x in prop::collection::vec((0i64..8, 0i64..5), 0..12),
        y in prop::collection::vec((0i64..5, 0i64..8), 0..12),
        lim in 0i64..8,
        algo_i in 0usize..4,
    ) {
        let algo = [JoinAlgo::Auto, JoinAlgo::NestedLoop, JoinAlgo::Hash, JoinAlgo::SortMerge][algo_i];
        let cat = catalog(&x, &y);
        for (name, plan) in plan_corpus(lim) {
            let config = ExecConfig::with_join_algo(algo).batch_size(BATCH_SIZES[0]);
            let (rows0, m0) = run(&plan, &cat, &config).unwrap();
            let base = multiset(rows0);
            for &bs in &BATCH_SIZES[1..] {
                let config = ExecConfig::with_join_algo(algo).batch_size(bs);
                let (rows, m) = run(&plan, &cat, &config).unwrap();
                prop_assert_eq!(multiset(rows), base.clone(), "{}: batch {} changed rows", name, bs);
                prop_assert_eq!(m.rows_scanned, m0.rows_scanned,
                    "{}: batch {} changed rows_scanned", name, bs);
            }
        }
    }

    /// Resident-row accounting is balanced: whatever operators acquire
    /// they release, for every plan shape and batch size.
    #[test]
    fn resident_rows_return_to_zero(
        x in prop::collection::vec((0i64..8, 0i64..5), 0..10),
        y in prop::collection::vec((0i64..5, 0i64..8), 0..10),
        bs_i in 0usize..3,
    ) {
        let bs = [1usize, 3, 1024][bs_i];
        let cat = catalog(&x, &y);
        let mut max_peak = 0;
        for (name, plan) in plan_corpus(4) {
            let config = ExecConfig::auto().batch_size(bs);
            let phys = tmql_exec::lower(&plan, &cat, &config).unwrap();
            let mut ctx = tmql_exec::ExecContext::with_config(&cat, &config);
            let _ = tmql_exec::execute(&phys, &mut ctx, &tmql_algebra::Env::new()).unwrap();
            prop_assert_eq!(ctx.resident_rows(), 0, "{}: leaked resident rows", name);
            max_peak = max_peak.max(ctx.metrics.peak_resident_rows);
        }
        if !x.is_empty() && !y.is_empty() {
            // At least one corpus shape (the equi-join build side) holds
            // materialized state, so the gauge must have moved.
            prop_assert!(max_peak >= 1, "peak gauge never moved");
        }
    }
}
