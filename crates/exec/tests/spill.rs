//! Spill-tier invariants: with `memory_budget_rows` set, every pipeline
//! breaker produces results identical to the unbounded run, the resident
//! gauge respects the budget (up to batch-granular slack), and skew that
//! defeats partitioning degrades gracefully instead of failing.

use proptest::prelude::*;
use tmql_algebra::{AggFn, CmpOp, Plan, ScalarExpr as E, SetOpKind};
use tmql_exec::{run, ExecConfig, JoinAlgo};
use tmql_model::Record;
use tmql_storage::{table::int_table, Catalog};

fn catalog(x: &[(i64, i64)], y: &[(i64, i64)]) -> Catalog {
    let mut cat = Catalog::new();
    let xr: Vec<Vec<i64>> = x.iter().map(|(a, b)| vec![*a, *b]).collect();
    let yr: Vec<Vec<i64>> = y.iter().map(|(b, c)| vec![*b, *c]).collect();
    cat.register(int_table(
        "X",
        &["a", "b"],
        &xr.iter().map(Vec::as_slice).collect::<Vec<_>>(),
    ))
    .unwrap();
    cat.register(int_table(
        "Y",
        &["b", "c"],
        &yr.iter().map(Vec::as_slice).collect::<Vec<_>>(),
    ))
    .unwrap();
    cat
}

/// Sized catalog: X rows (i, i % modb), Y rows (i % modb, i) — every X row
/// has join partners on b, group keys collapse `modb`-ways.
fn sized_catalog(n: i64, modb: i64) -> Catalog {
    let x: Vec<(i64, i64)> = (0..n).map(|i| (i, i % modb)).collect();
    let y: Vec<(i64, i64)> = (0..n).map(|i| (i % modb, i)).collect();
    catalog(&x, &y)
}

/// Every breaker shape: hash/merge joins of all kinds, ν, GROUP BY, set
/// ops, and Map dedup.
fn breaker_corpus() -> Vec<(&'static str, Plan)> {
    let equi = || E::eq(E::path("x", &["b"]), E::path("y", &["b"]));
    vec![
        (
            "join",
            Plan::scan("X", "x").join(Plan::scan("Y", "y"), equi()),
        ),
        (
            "semi",
            Plan::scan("X", "x").semi_join(Plan::scan("Y", "y"), equi()),
        ),
        (
            "anti",
            Plan::scan("X", "x").anti_join(Plan::scan("Y", "y"), equi()),
        ),
        (
            "outer",
            Plan::LeftOuterJoin {
                left: Box::new(Plan::scan("X", "x")),
                right: Box::new(Plan::scan("Y", "y")),
                pred: equi(),
            },
        ),
        (
            "nestjoin",
            Plan::scan("X", "x").nest_join(
                Plan::scan("Y", "y"),
                equi(),
                E::path("y", &["c"]),
                "cs",
            ),
        ),
        (
            "nest",
            Plan::Nest {
                input: Box::new(Plan::scan("X", "x")),
                keys: vec!["x".into()],
                value: E::path("x", &["b"]),
                label: "bs".into(),
                star: false,
            },
        ),
        (
            "group-agg",
            Plan::GroupAgg {
                input: Box::new(Plan::scan("Y", "y")),
                keys: vec![("b".into(), E::path("y", &["b"]))],
                aggs: vec![("n".into(), AggFn::Count, E::var("y"))],
                var: "g".into(),
            },
        ),
        (
            "setop-except",
            Plan::SetOp {
                kind: SetOpKind::Except,
                left: Box::new(Plan::scan("X", "x").map(E::path("x", &["a"]), "v")),
                right: Box::new(Plan::scan("Y", "y").map(E::path("y", &["b"]), "v")),
                var: "v".into(),
            },
        ),
        (
            "setop-union",
            Plan::SetOp {
                kind: SetOpKind::Union,
                left: Box::new(Plan::scan("X", "x").map(E::path("x", &["a"]), "v")),
                right: Box::new(Plan::scan("Y", "y").map(E::path("y", &["c"]), "v")),
                var: "v".into(),
            },
        ),
        (
            "map-dedup",
            Plan::scan("X", "x").map(E::path("x", &["a"]), "v"),
        ),
        (
            "filtered-map",
            Plan::scan("X", "x")
                .select(E::cmp(CmpOp::Ge, E::path("x", &["a"]), E::lit(3i64)))
                .map(E::path("x", &["a"]), "v"),
        ),
    ]
}

fn multiset(rows: Vec<Record>) -> Vec<Record> {
    let mut rows = rows;
    rows.sort();
    rows
}

#[test]
fn budgeted_runs_match_unbounded_for_every_breaker() {
    let cat = sized_catalog(512, 16);
    for algo in [JoinAlgo::Hash, JoinAlgo::SortMerge] {
        for (name, plan) in breaker_corpus() {
            let free = ExecConfig::with_join_algo(algo).batch_size(64);
            let (rows_free, m_free) = run(&plan, &cat, &free).unwrap();
            let tight = free.memory_budget(48);
            let (rows_tight, m_tight) = run(&plan, &cat, &tight).unwrap();
            assert_eq!(
                multiset(rows_free),
                multiset(rows_tight),
                "{name}/{algo:?}: budgeted result diverged"
            );
            assert!(
                m_tight.rows_spilled > 0,
                "{name}/{algo:?}: breaker state of 512 rows under a 48-row budget must spill"
            );
            assert_eq!(
                m_free.rows_spilled, 0,
                "{name}/{algo:?}: unbounded run spilled"
            );
            assert!(
                m_tight.peak_resident_rows < m_free.peak_resident_rows,
                "{name}/{algo:?}: spilling should lower the resident peak \
                 (free={} tight={})",
                m_free.peak_resident_rows,
                m_tight.peak_resident_rows
            );
        }
    }
}

#[test]
fn grace_hash_join_bounds_resident_rows() {
    // Build side 2048 rows at an 8× overshoot of the 256-row budget: the
    // grace join must keep the gauge within budget + batch-granular slack.
    let cat = sized_catalog(2048, 64);
    let plan = Plan::scan("X", "x").semi_join(
        Plan::scan("Y", "y"),
        E::eq(E::path("x", &["b"]), E::path("y", &["b"])),
    );
    let budget = 256;
    let batch = 128;
    let config = ExecConfig::with_join_algo(JoinAlgo::Hash)
        .batch_size(batch)
        .memory_budget(budget);
    let (rows, m) = run(&plan, &cat, &config).unwrap();
    assert_eq!(rows.len(), 2048, "every X row has partners on b");
    assert!(m.rows_spilled > 0);
    assert!(m.spill_partitions > 0);
    assert!(
        m.peak_resident_rows <= (budget + 3 * batch) as u64,
        "peak {} exceeds budget {} + slack",
        m.peak_resident_rows,
        budget
    );
}

#[test]
fn skewed_keys_repartition_and_still_finish() {
    // Every row shares one join key: partitioning cannot split the build
    // side, so recursion must hit its depth cap and fall back to an
    // in-memory partition — correct results, no infinite loop.
    let x: Vec<(i64, i64)> = (0..256).map(|i| (i, 7)).collect();
    let y: Vec<(i64, i64)> = (0..256).map(|i| (7, i)).collect();
    let cat = catalog(&x, &y);
    let plan = Plan::scan("X", "x").nest_join(
        Plan::scan("Y", "y"),
        E::eq(E::path("x", &["b"]), E::path("y", &["b"])),
        E::path("y", &["c"]),
        "cs",
    );
    let free = ExecConfig::with_join_algo(JoinAlgo::Hash).batch_size(32);
    let (rows_free, _) = run(&plan, &cat, &free).unwrap();
    let (rows_tight, m) = run(&plan, &cat, &free.memory_budget(16)).unwrap();
    assert_eq!(multiset(rows_free), multiset(rows_tight));
    assert!(
        m.rows_spilled > 0,
        "the skewed build side still spills on the way through"
    );
}

#[test]
fn binary_breaker_budget_bounds_combined_operands() {
    // Each set-op operand fits the budget alone (100 rows ≤ 120); their
    // sum does not. The breaker bounds *combined* state, so this must
    // spill rather than holding ~200 rows resident.
    let cat = sized_catalog(100, 100);
    let plan = Plan::SetOp {
        kind: SetOpKind::Union,
        left: Box::new(Plan::scan("X", "x").map(E::path("x", &["a"]), "v")),
        right: Box::new(Plan::scan("Y", "y").map(E::path("y", &["c"]), "v")),
        var: "v".into(),
    };
    let free = ExecConfig::auto().batch_size(32);
    let (rows_free, _) = run(&plan, &cat, &free).unwrap();
    let (rows_tight, m) = run(&plan, &cat, &free.memory_budget(120)).unwrap();
    assert_eq!(multiset(rows_free), multiset(rows_tight));
    assert!(
        m.rows_spilled > 0,
        "combined 200-row state over a 120-row budget must spill"
    );
}

#[test]
fn resident_gauge_returns_to_zero_after_spilling_runs() {
    let cat = sized_catalog(300, 8);
    for (name, plan) in breaker_corpus() {
        let config = ExecConfig::auto().batch_size(32).memory_budget(24);
        let phys = tmql_exec::lower(&plan, &cat, &config).unwrap();
        let mut ctx = tmql_exec::ExecContext::with_config(&cat, &config);
        let _ = tmql_exec::execute(&phys, &mut ctx, &tmql_algebra::Env::new()).unwrap();
        assert_eq!(
            ctx.resident_rows(),
            0,
            "{name}: leaked resident rows after spill"
        );
    }
}

#[test]
fn nested_loop_inner_side_spills_under_budget() {
    // Force the nested-loop implementation of every join kind: the inner
    // materialization — flagged in the ROADMAP as non-spilling — now
    // moves to a run past the budget and block-joins chunk-at-a-time.
    let cat = sized_catalog(512, 16);
    let join_family = ["join", "semi", "anti", "outer", "nestjoin"];
    for (name, plan) in breaker_corpus() {
        if !join_family.contains(&name) {
            continue;
        }
        let free = ExecConfig::with_join_algo(JoinAlgo::NestedLoop).batch_size(64);
        let (rows_free, m_free) = run(&plan, &cat, &free).unwrap();
        let (rows_tight, m_tight) = run(&plan, &cat, &free.memory_budget(48)).unwrap();
        assert_eq!(
            multiset(rows_free),
            multiset(rows_tight),
            "{name}: block nested loop diverged"
        );
        assert_eq!(m_free.rows_spilled, 0, "{name}: unbounded NL join spilled");
        assert!(
            m_tight.rows_spilled >= 512,
            "{name}: the 512-row inner side must spill (got {})",
            m_tight.rows_spilled
        );
        assert!(
            m_tight.peak_resident_rows < m_free.peak_resident_rows,
            "{name}: spilling the inner side should lower the peak (free={} tight={})",
            m_free.peak_resident_rows,
            m_tight.peak_resident_rows
        );
    }
}

#[test]
fn nested_loop_spill_leaves_gauge_balanced() {
    let cat = sized_catalog(300, 8);
    let plan = Plan::scan("X", "x").anti_join(
        Plan::scan("Y", "y"),
        E::eq(E::path("x", &["b"]), E::path("y", &["b"])),
    );
    let config = ExecConfig::with_join_algo(JoinAlgo::NestedLoop)
        .batch_size(32)
        .memory_budget(24);
    let phys = tmql_exec::lower(&plan, &cat, &config).unwrap();
    let mut ctx = tmql_exec::ExecContext::with_config(&cat, &config);
    let _ = tmql_exec::execute(&phys, &mut ctx, &tmql_algebra::Env::new()).unwrap();
    assert!(ctx.metrics.rows_spilled > 0);
    assert_eq!(
        ctx.resident_rows(),
        0,
        "leaked resident rows after NL spill"
    );
}

#[test]
fn scan_expr_buffered_set_spills_under_budget() {
    // A 300-element set expression: the buffered items count toward the
    // gauge, and past the budget only a budget's worth stays resident
    // while the tail streams back from a run.
    let cat = Catalog::new();
    let items: Vec<E> = (0..300).map(|i| E::lit(i as i64)).collect();
    let plan = Plan::ScanExpr {
        expr: E::SetLit(items),
        var: "v".into(),
    };
    let free = ExecConfig::auto().batch_size(32);
    let (rows_free, m_free) = run(&plan, &cat, &free).unwrap();
    assert_eq!(rows_free.len(), 300);
    assert!(
        m_free.peak_resident_rows >= 300,
        "the buffered set is visible in the gauge"
    );
    let (rows_tight, m_tight) = run(&plan, &cat, &free.memory_budget(32)).unwrap();
    assert_eq!(multiset(rows_free), multiset(rows_tight));
    assert_eq!(
        m_tight.rows_spilled,
        300 - 32,
        "everything past the budget spilled"
    );
    assert!(
        m_tight.peak_resident_rows <= 32 + 32,
        "peak {} exceeds budget + one batch",
        m_tight.peak_resident_rows
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Differential: for random inputs, budgets, batch sizes, and join
    /// algorithms, budgeted execution returns exactly the unbounded rows.
    #[test]
    fn budget_never_changes_results(
        x in prop::collection::vec((0i64..16, 0i64..6), 0..48),
        y in prop::collection::vec((0i64..6, 0i64..16), 0..48),
        budget in 1usize..24,
        bs_i in 0usize..3,
        algo_i in 0usize..2,
    ) {
        let bs = [1usize, 7, 64][bs_i];
        let algo = [JoinAlgo::Hash, JoinAlgo::SortMerge][algo_i];
        let cat = catalog(&x, &y);
        for (name, plan) in breaker_corpus() {
            let free = ExecConfig::with_join_algo(algo).batch_size(bs);
            let (rows_free, _) = run(&plan, &cat, &free).unwrap();
            let (rows_tight, _) = run(&plan, &cat, &free.memory_budget(budget)).unwrap();
            prop_assert_eq!(
                multiset(rows_free),
                multiset(rows_tight),
                "{}: budget {} diverged", name, budget
            );
        }
    }
}
