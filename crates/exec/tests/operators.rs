//! Cross-operator integration tests for the executor: pipelines that
//! combine grouping, unnesting, outerjoins and aggregation, plus
//! differential checks of the three join algorithms on randomized inputs.

use proptest::prelude::*;
use std::collections::BTreeSet;
use tmql_algebra::{AggFn, CmpOp, Env, Plan, ScalarExpr as E};
use tmql_exec::{run, run_values, ExecConfig, JoinAlgo};
use tmql_model::{Record, Value};
use tmql_storage::{table::int_table, Catalog};

fn catalog(x: &[(i64, i64)], y: &[(i64, i64)]) -> Catalog {
    let mut cat = Catalog::new();
    let xr: Vec<Vec<i64>> = x.iter().map(|(a, b)| vec![*a, *b]).collect();
    let yr: Vec<Vec<i64>> = y.iter().map(|(b, c)| vec![*b, *c]).collect();
    cat.register(int_table(
        "X",
        &["a", "b"],
        &xr.iter().map(Vec::as_slice).collect::<Vec<_>>(),
    ))
    .unwrap();
    cat.register(int_table(
        "Y",
        &["b", "c"],
        &yr.iter().map(Vec::as_slice).collect::<Vec<_>>(),
    ))
    .unwrap();
    cat
}

#[test]
fn nest_join_then_aggregate_pipeline() {
    // For each x: the count of its matches, computed from the nest join's
    // set-valued label (no GROUP BY needed — the paper's point).
    let cat = catalog(&[(1, 1), (2, 1), (3, 9)], &[(1, 10), (1, 11)]);
    let plan = Plan::scan("X", "x")
        .nest_join(
            Plan::scan("Y", "y"),
            E::eq(E::path("x", &["b"]), E::path("y", &["b"])),
            E::path("y", &["c"]),
            "cs",
        )
        .map(
            E::Tuple(vec![
                ("a".into(), E::path("x", &["a"])),
                ("n".into(), E::agg(AggFn::Count, E::var("cs"))),
            ]),
            "out",
        );
    let vals = run_values(&plan, &cat, &ExecConfig::auto()).unwrap();
    let expect: BTreeSet<Value> = [
        Value::tuple([("a", Value::Int(1)), ("n", Value::Int(2))]),
        Value::tuple([("a", Value::Int(2)), ("n", Value::Int(2))]),
        Value::tuple([("a", Value::Int(3)), ("n", Value::Int(0))]), // dangling → 0
    ]
    .into_iter()
    .collect();
    assert_eq!(vals, expect);
}

#[test]
fn outerjoin_nulls_flow_through_group_agg() {
    // GROUP BY over an outerjoin: NULL payloads participate in COUNT of
    // rows (relational COUNT(*) semantics) — the machinery the GW fix
    // composes from.
    let cat = catalog(&[(1, 1), (2, 9)], &[(1, 10)]);
    let plan = Plan::GroupAgg {
        input: Box::new(Plan::LeftOuterJoin {
            left: Box::new(Plan::scan("X", "x")),
            right: Box::new(Plan::scan("Y", "y")),
            pred: E::eq(E::path("x", &["b"]), E::path("y", &["b"])),
        }),
        keys: vec![("a".into(), E::path("x", &["a"]))],
        aggs: vec![
            ("rows".into(), AggFn::Count, E::var("y")),
            ("maxc".into(), AggFn::Max, E::path("y", &["c"])),
        ],
        var: "g".into(),
    };
    let (rows, _) = run(&plan, &cat, &ExecConfig::auto()).unwrap();
    assert_eq!(rows.len(), 2);
    let by_a = |a: i64| {
        rows.iter()
            .map(|r| r.get("g").unwrap().as_tuple().unwrap())
            .find(|g| g.get("a").unwrap() == &Value::Int(a))
            .unwrap()
            .clone()
    };
    assert_eq!(by_a(1).get("maxc").unwrap(), &Value::Int(10));
    // Dangling x=2: one NULL-extended row; MAX over {NULL} is NULL.
    assert!(by_a(2).get("maxc").unwrap().is_null());
}

#[test]
fn nest_unnest_group_roundtrip_via_plans() {
    let cat = catalog(&[(1, 1), (2, 1), (3, 2)], &[]);
    // ν by b, then μ back: loses nothing (no empty groups arise from ν).
    let nested = Plan::Nest {
        input: Box::new(Plan::scan("X", "x")),
        keys: vec![],
        value: E::var("x"),
        label: "xs".into(),
        star: false,
    };
    let back = Plan::Unnest {
        input: Box::new(nested),
        expr: E::var("xs"),
        elem_var: "x".into(),
        drop_vars: vec!["xs".into()],
    };
    let orig = run_values(&Plan::scan("X", "x"), &cat, &ExecConfig::auto()).unwrap();
    let round = run_values(&back, &cat, &ExecConfig::auto()).unwrap();
    assert_eq!(orig, round);
}

#[test]
fn env_depth_is_preserved_across_failures() {
    // An erroring plan must not poison the shared Env (regression guard
    // for the push/pop discipline in the join operators).
    let cat = catalog(&[(1, 1)], &[(1, 10)]);
    let bad = Plan::scan("X", "x").join(
        Plan::scan("Y", "y"),
        // y.c + "zzz" type-errors at runtime.
        E::eq(
            E::path("x", &["b"]),
            E::Arith(
                tmql_algebra::ArithOp::Add,
                Box::new(E::path("y", &["c"])),
                Box::new(E::lit("zzz")),
            ),
        ),
    );
    let phys = tmql_exec::lower(&bad, &cat, &ExecConfig::auto()).unwrap();
    let mut ctx = tmql_exec::ExecContext::new(&cat);
    let env = Env::new();
    assert!(tmql_exec::execute(&phys, &mut ctx, &env).is_err());
    assert!(env.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// All three algorithms agree for every join kind on random inputs —
    /// the "simple modification of any common join implementation method"
    /// claim, tested at the operator level through the planner.
    #[test]
    fn join_algorithms_agree(
        x in prop::collection::vec((0i64..8, 0i64..5), 0..12),
        y in prop::collection::vec((0i64..5, 0i64..8), 0..12),
    ) {
        let cat = catalog(&x, &y);
        let pred = E::eq(E::path("x", &["b"]), E::path("y", &["b"]));
        let plans = [
            Plan::scan("X", "x").join(Plan::scan("Y", "y"), pred.clone()),
            Plan::scan("X", "x").semi_join(Plan::scan("Y", "y"), pred.clone()),
            Plan::scan("X", "x").anti_join(Plan::scan("Y", "y"), pred.clone()),
            Plan::LeftOuterJoin {
                left: Box::new(Plan::scan("X", "x")),
                right: Box::new(Plan::scan("Y", "y")),
                pred: pred.clone(),
            },
            Plan::scan("X", "x").nest_join(
                Plan::scan("Y", "y"),
                pred,
                E::path("y", &["c"]),
                "cs",
            ),
        ];
        for plan in &plans {
            let nl = run_values(plan, &cat, &ExecConfig::with_join_algo(JoinAlgo::NestedLoop))
                .unwrap();
            let h = run_values(plan, &cat, &ExecConfig::with_join_algo(JoinAlgo::Hash)).unwrap();
            let m = run_values(plan, &cat, &ExecConfig::with_join_algo(JoinAlgo::SortMerge))
                .unwrap();
            prop_assert_eq!(&nl, &h);
            prop_assert_eq!(&nl, &m);
        }
    }

    /// Nest join output cardinality always equals |left| and the union of
    /// its nested sets is exactly the semijoin-matched image.
    #[test]
    fn nest_join_invariants(
        x in prop::collection::vec((0i64..8, 0i64..5), 0..10),
        y in prop::collection::vec((0i64..5, 0i64..8), 0..10),
    ) {
        let cat = catalog(&x, &y);
        let pred = E::eq(E::path("x", &["b"]), E::path("y", &["b"]));
        let nj = Plan::scan("X", "x").nest_join(
            Plan::scan("Y", "y"),
            pred.clone(),
            E::path("y", &["c"]),
            "cs",
        );
        let (rows, _) = run(&nj, &cat, &ExecConfig::auto()).unwrap();
        prop_assert_eq!(rows.len(), cat.table("X").unwrap().len());
        // A row's set is empty iff the row is antijoin-dangling.
        let anti = run_values(
            &Plan::scan("X", "x").anti_join(Plan::scan("Y", "y"), pred),
            &cat,
            &ExecConfig::auto(),
        ).unwrap();
        for r in &rows {
            let is_empty = r.get("cs").unwrap().as_set().unwrap().is_empty();
            let x_val = r.get("x").unwrap().clone();
            prop_assert_eq!(is_empty, anti.contains(&x_val), "{}", x_val);
        }
    }

    /// Filter-then-join equals join-then-filter (pushdown soundness at the
    /// physical level).
    #[test]
    fn pushdown_physical_equivalence(
        x in prop::collection::vec((0i64..8, 0i64..5), 0..10),
        y in prop::collection::vec((0i64..5, 0i64..8), 0..10),
        lim in 0i64..8,
    ) {
        let cat = catalog(&x, &y);
        let jp = E::eq(E::path("x", &["b"]), E::path("y", &["b"]));
        let fp = E::cmp(CmpOp::Lt, E::path("x", &["a"]), E::lit(lim));
        let early = Plan::scan("X", "x")
            .select(fp.clone())
            .join(Plan::scan("Y", "y"), jp.clone());
        let late = Plan::scan("X", "x").join(Plan::scan("Y", "y"), jp).select(fp);
        prop_assert_eq!(
            run_values(&early, &cat, &ExecConfig::auto()).unwrap(),
            run_values(&late, &cat, &ExecConfig::auto()).unwrap()
        );
    }
}

#[test]
fn comparisons_unit_is_one_predicate_evaluation() {
    // The documented unit of `Metrics::comparisons` (see metrics.rs): one
    // comparison = one predicate evaluation against one candidate.
    let x: Vec<(i64, i64)> = (0..7).map(|i| (i, i % 2)).collect();
    let y: Vec<(i64, i64)> = (0..5).map(|i| (i % 2, i)).collect();
    let cat = catalog(&x, &y);

    // Filter: one comparison PER INPUT ROW, match or not.
    let filter = Plan::scan("X", "x").select(E::cmp(CmpOp::Lt, E::path("x", &["a"]), E::lit(3i64)));
    let (_, m) = run(&filter, &cat, &ExecConfig::auto()).unwrap();
    assert_eq!(m.comparisons, 7, "Filter: |X| evaluations");

    // Nested-loop join: one comparison PER (LEFT, RIGHT) PAIR.
    let join = Plan::scan("X", "x").join(
        Plan::scan("Y", "y"),
        E::cmp(CmpOp::Lt, E::path("x", &["b"]), E::path("y", &["c"])),
    );
    let (_, m) = run(
        &join,
        &cat,
        &ExecConfig::with_join_algo(JoinAlgo::NestedLoop),
    )
    .unwrap();
    assert_eq!(m.comparisons, 7 * 5, "NlJoin: |X|·|Y| evaluations");
}

#[test]
fn metrics_distinguish_algorithms() {
    let rows: Vec<(i64, i64)> = (0..50).map(|i| (i, i % 10)).collect();
    let yrows: Vec<(i64, i64)> = (0..50).map(|i| (i % 10, i)).collect();
    let cat = catalog(&rows, &yrows);
    let plan = Plan::scan("X", "x").join(
        Plan::scan("Y", "y"),
        E::eq(E::path("x", &["b"]), E::path("y", &["b"])),
    );
    let work = |algo| {
        let (_, m) = run(&plan, &cat, &ExecConfig::with_join_algo(algo)).unwrap();
        m
    };
    let nl = work(JoinAlgo::NestedLoop);
    let h = work(JoinAlgo::Hash);
    let sm = work(JoinAlgo::SortMerge);
    assert_eq!(nl.comparisons, 2500, "NL compares every pair");
    assert_eq!(h.hash_build_rows, 50);
    assert_eq!(h.hash_probes, 50);
    assert_eq!(sm.rows_sorted, 100);
    assert!(h.comparisons < nl.comparisons);
}

#[test]
fn apply_env_visibility() {
    // The Apply exposes outer bindings to arbitrary depth of the subplan.
    let cat = catalog(&[(1, 1)], &[(1, 10), (1, 11)]);
    let sub = Plan::scan("Y", "y")
        .select(E::eq(E::path("x", &["b"]), E::path("y", &["b"])))
        .map(
            E::Arith(
                tmql_algebra::ArithOp::Add,
                Box::new(E::path("y", &["c"])),
                Box::new(E::path("x", &["a"])), // outer var in the Map too
            ),
            "v",
        );
    let plan = Plan::scan("X", "x").apply(sub, "z").map(E::var("z"), "out");
    let vals = run_values(&plan, &cat, &ExecConfig::auto()).unwrap();
    let expect: BTreeSet<Value> = [Value::set([Value::Int(11), Value::Int(12)])]
        .into_iter()
        .collect();
    assert_eq!(vals, expect);
    let _ = Record::empty();
}
