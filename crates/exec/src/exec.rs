//! The execution driver: builds the streaming operator tree for a physical
//! plan and drains it.
//!
//! The old recursive `exec_inner` interpreter materialized a full
//! `Vec<Record>` at every plan node; it is gone. Execution now flows
//! through the Volcano-style [`crate::op::operator`] tree batch-at-a-time,
//! and [`execute`] is the thin collect-all wrapper kept for API
//! compatibility (differential tests and the facade consume row vectors).

use tmql_algebra::{eval, Env, ScalarExpr};
use tmql_model::{Record, Result, Value};
use tmql_storage::spill::RunWriter;
use tmql_storage::{Catalog, SpillDir};

use crate::config::ExecConfig;
use crate::metrics::Metrics;
use crate::op::operator;

/// Execution context: the catalog, accumulated metrics, and the streaming
/// knobs shared by every operator in the tree.
#[derive(Debug)]
pub struct ExecContext<'a> {
    /// Stored tables.
    pub catalog: &'a Catalog,
    /// Work counters, accumulated across the whole plan (including
    /// correlated subquery executions).
    pub metrics: Metrics,
    batch_size: usize,
    threads: usize,
    resident_rows: u64,
    memory_budget_rows: Option<usize>,
    /// Scratch directory for spill runs, created on first spill and
    /// removed (with all runs) when the context drops.
    spill_dir: Option<SpillDir>,
    /// Buffer-pool counters at context creation (persistent catalogs
    /// only); [`ExecContext::sync_pool_metrics`] diffs against this to
    /// report the query's own page traffic.
    pool_base: Option<tmql_storage::PoolStats>,
    collect_timing: bool,
}

impl<'a> ExecContext<'a> {
    /// Fresh context over a catalog with the default batch size.
    pub fn new(catalog: &'a Catalog) -> ExecContext<'a> {
        ExecContext::with_config(catalog, &ExecConfig::default())
    }

    /// Fresh context with explicit execution configuration.
    pub fn with_config(catalog: &'a Catalog, config: &ExecConfig) -> ExecContext<'a> {
        ExecContext {
            metrics: Metrics::new(),
            batch_size: config.batch_size.max(1),
            threads: config.threads.max(1),
            resident_rows: 0,
            memory_budget_rows: config.memory_budget_rows,
            spill_dir: None,
            pool_base: catalog.pool_stats(),
            collect_timing: config.collect_timing,
            catalog,
        }
    }

    /// Whether per-operator wall-clock spans are being collected (see
    /// [`ExecConfig::collect_timing`]).
    pub fn collect_timing(&self) -> bool {
        self.collect_timing
    }

    /// Fold the buffer pool's page traffic since this context was created
    /// into [`Metrics::pool_hits`] / [`Metrics::pool_misses`]. Called by
    /// the execution driver when a plan finishes; a no-op for in-memory
    /// catalogs.
    pub fn sync_pool_metrics(&mut self) {
        if let (Some(base), Some(now)) = (self.pool_base, self.catalog.pool_stats()) {
            self.metrics.pool_hits = now.hits.saturating_sub(base.hits);
            self.metrics.pool_misses = now.misses.saturating_sub(base.misses);
        }
    }

    /// Rows per streaming batch (≥ 1).
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Worker threads for parallel waves (≥ 1; `1` = serial execution).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The per-breaker resident-row budget, if one is configured.
    pub fn memory_budget_rows(&self) -> Option<usize> {
        self.memory_budget_rows
    }

    /// True iff a budget is configured and `n` resident rows exceed it.
    pub(crate) fn over_budget(&self, n: usize) -> bool {
        self.memory_budget_rows.is_some_and(|b| n > b)
    }

    /// Open `k` fresh spill runs in this query's scratch directory
    /// (creating the directory on first use).
    pub(crate) fn spill_runs(&mut self, k: usize) -> Result<Vec<RunWriter>> {
        if self.spill_dir.is_none() {
            self.spill_dir = Some(SpillDir::create()?);
        }
        let dir = self.spill_dir.as_ref().expect("created above");
        (0..k).map(|_| dir.create_run()).collect()
    }

    /// Rows currently resident in operator state (0 after a clean close).
    pub fn resident_rows(&self) -> u64 {
        self.resident_rows
    }

    /// Record `n` rows entering operator state (build tables, sort/group
    /// buffers, dedup sets, carry queues) and bump the peak gauge.
    pub(crate) fn resident_acquire(&mut self, n: usize) {
        self.resident_rows += n as u64;
        if self.resident_rows > self.metrics.peak_resident_rows {
            self.metrics.peak_resident_rows = self.resident_rows;
        }
    }

    /// Record `n` rows leaving operator state.
    pub(crate) fn resident_release(&mut self, n: usize) {
        self.resident_rows = self.resident_rows.saturating_sub(n as u64);
    }
}

/// Execute a physical plan, collecting all result rows. `env` carries
/// correlation bindings (outer rows of enclosing `Apply` operators).
///
/// This is the compatibility wrapper over the streaming executor: the
/// *collection* here is the query result, not an intermediate, so it is
/// excluded from [`Metrics::peak_resident_rows`].
pub fn execute(
    plan: &crate::PhysPlan,
    ctx: &mut ExecContext<'_>,
    env: &Env,
) -> Result<Vec<Record>> {
    execute_profiled(plan, ctx, env).map(|(rows, _)| rows)
}

/// Execute a physical plan and also return the per-operator profile: the
/// operator tree annotated with each operator's emitted rows and batches.
pub fn execute_profiled(
    plan: &crate::PhysPlan,
    ctx: &mut ExecContext<'_>,
    env: &Env,
) -> Result<(Vec<Record>, String)> {
    let (rows, profile) = execute_collect(plan, ctx, env, None)?;
    Ok((rows, operator::render_profile(&profile)))
}

/// Execute a physical plan and return structured per-operator profiles.
/// `est` supplies estimated output rows per operator in executed-tree
/// pre-order (see [`crate::cost::Estimator::exec_order_rows_phys`]); when
/// present, each profile entry carries estimated next to actual rows so
/// callers can render them side by side and compute q-error.
pub fn execute_collect(
    plan: &crate::PhysPlan,
    ctx: &mut ExecContext<'_>,
    env: &Env,
    est: Option<&[f64]>,
) -> Result<(Vec<Record>, Vec<operator::OpProfile>)> {
    let mut root = operator::build(plan, env);
    let result = root
        .open_timed(ctx)
        .and_then(|()| operator::drain(&mut root, ctx));
    root.close_timed(ctx);
    ctx.sync_pool_metrics();
    let rows = result?;
    let profile = operator::collect_profile(root.as_ref(), est);
    Ok((rows, profile))
}

/// Lower a logical plan with `config` and execute it, returning rows only.
pub fn execute_logical(
    plan: &tmql_algebra::Plan,
    catalog: &Catalog,
    config: &ExecConfig,
) -> Result<Vec<Record>> {
    let phys = crate::planner::lower(plan, catalog, config)?;
    let mut ctx = ExecContext::with_config(catalog, config);
    execute(&phys, &mut ctx, &Env::new())
}

/// Evaluate a whole scalar expression tree as a constant (no tables); used
/// for constant subqueries.
pub fn eval_const(expr: &ScalarExpr) -> Result<Value> {
    eval(expr, &mut Env::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::PhysPlan;
    use tmql_algebra::ScalarExpr as E;
    use tmql_storage::table::int_table;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.register(int_table(
            "X",
            &["a", "b"],
            &[&[1, 1], &[2, 1], &[3, 3], &[4, 9]],
        ))
        .unwrap();
        cat.register(int_table("Y", &["b", "c"], &[&[1, 10], &[1, 11], &[3, 30]]))
            .unwrap();
        cat
    }

    #[test]
    fn scan_filter_map() {
        let cat = catalog();
        let plan = PhysPlan::Map {
            input: Box::new(PhysPlan::Filter {
                input: Box::new(PhysPlan::ScanTable {
                    table: "X".into(),
                    var: "x".into(),
                }),
                pred: E::cmp(tmql_algebra::CmpOp::Gt, E::path("x", &["a"]), E::lit(2i64)),
            }),
            expr: E::path("x", &["a"]),
            var: "v".into(),
        };
        let mut ctx = ExecContext::new(&cat);
        let rows = execute(&plan, &mut ctx, &Env::new()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(ctx.metrics.rows_scanned, 4);
    }

    #[test]
    fn map_dedups() {
        let cat = catalog();
        // Project X onto b: values {1, 1, 3, 9} → 3 distinct.
        let plan = PhysPlan::Map {
            input: Box::new(PhysPlan::ScanTable {
                table: "X".into(),
                var: "x".into(),
            }),
            expr: E::path("x", &["b"]),
            var: "v".into(),
        };
        let mut ctx = ExecContext::new(&cat);
        let rows = execute(&plan, &mut ctx, &Env::new()).unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn apply_is_a_real_nested_loop() {
        let cat = catalog();
        // For each x: { y.c | y ∈ Y, x.b = y.b }
        let sub = PhysPlan::Map {
            input: Box::new(PhysPlan::Filter {
                input: Box::new(PhysPlan::ScanTable {
                    table: "Y".into(),
                    var: "y".into(),
                }),
                pred: E::eq(E::path("x", &["b"]), E::path("y", &["b"])),
            }),
            expr: E::path("y", &["c"]),
            var: "v".into(),
        };
        let plan = PhysPlan::Apply {
            input: Box::new(PhysPlan::ScanTable {
                table: "X".into(),
                var: "x".into(),
            }),
            subquery: Box::new(sub),
            label: "z".into(),
            bindings: None,
        };
        let mut ctx = ExecContext::new(&cat);
        let rows = execute(&plan, &mut ctx, &Env::new()).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(ctx.metrics.subquery_invocations, 4);
        // Uncached: every outer row drains the (reused) inner tree.
        assert_eq!(ctx.metrics.apply_invocations, 4);
        assert_eq!(ctx.metrics.apply_cache_hits, 0);
        // x=(1,1): z = {10, 11}; x=(4,9): z = ∅ (dangling preserved!).
        let z1 = rows[0].get("z").unwrap().as_set().unwrap().len();
        assert_eq!(z1, 2);
        let z4 = rows[3].get("z").unwrap();
        assert_eq!(z4, &Value::empty_set());
    }

    #[test]
    fn apply_memoizes_per_distinct_binding() {
        let cat = catalog();
        // X.b values are {1, 1, 3, 9}: 3 distinct bindings over 4 rows.
        let sub = PhysPlan::Map {
            input: Box::new(PhysPlan::Filter {
                input: Box::new(PhysPlan::ScanTable {
                    table: "Y".into(),
                    var: "y".into(),
                }),
                pred: E::eq(E::path("x", &["b"]), E::path("y", &["b"])),
            }),
            expr: E::path("y", &["c"]),
            var: "v".into(),
        };
        let mk = |bindings| PhysPlan::Apply {
            input: Box::new(PhysPlan::ScanTable {
                table: "X".into(),
                var: "x".into(),
            }),
            subquery: Box::new(sub.clone()),
            label: "z".into(),
            bindings,
        };
        let cached = mk(Some(vec![E::path("x", &["b"])]));
        let mut ctx = ExecContext::new(&cat);
        let rows = execute(&cached, &mut ctx, &Env::new()).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(ctx.metrics.subquery_invocations, 4, "logical count stays");
        assert_eq!(ctx.metrics.apply_invocations, 3, "one drain per binding");
        assert_eq!(ctx.metrics.apply_cache_hits, 1);
        // Same rows as the uncached run.
        let mut ctx2 = ExecContext::new(&cat);
        let baseline = execute(&mk(None), &mut ctx2, &Env::new()).unwrap();
        assert_eq!(rows, baseline);
        // The resident gauge returns to zero once the cache is released.
        assert_eq!(ctx.resident_rows(), 0);
        assert!(ctx.metrics.peak_resident_rows > 0);
    }

    #[test]
    fn apply_streams_outer_rows_per_batch() {
        // With batch_size=2 over 4 outer rows, the Apply sees two input
        // batches and the outer scan is never materialized whole: its
        // carry-free pipeline keeps resident rows well below 4 outer + all
        // subquery intermediates at once.
        let cat = catalog();
        let sub = PhysPlan::Filter {
            input: Box::new(PhysPlan::ScanTable {
                table: "Y".into(),
                var: "y".into(),
            }),
            pred: E::eq(E::path("x", &["b"]), E::path("y", &["b"])),
        };
        let plan = PhysPlan::Apply {
            input: Box::new(PhysPlan::ScanTable {
                table: "X".into(),
                var: "x".into(),
            }),
            subquery: Box::new(sub),
            label: "z".into(),
            bindings: None,
        };
        let mut ctx = ExecContext::with_config(&cat, &ExecConfig::default().batch_size(2));
        let (rows, profile) = execute_profiled(&plan, &mut ctx, &Env::new()).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(ctx.metrics.subquery_invocations, 4);
        // Timing is on by default, so a ` time=…` suffix follows.
        assert!(profile.contains("Apply [rows=4 batches=2"), "{profile}");
    }

    #[test]
    fn scan_expr_iterates_correlated_sets() {
        let cat = catalog();
        let plan = PhysPlan::ScanExpr {
            expr: E::var("zs"),
            var: "v".into(),
        };
        let mut env = Env::new();
        env.push("zs", Value::set([Value::Int(1), Value::Int(2)]));
        let mut ctx = ExecContext::new(&cat);
        let rows = execute(&plan, &mut ctx, &env).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn profile_tree_matches_plan_shape() {
        let cat = catalog();
        let plan = PhysPlan::Filter {
            input: Box::new(PhysPlan::ScanTable {
                table: "X".into(),
                var: "x".into(),
            }),
            pred: E::cmp(tmql_algebra::CmpOp::Gt, E::path("x", &["a"]), E::lit(0i64)),
        };
        let mut ctx = ExecContext::new(&cat);
        let (_, profile) = execute_profiled(&plan, &mut ctx, &Env::new()).unwrap();
        assert!(profile.starts_with("Filter"), "{profile}");
        assert!(profile.contains("  Scan(X)"), "{profile}");
    }

    #[test]
    fn eval_const_subquery() {
        let v = eval_const(&E::agg(
            tmql_algebra::AggFn::Count,
            E::SetLit(vec![E::lit(1i64)]),
        ))
        .unwrap();
        assert_eq!(v, Value::Int(1));
    }

    /// Rows as a multiset-insensitive, order-insensitive fingerprint.
    fn row_set(rows: &[Record]) -> std::collections::BTreeSet<String> {
        rows.iter().map(|r| format!("{r:?}")).collect()
    }

    #[test]
    fn index_scan_agrees_with_filter_and_counts_probes() {
        let mut cat = catalog();
        cat.create_index("X", "b").unwrap();
        let pred = E::eq(E::path("x", &["b"]), E::lit(1i64));
        let scan = PhysPlan::Filter {
            input: Box::new(PhysPlan::ScanTable {
                table: "X".into(),
                var: "x".into(),
            }),
            pred: pred.clone(),
        };
        let probe = PhysPlan::IndexScan {
            table: "X".into(),
            var: "x".into(),
            attr: "b".into(),
            eq: Some(E::lit(1i64)),
            lo: None,
            hi: None,
            pred: pred.clone(),
        };
        let mut sctx = ExecContext::new(&cat);
        let expected = execute(&scan, &mut sctx, &Env::new()).unwrap();
        let mut ictx = ExecContext::new(&cat);
        let got = execute(&probe, &mut ictx, &Env::new()).unwrap();
        assert_eq!(row_set(&got), row_set(&expected));
        assert_eq!(got.len(), 2, "X has two rows with b=1");
        assert_eq!(ictx.metrics.index_probes, 1);
        assert_eq!(ictx.metrics.index_hits, 2, "only candidates are fetched");
        assert_eq!(ictx.metrics.rows_scanned, 0, "probes are not scans");

        // Range variant: b >= 3 selects the last two rows.
        let rpred = E::cmp(tmql_algebra::CmpOp::Ge, E::path("x", &["b"]), E::lit(3i64));
        let rprobe = PhysPlan::IndexScan {
            table: "X".into(),
            var: "x".into(),
            attr: "b".into(),
            eq: None,
            lo: Some(E::lit(3i64)),
            hi: None,
            pred: rpred,
        };
        let mut rctx = ExecContext::new(&cat);
        let rows = execute(&rprobe, &mut rctx, &Env::new()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rctx.metrics.index_probes, 1);
    }

    #[test]
    fn index_scan_without_index_is_a_schema_error() {
        let cat = catalog();
        let probe = PhysPlan::IndexScan {
            table: "X".into(),
            var: "x".into(),
            attr: "b".into(),
            eq: Some(E::lit(1i64)),
            lo: None,
            hi: None,
            pred: E::lit(true),
        };
        let mut ctx = ExecContext::new(&cat);
        let err = execute(&probe, &mut ctx, &Env::new()).unwrap_err();
        assert!(
            matches!(err, tmql_model::ModelError::SchemaError(_)),
            "{err}"
        );
    }

    #[test]
    fn index_nl_join_agrees_with_nl_join_for_every_kind() {
        let mut cat = catalog();
        cat.create_index("Y", "b").unwrap();
        let pred = E::eq(E::path("x", &["b"]), E::path("y", &["b"]));
        let kinds = [
            crate::JoinKind::Inner,
            crate::JoinKind::Semi,
            crate::JoinKind::Anti,
            crate::JoinKind::LeftOuter {
                right_vars: vec!["y".into()],
            },
            crate::JoinKind::Nest {
                func: E::var("y"),
                label: "ys".into(),
            },
        ];
        for kind in kinds {
            let nl = PhysPlan::NlJoin {
                left: Box::new(PhysPlan::ScanTable {
                    table: "X".into(),
                    var: "x".into(),
                }),
                right: Box::new(PhysPlan::ScanTable {
                    table: "Y".into(),
                    var: "y".into(),
                }),
                pred: pred.clone(),
                kind: kind.clone(),
            };
            let inl = PhysPlan::IndexNLJoin {
                left: Box::new(PhysPlan::ScanTable {
                    table: "X".into(),
                    var: "x".into(),
                }),
                right_table: "Y".into(),
                right_var: "y".into(),
                attr: "b".into(),
                key: E::path("x", &["b"]),
                pred: pred.clone(),
                kind: kind.clone(),
            };
            let mut nctx = ExecContext::new(&cat);
            let expected = execute(&nl, &mut nctx, &Env::new()).unwrap();
            let mut ictx = ExecContext::new(&cat);
            let got = execute(&inl, &mut ictx, &Env::new()).unwrap();
            assert_eq!(
                row_set(&got),
                row_set(&expected),
                "kind {kind:?} diverged from the nested-loop reference"
            );
            assert_eq!(
                ictx.metrics.index_probes, 4,
                "one probe per outer row (kind {kind:?})"
            );
        }
    }
}
