//! The physical plan interpreter.

use std::collections::BTreeSet;

use tmql_algebra::{eval, eval_predicate, Env, Plan, ScalarExpr};
use tmql_model::{Record, Result, Value};
use tmql_storage::Catalog;

use crate::config::ExecConfig;
use crate::metrics::Metrics;
use crate::op;
use crate::physical::PhysPlan;

/// Execution context: the catalog plus accumulated metrics.
#[derive(Debug)]
pub struct ExecContext<'a> {
    /// Stored tables.
    pub catalog: &'a Catalog,
    /// Work counters, accumulated across the whole plan (including
    /// correlated subquery executions).
    pub metrics: Metrics,
}

impl<'a> ExecContext<'a> {
    /// Fresh context over a catalog.
    pub fn new(catalog: &'a Catalog) -> ExecContext<'a> {
        ExecContext { catalog, metrics: Metrics::new() }
    }
}

/// Execute a physical plan. `env` carries correlation bindings (outer rows
/// of enclosing `Apply` operators); it is restored before returning.
pub fn execute(plan: &PhysPlan, ctx: &mut ExecContext<'_>, env: &Env) -> Result<Vec<Record>> {
    let mut env = env.clone();
    exec_inner(plan, ctx, &mut env)
}

fn exec_inner(plan: &PhysPlan, ctx: &mut ExecContext<'_>, env: &mut Env) -> Result<Vec<Record>> {
    match plan {
        PhysPlan::ScanTable { table, var } => {
            let t = ctx.catalog.table(table)?;
            ctx.metrics.rows_scanned += t.len() as u64;
            let mut out = Vec::with_capacity(t.len());
            for row in t.rows() {
                out.push(Record::new([(var.clone(), Value::Tuple(row.clone()))])?);
            }
            Ok(out)
        }
        PhysPlan::ScanExpr { expr, var } => {
            let set = eval(expr, env)?;
            let set = set.as_set()?.clone();
            ctx.metrics.rows_scanned += set.len() as u64;
            let mut out = Vec::with_capacity(set.len());
            for item in set {
                out.push(Record::new([(var.clone(), item)])?);
            }
            Ok(out)
        }
        PhysPlan::Filter { input, pred } => {
            let rows = exec_inner(input, ctx, env)?;
            let mut out = Vec::new();
            for row in rows {
                ctx.metrics.comparisons += 1;
                let keep = op::with_row(env, &row, |e| eval_predicate(pred, e))?;
                if keep {
                    out.push(row);
                }
            }
            ctx.metrics.rows_emitted += out.len() as u64;
            Ok(out)
        }
        PhysPlan::Map { input, expr, var } => {
            let rows = exec_inner(input, ctx, env)?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let v = op::with_row(env, &row, |e| eval(expr, e))?;
                out.push(Record::new([(var.clone(), v)])?);
            }
            let out = op::dedup(out);
            ctx.metrics.rows_emitted += out.len() as u64;
            Ok(out)
        }
        PhysPlan::Extend { input, expr, var } => {
            let rows = exec_inner(input, ctx, env)?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let v = op::with_row(env, &row, |e| eval(expr, e))?;
                out.push(row.extend_field(var, v)?);
            }
            ctx.metrics.rows_emitted += out.len() as u64;
            Ok(out)
        }
        PhysPlan::Project { input, vars } => {
            let rows = exec_inner(input, ctx, env)?;
            let var_refs: Vec<&str> = vars.iter().map(String::as_str).collect();
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                out.push(row.project(&var_refs)?);
            }
            let out = op::dedup(out);
            ctx.metrics.rows_emitted += out.len() as u64;
            Ok(out)
        }
        PhysPlan::NlJoin { left, right, pred, kind } => {
            let l = exec_inner(left, ctx, env)?;
            let r = exec_inner(right, ctx, env)?;
            op::nl::join(&l, &r, pred, kind, env, &mut ctx.metrics)
        }
        PhysPlan::HashJoin { left, right, left_keys, right_keys, residual, kind } => {
            let l = exec_inner(left, ctx, env)?;
            let r = exec_inner(right, ctx, env)?;
            op::hash::join(&l, &r, left_keys, right_keys, residual.as_ref(), kind, env, &mut ctx.metrics)
        }
        PhysPlan::MergeJoin { left, right, left_keys, right_keys, residual, kind } => {
            let l = exec_inner(left, ctx, env)?;
            let r = exec_inner(right, ctx, env)?;
            op::merge::join(&l, &r, left_keys, right_keys, residual.as_ref(), kind, env, &mut ctx.metrics)
        }
        PhysPlan::Nest { input, keys, value, label, star } => {
            let rows = exec_inner(input, ctx, env)?;
            op::group::nest(&rows, keys, value, label, *star, env, &mut ctx.metrics)
        }
        PhysPlan::Unnest { input, expr, elem_var, drop_vars } => {
            let rows = exec_inner(input, ctx, env)?;
            op::group::unnest(&rows, expr, elem_var, drop_vars, env, &mut ctx.metrics)
        }
        PhysPlan::GroupAgg { input, keys, aggs, var } => {
            let rows = exec_inner(input, ctx, env)?;
            op::group::group_agg(&rows, keys, aggs, var, env, &mut ctx.metrics)
        }
        PhysPlan::Apply { input, subquery, label } => {
            let rows = exec_inner(input, ctx, env)?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                env.push_row(&row);
                ctx.metrics.subquery_invocations += 1;
                let sub = exec_inner(subquery, ctx, env);
                env.pop_n(row.len());
                let sub = sub?;
                let set: BTreeSet<Value> = sub.iter().map(Plan::row_output_value).collect();
                out.push(row.extend_field(label, Value::Set(set))?);
            }
            ctx.metrics.rows_emitted += out.len() as u64;
            Ok(out)
        }
        PhysPlan::SetOp { kind, left, right, var } => {
            let l = exec_inner(left, ctx, env)?;
            let r = exec_inner(right, ctx, env)?;
            op::group::set_op(*kind, &l, &r, var, &mut ctx.metrics)
        }
    }
}

/// Lower a logical plan with `config` and execute it, returning rows only.
pub fn execute_logical(
    plan: &tmql_algebra::Plan,
    catalog: &Catalog,
    config: &ExecConfig,
) -> Result<Vec<Record>> {
    let phys = crate::planner::lower(plan, catalog, config)?;
    let mut ctx = ExecContext::new(catalog);
    execute(&phys, &mut ctx, &Env::new())
}

/// Evaluate a whole scalar expression tree as a constant (no tables); used
/// for constant subqueries.
pub fn eval_const(expr: &ScalarExpr) -> Result<Value> {
    eval(expr, &mut Env::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmql_algebra::ScalarExpr as E;
    use tmql_storage::table::int_table;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.register(int_table("X", &["a", "b"], &[&[1, 1], &[2, 1], &[3, 3], &[4, 9]])).unwrap();
        cat.register(int_table("Y", &["b", "c"], &[&[1, 10], &[1, 11], &[3, 30]])).unwrap();
        cat
    }

    #[test]
    fn scan_filter_map() {
        let cat = catalog();
        let plan = PhysPlan::Map {
            input: Box::new(PhysPlan::Filter {
                input: Box::new(PhysPlan::ScanTable { table: "X".into(), var: "x".into() }),
                pred: E::cmp(tmql_algebra::CmpOp::Gt, E::path("x", &["a"]), E::lit(2i64)),
            }),
            expr: E::path("x", &["a"]),
            var: "v".into(),
        };
        let mut ctx = ExecContext::new(&cat);
        let rows = execute(&plan, &mut ctx, &Env::new()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(ctx.metrics.rows_scanned, 4);
    }

    #[test]
    fn map_dedups() {
        let cat = catalog();
        // Project X onto b: values {1, 1, 3, 9} → 3 distinct.
        let plan = PhysPlan::Map {
            input: Box::new(PhysPlan::ScanTable { table: "X".into(), var: "x".into() }),
            expr: E::path("x", &["b"]),
            var: "v".into(),
        };
        let mut ctx = ExecContext::new(&cat);
        let rows = execute(&plan, &mut ctx, &Env::new()).unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn apply_is_a_real_nested_loop() {
        let cat = catalog();
        // For each x: { y.c | y ∈ Y, x.b = y.b }
        let sub = PhysPlan::Map {
            input: Box::new(PhysPlan::Filter {
                input: Box::new(PhysPlan::ScanTable { table: "Y".into(), var: "y".into() }),
                pred: E::eq(E::path("x", &["b"]), E::path("y", &["b"])),
            }),
            expr: E::path("y", &["c"]),
            var: "v".into(),
        };
        let plan = PhysPlan::Apply {
            input: Box::new(PhysPlan::ScanTable { table: "X".into(), var: "x".into() }),
            subquery: Box::new(sub),
            label: "z".into(),
        };
        let mut ctx = ExecContext::new(&cat);
        let rows = execute(&plan, &mut ctx, &Env::new()).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(ctx.metrics.subquery_invocations, 4);
        // x=(1,1): z = {10, 11}; x=(4,9): z = ∅ (dangling preserved!).
        let z1 = rows[0].get("z").unwrap().as_set().unwrap().len();
        assert_eq!(z1, 2);
        let z4 = rows[3].get("z").unwrap();
        assert_eq!(z4, &Value::empty_set());
    }

    #[test]
    fn scan_expr_iterates_correlated_sets() {
        let cat = catalog();
        let plan = PhysPlan::ScanExpr { expr: E::var("zs"), var: "v".into() };
        let mut env = Env::new();
        env.push("zs", Value::set([Value::Int(1), Value::Int(2)]));
        let mut ctx = ExecContext::new(&cat);
        let rows = exec_inner(&plan, &mut ctx, &mut env).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn eval_const_subquery() {
        let v = eval_const(&E::agg(tmql_algebra::AggFn::Count, E::SetLit(vec![E::lit(1i64)])))
            .unwrap();
        assert_eq!(v, Value::Int(1));
    }
}
