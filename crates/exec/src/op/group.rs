//! Grouping operators: ν / ν* (nest), μ (unnest), and relational GROUP BY.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use tmql_algebra::{eval, AggFn, Env, Plan, ScalarExpr, SetOpKind};
use tmql_model::{ModelError, Record, Result, Value};

use crate::metrics::Metrics;

use super::with_row;

/// The nest operator ν (and ν*): group rows by the values of `keys`,
/// collapsing each group to `keys ++ (label = {value(row) | row ∈ group})`.
///
/// With `star = true` (ν* of Section 6), payload values that are NULL —
/// i.e. stem from the NULL-extended side of an outerjoin — are dropped, so
/// an all-NULL group yields ∅. This is exactly the step the nest join makes
/// unnecessary.
pub fn nest(
    rows: &[Record],
    keys: &[String],
    value: &ScalarExpr,
    label: &str,
    star: bool,
    env: &mut Env,
    m: &mut Metrics,
) -> Result<Vec<Record>> {
    // Group index keyed by the key values; insertion order preserved.
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut groups: BTreeMap<Vec<Value>, (Record, BTreeSet<Value>)> = BTreeMap::new();
    for row in rows {
        let mut keyvals = Vec::with_capacity(keys.len());
        let mut key_rec = Record::empty();
        for k in keys {
            let v = row.get(k)?.clone();
            keyvals.push(v.clone());
            key_rec.push(k.clone(), v)?;
        }
        let payload = with_row(env, row, |e| eval(value, e))?;
        m.comparisons += 1;
        let entry = groups.entry(keyvals.clone()).or_insert_with(|| {
            order.push(keyvals);
            (key_rec, BTreeSet::new())
        });
        if star && payload.is_null() {
            // ν*: "mapping nested sets consisting of a NULL-tuple to the
            // empty set".
            continue;
        }
        entry.1.insert(payload);
    }
    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let (rec, set) = groups.remove(&key).expect("group recorded");
        out.push(rec.extend_field(label, Value::Set(set))?);
    }
    Ok(out)
}

/// The unnest operator μ: for each row, bind every element of the set
/// `expr(row)` to `elem_var` (dropping `drop_vars`). Rows whose set is
/// empty vanish — μ is lossy on empty sets, which is why ν and μ are not
/// mutual inverses in general.
pub fn unnest(
    rows: &[Record],
    expr: &ScalarExpr,
    elem_var: &str,
    drop_vars: &[String],
    env: &mut Env,
) -> Result<Vec<Record>> {
    let mut out = Vec::new();
    for row in rows {
        let set = with_row(env, row, |e| eval(expr, e))?;
        let set = set.as_set()?.clone();
        let mut base = row.clone();
        for d in drop_vars {
            base = base.without(d)?;
        }
        for item in set {
            out.push(base.extend_field(elem_var, item)?);
        }
    }
    Ok(out)
}

/// Relational GROUP BY with aggregates (multiset semantics over the rows of
/// each group) — the machinery Kim's algorithm and the Ganski–Wong fix are
/// built from (Section 2).
pub fn group_agg(
    rows: &[Record],
    keys: &[(String, ScalarExpr)],
    aggs: &[(String, AggFn, ScalarExpr)],
    var: &str,
    env: &mut Env,
    m: &mut Metrics,
) -> Result<Vec<Record>> {
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut groups: BTreeMap<Vec<Value>, Vec<Vec<Value>>> = BTreeMap::new();
    // groups: key values → per-agg argument value lists.
    for row in rows {
        let (keyvals, argvals) = with_row(env, row, |e| {
            let mut kv = Vec::with_capacity(keys.len());
            for (_, ke) in keys {
                kv.push(eval(ke, e)?);
            }
            let mut av = Vec::with_capacity(aggs.len());
            for (_, _, ae) in aggs {
                av.push(eval(ae, e)?);
            }
            Ok((kv, av))
        })?;
        m.comparisons += 1;
        let entry = groups.entry(keyvals.clone()).or_insert_with(|| {
            order.push(keyvals);
            vec![Vec::new(); aggs.len()]
        });
        for (i, v) in argvals.into_iter().enumerate() {
            entry[i].push(v);
        }
    }
    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let arglists = groups.remove(&key).expect("group recorded");
        let mut tup = Record::empty();
        for ((label, _), v) in keys.iter().zip(key) {
            tup.push(label.clone(), v)?;
        }
        for ((label, f, _), args) in aggs.iter().zip(arglists) {
            tup.push(label.clone(), fold_agg(*f, &args)?)?;
        }
        out.push(Record::new([(var.to_string(), Value::Tuple(tup))])?);
    }
    Ok(out)
}

/// Fold an aggregate over the multiset of group argument values.
fn fold_agg(f: AggFn, args: &[Value]) -> Result<Value> {
    match f {
        AggFn::Count => Ok(Value::Int(args.len() as i64)),
        AggFn::Sum => {
            let mut acc = Value::Int(0);
            for v in args {
                acc = acc.add(v)?;
            }
            Ok(acc)
        }
        AggFn::Min => Ok(args.iter().min().cloned().unwrap_or(Value::Null)),
        AggFn::Max => Ok(args.iter().max().cloned().unwrap_or(Value::Null)),
        AggFn::Avg => {
            if args.is_empty() {
                return Ok(Value::Null);
            }
            let mut acc = Value::Int(0);
            for v in args {
                acc = acc.add(v)?;
            }
            acc.div(&Value::Float(args.len() as f64))
        }
    }
}

/// Set operation on the output values of two row sets, rebinding to `var`.
pub fn set_op(
    kind: SetOpKind,
    left: &[Record],
    right: &[Record],
    var: &str,
    m: &mut Metrics,
) -> Result<Vec<Record>> {
    let lvals: BTreeSet<Value> = left.iter().map(Plan::row_output_value).collect();
    let rvals: BTreeSet<Value> = right.iter().map(Plan::row_output_value).collect();
    m.comparisons += (left.len() + right.len()) as u64;
    let vals: Vec<Value> = match kind {
        SetOpKind::Union => lvals.union(&rvals).cloned().collect(),
        SetOpKind::Intersect => lvals.intersection(&rvals).cloned().collect(),
        SetOpKind::Except => lvals.difference(&rvals).cloned().collect(),
    };
    let mut out = Vec::with_capacity(vals.len());
    for v in vals {
        out.push(
            Record::new([(var.to_string(), v)])
                .map_err(|e| ModelError::SchemaError(e.to_string()))?,
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmql_algebra::ScalarExpr as E;

    fn row(pairs: &[(&str, Value)]) -> Record {
        Record::new(pairs.iter().map(|(l, v)| (l.to_string(), v.clone()))).unwrap()
    }

    #[test]
    fn nest_groups_and_keeps_keys() {
        let rows = vec![
            row(&[("b", Value::Int(1)), ("a", Value::Int(10))]),
            row(&[("b", Value::Int(1)), ("a", Value::Int(11))]),
            row(&[("b", Value::Int(2)), ("a", Value::Int(12))]),
        ];
        let out = nest(
            &rows,
            &["b".to_string()],
            &E::var("a"),
            "as",
            false,
            &mut Env::new(),
            &mut Metrics::new(),
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].get("as").unwrap().as_set().unwrap().len(), 2);
        assert_eq!(out[1].get("as").unwrap().as_set().unwrap().len(), 1);
    }

    #[test]
    fn nest_star_elides_nulls() {
        // An outerjoined dangling row: payload NULL.
        let rows = vec![
            row(&[("x", Value::Int(1)), ("y", Value::Null)]),
            row(&[("x", Value::Int(2)), ("y", Value::Int(7))]),
        ];
        let star = nest(
            &rows,
            &["x".to_string()],
            &E::var("y"),
            "ys",
            true,
            &mut Env::new(),
            &mut Metrics::new(),
        )
        .unwrap();
        assert_eq!(star[0].get("ys").unwrap(), &Value::empty_set());
        assert_eq!(star[1].get("ys").unwrap().as_set().unwrap().len(), 1);
        // Plain ν keeps the NULL — the relational wart ν* exists to fix.
        let plain = nest(
            &rows,
            &["x".to_string()],
            &E::var("y"),
            "ys",
            false,
            &mut Env::new(),
            &mut Metrics::new(),
        )
        .unwrap();
        assert_eq!(plain[0].get("ys").unwrap().as_set().unwrap().len(), 1);
    }

    #[test]
    fn unnest_drops_empty_sets() {
        let rows = vec![
            row(&[
                ("x", Value::Int(1)),
                ("s", Value::set([Value::Int(1), Value::Int(2)])),
            ]),
            row(&[("x", Value::Int(2)), ("s", Value::empty_set())]),
        ];
        let out = unnest(
            &rows,
            &E::var("s"),
            "v",
            &["s".to_string()],
            &mut Env::new(),
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|r| r.get("x").unwrap() == &Value::Int(1)));
        assert!(out.iter().all(|r| !r.has("s")));
    }

    #[test]
    fn nest_then_unnest_round_trips_nonempty() {
        let rows = vec![
            row(&[("b", Value::Int(1)), ("a", Value::Int(10))]),
            row(&[("b", Value::Int(1)), ("a", Value::Int(11))]),
        ];
        let nested = nest(
            &rows,
            &["b".to_string()],
            &E::var("a"),
            "as",
            false,
            &mut Env::new(),
            &mut Metrics::new(),
        )
        .unwrap();
        let back = unnest(
            &nested,
            &E::var("as"),
            "a",
            &["as".to_string()],
            &mut Env::new(),
        )
        .unwrap();
        let orig: BTreeSet<Record> = rows.into_iter().collect();
        let got: BTreeSet<Record> = back.into_iter().collect();
        assert_eq!(orig, got);
    }

    #[test]
    fn group_agg_count_matches_kim_t_table() {
        // T(C, CNT) = SELECT S.C, COUNT(*) FROM S GROUP BY S.C (Section 2).
        let s_rows = vec![
            row(&[(
                "y",
                Value::tuple([("c", Value::Int(1)), ("d", Value::Int(5))]),
            )]),
            row(&[(
                "y",
                Value::tuple([("c", Value::Int(1)), ("d", Value::Int(6))]),
            )]),
            row(&[(
                "y",
                Value::tuple([("c", Value::Int(2)), ("d", Value::Int(7))]),
            )]),
        ];
        let out = group_agg(
            &s_rows,
            &[("c".to_string(), E::path("y", &["c"]))],
            &[("cnt".to_string(), AggFn::Count, E::var("y"))],
            "t",
            &mut Env::new(),
            &mut Metrics::new(),
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        let t0 = out[0].get("t").unwrap().as_tuple().unwrap();
        assert_eq!(t0.get("cnt").unwrap(), &Value::Int(2));
    }

    #[test]
    fn agg_folds() {
        let vals = [Value::Int(1), Value::Int(2), Value::Int(3)];
        assert_eq!(fold_agg(AggFn::Sum, &vals).unwrap(), Value::Int(6));
        assert_eq!(fold_agg(AggFn::Min, &vals).unwrap(), Value::Int(1));
        assert_eq!(fold_agg(AggFn::Max, &vals).unwrap(), Value::Int(3));
        assert_eq!(fold_agg(AggFn::Avg, &vals).unwrap(), Value::Float(2.0));
        assert_eq!(fold_agg(AggFn::Count, &[]).unwrap(), Value::Int(0));
        assert!(fold_agg(AggFn::Min, &[]).unwrap().is_null());
    }

    #[test]
    fn set_ops_on_values() {
        let l = vec![row(&[("v", Value::Int(1))]), row(&[("v", Value::Int(2))])];
        let r = vec![row(&[("v", Value::Int(2))]), row(&[("v", Value::Int(3))])];
        let mut m = Metrics::new();
        let u = set_op(SetOpKind::Union, &l, &r, "v", &mut m).unwrap();
        assert_eq!(u.len(), 3);
        let i = set_op(SetOpKind::Intersect, &l, &r, "v", &mut m).unwrap();
        assert_eq!(i.len(), 1);
        let d = set_op(SetOpKind::Except, &l, &r, "v", &mut m).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].get("v").unwrap(), &Value::Int(1));
    }
}
