//! The exchange primitive of morsel-driven parallel execution.
//!
//! Parallelism in this executor is **wave-shaped**: an operator that has a
//! set of independent work items (scan morsels, grace-hash partitions,
//! breaker partitions) fans them out to a scoped pool of worker threads
//! with [`scatter`] and gathers the results **in item order** before
//! continuing. Workers borrow the physical plan and the catalog (both are
//! shared immutably), clone the correlation [`tmql_algebra::Env`] they
//! need, and accumulate into worker-local
//! [`Metrics`](crate::metrics::Metrics) that the caller merges via
//! `AddAssign` — so profile trees and work counters stay truthful under
//! parallelism.
//!
//! Because results are gathered in item order and waves are issued in the
//! same order as the serial loops they replace, parallel execution emits
//! rows in **exactly the serial order**. Determinism does not depend on
//! this (query results are a multiset — see the ordering contract in
//! `docs/architecture.md`), but it keeps differential testing trivial.
//!
//! [`scatter`] uses [`std::thread::scope`], so a wave is fully contained
//! inside one `next_batch` call: no worker outlives the operator's borrow
//! of the plan, and `threads = 1` (or a single item) short-circuits to a
//! plain in-place loop with zero thread overhead.

use std::sync::Mutex;

/// Run `f` over `items` on up to `threads` scoped workers, returning the
/// results in item order. With `threads <= 1` or fewer than two items the
/// call degenerates to a sequential in-place map (no threads spawned) —
/// this is the `threads = 1` parity guarantee.
///
/// Workers pull items off a shared queue, so skewed item costs self-balance
/// (the morsel-driven discipline). A panicking worker propagates its panic
/// to the caller after the wave completes.
pub fn scatter<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Index-tagged job queue; workers pop from the front so the cheap
    // early items start immediately and stragglers balance out.
    let queue: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().rev().collect());
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads.min(n))
            .map(|_| {
                s.spawn(|| {
                    let mut done: Vec<(usize, R)> = Vec::new();
                    loop {
                        let job = queue.lock().unwrap_or_else(|e| e.into_inner()).pop();
                        match job {
                            None => break,
                            Some((i, item)) => done.push((i, f(item))),
                        }
                    }
                    done
                })
            })
            .collect();
        for w in workers {
            match w.join() {
                Ok(done) => {
                    for (i, r) in done {
                        slots[i] = Some(r);
                    }
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every queue item was processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn gathers_in_item_order() {
        for threads in [1, 2, 8] {
            let out = scatter(threads, (0..100).collect(), |i: i32| i * 2);
            assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn serial_path_spawns_no_threads() {
        // With threads = 1 every item runs on the calling thread.
        let caller = std::thread::current().id();
        let out = scatter(1, vec![(), (), ()], |()| std::thread::current().id());
        assert!(out.iter().all(|id| *id == caller));
    }

    #[test]
    fn workers_share_the_queue() {
        // 4 workers over 64 items: every item processed exactly once.
        let hits = AtomicUsize::new(0);
        let out = scatter(4, (0..64usize).collect(), |i| {
            hits.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64);
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_item_waves() {
        let empty: Vec<i32> = scatter(8, Vec::new(), |i: i32| i);
        assert!(empty.is_empty());
        assert_eq!(scatter(8, vec![7], |i: i32| i + 1), vec![8]);
    }
}
