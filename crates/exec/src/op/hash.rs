//! Hash join: build on the right operand, probe with the left.
//!
//! All five [`JoinKind`]s share one matching loop. The nest join variant
//! differs from the inner join only in what the probe emits — matches are
//! collected into a set per probe row instead of emitted pairwise, and a
//! dangling probe row emits `label = ∅`. Building on the **right** operand
//! keeps the output grouped by left rows, which is the paper's
//! implementation restriction for the nest join (Section 6).
//!
//! The implementation is split into [`build`] (a pipeline breaker: it owns
//! the materialized build side) and [`probe`] (streamable: each probe batch
//! is independent), so the streaming executor builds once and probes
//! batch-at-a-time. [`join`] composes the two for one-shot callers.

use std::collections::{BTreeSet, HashMap};

use tmql_algebra::{eval, eval_predicate, Env, ScalarExpr};
use tmql_model::{Record, Result, Value};

use crate::metrics::Metrics;
use crate::physical::JoinKind;

use super::{eval_keys, null_extend, with_row};

/// A built hash table over the right (build) operand: the owned build rows
/// plus an index from key values to row positions.
#[derive(Debug)]
pub struct HashTable {
    rows: Vec<Record>,
    index: HashMap<Vec<Value>, Vec<usize>>,
}

impl HashTable {
    /// Number of resident build-side rows (for peak-memory accounting).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff no build rows were retained.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Build phase: index `right` by its key values. Rows with a NULL key are
/// dropped — NULL never equi-joins, consistent with SQL semantics in the
/// relational baselines.
pub fn build(
    right: Vec<Record>,
    right_keys: &[ScalarExpr],
    env: &mut Env,
    m: &mut Metrics,
) -> Result<HashTable> {
    let mut table = HashTable {
        rows: Vec::with_capacity(right.len()),
        index: HashMap::new(),
    };
    for r in right {
        let key = with_row(env, &r, |e| eval_keys(right_keys, e))?;
        if let Some(key) = key {
            table.index.entry(key).or_default().push(table.rows.len());
            table.rows.push(r);
            m.hash_build_rows += 1;
        }
    }
    Ok(table)
}

/// Probe phase: join a batch of left rows against a built table. Left rows
/// are independent of each other, so this streams.
pub fn probe(
    left: &[Record],
    table: &HashTable,
    left_keys: &[ScalarExpr],
    residual: Option<&ScalarExpr>,
    kind: &JoinKind,
    env: &mut Env,
    m: &mut Metrics,
) -> Result<Vec<Record>> {
    let mut out = Vec::new();
    for l in left {
        env.push_row(l);
        m.hash_probes += 1;
        let key = eval_keys(left_keys, env)?;
        let candidates: &[usize] = match &key {
            Some(k) => table.index.get(k).map(Vec::as_slice).unwrap_or(&[]),
            None => &[],
        };
        let mut matched = false;
        let mut nested: BTreeSet<Value> = BTreeSet::new();
        for &ri in candidates {
            let r = &table.rows[ri];
            env.push_row(r);
            let hit = match residual {
                Some(p) => {
                    m.comparisons += 1;
                    eval_predicate(p, env)
                }
                None => Ok(true),
            };
            let hit = match hit {
                Ok(h) => h,
                Err(e) => {
                    env.pop_n(r.len());
                    env.pop_n(l.len());
                    return Err(e);
                }
            };
            if hit {
                matched = true;
                match kind {
                    JoinKind::Inner | JoinKind::LeftOuter { .. } => out.push(l.concat(r)?),
                    JoinKind::Semi | JoinKind::Anti => {
                        env.pop_n(r.len());
                        break;
                    }
                    JoinKind::Nest { func, .. } => {
                        nested.insert(eval(func, env)?);
                    }
                }
            }
            env.pop_n(r.len());
        }
        env.pop_n(l.len());
        match kind {
            JoinKind::Inner => {}
            JoinKind::Semi => {
                if matched {
                    out.push(l.clone());
                }
            }
            JoinKind::Anti => {
                if !matched {
                    out.push(l.clone());
                }
            }
            JoinKind::LeftOuter { right_vars } => {
                if !matched {
                    out.push(null_extend(l, right_vars)?);
                }
            }
            JoinKind::Nest { label, .. } => {
                out.push(l.extend_field(label, Value::Set(nested))?);
            }
        }
    }
    Ok(out)
}

/// One-shot hash join of materialized operands on equi-keys plus an
/// optional residual predicate ([`build`] then [`probe`]).
#[allow(clippy::too_many_arguments)]
pub fn join(
    left: &[Record],
    right: &[Record],
    left_keys: &[ScalarExpr],
    right_keys: &[ScalarExpr],
    residual: Option<&ScalarExpr>,
    kind: &JoinKind,
    env: &mut Env,
    m: &mut Metrics,
) -> Result<Vec<Record>> {
    let table = build(right.to_vec(), right_keys, env, m)?;
    probe(left, &table, left_keys, residual, kind, env, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmql_algebra::ScalarExpr as E;

    fn rows(name: &str, vals: &[(i64, i64)], f1: &str, f2: &str) -> Vec<Record> {
        vals.iter()
            .map(|(a, b)| {
                let tup = Record::new([
                    (f1.to_string(), Value::Int(*a)),
                    (f2.to_string(), Value::Int(*b)),
                ])
                .unwrap();
                Record::new([(name.to_string(), Value::Tuple(tup))]).unwrap()
            })
            .collect()
    }

    fn fixture() -> (Vec<Record>, Vec<Record>, Vec<E>, Vec<E>) {
        let x = rows("x", &[(1, 1), (2, 1), (3, 3), (4, 9)], "e", "d");
        let y = rows("y", &[(1, 1), (2, 1), (3, 3)], "a", "b");
        (x, y, vec![E::path("x", &["d"])], vec![E::path("y", &["b"])])
    }

    #[test]
    fn agrees_with_nested_loop_for_all_kinds() {
        let (x, y, lk, rk) = fixture();
        let pred = E::eq(E::path("x", &["d"]), E::path("y", &["b"]));
        let kinds = [
            JoinKind::Inner,
            JoinKind::Semi,
            JoinKind::Anti,
            JoinKind::LeftOuter {
                right_vars: vec!["y".into()],
            },
            JoinKind::Nest {
                func: E::var("y"),
                label: "s".into(),
            },
        ];
        for kind in kinds {
            let h = join(
                &x,
                &y,
                &lk,
                &rk,
                None,
                &kind,
                &mut Env::new(),
                &mut Metrics::new(),
            )
            .unwrap();
            let n =
                super::super::nl::join(&x, &y, &pred, &kind, &mut Env::new(), &mut Metrics::new())
                    .unwrap();
            let hs: BTreeSet<Record> = h.into_iter().collect();
            let ns: BTreeSet<Record> = n.into_iter().collect();
            assert_eq!(hs, ns, "kind {:?}", kind.name());
        }
    }

    #[test]
    fn probe_batches_compose_to_one_shot_join() {
        // Streaming contract: probing in arbitrary batch splits equals the
        // one-shot probe over the concatenation.
        let (x, y, lk, rk) = fixture();
        let mut env = Env::new();
        let mut m = Metrics::new();
        let table = build(y.clone(), &rk, &mut env, &mut m).unwrap();
        let whole = probe(&x, &table, &lk, None, &JoinKind::Inner, &mut env, &mut m).unwrap();
        for split in 1..x.len() {
            let mut pieces = Vec::new();
            for chunk in x.chunks(split) {
                pieces.extend(
                    probe(chunk, &table, &lk, None, &JoinKind::Inner, &mut env, &mut m).unwrap(),
                );
            }
            assert_eq!(pieces, whole, "split {split}");
        }
    }

    #[test]
    fn nest_join_dangling_probe_gets_empty_set() {
        let (x, y, lk, rk) = fixture();
        let kind = JoinKind::Nest {
            func: E::path("y", &["a"]),
            label: "s".into(),
        };
        let out = join(
            &x,
            &y,
            &lk,
            &rk,
            None,
            &kind,
            &mut Env::new(),
            &mut Metrics::new(),
        )
        .unwrap();
        assert_eq!(out.len(), 4);
        let dangling = out
            .iter()
            .find(|r| r.get("x").unwrap().as_tuple().unwrap().get("e").unwrap() == &Value::Int(4))
            .unwrap();
        assert_eq!(dangling.get("s").unwrap(), &Value::empty_set());
    }

    #[test]
    fn residual_prunes_matches() {
        let (x, y, lk, rk) = fixture();
        // Residual: y.a ≥ 2 — for d=1 probes only y=(2,1) survives.
        let residual = E::cmp(tmql_algebra::CmpOp::Ge, E::path("y", &["a"]), E::lit(2i64));
        let out = join(
            &x,
            &y,
            &lk,
            &rk,
            Some(&residual),
            &JoinKind::Inner,
            &mut Env::new(),
            &mut Metrics::new(),
        )
        .unwrap();
        assert_eq!(out.len(), 3); // x1·y2, x2·y2, x3·y3
    }

    #[test]
    fn null_keys_never_match() {
        let mut x = rows("x", &[(1, 1)], "e", "d");
        // A probe row whose key is NULL.
        let null_tup = Record::new([
            ("e".to_string(), Value::Int(9)),
            ("d".to_string(), Value::Null),
        ])
        .unwrap();
        x.push(Record::new([("x".to_string(), Value::Tuple(null_tup))]).unwrap());
        let y = rows("y", &[(1, 1)], "a", "b");
        let (lk, rk) = (vec![E::path("x", &["d"])], vec![E::path("y", &["b"])]);
        let out = join(
            &x,
            &y,
            &lk,
            &rk,
            None,
            &JoinKind::Inner,
            &mut Env::new(),
            &mut Metrics::new(),
        )
        .unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn metrics_reflect_build_and_probe() {
        let (x, y, lk, rk) = fixture();
        let mut m = Metrics::new();
        let _ = join(
            &x,
            &y,
            &lk,
            &rk,
            None,
            &JoinKind::Inner,
            &mut Env::new(),
            &mut m,
        )
        .unwrap();
        assert_eq!(m.hash_build_rows, 3);
        assert_eq!(m.hash_probes, 4);
    }
}
