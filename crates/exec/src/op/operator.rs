//! Volcano-style streaming operator tree.
//!
//! Every physical operator implements [`Operator`]: `open` / `next_batch`
//! / `close`, where [`next_batch`](Operator::next_batch) produces a
//! [`Batch`] of at most [`ExecContext::batch_size`](crate::exec::ExecContext::batch_size)
//! rows (joins and unnests buffer overflow in a carry queue so batches keep
//! their nominal capacity). Scan / Filter / Map / Extend / Project /
//! Unnest / Apply stream batch-at-a-time; pipeline breakers (the hash join
//! *build side*, the sort-merge sort, ν / GROUP BY grouping, set
//! operations, and dedup state) consume their input before producing, but
//! still **emit** in batches — so memory is bounded by operator *state*
//! (build tables, sort buffers, dedup sets), not by every intermediate
//! result at once. [`Metrics::peak_resident_rows`] tracks exactly that
//! high-water mark; [`Metrics::batches_emitted`] counts the batch traffic.
//!
//! Under [`crate::ExecConfig::memory_budget_rows`] the breakers cap their
//! resident state and spill the excess to disk (grace-hash partitioning of
//! hash joins, partitioned grouping / set-op / sort state, hybrid dedup) —
//! see [`crate::op::spill`].
//!
//! The operator tree borrows the [`PhysPlan`] it was built from (no
//! expression cloning) and owns only its correlation [`Env`].
//! [`Apply`](PhysPlan::Apply) builds its subquery tree **once** and
//! re-opens it per outer row through [`Operator::rebind`] — the true
//! nested loop the paper's unnesting removes, without per-row planning or
//! allocation (see [`crate::op::apply`]).

use std::collections::VecDeque;
use std::hash::{Hash, Hasher};

use tmql_algebra::{eval, eval_predicate, Env, Plan, ScalarExpr};
use tmql_model::{Record, Result, Value};
use tmql_storage::spill::{RunReader, SpillFile};

use crate::exec::ExecContext;
use crate::metrics::Metrics;
use crate::op::exchange;
use crate::op::spill::{self, Drained, PartFn, SpillDedup, MAX_REPARTITION_DEPTH};
use crate::op::{self, group, hash, merge, nl};
use crate::physical::{JoinKind, PhysPlan};

/// A unit of streamed data: up to `batch_size` rows.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Batch {
    /// The rows (at most the configured batch size for pipelined
    /// operators; never empty when returned from `next_batch`).
    pub rows: Vec<Record>,
}

impl Batch {
    /// Wrap a row vector.
    pub fn new(rows: Vec<Record>) -> Batch {
        Batch { rows }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Per-operator output counters, reported by the profile tree.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OpStats {
    /// Rows this operator has emitted.
    pub rows_out: u64,
    /// Batches this operator has emitted.
    pub batches_out: u64,
    /// Records this operator wrote to spill runs (0 unless a
    /// [`crate::ExecConfig::memory_budget_rows`] forced it to disk;
    /// repartitioning passes re-count their rows, mirroring
    /// [`Metrics::rows_spilled`]).
    pub rows_spilled: u64,
    /// Wall-clock nanoseconds spent inside this operator's `open`,
    /// `next_batch`, and `close` calls, *inclusive* of its children
    /// (a parent's span covers the pulls it issues downstream, exactly
    /// like `EXPLAIN ANALYZE` elsewhere). Always 0 when
    /// [`crate::ExecConfig::collect_timing`] is off. Spans are measured
    /// on the driver thread: a parallel worker wave running inside one
    /// operator's `next_batch` contributes the wave's wall-clock — the
    /// slowest worker, not the sum of per-worker CPU.
    pub wall_nanos: u64,
}

/// A physical operator in the streaming executor.
///
/// Lifecycle: `open` (reset state, recurse into children), then `pull`
/// (the metered wrapper around `next_batch`) until `None`, then `close`
/// (release buffered state, recurse). Implementations return `None` only
/// when exhausted and never return an empty batch.
pub trait Operator {
    /// Display label (mirrors [`PhysPlan::op_label`]).
    fn label(&self) -> String;

    /// Reset to the start of the stream and open children.
    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()>;

    /// Replace the correlation environment wholesale and recurse into
    /// children. `Apply` uses this to re-point one long-lived subquery
    /// tree at the next outer row's bindings before re-`open`ing it;
    /// stream state is untouched (that is `open`'s job).
    fn rebind(&mut self, env: &Env);

    /// Produce the next batch, or `None` when exhausted.
    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<Batch>>;

    /// Release buffered state and close children.
    fn close(&mut self, ctx: &mut ExecContext<'_>);

    /// Output counters so far.
    fn stats(&self) -> OpStats;

    /// Mutable access for the metering in [`Operator::pull`].
    fn stats_mut(&mut self) -> &mut OpStats;

    /// Children, left to right (for profile rendering).
    fn children(&self) -> Vec<&dyn Operator>;

    /// Metered `next_batch`: updates the global batch/row counters and the
    /// per-operator stats. Parents and drivers call this, not `next_batch`.
    fn pull(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<Batch>> {
        let span = ctx.collect_timing().then(std::time::Instant::now);
        let next = self.next_batch(ctx);
        if let Some(t) = span {
            self.stats_mut().wall_nanos += t.elapsed().as_nanos() as u64;
        }
        match next? {
            Some(b) => {
                ctx.metrics.batches_emitted += 1;
                ctx.metrics.rows_emitted += b.len() as u64;
                let s = self.stats_mut();
                s.batches_out += 1;
                s.rows_out += b.len() as u64;
                Ok(Some(b))
            }
            None => Ok(None),
        }
    }

    /// `open` wrapped in a wall-clock span (when
    /// [`crate::ExecConfig::collect_timing`] is on). Parents and drivers
    /// call this, not `open`, so every operator's span also covers its
    /// setup work.
    fn open_timed(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        let span = ctx.collect_timing().then(std::time::Instant::now);
        let r = self.open(ctx);
        if let Some(t) = span {
            self.stats_mut().wall_nanos += t.elapsed().as_nanos() as u64;
        }
        r
    }

    /// `close` wrapped in a wall-clock span, mirroring
    /// [`Operator::open_timed`].
    fn close_timed(&mut self, ctx: &mut ExecContext<'_>) {
        let span = ctx.collect_timing().then(std::time::Instant::now);
        self.close(ctx);
        if let Some(t) = span {
            self.stats_mut().wall_nanos += t.elapsed().as_nanos() as u64;
        }
    }
}

/// An owned operator borrowing plan nodes with lifetime `'p`.
pub type BoxedOperator<'p> = Box<dyn Operator + 'p>;

/// Drain an operator to completion through the metered [`Operator::pull`].
pub fn drain(op: &mut BoxedOperator<'_>, ctx: &mut ExecContext<'_>) -> Result<Vec<Record>> {
    let mut out = Vec::new();
    while let Some(b) = op.pull(ctx)? {
        out.extend(b.rows);
    }
    Ok(out)
}

/// One executed operator's profile line: its tree position, output
/// counters, and (when the caller supplied estimates) the cost model's
/// predicted output rows — estimated vs. actual side by side, which is
/// what makes q-error observable.
#[derive(Debug, Clone, PartialEq)]
pub struct OpProfile {
    /// Depth in the operator tree (root = 0).
    pub depth: usize,
    /// Operator label (mirrors [`PhysPlan::op_label`]).
    pub label: String,
    /// Rows emitted.
    pub rows_out: u64,
    /// Batches emitted.
    pub batches_out: u64,
    /// Rows this operator spilled to disk (0 without a memory budget).
    pub rows_spilled: u64,
    /// Inclusive wall-clock nanoseconds (see [`OpStats::wall_nanos`];
    /// 0 when timing collection was off).
    pub wall_nanos: u64,
    /// Estimated output rows from the cost model, in the same pre-order
    /// position (None when executed without estimates).
    pub est_rows: Option<f64>,
}

impl OpProfile {
    /// The q-error of this operator's row estimate: `max(est/actual,
    /// actual/est)` with both sides floored at 1 row (so empty outputs
    /// and sub-row estimates stay finite). `None` without an estimate.
    pub fn qerror(&self) -> Option<f64> {
        self.est_rows.map(|est| {
            let est = est.max(1.0);
            let actual = (self.rows_out as f64).max(1.0);
            (est / actual).max(actual / est)
        })
    }
}

/// Collect per-operator profiles in pre-order. `est` supplies estimated
/// rows in the same pre-order (as produced by the cost model's
/// exec-order walk over the physical plan the tree was built from).
pub fn collect_profile(root: &dyn Operator, est: Option<&[f64]>) -> Vec<OpProfile> {
    fn go(
        op: &dyn Operator,
        depth: usize,
        est: Option<&[f64]>,
        idx: &mut usize,
        out: &mut Vec<OpProfile>,
    ) {
        let s = op.stats();
        let est_rows = est.and_then(|v| v.get(*idx)).copied();
        *idx += 1;
        out.push(OpProfile {
            depth,
            label: op.label(),
            rows_out: s.rows_out,
            batches_out: s.batches_out,
            rows_spilled: s.rows_spilled,
            wall_nanos: s.wall_nanos,
            est_rows,
        });
        for c in op.children() {
            go(c, depth + 1, est, idx, out);
        }
    }
    let mut out = Vec::new();
    go(root, 0, est, &mut 0, &mut out);
    out
}

/// Render collected profiles as the indented tree shown by `EXPLAIN
/// ANALYZE`-style output; estimated rows print next to actual rows when
/// present.
pub fn render_profile(entries: &[OpProfile]) -> String {
    let mut out = String::new();
    for e in entries {
        out.push_str(&"  ".repeat(e.depth));
        // `spilled=` appears only when the operator actually spilled, so
        // in-memory profiles read exactly as before the spill tier existed.
        let spilled = if e.rows_spilled > 0 {
            format!(" spilled={}", e.rows_spilled)
        } else {
            String::new()
        };
        // `time=` appears only when spans were collected, so profiles
        // taken with `collect_timing` off render exactly as before the
        // observability layer existed.
        let time = if e.wall_nanos > 0 {
            format!(" time={}", tmql_obs::human_duration_nanos(e.wall_nanos))
        } else {
            String::new()
        };
        match e.est_rows {
            Some(est) => out.push_str(&format!(
                "{} [rows={} est={} batches={}{spilled}{time}]\n",
                e.label,
                e.rows_out,
                crate::cost::format_rows(est),
                e.batches_out
            )),
            None => out.push_str(&format!(
                "{} [rows={} batches={}{spilled}{time}]\n",
                e.label, e.rows_out, e.batches_out
            )),
        }
    }
    out
}

/// Render the operator tree with per-operator output metrics (the
/// post-execution profile shown by `EXPLAIN`).
pub fn render_tree(root: &dyn Operator) -> String {
    render_profile(&collect_profile(root, None))
}

/// Partition-key function over equi-join keys: the seeded hash of the
/// evaluated key values, `None` for NULL keys (the caller drops them on
/// build sides and routes them to partition 0 elsewhere).
fn keys_part<'p>(keys: &'p [ScalarExpr]) -> PartFn<'p> {
    Box::new(move |r, env, seed| {
        Ok(
            op::with_row(env, r, |e| op::eval_keys(keys, e))?.map(|vals| {
                let mut h = spill::seed_hasher(seed);
                vals.hash(&mut h);
                h.finish()
            }),
        )
    })
}

/// Partition-key function over a row's output value (set operations
/// compare whole output values, so equal values must co-partition).
fn value_part() -> PartFn<'static> {
    Box::new(|r, _env, seed| {
        let mut h = spill::seed_hasher(seed);
        Plan::row_output_value(r).hash(&mut h);
        Ok(Some(h.finish()))
    })
}

/// Pop up to `n` rows off a carry buffer as a batch (releasing them from
/// the resident-row gauge), or `None` when the buffer is empty.
fn pop_carry(carry: &mut VecDeque<Record>, n: usize, ctx: &mut ExecContext<'_>) -> Option<Batch> {
    if carry.is_empty() {
        return None;
    }
    let k = n.min(carry.len());
    let rows: Vec<Record> = carry.drain(..k).collect();
    ctx.resident_release(rows.len());
    Some(Batch::new(rows))
}

/// Build the operator tree for a physical plan. `env` carries correlation
/// bindings (outer rows of enclosing `Apply` operators); each operator
/// keeps its own copy so subtrees can be re-instantiated per outer row.
pub fn build<'p>(plan: &'p PhysPlan, env: &Env) -> BoxedOperator<'p> {
    match plan {
        PhysPlan::ScanTable { table, var } => Box::new(ScanTableOp {
            table,
            var,
            pos: 0,
            carry: VecDeque::new(),
            exhausted: false,
            stats: OpStats::default(),
        }),
        PhysPlan::IndexScan {
            table,
            var,
            attr,
            eq,
            lo,
            hi,
            pred,
        } => Box::new(IndexScanOp {
            table,
            var,
            attr,
            eq: eq.as_ref(),
            lo: lo.as_ref(),
            hi: hi.as_ref(),
            pred,
            env: env.clone(),
            positions: None,
            cursor: 0,
            stats: OpStats::default(),
        }),
        PhysPlan::IndexNLJoin {
            left,
            right_table,
            right_var,
            attr,
            key,
            pred,
            kind,
        } => Box::new(IndexNLJoinOp {
            left: build(left, env),
            right_table,
            right_var,
            attr,
            key,
            pred,
            kind,
            env: env.clone(),
            carry: VecDeque::new(),
            done: false,
            stats: OpStats::default(),
        }),
        PhysPlan::ScanExpr { expr, var } => Box::new(ScanExprOp {
            expr,
            var,
            env: env.clone(),
            items: None,
            overflow: None,
            overflow_reader: None,
            stats: OpStats::default(),
        }),
        PhysPlan::Filter { input, pred } => Box::new(FilterOp {
            child: build(input, env),
            pred,
            env: env.clone(),
            stats: OpStats::default(),
        }),
        PhysPlan::Map { input, expr, var } => Box::new(MapOp {
            child: build(input, env),
            expr,
            var,
            env: env.clone(),
            dedup: SpillDedup::new(),
            sealed: false,
            stats: OpStats::default(),
        }),
        PhysPlan::Extend { input, expr, var } => Box::new(ExtendOp {
            child: build(input, env),
            expr,
            var,
            env: env.clone(),
            stats: OpStats::default(),
        }),
        PhysPlan::Project { input, vars } => Box::new(ProjectOp {
            child: build(input, env),
            vars: vars.iter().map(String::as_str).collect(),
            dedup: SpillDedup::new(),
            sealed: false,
            stats: OpStats::default(),
        }),
        PhysPlan::Unnest {
            input,
            expr,
            elem_var,
            drop_vars,
        } => Box::new(UnnestOp {
            child: build(input, env),
            expr,
            elem_var,
            drop_vars,
            env: env.clone(),
            carry: VecDeque::new(),
            done: false,
            stats: OpStats::default(),
        }),
        PhysPlan::NlJoin {
            left,
            right,
            pred,
            kind,
        } => Box::new(NlJoinOp {
            left: build(left, env),
            right: build(right, env),
            pred,
            kind,
            env: env.clone(),
            inner: None,
            carry: VecDeque::new(),
            done: false,
            stats: OpStats::default(),
        }),
        PhysPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
            kind,
        } => Box::new(HashJoinOp {
            left: build(left, env),
            right: build(right, env),
            left_keys,
            right_keys,
            residual: residual.as_ref(),
            kind,
            env: env.clone(),
            build_part: keys_part(right_keys),
            probe_part: keys_part(left_keys),
            table: None,
            grace: None,
            built: false,
            carry: VecDeque::new(),
            done: false,
            stats: OpStats::default(),
        }),
        PhysPlan::MergeJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
            kind,
        } => Box::new(BinaryBreaker {
            name: format!("MergeJoin[{}]", kind.name()),
            left: build(left, env),
            right: build(right, env),
            env: env.clone(),
            kernel: Box::new(move |l, r, env, m| {
                merge::join(l, r, left_keys, right_keys, residual.as_ref(), kind, env, m)
            }),
            left_part: keys_part(left_keys),
            right_part: keys_part(right_keys),
            out: None,
            grace: None,
            done: false,
            stats: OpStats::default(),
        }),
        PhysPlan::Nest {
            input,
            keys,
            value,
            label,
            star,
        } => Box::new(UnaryBreaker {
            name: if *star { "Nest[ν*]" } else { "Nest[ν]" }.into(),
            child: build(input, env),
            env: env.clone(),
            kernel: Box::new(move |rows, env, m| {
                group::nest(rows, keys, value, label, *star, env, m)
            }),
            // Groups co-partition by the hash of the grouping fields.
            part: Box::new(move |r, _env, seed| {
                let mut h = spill::seed_hasher(seed);
                for k in keys {
                    r.get(k)?.hash(&mut h);
                }
                Ok(Some(h.finish()))
            }),
            out: None,
            grace: None,
            done: false,
            stats: OpStats::default(),
        }),
        PhysPlan::GroupAgg {
            input,
            keys,
            aggs,
            var,
        } => Box::new(UnaryBreaker {
            name: "GroupAgg".into(),
            child: build(input, env),
            env: env.clone(),
            kernel: Box::new(move |rows, env, m| group::group_agg(rows, keys, aggs, var, env, m)),
            part: Box::new(move |r, env, seed| {
                let mut h = spill::seed_hasher(seed);
                op::with_row(env, r, |e| {
                    for (_, ke) in keys {
                        eval(ke, e)?.hash(&mut h);
                    }
                    Ok(())
                })?;
                Ok(Some(h.finish()))
            }),
            out: None,
            grace: None,
            done: false,
            stats: OpStats::default(),
        }),
        PhysPlan::SetOp {
            kind,
            left,
            right,
            var,
        } => Box::new(BinaryBreaker {
            name: "SetOp".into(),
            left: build(left, env),
            right: build(right, env),
            env: env.clone(),
            kernel: Box::new(move |l, r, _env, m| group::set_op(*kind, l, r, var, m)),
            // Equal output values co-partition, so per-partition
            // union/intersect/except concatenate to the global result.
            left_part: value_part(),
            right_part: value_part(),
            out: None,
            grace: None,
            done: false,
            stats: OpStats::default(),
        }),
        PhysPlan::Apply {
            input,
            subquery,
            label,
            bindings,
        } => Box::new(crate::op::apply::ApplyOp::new(
            build(input, env),
            subquery,
            label,
            bindings.as_deref(),
            env.clone(),
        )),
        PhysPlan::Materialize { input } => {
            Box::new(crate::op::apply::MaterializeOp::new(build(input, env)))
        }
        PhysPlan::HashProbe {
            table,
            var,
            attr,
            key,
            pred,
        } => Box::new(crate::op::apply::HashProbeOp::new(
            table,
            var,
            attr,
            key,
            pred,
            env.clone(),
        )),
    }
}

// ---------------------------------------------------------------------------
// Streaming leaves
// ---------------------------------------------------------------------------

/// Cursor scan over a stored table; borrows one batch at a time via
/// [`tmql_storage::Table::batch`], never cloning the whole extension.
///
/// With [`ExecContext::threads`] > 1 the scan becomes morsel-driven: each
/// refill issues one wave of `threads` consecutive row ranges (morsels) to
/// scoped workers — disk-backed tables fault their pages in concurrently
/// through the latch-based buffer pool — and gathers the results in range
/// order into a carry queue, so emitted batches keep the exact serial
/// order and sizes. Morsels are `⌈batch_size / threads⌉` rows each, so a
/// wave holds roughly **one** batch in flight regardless of the worker
/// count: `peak_resident_rows` stays bounded by `O(batch_size)` instead of
/// growing as `threads × batch_size`.
struct ScanTableOp<'p> {
    table: &'p str,
    var: &'p str,
    pos: usize,
    carry: VecDeque<Record>,
    exhausted: bool,
    stats: OpStats,
}

impl Operator for ScanTableOp<'_> {
    fn label(&self) -> String {
        format!("Scan({})", self.table)
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.pos = 0;
        ctx.resident_release(self.carry.len());
        self.carry.clear();
        self.exhausted = false;
        Ok(())
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<Batch>> {
        let n = ctx.batch_size();
        let threads = ctx.threads();
        if threads <= 1 {
            let t = ctx.catalog.table(self.table)?;
            // Owned batches: in-memory tables clone the slice; disk-backed
            // tables stream the needed pages through the buffer pool.
            let chunk = t.batch(self.pos, n)?;
            if chunk.is_empty() {
                return Ok(None);
            }
            let mut rows = Vec::with_capacity(chunk.len());
            for row in chunk {
                rows.push(Record::new([(self.var.to_string(), Value::Tuple(row))])?);
            }
            self.pos += rows.len();
            ctx.metrics.rows_scanned += rows.len() as u64;
            return Ok(Some(Batch::new(rows)));
        }
        loop {
            if let Some(b) = pop_carry(&mut self.carry, n, ctx) {
                return Ok(Some(b));
            }
            if self.exhausted {
                return Ok(None);
            }
            // One wave: `threads` consecutive morsels totalling about one
            // batch, gathered in order.
            let t = ctx.catalog.table(self.table)?;
            let var = self.var;
            let m = n.div_ceil(threads).max(1);
            let starts: Vec<usize> = (0..threads).map(|i| self.pos + i * m).collect();
            let results = exchange::scatter(threads, starts, |start| -> Result<Vec<Record>> {
                let chunk = t.batch(start, m)?;
                let mut rows = Vec::with_capacity(chunk.len());
                for row in chunk {
                    rows.push(Record::new([(var.to_string(), Value::Tuple(row))])?);
                }
                Ok(rows)
            });
            for res in results {
                let rows = res?;
                if rows.len() < m {
                    self.exhausted = true;
                }
                self.pos += rows.len();
                ctx.metrics.rows_scanned += rows.len() as u64;
                ctx.resident_acquire(rows.len());
                self.carry.extend(rows);
                if self.exhausted {
                    break;
                }
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) {
        ctx.resident_release(self.carry.len());
        self.carry.clear();
    }

    fn rebind(&mut self, _env: &Env) {}

    fn stats(&self) -> OpStats {
        self.stats
    }

    fn stats_mut(&mut self) -> &mut OpStats {
        &mut self.stats
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![]
    }
}

/// Index-backed selection: probe the secondary index on `table.attr` for
/// the candidate row positions once at first pull, then stream them in
/// ascending position order through [`tmql_storage::Table::fetch_rows`]
/// (consecutive candidates coalesce into single page-friendly batch
/// reads). The probe result is a **superset** of the qualifying rows —
/// int/float key promotion and NaN totality are handled by widening, not
/// by trusting the index — so the full original predicate is re-evaluated
/// against every candidate before it is emitted.
struct IndexScanOp<'p> {
    table: &'p str,
    var: &'p str,
    attr: &'p str,
    eq: Option<&'p ScalarExpr>,
    lo: Option<&'p ScalarExpr>,
    hi: Option<&'p ScalarExpr>,
    pred: &'p ScalarExpr,
    env: Env,
    /// Candidate positions (ascending), computed at first `next_batch`.
    positions: Option<Vec<usize>>,
    cursor: usize,
    stats: OpStats,
}

impl IndexScanOp<'_> {
    fn probe(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        let idx = ctx.catalog.index_on(self.table, self.attr).ok_or_else(|| {
            tmql_model::ModelError::SchemaError(format!(
                "plan expects an index on {}.{} but none exists",
                self.table, self.attr
            ))
        })?;
        let positions = match self.eq {
            Some(eq) => {
                let key = eval(eq, &mut self.env)?;
                idx.probe_eq(&key)
            }
            None => {
                let lo = self.lo.map(|e| eval(e, &mut self.env)).transpose()?;
                let hi = self.hi.map(|e| eval(e, &mut self.env)).transpose()?;
                idx.probe_range(lo.as_ref(), hi.as_ref())
            }
        };
        ctx.metrics.index_probes += 1;
        ctx.metrics.index_hits += positions.len() as u64;
        self.positions = Some(positions);
        self.cursor = 0;
        Ok(())
    }
}

impl Operator for IndexScanOp<'_> {
    fn label(&self) -> String {
        format!("IndexScan({}.{})", self.table, self.attr)
    }

    fn open(&mut self, _ctx: &mut ExecContext<'_>) -> Result<()> {
        self.positions = None;
        self.cursor = 0;
        Ok(())
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<Batch>> {
        if self.positions.is_none() {
            self.probe(ctx)?;
        }
        let n = ctx.batch_size();
        let t = ctx.catalog.table(self.table)?;
        loop {
            let positions = self.positions.as_ref().expect("probed above");
            if self.cursor >= positions.len() {
                return Ok(None);
            }
            let end = (self.cursor + n).min(positions.len());
            let chunk = &positions[self.cursor..end];
            self.cursor = end;
            let candidates = t.fetch_rows(chunk)?;
            let mut rows = Vec::with_capacity(candidates.len());
            for row in candidates {
                let r = Record::new([(self.var.to_string(), Value::Tuple(row))])?;
                ctx.metrics.comparisons += 1;
                if op::with_row(&mut self.env, &r, |e| eval_predicate(self.pred, e))? {
                    rows.push(r);
                }
            }
            if !rows.is_empty() {
                return Ok(Some(Batch::new(rows)));
            }
        }
    }

    fn close(&mut self, _ctx: &mut ExecContext<'_>) {
        self.positions = None;
        self.cursor = 0;
    }

    fn rebind(&mut self, env: &Env) {
        self.env = env.clone();
    }

    fn stats(&self) -> OpStats {
        self.stats
    }

    fn stats_mut(&mut self) -> &mut OpStats {
        &mut self.stats
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![]
    }
}

/// Iterate a set expression (correlated or constant): the set value is one
/// evaluation, buffered and re-emitted in batches. The buffered set is
/// resident state (it counts toward [`Metrics::peak_resident_rows`]);
/// under a memory budget only the first budget-many elements stay in
/// memory and the overflow spills to a run that streams back after the
/// buffer drains.
struct ScanExprOp<'p> {
    expr: &'p ScalarExpr,
    var: &'p str,
    env: Env,
    items: Option<VecDeque<Value>>,
    overflow: Option<SpillFile>,
    overflow_reader: Option<RunReader>,
    stats: OpStats,
}

impl ScanExprOp<'_> {
    fn release(&mut self, ctx: &mut ExecContext<'_>) {
        if let Some(items) = self.items.take() {
            ctx.resident_release(items.len());
        }
        self.overflow = None;
        self.overflow_reader = None;
    }
}

impl Operator for ScanExprOp<'_> {
    fn label(&self) -> String {
        "ScanExpr".into()
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.release(ctx);
        Ok(())
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<Batch>> {
        if self.items.is_none() && self.overflow.is_none() {
            let set = eval(self.expr, &mut self.env)?;
            let mut items: VecDeque<Value> = set.as_set()?.iter().cloned().collect();
            if ctx.over_budget(items.len()) {
                // Keep a budget's worth resident; the tail goes to disk
                // as ready-to-emit rows.
                let keep = ctx
                    .memory_budget_rows()
                    .expect("over_budget implies a budget");
                let mut w = ctx.spill_runs(1)?.pop().expect("one run requested");
                for item in items.drain(keep..) {
                    w.write(&Record::new([(self.var.to_string(), item)])?)?;
                }
                let spilled = w.rows();
                ctx.metrics.rows_spilled += spilled;
                ctx.metrics.spill_partitions += 1;
                self.stats.rows_spilled += spilled;
                self.overflow = Some(w.finish()?);
            }
            ctx.resident_acquire(items.len());
            self.items = Some(items);
        }
        if let Some(items) = self.items.as_mut() {
            if !items.is_empty() {
                let k = ctx.batch_size().min(items.len());
                let mut rows = Vec::with_capacity(k);
                for _ in 0..k {
                    let item = items.pop_front().expect("k <= len");
                    rows.push(Record::new([(self.var.to_string(), item)])?);
                }
                ctx.resident_release(k);
                ctx.metrics.rows_scanned += rows.len() as u64;
                return Ok(Some(Batch::new(rows)));
            }
        }
        // Memory drained: stream the spilled tail, if any.
        let Some(file) = self.overflow.as_ref() else {
            return Ok(None);
        };
        if self.overflow_reader.is_none() {
            self.overflow_reader = Some(file.reader()?);
        }
        let reader = self.overflow_reader.as_mut().expect("opened above");
        let rows = reader.read_batch(ctx.batch_size())?;
        if rows.is_empty() {
            return Ok(None);
        }
        ctx.metrics.rows_scanned += rows.len() as u64;
        Ok(Some(Batch::new(rows)))
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) {
        self.release(ctx);
    }

    fn rebind(&mut self, env: &Env) {
        self.env = env.clone();
    }

    fn stats(&self) -> OpStats {
        self.stats
    }

    fn stats_mut(&mut self) -> &mut OpStats {
        &mut self.stats
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![]
    }
}

// ---------------------------------------------------------------------------
// Streaming unary operators
// ---------------------------------------------------------------------------

/// Streaming σ: one predicate evaluation (= one `comparisons` tick) per
/// input row.
struct FilterOp<'p> {
    child: BoxedOperator<'p>,
    pred: &'p ScalarExpr,
    env: Env,
    stats: OpStats,
}

impl Operator for FilterOp<'_> {
    fn label(&self) -> String {
        "Filter".into()
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.child.open_timed(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<Batch>> {
        loop {
            let Some(b) = self.child.pull(ctx)? else {
                return Ok(None);
            };
            let mut out = Vec::new();
            for row in b.rows {
                ctx.metrics.comparisons += 1;
                let keep = op::with_row(&mut self.env, &row, |e| eval_predicate(self.pred, e))?;
                if keep {
                    out.push(row);
                }
            }
            if !out.is_empty() {
                return Ok(Some(Batch::new(out)));
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) {
        self.child.close_timed(ctx);
    }

    fn rebind(&mut self, env: &Env) {
        self.env = env.clone();
        self.child.rebind(env);
    }

    fn stats(&self) -> OpStats {
        self.stats
    }

    fn stats_mut(&mut self) -> &mut OpStats {
        &mut self.stats
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.child.as_ref()]
    }
}

/// Streaming generalized projection to a single binding. Dedup state (the
/// set of distinct records seen) is the only resident memory; under a
/// memory budget it spills via [`SpillDedup`], deferring emission of the
/// overflow to a partitioned drain after the input is exhausted.
struct MapOp<'p> {
    child: BoxedOperator<'p>,
    expr: &'p ScalarExpr,
    var: &'p str,
    env: Env,
    dedup: SpillDedup,
    sealed: bool,
    stats: OpStats,
}

impl Operator for MapOp<'_> {
    fn label(&self) -> String {
        "Map".into()
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.dedup.reset(ctx);
        self.sealed = false;
        self.child.open_timed(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<Batch>> {
        loop {
            if self.sealed {
                let out = self
                    .dedup
                    .next_deferred(ctx.batch_size(), ctx, &mut self.stats)?;
                return Ok(if out.is_empty() {
                    None
                } else {
                    Some(Batch::new(out))
                });
            }
            match self.child.pull(ctx)? {
                None => {
                    self.dedup.seal(ctx)?;
                    self.sealed = true;
                }
                Some(b) => {
                    let mut out = Vec::new();
                    for row in b.rows {
                        let v = op::with_row(&mut self.env, &row, |e| eval(self.expr, e))?;
                        let rec = Record::new([(self.var.to_string(), v)])?;
                        if let Some(rec) = self.dedup.offer(rec, ctx, &mut self.stats)? {
                            out.push(rec);
                        }
                    }
                    if !out.is_empty() {
                        return Ok(Some(Batch::new(out)));
                    }
                }
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) {
        self.dedup.reset(ctx);
        self.child.close_timed(ctx);
    }

    fn rebind(&mut self, env: &Env) {
        self.env = env.clone();
        self.child.rebind(env);
    }

    fn stats(&self) -> OpStats {
        self.stats
    }

    fn stats_mut(&mut self) -> &mut OpStats {
        &mut self.stats
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.child.as_ref()]
    }
}

/// Streaming binding extension (no dedup: input rows stay distinct).
struct ExtendOp<'p> {
    child: BoxedOperator<'p>,
    expr: &'p ScalarExpr,
    var: &'p str,
    env: Env,
    stats: OpStats,
}

impl Operator for ExtendOp<'_> {
    fn label(&self) -> String {
        "Extend".into()
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.child.open_timed(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<Batch>> {
        let Some(b) = self.child.pull(ctx)? else {
            return Ok(None);
        };
        let mut out = Vec::with_capacity(b.len());
        for row in b.rows {
            let v = op::with_row(&mut self.env, &row, |e| eval(self.expr, e))?;
            out.push(row.extend_field(self.var, v)?);
        }
        Ok(Some(Batch::new(out)))
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) {
        self.child.close_timed(ctx);
    }

    fn rebind(&mut self, env: &Env) {
        self.env = env.clone();
        self.child.rebind(env);
    }

    fn stats(&self) -> OpStats {
        self.stats
    }

    fn stats_mut(&mut self) -> &mut OpStats {
        &mut self.stats
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.child.as_ref()]
    }
}

/// Streaming π onto a variable subset, with streaming dedup (spilling via
/// [`SpillDedup`] under a memory budget, like [`MapOp`]).
struct ProjectOp<'p> {
    child: BoxedOperator<'p>,
    vars: Vec<&'p str>,
    dedup: SpillDedup,
    sealed: bool,
    stats: OpStats,
}

impl Operator for ProjectOp<'_> {
    fn label(&self) -> String {
        "Project".into()
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.dedup.reset(ctx);
        self.sealed = false;
        self.child.open_timed(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<Batch>> {
        loop {
            if self.sealed {
                let out = self
                    .dedup
                    .next_deferred(ctx.batch_size(), ctx, &mut self.stats)?;
                return Ok(if out.is_empty() {
                    None
                } else {
                    Some(Batch::new(out))
                });
            }
            match self.child.pull(ctx)? {
                None => {
                    self.dedup.seal(ctx)?;
                    self.sealed = true;
                }
                Some(b) => {
                    let mut out = Vec::new();
                    for row in b.rows {
                        let rec = row.project(&self.vars)?;
                        if let Some(rec) = self.dedup.offer(rec, ctx, &mut self.stats)? {
                            out.push(rec);
                        }
                    }
                    if !out.is_empty() {
                        return Ok(Some(Batch::new(out)));
                    }
                }
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) {
        self.dedup.reset(ctx);
        self.child.close_timed(ctx);
    }

    fn rebind(&mut self, env: &Env) {
        self.child.rebind(env);
    }

    fn stats(&self) -> OpStats {
        self.stats
    }

    fn stats_mut(&mut self) -> &mut OpStats {
        &mut self.stats
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.child.as_ref()]
    }
}

/// Streaming μ: each input batch expands independently; a carry buffer
/// caps the emitted batch size despite per-row fan-out.
struct UnnestOp<'p> {
    child: BoxedOperator<'p>,
    expr: &'p ScalarExpr,
    elem_var: &'p str,
    drop_vars: &'p [String],
    env: Env,
    carry: VecDeque<Record>,
    done: bool,
    stats: OpStats,
}

impl Operator for UnnestOp<'_> {
    fn label(&self) -> String {
        "Unnest".into()
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        ctx.resident_release(self.carry.len());
        self.carry.clear();
        self.done = false;
        self.child.open_timed(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<Batch>> {
        let n = ctx.batch_size();
        loop {
            if self.carry.len() >= n || (self.done && !self.carry.is_empty()) {
                return Ok(pop_carry(&mut self.carry, n, ctx));
            }
            if self.done {
                return Ok(None);
            }
            match self.child.pull(ctx)? {
                None => self.done = true,
                Some(b) => {
                    let expanded = group::unnest(
                        &b.rows,
                        self.expr,
                        self.elem_var,
                        self.drop_vars,
                        &mut self.env,
                    )?;
                    ctx.resident_acquire(expanded.len());
                    self.carry.extend(expanded);
                }
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) {
        ctx.resident_release(self.carry.len());
        self.carry.clear();
        self.child.close_timed(ctx);
    }

    fn rebind(&mut self, env: &Env) {
        self.env = env.clone();
        self.child.rebind(env);
    }

    fn stats(&self) -> OpStats {
        self.stats
    }

    fn stats_mut(&mut self) -> &mut OpStats {
        &mut self.stats
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.child.as_ref()]
    }
}

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

/// The materialized inner side of a nested-loop join: resident, or — past
/// the memory budget — a single on-disk run replayed per outer block.
enum NlInner {
    Mem(Vec<Record>),
    Spilled(SpillFile),
}

/// Nested-loop join: materializes the inner (right) operand once, streams
/// the outer (left) operand batch-at-a-time. The materialized inner side
/// counts toward [`Metrics::peak_resident_rows`]; under a memory budget
/// it spills to a run instead, and each outer batch block-joins against
/// the run streamed back chunk-at-a-time ([`nl::join_chunk`] /
/// [`nl::finish_block`] carry per-row match state across chunks, so
/// semi/anti/outer/nest semantics survive the chunking).
struct NlJoinOp<'p> {
    left: BoxedOperator<'p>,
    right: BoxedOperator<'p>,
    pred: &'p ScalarExpr,
    kind: &'p JoinKind,
    env: Env,
    inner: Option<NlInner>,
    carry: VecDeque<Record>,
    done: bool,
    stats: OpStats,
}

impl NlJoinOp<'_> {
    fn release_inner(&mut self, ctx: &mut ExecContext<'_>) {
        if let Some(NlInner::Mem(r)) = self.inner.take() {
            ctx.resident_release(r.len());
        }
    }

    /// Drain the right child, tracking residency as it accumulates; once
    /// the buffer exceeds the budget, move it (and the rest of the
    /// stream) into one spill run.
    fn materialize_inner(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        let mut rows: Vec<Record> = Vec::new();
        let mut writer = None;
        while let Some(b) = self.right.pull(ctx)? {
            match writer.as_mut() {
                None => {
                    ctx.resident_acquire(b.len());
                    rows.extend(b.rows);
                    if ctx.over_budget(rows.len()) {
                        let mut w = ctx.spill_runs(1)?.pop().expect("one run requested");
                        for r in &rows {
                            w.write(r)?;
                        }
                        ctx.resident_release(rows.len());
                        rows.clear();
                        writer = Some(w);
                    }
                }
                Some(w) => {
                    for r in &b.rows {
                        w.write(r)?;
                    }
                }
            }
        }
        self.inner = Some(match writer {
            None => NlInner::Mem(rows),
            Some(w) => {
                let spilled = w.rows();
                ctx.metrics.rows_spilled += spilled;
                ctx.metrics.spill_partitions += 1;
                self.stats.rows_spilled += spilled;
                NlInner::Spilled(w.finish()?)
            }
        });
        Ok(())
    }
}

impl Operator for NlJoinOp<'_> {
    fn label(&self) -> String {
        format!("NlJoin[{}]", self.kind.name())
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.release_inner(ctx);
        ctx.resident_release(self.carry.len());
        self.carry.clear();
        self.done = false;
        self.left.open_timed(ctx)?;
        self.right.open_timed(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<Batch>> {
        if self.inner.is_none() {
            self.materialize_inner(ctx)?;
        }
        let n = ctx.batch_size();
        loop {
            if self.carry.len() >= n || (self.done && !self.carry.is_empty()) {
                return Ok(pop_carry(&mut self.carry, n, ctx));
            }
            if self.done {
                return Ok(None);
            }
            match self.left.pull(ctx)? {
                None => self.done = true,
                Some(b) => {
                    let out = match self.inner.as_ref().expect("materialized above") {
                        NlInner::Mem(right) => nl::join(
                            &b.rows,
                            right,
                            self.pred,
                            self.kind,
                            &mut self.env,
                            &mut ctx.metrics,
                        )?,
                        NlInner::Spilled(file) => {
                            // Block nested loop: replay the run in
                            // batch-sized chunks against this outer block.
                            let mut state = nl::BlockState::new(b.rows.len(), self.kind);
                            let mut out = Vec::new();
                            let mut reader = file.reader()?;
                            loop {
                                let chunk = reader.read_batch(n)?;
                                if chunk.is_empty() {
                                    break;
                                }
                                ctx.resident_acquire(chunk.len());
                                let res = nl::join_chunk(
                                    &b.rows,
                                    &chunk,
                                    self.pred,
                                    self.kind,
                                    &mut self.env,
                                    &mut ctx.metrics,
                                    &mut state,
                                    &mut out,
                                );
                                ctx.resident_release(chunk.len());
                                res?;
                            }
                            nl::finish_block(&b.rows, self.kind, &mut state, &mut out)?;
                            out
                        }
                    };
                    ctx.resident_acquire(out.len());
                    self.carry.extend(out);
                }
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) {
        self.release_inner(ctx);
        ctx.resident_release(self.carry.len());
        self.carry.clear();
        self.left.close_timed(ctx);
        self.right.close_timed(ctx);
    }

    fn rebind(&mut self, env: &Env) {
        self.env = env.clone();
        self.left.rebind(env);
        self.right.rebind(env);
    }

    fn stats(&self) -> OpStats {
        self.stats
    }

    fn stats_mut(&mut self) -> &mut OpStats {
        &mut self.stats
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.left.as_ref(), self.right.as_ref()]
    }
}

/// Index nested-loop join: the inner table is never scanned — for each
/// outer row the join key is evaluated and the secondary index on
/// `right_table.attr` probed for candidate inner positions, which are
/// fetched and run through the shared nested-loop match/emit kernel
/// ([`nl::join_chunk`] + [`nl::finish_block`] with a one-row outer
/// block). Probes return equality-candidate **supersets** (int/float
/// promotion, NaN totality), and the kernel re-evaluates the full join
/// predicate per pair, so results match `NlJoin` exactly for every
/// [`JoinKind`] — semi/anti membership rewrites become per-row probes.
struct IndexNLJoinOp<'p> {
    left: BoxedOperator<'p>,
    right_table: &'p str,
    right_var: &'p str,
    attr: &'p str,
    key: &'p ScalarExpr,
    pred: &'p ScalarExpr,
    kind: &'p JoinKind,
    env: Env,
    carry: VecDeque<Record>,
    done: bool,
    stats: OpStats,
}

impl IndexNLJoinOp<'_> {
    /// Probe + match one outer row, appending its output to `out`.
    fn probe_row(
        &mut self,
        l: &Record,
        ctx: &mut ExecContext<'_>,
        out: &mut Vec<Record>,
    ) -> Result<()> {
        let idx = ctx
            .catalog
            .index_on(self.right_table, self.attr)
            .ok_or_else(|| {
                tmql_model::ModelError::SchemaError(format!(
                    "plan expects an index on {}.{} but none exists",
                    self.right_table, self.attr
                ))
            })?;
        let key = op::with_row(&mut self.env, l, |e| eval(self.key, e))?;
        let positions = idx.probe_eq(&key);
        ctx.metrics.index_probes += 1;
        ctx.metrics.index_hits += positions.len() as u64;
        let t = ctx.catalog.table(self.right_table)?;
        let mut state = nl::BlockState::new(1, self.kind);
        let outer = std::slice::from_ref(l);
        // Candidates stream in position-ascending chunks so one wide probe
        // (a hot key) never materializes more than a batch at a time.
        let n = ctx.batch_size();
        for chunk in positions.chunks(n.max(1)) {
            let fetched = t.fetch_rows(chunk)?;
            let mut inner = Vec::with_capacity(fetched.len());
            for row in fetched {
                inner.push(Record::new([(
                    self.right_var.to_string(),
                    Value::Tuple(row),
                )])?);
            }
            nl::join_chunk(
                outer,
                &inner,
                self.pred,
                self.kind,
                &mut self.env,
                &mut ctx.metrics,
                &mut state,
                out,
            )?;
        }
        nl::finish_block(outer, self.kind, &mut state, out)
    }
}

impl Operator for IndexNLJoinOp<'_> {
    fn label(&self) -> String {
        format!(
            "IndexNLJoin[{}]({}.{})",
            self.kind.name(),
            self.right_table,
            self.attr
        )
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        ctx.resident_release(self.carry.len());
        self.carry.clear();
        self.done = false;
        self.left.open_timed(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<Batch>> {
        let n = ctx.batch_size();
        loop {
            if self.carry.len() >= n || (self.done && !self.carry.is_empty()) {
                return Ok(pop_carry(&mut self.carry, n, ctx));
            }
            if self.done {
                return Ok(None);
            }
            match self.left.pull(ctx)? {
                None => self.done = true,
                Some(b) => {
                    let mut out = Vec::new();
                    for l in &b.rows {
                        self.probe_row(l, ctx, &mut out)?;
                    }
                    ctx.resident_acquire(out.len());
                    self.carry.extend(out);
                }
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) {
        ctx.resident_release(self.carry.len());
        self.carry.clear();
        self.left.close_timed(ctx);
    }

    fn rebind(&mut self, env: &Env) {
        self.env = env.clone();
        self.left.rebind(env);
    }

    fn stats(&self) -> OpStats {
        self.stats
    }

    fn stats_mut(&mut self) -> &mut OpStats {
        &mut self.stats
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.left.as_ref()]
    }
}

/// Grace-hash-join state: build/probe partition pairs still to process,
/// and the partition currently being probed.
struct GraceJoin {
    /// (build, probe, depth) triples, processed front to back.
    parts: VecDeque<(SpillFile, SpillFile, usize)>,
    cur: Option<GracePart>,
}

struct GracePart {
    table: hash::HashTable,
    reader: RunReader,
    /// Keeps the probe run alive while its reader streams.
    _file: SpillFile,
}

/// Hash join: the build side (right) is the pipeline breaker; the probe
/// side (left) streams. Under a memory budget the build switches to
/// **grace hash**: both sides hash-partition to spill files on the join
/// key, then each partition joins independently (an in-memory build over
/// the partition's build rows, batch-streamed probes from its probe run),
/// with oversized partitions recursively repartitioned under a fresh seed.
struct HashJoinOp<'p> {
    left: BoxedOperator<'p>,
    right: BoxedOperator<'p>,
    left_keys: &'p [ScalarExpr],
    right_keys: &'p [ScalarExpr],
    residual: Option<&'p ScalarExpr>,
    kind: &'p JoinKind,
    env: Env,
    build_part: PartFn<'p>,
    probe_part: PartFn<'p>,
    table: Option<hash::HashTable>,
    grace: Option<GraceJoin>,
    built: bool,
    carry: VecDeque<Record>,
    done: bool,
    stats: OpStats,
}

impl Operator for HashJoinOp<'_> {
    fn label(&self) -> String {
        format!("HashJoin[{}]", self.kind.name())
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        if let Some(t) = self.table.take() {
            ctx.resident_release(t.len());
        }
        if let Some(g) = self.grace.take() {
            if let Some(cur) = g.cur {
                ctx.resident_release(cur.table.len());
            }
        }
        self.built = false;
        ctx.resident_release(self.carry.len());
        self.carry.clear();
        self.done = false;
        self.left.open_timed(ctx)?;
        self.right.open_timed(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<Batch>> {
        if !self.built {
            match spill::drain_or_spill(
                &mut self.right,
                ctx,
                &mut self.env,
                &self.build_part,
                true, // NULL keys never match: drop them before they hit disk
                &mut self.stats,
            )? {
                Drained::Mem(r) => {
                    let n_in = r.len();
                    let table = hash::build(r, self.right_keys, &mut self.env, &mut ctx.metrics)?;
                    // `build` *moves* the drained rows (already counted by
                    // the drain) into the table; only the NULL-key rows it
                    // drops leave resident state.
                    ctx.resident_release(n_in - table.len());
                    self.table = Some(table);
                }
                Drained::Spilled(build_files) => {
                    // Grace mode: the probe side must partition the same
                    // way (NULL-key probe rows go to partition 0, where
                    // they probe empty and take the kind's dangling path).
                    let probe_files = spill::spill_stream(
                        &mut self.left,
                        ctx,
                        &mut self.env,
                        &self.probe_part,
                        false,
                        &mut self.stats,
                    )?;
                    let parts = build_files
                        .into_iter()
                        .zip(probe_files)
                        .map(|(b, p)| (b, p, 1))
                        .collect();
                    self.grace = Some(GraceJoin { parts, cur: None });
                }
            }
            self.built = true;
        }
        let n = ctx.batch_size();
        loop {
            if self.carry.len() >= n || (self.done && !self.carry.is_empty()) {
                return Ok(pop_carry(&mut self.carry, n, ctx));
            }
            if self.done {
                return Ok(None);
            }
            if let Some(table) = self.table.as_ref() {
                // In-memory path: stream probe batches from the left child.
                match self.left.pull(ctx)? {
                    None => self.done = true,
                    Some(b) => {
                        let out = hash::probe(
                            &b.rows,
                            table,
                            self.left_keys,
                            self.residual,
                            self.kind,
                            &mut self.env,
                            &mut ctx.metrics,
                        )?;
                        ctx.resident_acquire(out.len());
                        self.carry.extend(out);
                    }
                }
                continue;
            }
            if ctx.threads() > 1 {
                // Parallel grace: collect a wave of ready partitions
                // (repartitioning skewed ones first, exactly like the
                // serial path) and join them partition-per-worker. Waves
                // are budget-capped — concurrent build tables are summed
                // resident state — but always take at least one partition.
                let mut wave: Vec<(SpillFile, SpillFile)> = Vec::new();
                let mut wave_rows: u64 = 0;
                while wave.len() < ctx.threads() {
                    let next = self
                        .grace
                        .as_mut()
                        .expect("grace mode engaged")
                        .parts
                        .pop_front();
                    let Some((bf, pf, depth)) = next else { break };
                    if ctx.over_budget(bf.rows() as usize)
                        && depth < MAX_REPARTITION_DEPTH
                        && bf.rows() > 1
                    {
                        let seed = depth as u64;
                        let nb = spill::repartition(
                            bf,
                            ctx,
                            &mut self.env,
                            &self.build_part,
                            seed,
                            true,
                            &mut self.stats,
                        )?;
                        let np = spill::repartition(
                            pf,
                            ctx,
                            &mut self.env,
                            &self.probe_part,
                            seed,
                            false,
                            &mut self.stats,
                        )?;
                        let g = self.grace.as_mut().expect("still grace");
                        for (b2, p2) in nb.into_iter().zip(np).rev() {
                            g.parts.push_front((b2, p2, depth + 1));
                        }
                        continue;
                    }
                    if pf.is_empty() {
                        continue;
                    }
                    if !wave.is_empty() && ctx.over_budget((wave_rows + bf.rows()) as usize) {
                        let g = self.grace.as_mut().expect("still grace");
                        g.parts.push_front((bf, pf, depth));
                        break;
                    }
                    wave_rows += bf.rows();
                    wave.push((bf, pf));
                }
                if wave.is_empty() {
                    self.done = true;
                    continue;
                }
                ctx.resident_acquire(wave_rows as usize);
                let (left_keys, right_keys) = (self.left_keys, self.right_keys);
                let (residual, kind) = (self.residual, self.kind);
                let base_env = &self.env;
                let results = exchange::scatter(
                    ctx.threads(),
                    wave,
                    |(bf, pf)| -> Result<(Vec<Record>, Metrics)> {
                        let mut env = base_env.clone();
                        let mut m = Metrics::new();
                        let build_rows = bf.reader()?.read_all()?;
                        let table = hash::build(build_rows, right_keys, &mut env, &mut m)?;
                        let mut out = Vec::new();
                        let mut reader = pf.reader()?;
                        loop {
                            let batch = reader.read_batch(n)?;
                            if batch.is_empty() {
                                break;
                            }
                            out.extend(hash::probe(
                                &batch, &table, left_keys, residual, kind, &mut env, &mut m,
                            )?);
                        }
                        Ok((out, m))
                    },
                );
                ctx.resident_release(wave_rows as usize);
                for res in results {
                    let (out, m) = res?;
                    ctx.metrics += m;
                    ctx.resident_acquire(out.len());
                    self.carry.extend(out);
                }
                continue;
            }
            // Grace path: stream probe batches from the current
            // partition's run, loading the next partition as needed.
            let g = self.grace.as_mut().expect("grace mode engaged");
            if let Some(cur) = g.cur.as_mut() {
                let batch = cur.reader.read_batch(n)?;
                if batch.is_empty() {
                    ctx.resident_release(cur.table.len());
                    g.cur = None;
                    continue;
                }
                let out = hash::probe(
                    &batch,
                    &cur.table,
                    self.left_keys,
                    self.residual,
                    self.kind,
                    &mut self.env,
                    &mut ctx.metrics,
                )?;
                ctx.resident_acquire(out.len());
                self.carry.extend(out);
                continue;
            }
            match g.parts.pop_front() {
                None => self.done = true,
                Some((bf, pf, depth)) => {
                    if ctx.over_budget(bf.rows() as usize)
                        && depth < MAX_REPARTITION_DEPTH
                        && bf.rows() > 1
                    {
                        // Skewed partition: re-split both sides with the
                        // next seed so equal keys stay paired.
                        let seed = depth as u64;
                        let nb = spill::repartition(
                            bf,
                            ctx,
                            &mut self.env,
                            &self.build_part,
                            seed,
                            true,
                            &mut self.stats,
                        )?;
                        let np = spill::repartition(
                            pf,
                            ctx,
                            &mut self.env,
                            &self.probe_part,
                            seed,
                            false,
                            &mut self.stats,
                        )?;
                        let g = self.grace.as_mut().expect("still grace");
                        for (b2, p2) in nb.into_iter().zip(np).rev() {
                            g.parts.push_front((b2, p2, depth + 1));
                        }
                        continue;
                    }
                    if pf.is_empty() {
                        // Every join kind emits per probe row (or pair);
                        // no probe rows means no output from this part.
                        continue;
                    }
                    let build_rows = bf.reader()?.read_all()?;
                    let table =
                        hash::build(build_rows, self.right_keys, &mut self.env, &mut ctx.metrics)?;
                    ctx.resident_acquire(table.len());
                    let reader = pf.reader()?;
                    let g = self.grace.as_mut().expect("still grace");
                    g.cur = Some(GracePart {
                        table,
                        reader,
                        _file: pf,
                    });
                }
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) {
        if let Some(t) = self.table.take() {
            ctx.resident_release(t.len());
        }
        if let Some(g) = self.grace.take() {
            if let Some(cur) = g.cur {
                ctx.resident_release(cur.table.len());
            }
        }
        ctx.resident_release(self.carry.len());
        self.carry.clear();
        self.left.close_timed(ctx);
        self.right.close_timed(ctx);
    }

    fn rebind(&mut self, env: &Env) {
        self.env = env.clone();
        self.left.rebind(env);
        self.right.rebind(env);
    }

    fn stats(&self) -> OpStats {
        self.stats
    }

    fn stats_mut(&mut self) -> &mut OpStats {
        &mut self.stats
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.left.as_ref(), self.right.as_ref()]
    }
}

// ---------------------------------------------------------------------------
// Pipeline breakers (generic over the materialized kernel)
// ---------------------------------------------------------------------------

/// Materialized kernel of a one-input breaker. `Fn + Send + Sync` so a
/// parallel wave can run it concurrently over several spill partitions —
/// all mutable state (env, metrics) comes in through the arguments.
type UnaryKernel<'p> =
    Box<dyn Fn(&[Record], &mut Env, &mut Metrics) -> Result<Vec<Record>> + Send + Sync + 'p>;

/// A one-input pipeline breaker: drains its child, runs a materialized
/// kernel (ν / ν* / GROUP BY), then re-emits the result in batches.
///
/// Under a memory budget the drain switches to partitioned spill on the
/// operator's grouping key ([`spill::drain_or_spill`]); the kernel then
/// runs once per partition — grouping keys co-partition, so per-partition
/// outputs concatenate to the in-memory result (up to emission order,
/// which set semantics absorbs).
struct UnaryBreaker<'p> {
    name: String,
    child: BoxedOperator<'p>,
    env: Env,
    kernel: UnaryKernel<'p>,
    part: PartFn<'p>,
    out: Option<VecDeque<Record>>,
    grace: Option<VecDeque<(SpillFile, usize)>>,
    done: bool,
    stats: OpStats,
}

impl Operator for UnaryBreaker<'_> {
    fn label(&self) -> String {
        self.name.clone()
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        if let Some(out) = self.out.take() {
            ctx.resident_release(out.len());
        }
        self.grace = None;
        self.done = false;
        self.child.open_timed(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<Batch>> {
        loop {
            if let Some(out) = self.out.as_mut() {
                if let Some(b) = pop_carry(out, ctx.batch_size(), ctx) {
                    return Ok(Some(b));
                }
                self.out = None;
                if self.grace.is_none() {
                    self.done = true;
                }
            }
            if self.done {
                return Ok(None);
            }
            if self.grace.is_none() {
                match spill::drain_or_spill(
                    &mut self.child,
                    ctx,
                    &mut self.env,
                    &self.part,
                    false,
                    &mut self.stats,
                )? {
                    Drained::Mem(input) => {
                        let out = (self.kernel)(&input, &mut self.env, &mut ctx.metrics)?;
                        ctx.resident_acquire(out.len());
                        ctx.resident_release(input.len());
                        drop(input);
                        self.out = Some(out.into());
                        continue;
                    }
                    Drained::Spilled(files) => {
                        self.grace = Some(files.into_iter().map(|f| (f, 1)).collect());
                    }
                }
            }
            if ctx.threads() > 1 {
                // Parallel grace: one kernel invocation per partition on a
                // worker wave, outputs gathered in partition order (the
                // exact serial emission order). Budget-capped, ≥ 1 per wave.
                let mut wave: Vec<SpillFile> = Vec::new();
                let mut wave_rows: u64 = 0;
                while wave.len() < ctx.threads() {
                    let next = self.grace.as_mut().expect("grace mode engaged").pop_front();
                    let Some((file, depth)) = next else { break };
                    if ctx.over_budget(file.rows() as usize)
                        && depth < MAX_REPARTITION_DEPTH
                        && file.rows() > 1
                    {
                        let subs = spill::repartition(
                            file,
                            ctx,
                            &mut self.env,
                            &self.part,
                            depth as u64,
                            false,
                            &mut self.stats,
                        )?;
                        let g = self.grace.as_mut().expect("still grace");
                        for f in subs.into_iter().rev() {
                            g.push_front((f, depth + 1));
                        }
                        continue;
                    }
                    if file.is_empty() {
                        continue;
                    }
                    if !wave.is_empty() && ctx.over_budget((wave_rows + file.rows()) as usize) {
                        let g = self.grace.as_mut().expect("still grace");
                        g.push_front((file, depth));
                        break;
                    }
                    wave_rows += file.rows();
                    wave.push(file);
                }
                if wave.is_empty() {
                    self.done = true;
                    return Ok(None);
                }
                ctx.resident_acquire(wave_rows as usize);
                let base_env = &self.env;
                let kernel = &self.kernel;
                let results = exchange::scatter(
                    ctx.threads(),
                    wave,
                    |file| -> Result<(Vec<Record>, Metrics)> {
                        let mut env = base_env.clone();
                        let mut m = Metrics::new();
                        let input = file.reader()?.read_all()?;
                        let out = (kernel)(&input, &mut env, &mut m)?;
                        Ok((out, m))
                    },
                );
                ctx.resident_release(wave_rows as usize);
                let mut combined: VecDeque<Record> = VecDeque::new();
                for res in results {
                    let (rows, m) = res?;
                    ctx.metrics += m;
                    ctx.resident_acquire(rows.len());
                    combined.extend(rows);
                }
                self.out = Some(combined);
                continue;
            }
            // Grace mode: run the kernel over the next partition.
            let g = self.grace.as_mut().expect("grace mode engaged");
            match g.pop_front() {
                None => {
                    self.done = true;
                    return Ok(None);
                }
                Some((file, depth)) => {
                    if ctx.over_budget(file.rows() as usize)
                        && depth < MAX_REPARTITION_DEPTH
                        && file.rows() > 1
                    {
                        let subs = spill::repartition(
                            file,
                            ctx,
                            &mut self.env,
                            &self.part,
                            depth as u64,
                            false,
                            &mut self.stats,
                        )?;
                        let g = self.grace.as_mut().expect("still grace");
                        for f in subs.into_iter().rev() {
                            g.push_front((f, depth + 1));
                        }
                        continue;
                    }
                    if file.is_empty() {
                        continue;
                    }
                    let input = file.reader()?.read_all()?;
                    ctx.resident_acquire(input.len());
                    let out = (self.kernel)(&input, &mut self.env, &mut ctx.metrics)?;
                    ctx.resident_acquire(out.len());
                    ctx.resident_release(input.len());
                    self.out = Some(out.into());
                }
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) {
        if let Some(out) = self.out.take() {
            ctx.resident_release(out.len());
        }
        self.grace = None;
        self.child.close_timed(ctx);
    }

    fn rebind(&mut self, env: &Env) {
        self.env = env.clone();
        self.child.rebind(env);
    }

    fn stats(&self) -> OpStats {
        self.stats
    }

    fn stats_mut(&mut self) -> &mut OpStats {
        &mut self.stats
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.child.as_ref()]
    }
}

/// Materialized kernel of a two-input breaker (see [`UnaryKernel`] for the
/// `Fn + Send + Sync` rationale).
type BinaryKernel<'p> = Box<
    dyn Fn(&[Record], &[Record], &mut Env, &mut Metrics) -> Result<Vec<Record>> + Send + Sync + 'p,
>;

/// A two-input pipeline breaker: drains both children, runs a materialized
/// kernel (sort-merge join, set operation), then re-emits in batches.
///
/// Under a memory budget both operands partition on keys that co-locate
/// every interacting pair of rows (equi-join keys; whole output values for
/// set operations), and the kernel runs per partition pair. If only the
/// second operand overflows, the already-buffered first operand is
/// partitioned post hoc so the pairing stays aligned.
struct BinaryBreaker<'p> {
    name: String,
    left: BoxedOperator<'p>,
    right: BoxedOperator<'p>,
    env: Env,
    kernel: BinaryKernel<'p>,
    left_part: PartFn<'p>,
    right_part: PartFn<'p>,
    out: Option<VecDeque<Record>>,
    grace: Option<VecDeque<(SpillFile, SpillFile, usize)>>,
    done: bool,
    stats: OpStats,
}

impl Operator for BinaryBreaker<'_> {
    fn label(&self) -> String {
        self.name.clone()
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        if let Some(out) = self.out.take() {
            ctx.resident_release(out.len());
        }
        self.grace = None;
        self.done = false;
        self.left.open_timed(ctx)?;
        self.right.open_timed(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<Batch>> {
        loop {
            if let Some(out) = self.out.as_mut() {
                if let Some(b) = pop_carry(out, ctx.batch_size(), ctx) {
                    return Ok(Some(b));
                }
                self.out = None;
                if self.grace.is_none() {
                    self.done = true;
                }
            }
            if self.done {
                return Ok(None);
            }
            if self.grace.is_none() {
                let left = spill::drain_or_spill(
                    &mut self.left,
                    ctx,
                    &mut self.env,
                    &self.left_part,
                    false,
                    &mut self.stats,
                )?;
                let right = spill::drain_or_spill(
                    &mut self.right,
                    ctx,
                    &mut self.env,
                    &self.right_part,
                    false,
                    &mut self.stats,
                )?;
                match (left, right) {
                    // The budget bounds the breaker's *combined* state, so
                    // two individually-fitting operands must still spill
                    // when their sum overflows.
                    (Drained::Mem(l), Drained::Mem(r)) if !ctx.over_budget(l.len() + r.len()) => {
                        let out = (self.kernel)(&l, &r, &mut self.env, &mut ctx.metrics)?;
                        ctx.resident_acquire(out.len());
                        ctx.resident_release(l.len() + r.len());
                        drop((l, r));
                        self.out = Some(out.into());
                        continue;
                    }
                    (l, r) => {
                        // At least one side spilled (or the sides only
                        // overflow together): bring both to the same
                        // partitioned form.
                        let lf = match l {
                            Drained::Spilled(files) => files,
                            Drained::Mem(rows) => {
                                let n = rows.len();
                                let files = spill::spill_rows(
                                    rows,
                                    ctx,
                                    &mut self.env,
                                    &self.left_part,
                                    false,
                                    &mut self.stats,
                                )?;
                                ctx.resident_release(n);
                                files
                            }
                        };
                        let rf = match r {
                            Drained::Spilled(files) => files,
                            Drained::Mem(rows) => {
                                let n = rows.len();
                                let files = spill::spill_rows(
                                    rows,
                                    ctx,
                                    &mut self.env,
                                    &self.right_part,
                                    false,
                                    &mut self.stats,
                                )?;
                                ctx.resident_release(n);
                                files
                            }
                        };
                        self.grace = Some(lf.into_iter().zip(rf).map(|(a, b)| (a, b, 1)).collect());
                    }
                }
            }
            if ctx.threads() > 1 {
                // Parallel grace: kernel per partition pair on a worker
                // wave, outputs gathered in pair order. Budget-capped on
                // the summed pair sizes, ≥ 1 pair per wave.
                let mut wave: Vec<(SpillFile, SpillFile)> = Vec::new();
                let mut wave_rows: u64 = 0;
                while wave.len() < ctx.threads() {
                    let next = self.grace.as_mut().expect("grace mode engaged").pop_front();
                    let Some((lf, rf, depth)) = next else { break };
                    let total = lf.rows() + rf.rows();
                    if ctx.over_budget(total as usize) && depth < MAX_REPARTITION_DEPTH && total > 1
                    {
                        let seed = depth as u64;
                        let nl = spill::repartition(
                            lf,
                            ctx,
                            &mut self.env,
                            &self.left_part,
                            seed,
                            false,
                            &mut self.stats,
                        )?;
                        let nr = spill::repartition(
                            rf,
                            ctx,
                            &mut self.env,
                            &self.right_part,
                            seed,
                            false,
                            &mut self.stats,
                        )?;
                        let g = self.grace.as_mut().expect("still grace");
                        for (a, b) in nl.into_iter().zip(nr).rev() {
                            g.push_front((a, b, depth + 1));
                        }
                        continue;
                    }
                    if lf.is_empty() && rf.is_empty() {
                        continue;
                    }
                    if !wave.is_empty() && ctx.over_budget((wave_rows + total) as usize) {
                        let g = self.grace.as_mut().expect("still grace");
                        g.push_front((lf, rf, depth));
                        break;
                    }
                    wave_rows += total;
                    wave.push((lf, rf));
                }
                if wave.is_empty() {
                    self.done = true;
                    return Ok(None);
                }
                ctx.resident_acquire(wave_rows as usize);
                let base_env = &self.env;
                let kernel = &self.kernel;
                let results = exchange::scatter(
                    ctx.threads(),
                    wave,
                    |(lf, rf)| -> Result<(Vec<Record>, Metrics)> {
                        let mut env = base_env.clone();
                        let mut m = Metrics::new();
                        let l = lf.reader()?.read_all()?;
                        let r = rf.reader()?.read_all()?;
                        let out = (kernel)(&l, &r, &mut env, &mut m)?;
                        Ok((out, m))
                    },
                );
                ctx.resident_release(wave_rows as usize);
                let mut combined: VecDeque<Record> = VecDeque::new();
                for res in results {
                    let (rows, m) = res?;
                    ctx.metrics += m;
                    ctx.resident_acquire(rows.len());
                    combined.extend(rows);
                }
                self.out = Some(combined);
                continue;
            }
            // Grace mode: kernel per partition pair.
            let g = self.grace.as_mut().expect("grace mode engaged");
            match g.pop_front() {
                None => {
                    self.done = true;
                    return Ok(None);
                }
                Some((lf, rf, depth)) => {
                    let total = lf.rows() + rf.rows();
                    if ctx.over_budget(total as usize) && depth < MAX_REPARTITION_DEPTH && total > 1
                    {
                        let seed = depth as u64;
                        let nl = spill::repartition(
                            lf,
                            ctx,
                            &mut self.env,
                            &self.left_part,
                            seed,
                            false,
                            &mut self.stats,
                        )?;
                        let nr = spill::repartition(
                            rf,
                            ctx,
                            &mut self.env,
                            &self.right_part,
                            seed,
                            false,
                            &mut self.stats,
                        )?;
                        let g = self.grace.as_mut().expect("still grace");
                        for (a, b) in nl.into_iter().zip(nr).rev() {
                            g.push_front((a, b, depth + 1));
                        }
                        continue;
                    }
                    if lf.is_empty() && rf.is_empty() {
                        continue;
                    }
                    let l = lf.reader()?.read_all()?;
                    let r = rf.reader()?.read_all()?;
                    ctx.resident_acquire(l.len() + r.len());
                    let out = (self.kernel)(&l, &r, &mut self.env, &mut ctx.metrics)?;
                    ctx.resident_acquire(out.len());
                    ctx.resident_release(l.len() + r.len());
                    self.out = Some(out.into());
                }
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) {
        if let Some(out) = self.out.take() {
            ctx.resident_release(out.len());
        }
        self.grace = None;
        self.left.close_timed(ctx);
        self.right.close_timed(ctx);
    }

    fn rebind(&mut self, env: &Env) {
        self.env = env.clone();
        self.left.rebind(env);
        self.right.rebind(env);
    }

    fn stats(&self) -> OpStats {
        self.stats
    }

    fn stats_mut(&mut self) -> &mut OpStats {
        &mut self.stats
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.left.as_ref(), self.right.as_ref()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExecConfig;
    use crate::exec::ExecContext;
    use tmql_algebra::ScalarExpr as E;
    use tmql_storage::{table::int_table, Catalog};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let rows: Vec<Vec<i64>> = (0..10).map(|i| vec![i, i % 3]).collect();
        cat.register(int_table(
            "X",
            &["a", "b"],
            &rows.iter().map(Vec::as_slice).collect::<Vec<_>>(),
        ))
        .unwrap();
        cat
    }

    fn scan_filter() -> PhysPlan {
        PhysPlan::Filter {
            input: Box::new(PhysPlan::ScanTable {
                table: "X".into(),
                var: "x".into(),
            }),
            pred: E::cmp(tmql_algebra::CmpOp::Gt, E::path("x", &["a"]), E::lit(3i64)),
        }
    }

    #[test]
    fn batches_respect_batch_size() {
        let cat = catalog();
        let plan = PhysPlan::ScanTable {
            table: "X".into(),
            var: "x".into(),
        };
        // Serial: the exact shape is pinned — full batches then the rest.
        let mut ctx =
            ExecContext::with_config(&cat, &ExecConfig::default().batch_size(3).threads(1));
        let mut root = build(&plan, &Env::new());
        root.open(&mut ctx).unwrap();
        let mut sizes = Vec::new();
        while let Some(b) = root.pull(&mut ctx).unwrap() {
            assert!(!b.is_empty(), "operators never emit empty batches");
            sizes.push(b.len());
        }
        root.close(&mut ctx);
        assert_eq!(sizes, vec![3, 3, 3, 1]);
        assert_eq!(ctx.metrics.batches_emitted, 4);
        assert_eq!(ctx.metrics.rows_scanned, 10);
        // Parallel waves may cut differently (⌈batch/threads⌉-row
        // morsels), but the cap and the row total are invariant.
        let mut ctx =
            ExecContext::with_config(&cat, &ExecConfig::default().batch_size(3).threads(4));
        let mut root = build(&plan, &Env::new());
        root.open(&mut ctx).unwrap();
        while let Some(b) = root.pull(&mut ctx).unwrap() {
            assert!(!b.is_empty(), "operators never emit empty batches");
            assert!(b.len() <= 3, "batch overflows batch_size: {}", b.len());
        }
        root.close(&mut ctx);
        assert_eq!(ctx.metrics.rows_scanned, 10);
    }

    #[test]
    fn per_op_stats_show_in_profile_tree() {
        let cat = catalog();
        let plan = scan_filter();
        let mut ctx = ExecContext::with_config(&cat, &ExecConfig::default().batch_size(4));
        let mut root = build(&plan, &Env::new());
        root.open(&mut ctx).unwrap();
        let rows = drain(&mut root, &mut ctx).unwrap();
        root.close(&mut ctx);
        assert_eq!(rows.len(), 6);
        let tree = render_tree(root.as_ref());
        assert!(tree.contains("Filter [rows=6"), "{tree}");
        assert!(tree.contains("Scan(X) [rows=10"), "{tree}");
    }

    #[test]
    fn resident_gauge_returns_to_zero_after_close() {
        let cat = catalog();
        // A breaker (Nest) plus dedup state (Map): both must release.
        let plan = PhysPlan::Nest {
            input: Box::new(PhysPlan::Map {
                input: Box::new(PhysPlan::ScanTable {
                    table: "X".into(),
                    var: "x".into(),
                }),
                expr: E::path("x", &["b"]),
                var: "v".into(),
            }),
            keys: vec!["v".into()],
            value: E::var("v"),
            label: "vs".into(),
            star: false,
        };
        let mut ctx = ExecContext::with_config(&cat, &ExecConfig::default().batch_size(2));
        let mut root = build(&plan, &Env::new());
        root.open(&mut ctx).unwrap();
        let _ = drain(&mut root, &mut ctx).unwrap();
        root.close(&mut ctx);
        assert!(
            ctx.metrics.peak_resident_rows > 0,
            "breaker state was tracked"
        );
        assert_eq!(ctx.resident_rows(), 0, "close released everything");
    }
}
