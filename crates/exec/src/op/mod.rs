//! Physical operator implementations.
//!
//! The join family lives in three modules — [`nl`], [`hash`], [`merge`] —
//! each implementing **all five** [`crate::JoinKind`]s, demonstrating the
//! paper's observation that the nest join is "a simple modification of any
//! common join implementation method" (Section 6). Grouping operators are
//! in [`group`]. These are the materialized *kernels*; the Volcano-style
//! streaming operator tree that drives them batch-at-a-time is in
//! [`operator`].

pub mod apply;
pub mod exchange;
pub mod group;
pub mod hash;
pub mod merge;
pub mod nl;
pub mod operator;
pub mod spill;

use tmql_algebra::Env;
use tmql_model::{Record, Result, Value};

/// Deduplicate rows preserving first-occurrence order (TM set semantics).
pub fn dedup(rows: Vec<Record>) -> Vec<Record> {
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::with_capacity(rows.len());
    for r in rows {
        if seen.insert(r.clone()) {
            out.push(r);
        }
    }
    out
}

/// Evaluate a list of key expressions for a row pushed on `env`.
/// Returns `None` if any key is NULL (NULL never equi-joins).
pub fn eval_keys(keys: &[tmql_algebra::ScalarExpr], env: &mut Env) -> Result<Option<Vec<Value>>> {
    let mut out = Vec::with_capacity(keys.len());
    for k in keys {
        let v = tmql_algebra::eval(k, env)?;
        if v.is_null() {
            return Ok(None);
        }
        out.push(v);
    }
    Ok(Some(out))
}

/// Push a row's bindings, run `f`, pop them again.
pub fn with_row<T>(
    env: &mut Env,
    row: &Record,
    f: impl FnOnce(&mut Env) -> Result<T>,
) -> Result<T> {
    env.push_row(row);
    let r = f(env);
    env.pop_n(row.len());
    r
}

/// NULL-extend a row with the given variables (outerjoin dangling side).
pub fn null_extend(row: &Record, vars: &[String]) -> Result<Record> {
    let mut out = row.clone();
    for v in vars {
        out.push(v.clone(), Value::Null)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmql_algebra::ScalarExpr as E;

    #[test]
    fn dedup_keeps_first_occurrence_order() {
        let a = Record::new([("x".to_string(), Value::Int(1))]).unwrap();
        let b = Record::new([("x".to_string(), Value::Int(2))]).unwrap();
        let out = dedup(vec![b.clone(), a.clone(), b.clone()]);
        assert_eq!(out, vec![b, a]);
    }

    #[test]
    fn eval_keys_rejects_null() {
        let mut env = Env::new();
        env.push("x", Value::Null);
        let keys = vec![E::var("x")];
        assert_eq!(eval_keys(&keys, &mut env).unwrap(), None);
        env.push("x", Value::Int(3));
        assert_eq!(
            eval_keys(&keys, &mut env).unwrap(),
            Some(vec![Value::Int(3)])
        );
    }

    #[test]
    fn with_row_restores_env() {
        let mut env = Env::new();
        let row = Record::new([("a".to_string(), Value::Int(1))]).unwrap();
        let v = with_row(&mut env, &row, |e| e.get("a").cloned()).unwrap();
        assert_eq!(v, Value::Int(1));
        assert!(env.is_empty());
    }

    #[test]
    fn null_extend_binds_nulls() {
        let row = Record::new([("x".to_string(), Value::Int(1))]).unwrap();
        let out = null_extend(&row, &["y".to_string(), "z".to_string()]).unwrap();
        assert!(out.get("y").unwrap().is_null());
        assert!(out.get("z").unwrap().is_null());
    }
}
