//! Sort-merge join.
//!
//! Both operands are sorted by their key expressions, then key groups are
//! merged pairwise. Because the left operand arrives in key order, the
//! nest join's per-left-row grouping falls out of the merge for free — the
//! paper's other "common join implementation method" (Section 6). Rows with
//! NULL keys are excluded (they cannot equi-match) except that for the
//! outer/anti/nest kinds the left row must still surface as dangling.

use std::collections::BTreeSet;

use tmql_algebra::{eval, eval_predicate, Env, ScalarExpr};
use tmql_model::{Record, Result, Value};

use crate::metrics::Metrics;
use crate::physical::JoinKind;

use super::{eval_keys, null_extend, with_row};

/// One operand row tagged with its evaluated key (`None` = NULL key).
struct Keyed<'a> {
    key: Option<Vec<Value>>,
    row: &'a Record,
}

fn sort_side<'a>(
    rows: &'a [Record],
    keys: &[ScalarExpr],
    env: &mut Env,
    m: &mut Metrics,
) -> Result<Vec<Keyed<'a>>> {
    let mut keyed = Vec::with_capacity(rows.len());
    for row in rows {
        let key = with_row(env, row, |e| eval_keys(keys, e))?;
        keyed.push(Keyed { key, row });
        m.rows_sorted += 1;
    }
    keyed.sort_by(|a, b| a.key.cmp(&b.key));
    Ok(keyed)
}

/// Sort-merge join of materialized operands on equi-keys plus an optional
/// residual predicate.
#[allow(clippy::too_many_arguments)]
pub fn join(
    left: &[Record],
    right: &[Record],
    left_keys: &[ScalarExpr],
    right_keys: &[ScalarExpr],
    residual: Option<&ScalarExpr>,
    kind: &JoinKind,
    env: &mut Env,
    m: &mut Metrics,
) -> Result<Vec<Record>> {
    let ls = sort_side(left, left_keys, env, m)?;
    let rs = sort_side(right, right_keys, env, m)?;
    let mut out = Vec::new();

    // `None` keys sort first; skip them on the right, treat as dangling on
    // the left.
    let mut ri = 0usize;
    while ri < rs.len() && rs[ri].key.is_none() {
        ri += 1;
    }

    let mut li = 0usize;
    while li < ls.len() {
        let lkey = &ls[li].key;
        if lkey.is_none() {
            emit_dangling(ls[li].row, kind, &mut out)?;
            li += 1;
            continue;
        }
        // Advance right cursor to the left key.
        while ri < rs.len() && rs[ri].key.as_ref() < lkey.as_ref() {
            m.comparisons += 1;
            ri += 1;
        }
        // Right group [ri, rj) with equal key.
        let mut rj = ri;
        while rj < rs.len() && rs[rj].key == *lkey {
            rj += 1;
        }
        if ri == rj {
            emit_dangling(ls[li].row, kind, &mut out)?;
            li += 1;
            continue;
        }
        // Left group [li, lj) with equal key — all join against the same
        // right group.
        let mut lj = li;
        while lj < ls.len() && ls[lj].key == *lkey {
            lj += 1;
        }
        for lrow in &ls[li..lj] {
            let l = lrow.row;
            env.push_row(l);
            let mut matched = false;
            let mut nested: BTreeSet<Value> = BTreeSet::new();
            for rrow in &rs[ri..rj] {
                let r = rrow.row;
                env.push_row(r);
                let hit = match residual {
                    Some(p) => {
                        m.comparisons += 1;
                        eval_predicate(p, env)
                    }
                    None => Ok(true),
                };
                let hit = match hit {
                    Ok(h) => h,
                    Err(e) => {
                        env.pop_n(r.len());
                        env.pop_n(l.len());
                        return Err(e);
                    }
                };
                if hit {
                    matched = true;
                    match kind {
                        JoinKind::Inner | JoinKind::LeftOuter { .. } => out.push(l.concat(r)?),
                        JoinKind::Semi | JoinKind::Anti => {
                            env.pop_n(r.len());
                            break;
                        }
                        JoinKind::Nest { func, .. } => {
                            nested.insert(eval(func, env)?);
                        }
                    }
                }
                env.pop_n(r.len());
            }
            env.pop_n(l.len());
            match kind {
                JoinKind::Inner => {}
                JoinKind::Semi => {
                    if matched {
                        out.push(l.clone());
                    }
                }
                JoinKind::Anti => {
                    if !matched {
                        out.push(l.clone());
                    }
                }
                JoinKind::LeftOuter { right_vars } => {
                    if !matched {
                        out.push(null_extend(l, right_vars)?);
                    }
                }
                JoinKind::Nest { label, .. } => {
                    out.push(l.extend_field(label, Value::Set(nested))?);
                }
            }
        }
        li = lj;
        ri = rj;
    }
    Ok(out)
}

/// A left row with no possible match: emitted for anti/outer/nest kinds,
/// dropped for inner/semi.
fn emit_dangling(l: &Record, kind: &JoinKind, out: &mut Vec<Record>) -> Result<()> {
    match kind {
        JoinKind::Inner | JoinKind::Semi => {}
        JoinKind::Anti => out.push(l.clone()),
        JoinKind::LeftOuter { right_vars } => out.push(null_extend(l, right_vars)?),
        JoinKind::Nest { label, .. } => out.push(l.extend_field(label, Value::empty_set())?),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmql_algebra::ScalarExpr as E;

    fn rows(name: &str, vals: &[(i64, i64)], f1: &str, f2: &str) -> Vec<Record> {
        vals.iter()
            .map(|(a, b)| {
                let tup = Record::new([
                    (f1.to_string(), Value::Int(*a)),
                    (f2.to_string(), Value::Int(*b)),
                ])
                .unwrap();
                Record::new([(name.to_string(), Value::Tuple(tup))]).unwrap()
            })
            .collect()
    }

    #[test]
    fn agrees_with_nested_loop_for_all_kinds() {
        // Unsorted inputs with duplicates-per-key and dangling rows on both
        // sides.
        let x = rows("x", &[(3, 3), (1, 1), (4, 9), (2, 1), (5, 3)], "e", "d");
        let y = rows("y", &[(2, 1), (3, 3), (1, 1), (7, 8)], "a", "b");
        let lk = vec![E::path("x", &["d"])];
        let rk = vec![E::path("y", &["b"])];
        let pred = E::eq(E::path("x", &["d"]), E::path("y", &["b"]));
        let kinds = [
            JoinKind::Inner,
            JoinKind::Semi,
            JoinKind::Anti,
            JoinKind::LeftOuter {
                right_vars: vec!["y".into()],
            },
            JoinKind::Nest {
                func: E::var("y"),
                label: "s".into(),
            },
        ];
        for kind in kinds {
            let mj = join(
                &x,
                &y,
                &lk,
                &rk,
                None,
                &kind,
                &mut Env::new(),
                &mut Metrics::new(),
            )
            .unwrap();
            let nl =
                super::super::nl::join(&x, &y, &pred, &kind, &mut Env::new(), &mut Metrics::new())
                    .unwrap();
            let ms: BTreeSet<Record> = mj.into_iter().collect();
            let ns: BTreeSet<Record> = nl.into_iter().collect();
            assert_eq!(ms, ns, "kind {:?}", kind.name());
        }
    }

    #[test]
    fn nest_join_groups_per_left_row() {
        let x = rows("x", &[(1, 1), (2, 1)], "e", "d");
        let y = rows("y", &[(10, 1), (11, 1)], "a", "b");
        let kind = JoinKind::Nest {
            func: E::path("y", &["a"]),
            label: "s".into(),
        };
        let out = join(
            &x,
            &y,
            &[E::path("x", &["d"])],
            &[E::path("y", &["b"])],
            None,
            &kind,
            &mut Env::new(),
            &mut Metrics::new(),
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        for row in &out {
            assert_eq!(row.get("s").unwrap().as_set().unwrap().len(), 2);
        }
    }

    #[test]
    fn left_null_keys_are_dangling() {
        let mut x = rows("x", &[(1, 1)], "e", "d");
        let null_tup = Record::new([
            ("e".to_string(), Value::Int(9)),
            ("d".to_string(), Value::Null),
        ])
        .unwrap();
        x.push(Record::new([("x".to_string(), Value::Tuple(null_tup))]).unwrap());
        let y = rows("y", &[(1, 1)], "a", "b");
        let kind = JoinKind::Nest {
            func: E::var("y"),
            label: "s".into(),
        };
        let out = join(
            &x,
            &y,
            &[E::path("x", &["d"])],
            &[E::path("y", &["b"])],
            None,
            &kind,
            &mut Env::new(),
            &mut Metrics::new(),
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        let null_row = out
            .iter()
            .find(|r| {
                r.get("x")
                    .unwrap()
                    .as_tuple()
                    .unwrap()
                    .get("d")
                    .unwrap()
                    .is_null()
            })
            .unwrap();
        assert_eq!(null_row.get("s").unwrap(), &Value::empty_set());
    }

    #[test]
    fn sort_metric_counts_both_sides() {
        let x = rows("x", &[(1, 1), (2, 2)], "e", "d");
        let y = rows("y", &[(1, 1)], "a", "b");
        let mut m = Metrics::new();
        let _ = join(
            &x,
            &y,
            &[E::path("x", &["d"])],
            &[E::path("y", &["b"])],
            None,
            &JoinKind::Inner,
            &mut Env::new(),
            &mut m,
        )
        .unwrap();
        assert_eq!(m.rows_sorted, 3);
    }
}
