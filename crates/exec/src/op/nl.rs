//! Nested-loop join: the universal fallback, correct for arbitrary
//! predicates and every [`JoinKind`].
//!
//! The kernel is **chunk-feedable**: [`BlockState`] carries the
//! per-left-row match flags (and nest-join accumulator sets) across
//! successive chunks of the inner operand, so the operator can stream a
//! spilled inner side from disk in batches — block nested loop — instead
//! of holding it resident. [`join`] is the one-chunk convenience wrapper
//! for fully materialized operands.

use std::collections::BTreeSet;

use tmql_algebra::{eval, eval_predicate, Env, ScalarExpr};
use tmql_model::{Record, Result, Value};

use crate::metrics::Metrics;
use crate::physical::JoinKind;

use super::null_extend;

/// Per-left-row state of a block nested-loop join, carried across inner
/// chunks: which left rows have matched so far, and (for the nest join)
/// the accumulator set each left row is building — "for each left operand
/// tuple a set is created to hold the (possibly modified) right operand
/// tuples that match" (Section 6).
#[derive(Debug)]
pub struct BlockState {
    matched: Vec<bool>,
    nested: Vec<BTreeSet<Value>>,
}

impl BlockState {
    /// Fresh state for a block of `left_len` outer rows.
    pub fn new(left_len: usize, kind: &JoinKind) -> BlockState {
        BlockState {
            matched: vec![false; left_len],
            nested: if matches!(kind, JoinKind::Nest { .. }) {
                vec![BTreeSet::new(); left_len]
            } else {
                Vec::new()
            },
        }
    }
}

/// Join one chunk of the inner operand against the whole left block,
/// updating `state` and appending matched output (inner/outer pairs, semi
/// rows on first match) to `out`. Call [`finish_block`] after the last
/// chunk to emit what depends on the full inner scan (anti rows, dangling
/// outer rows, nest-join sets).
#[allow(clippy::too_many_arguments)] // mirrors the other join kernels' shape
pub fn join_chunk(
    left: &[Record],
    chunk: &[Record],
    pred: &ScalarExpr,
    kind: &JoinKind,
    env: &mut Env,
    m: &mut Metrics,
    state: &mut BlockState,
    out: &mut Vec<Record>,
) -> Result<()> {
    for (i, l) in left.iter().enumerate() {
        if state.matched[i] && matches!(kind, JoinKind::Semi | JoinKind::Anti) {
            // Existence already decided in an earlier chunk (or row).
            continue;
        }
        env.push_row(l);
        for r in chunk {
            env.push_row(r);
            m.comparisons += 1;
            let hit = eval_predicate(pred, env);
            let hit = match hit {
                Ok(h) => h,
                Err(e) => {
                    env.pop_n(r.len());
                    env.pop_n(l.len());
                    return Err(e);
                }
            };
            if hit {
                let first = !state.matched[i];
                state.matched[i] = true;
                match kind {
                    JoinKind::Inner | JoinKind::LeftOuter { .. } => {
                        out.push(l.concat(r)?);
                    }
                    JoinKind::Semi | JoinKind::Anti => {
                        // Existence decided; no need to scan further.
                        if first && matches!(kind, JoinKind::Semi) {
                            out.push(l.clone());
                        }
                        env.pop_n(r.len());
                        break;
                    }
                    JoinKind::Nest { func, .. } => {
                        state.nested[i].insert(eval(func, env)?);
                    }
                }
            }
            env.pop_n(r.len());
        }
        env.pop_n(l.len());
    }
    Ok(())
}

/// Emit the part of a block's output that needs the whole inner scan:
/// anti-join survivors, NULL-extended dangling outer rows, and nest-join
/// rows (dangling tuples get label = ∅, never NULL).
pub fn finish_block(
    left: &[Record],
    kind: &JoinKind,
    state: &mut BlockState,
    out: &mut Vec<Record>,
) -> Result<()> {
    for (i, l) in left.iter().enumerate() {
        match kind {
            JoinKind::Inner | JoinKind::Semi => {}
            JoinKind::Anti => {
                if !state.matched[i] {
                    out.push(l.clone());
                }
            }
            JoinKind::LeftOuter { right_vars } => {
                if !state.matched[i] {
                    out.push(null_extend(l, right_vars)?);
                }
            }
            JoinKind::Nest { label, .. } => {
                out.push(l.extend_field(label, Value::Set(std::mem::take(&mut state.nested[i])))?);
            }
        }
    }
    Ok(())
}

/// Nested-loop join of fully materialized operands (one chunk + finish).
pub fn join(
    left: &[Record],
    right: &[Record],
    pred: &ScalarExpr,
    kind: &JoinKind,
    env: &mut Env,
    m: &mut Metrics,
) -> Result<Vec<Record>> {
    let mut out = Vec::new();
    let mut state = BlockState::new(left.len(), kind);
    join_chunk(left, right, pred, kind, env, m, &mut state, &mut out)?;
    finish_block(left, kind, &mut state, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmql_algebra::ScalarExpr as E;

    fn rows(name: &str, vals: &[(i64, i64)], f1: &str, f2: &str) -> Vec<Record> {
        vals.iter()
            .map(|(a, b)| {
                let tup = Record::new([
                    (f1.to_string(), Value::Int(*a)),
                    (f2.to_string(), Value::Int(*b)),
                ])
                .unwrap();
                Record::new([(name.to_string(), Value::Tuple(tup))]).unwrap()
            })
            .collect()
    }

    /// The paper's Table 1 operands: X(e, d) = {(1,1),(2,1),(3,3)},
    /// Y(a, b) = {(1,1),(2,1),(3,3)} equijoined on the second attribute.
    fn table1() -> (Vec<Record>, Vec<Record>, E) {
        let x = rows("x", &[(1, 1), (2, 1), (3, 3)], "e", "d");
        let y = rows("y", &[(1, 1), (2, 1), (3, 3)], "a", "b");
        let pred = E::eq(E::path("x", &["d"]), E::path("y", &["b"]));
        (x, y, pred)
    }

    #[test]
    fn inner_join_counts() {
        let (x, y, pred) = table1();
        let mut m = Metrics::new();
        let out = join(&x, &y, &pred, &JoinKind::Inner, &mut Env::new(), &mut m).unwrap();
        // d=1 matches b=1 twice for two x rows (4 pairs) + d=3/b=3 (1 pair).
        assert_eq!(out.len(), 5);
        assert_eq!(m.comparisons, 9);
    }

    #[test]
    fn nest_join_reproduces_table1() {
        let (x, y, pred) = table1();
        let mut m = Metrics::new();
        let kind = JoinKind::Nest {
            func: E::var("y"),
            label: "s".into(),
        };
        let out = join(&x, &y, &pred, &kind, &mut Env::new(), &mut m).unwrap();
        assert_eq!(out.len(), 3, "every left tuple survives");
        // x=(2,1): matches y=(1,1),(2,1) — wait, x=(2,1).d=1 matches b=1.
        let row0 = &out[0];
        assert_eq!(row0.get("s").unwrap().as_set().unwrap().len(), 2);
        // Paper's dangling example is x=(2,2) in Table 1; in this fixture
        // every x matches, so check ∅ with a separate dangling row below.
    }

    #[test]
    fn nest_join_dangling_gets_empty_set() {
        let x = rows("x", &[(2, 2)], "e", "d");
        let y = rows("y", &[(1, 1)], "a", "b");
        let pred = E::eq(E::path("x", &["d"]), E::path("y", &["b"]));
        let kind = JoinKind::Nest {
            func: E::var("y"),
            label: "s".into(),
        };
        let out = join(&x, &y, &pred, &kind, &mut Env::new(), &mut Metrics::new()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get("s").unwrap(), &Value::empty_set());
    }

    #[test]
    fn semi_and_anti_partition_left() {
        let (x, y, pred) = table1();
        let semi = join(
            &x,
            &y,
            &pred,
            &JoinKind::Semi,
            &mut Env::new(),
            &mut Metrics::new(),
        )
        .unwrap();
        let anti = join(
            &x,
            &y,
            &pred,
            &JoinKind::Anti,
            &mut Env::new(),
            &mut Metrics::new(),
        )
        .unwrap();
        assert_eq!(semi.len() + anti.len(), x.len());
        assert_eq!(semi.len(), 3);
    }

    #[test]
    fn semi_short_circuits() {
        let (x, y, pred) = table1();
        let mut m = Metrics::new();
        let _ = join(&x, &y, &pred, &JoinKind::Semi, &mut Env::new(), &mut m).unwrap();
        // x1 stops at first y (1 cmp), x2 stops at first y (1), x3 scans to
        // third (3): fewer than the 9 full comparisons.
        assert!(
            m.comparisons < 9,
            "semijoin must short-circuit: {}",
            m.comparisons
        );
    }

    #[test]
    fn outer_join_null_extends() {
        let x = rows("x", &[(1, 1), (2, 9)], "e", "d");
        let y = rows("y", &[(1, 1)], "a", "b");
        let pred = E::eq(E::path("x", &["d"]), E::path("y", &["b"]));
        let kind = JoinKind::LeftOuter {
            right_vars: vec!["y".into()],
        };
        let out = join(&x, &y, &pred, &kind, &mut Env::new(), &mut Metrics::new()).unwrap();
        assert_eq!(out.len(), 2);
        let dangling = out.iter().find(|r| r.get("y").unwrap().is_null());
        assert!(dangling.is_some(), "dangling x must be NULL-extended");
    }

    #[test]
    fn chunked_inner_agrees_with_materialized_for_every_kind() {
        // Left rows matching in the first chunk, the second chunk, both,
        // or neither — the cases that distinguish block state handling.
        let x = rows("x", &[(1, 1), (2, 2), (3, 3), (4, 9)], "e", "d");
        let y = rows("y", &[(1, 1), (2, 3), (3, 2), (4, 3), (5, 1)], "a", "b");
        let pred = E::eq(E::path("x", &["d"]), E::path("y", &["b"]));
        let kinds = [
            JoinKind::Inner,
            JoinKind::Semi,
            JoinKind::Anti,
            JoinKind::LeftOuter {
                right_vars: vec!["y".into()],
            },
            JoinKind::Nest {
                func: E::var("y"),
                label: "s".into(),
            },
        ];
        for kind in &kinds {
            let whole = join(&x, &y, &pred, kind, &mut Env::new(), &mut Metrics::new()).unwrap();
            for chunk_size in [1usize, 2, 3, 5] {
                let mut state = BlockState::new(x.len(), kind);
                let mut out = Vec::new();
                for chunk in y.chunks(chunk_size) {
                    join_chunk(
                        &x,
                        chunk,
                        &pred,
                        kind,
                        &mut Env::new(),
                        &mut Metrics::new(),
                        &mut state,
                        &mut out,
                    )
                    .unwrap();
                }
                finish_block(&x, kind, &mut state, &mut out).unwrap();
                let a: BTreeSet<&Record> = whole.iter().collect();
                let b: BTreeSet<&Record> = out.iter().collect();
                assert_eq!(a, b, "kind {kind:?} chunk {chunk_size}");
                assert_eq!(whole.len(), out.len(), "kind {kind:?} chunk {chunk_size}");
            }
        }
    }
}
