//! Larger-than-memory execution: partitioned spilling for pipeline
//! breakers.
//!
//! When [`crate::ExecConfig::memory_budget_rows`] is set, every pipeline
//! breaker bounds its resident state with the classic grace discipline:
//! rows are hash-partitioned by the operator's key into
//! [`SPILL_FANOUT`]-way on-disk runs ([`tmql_storage::spill`]), and each
//! partition is then processed independently — a partition holds every row
//! that could possibly interact (equal keys, equal group keys, equal
//! values), so per-partition results concatenate to the global result.
//! A partition that still exceeds the budget is **recursively
//! repartitioned** with a fresh hash seed, up to
//! [`MAX_REPARTITION_DEPTH`]; past that (pathological skew: one key
//! carrying more rows than the whole budget) the partition is processed in
//! memory anyway — correctness first, the gauge records the overshoot.
//!
//! Three entry points cover the breaker shapes:
//!
//! * [`drain_or_spill`] — accumulate a child's stream in memory, switching
//!   to partitioned spill the moment the budget is crossed (hash-join
//!   builds, grouping inputs, set-op / sort-merge operands);
//! * [`spill_stream`] / [`spill_rows`] — partition unconditionally (the
//!   probe side of a grace hash join; an already-materialized operand
//!   whose sibling spilled);
//! * [`SpillDedup`] — the hybrid dedup used by Map / Project: streams
//!   distinct rows while the seen-set fits, and degrades to a two-file
//!   (seen, candidate) partitioned dedup when it does not.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, VecDeque};
use std::hash::{Hash, Hasher};

use tmql_algebra::Env;
use tmql_model::{Record, Result};
use tmql_storage::spill::{RunReader, RunWriter, SpillFile};

use crate::exec::ExecContext;
use crate::metrics::Metrics;
use crate::op::operator::{BoxedOperator, OpStats};

/// Number of partitions per spill pass. 8-way: a breaker at `k×` the
/// budget lands partitions at `k/8 ×`, so one pass absorbs overshoots up
/// to 8× and recursion handles the rest.
pub const SPILL_FANOUT: usize = 8;

/// Maximum recursive repartitioning depth. With [`SPILL_FANOUT`] = 8 this
/// gives up to `8^4 = 4096` effective partitions before skew is accepted.
pub const MAX_REPARTITION_DEPTH: usize = 4;

/// Partition-key function of one operator: the hash of the row's
/// partitioning key under the given seed, or `None` when the key is NULL
/// (the caller decides whether NULL-key rows are dropped — hash-join build
/// sides — or routed to partition 0 so they stay together).
pub type PartFn<'p> = Box<dyn Fn(&Record, &mut Env, u64) -> Result<Option<u64>> + 'p>;

/// A hasher mixing in a recursion-level seed, so repartitioning a skewed
/// partition redistributes rows instead of reproducing the same split.
pub fn seed_hasher(seed: u64) -> DefaultHasher {
    let mut h = DefaultHasher::new();
    h.write_u64(0x746d_716c ^ seed.rotate_left(17));
    h
}

/// Hash a whole record under a seed (partitioning key for dedup state,
/// where the row itself is the key).
pub fn hash_record(rec: &Record, seed: u64) -> u64 {
    let mut h = seed_hasher(seed);
    rec.hash(&mut h);
    h.finish()
}

/// Route one record into the partition its hash selects, counting the
/// spill traffic. NULL-key rows are dropped or sent to partition 0 per
/// `drop_nullkey`.
#[allow(clippy::too_many_arguments)]
fn route(
    writers: &mut [RunWriter],
    part: &PartFn<'_>,
    env: &mut Env,
    rec: &Record,
    seed: u64,
    drop_nullkey: bool,
    m: &mut Metrics,
    ops: &mut OpStats,
) -> Result<()> {
    let idx = match part(rec, env, seed)? {
        Some(h) => (h % writers.len() as u64) as usize,
        None if drop_nullkey => return Ok(()),
        None => 0,
    };
    writers[idx].write(rec)?;
    m.rows_spilled += 1;
    ops.rows_spilled += 1;
    Ok(())
}

/// Seal a set of partition writers, counting the non-empty ones. The
/// returned files keep their positions (callers pair build/probe
/// partitions by index), including empty ones.
fn finish_runs(writers: Vec<RunWriter>, ctx: &mut ExecContext<'_>) -> Result<Vec<SpillFile>> {
    let mut out = Vec::with_capacity(writers.len());
    for w in writers {
        let f = w.finish()?;
        if !f.is_empty() {
            ctx.metrics.spill_partitions += 1;
        }
        out.push(f);
    }
    Ok(out)
}

/// Outcome of [`drain_or_spill`].
pub enum Drained {
    /// The input fit in the budget. The rows are **already counted** in
    /// the resident gauge; the caller releases them when done.
    Mem(Vec<Record>),
    /// The input overflowed and was hash-partitioned to disk (seed 0).
    /// Nothing is resident.
    Spilled(Vec<SpillFile>),
}

/// Drain `child` to completion, buffering in memory while the budget
/// allows and switching to [`SPILL_FANOUT`]-way partitioned spill (seed 0)
/// the moment it does not. Without a budget this is a plain materializing
/// drain.
pub fn drain_or_spill(
    child: &mut BoxedOperator<'_>,
    ctx: &mut ExecContext<'_>,
    env: &mut Env,
    part: &PartFn<'_>,
    drop_nullkey: bool,
    ops: &mut OpStats,
) -> Result<Drained> {
    let mut buf: Vec<Record> = Vec::new();
    let mut writers: Option<Vec<RunWriter>> = None;
    while let Some(b) = child.pull(ctx)? {
        match writers.as_mut() {
            None => {
                ctx.resident_acquire(b.len());
                buf.extend(b.rows);
                if ctx.over_budget(buf.len()) {
                    let mut ws = ctx.spill_runs(SPILL_FANOUT)?;
                    let n = buf.len();
                    for r in buf.drain(..) {
                        route(
                            &mut ws,
                            part,
                            env,
                            &r,
                            0,
                            drop_nullkey,
                            &mut ctx.metrics,
                            ops,
                        )?;
                    }
                    ctx.resident_release(n);
                    writers = Some(ws);
                }
            }
            Some(ws) => {
                for r in b.rows {
                    route(ws, part, env, &r, 0, drop_nullkey, &mut ctx.metrics, ops)?;
                }
            }
        }
    }
    match writers {
        None => Ok(Drained::Mem(buf)),
        Some(ws) => Ok(Drained::Spilled(finish_runs(ws, ctx)?)),
    }
}

/// Drain `child` straight into partitions (seed 0), buffering nothing —
/// the probe side of a grace hash join.
pub fn spill_stream(
    child: &mut BoxedOperator<'_>,
    ctx: &mut ExecContext<'_>,
    env: &mut Env,
    part: &PartFn<'_>,
    drop_nullkey: bool,
    ops: &mut OpStats,
) -> Result<Vec<SpillFile>> {
    let mut ws = ctx.spill_runs(SPILL_FANOUT)?;
    while let Some(b) = child.pull(ctx)? {
        for r in b.rows {
            route(
                &mut ws,
                part,
                env,
                &r,
                0,
                drop_nullkey,
                &mut ctx.metrics,
                ops,
            )?;
        }
    }
    finish_runs(ws, ctx)
}

/// Partition an already-materialized row vector (seed 0). The caller is
/// responsible for releasing the rows' resident accounting.
pub fn spill_rows(
    rows: Vec<Record>,
    ctx: &mut ExecContext<'_>,
    env: &mut Env,
    part: &PartFn<'_>,
    drop_nullkey: bool,
    ops: &mut OpStats,
) -> Result<Vec<SpillFile>> {
    let mut ws = ctx.spill_runs(SPILL_FANOUT)?;
    for r in &rows {
        route(
            &mut ws,
            part,
            env,
            r,
            0,
            drop_nullkey,
            &mut ctx.metrics,
            ops,
        )?;
    }
    finish_runs(ws, ctx)
}

/// Re-split one oversized partition with a fresh seed (skew recovery).
/// Reads the run back batch-at-a-time, so memory stays at one batch.
pub fn repartition(
    file: SpillFile,
    ctx: &mut ExecContext<'_>,
    env: &mut Env,
    part: &PartFn<'_>,
    seed: u64,
    drop_nullkey: bool,
    ops: &mut OpStats,
) -> Result<Vec<SpillFile>> {
    let mut ws = ctx.spill_runs(SPILL_FANOUT)?;
    let mut reader = file.reader()?;
    loop {
        let batch = reader.read_batch(ctx.batch_size())?;
        if batch.is_empty() {
            break;
        }
        for r in &batch {
            route(
                &mut ws,
                part,
                env,
                r,
                seed,
                drop_nullkey,
                &mut ctx.metrics,
                ops,
            )?;
        }
    }
    finish_runs(ws, ctx)
}

// ---------------------------------------------------------------------------
// Spillable dedup (Map / Project seen-sets)
// ---------------------------------------------------------------------------

/// Hybrid streaming/spilling dedup state.
///
/// While the distinct-set fits the budget, [`SpillDedup::offer`] behaves
/// like a streaming `BTreeSet::insert`: the first occurrence of a row is
/// returned for immediate emission. On overflow the operator degrades to a
/// breaker: the seen-set is spilled into per-partition "seen" runs (these
/// rows were **already emitted** and must be suppressed later), every
/// further candidate goes to a paired "candidate" run, and after
/// [`SpillDedup::seal`] the partitions drain one at a time — load the
/// partition's seen-set, stream its candidates through it, emit the new
/// distinct rows. Oversized partitions repartition recursively like every
/// other spill consumer.
#[derive(Default)]
pub struct SpillDedup {
    seen: BTreeSet<Record>,
    writers: Option<DedupWriters>,
    drain: Option<DedupDrain>,
    /// Deferred rows produced by a parallel drain wave, handed out in
    /// batch-sized slices (serial drains never use this buffer).
    ready: VecDeque<Record>,
}

struct DedupWriters {
    seen_parts: Vec<RunWriter>,
    cand_parts: Vec<RunWriter>,
}

struct DedupDrain {
    /// (seen, candidates, depth) triples still to process.
    parts: VecDeque<(SpillFile, SpillFile, usize)>,
    cur: Option<CurPart>,
}

struct CurPart {
    seen: BTreeSet<Record>,
    reader: RunReader,
    /// Keeps the candidate run alive while its reader streams.
    _file: SpillFile,
}

/// Whole-record partitioning: dedup's key is the row itself.
fn dedup_part() -> PartFn<'static> {
    Box::new(|r, _env, seed| Ok(Some(hash_record(r, seed))))
}

impl SpillDedup {
    /// Fresh, empty dedup state (streaming mode).
    pub fn new() -> SpillDedup {
        SpillDedup::default()
    }

    /// True iff dedup overflowed and rows are deferred to the drain phase.
    pub fn spilled(&self) -> bool {
        self.writers.is_some() || self.drain.is_some()
    }

    /// Offer a candidate row. Returns `Some(row)` when the row is new and
    /// can be emitted immediately (streaming mode); `None` when it is a
    /// duplicate or was deferred to a spill partition.
    pub fn offer(
        &mut self,
        rec: Record,
        ctx: &mut ExecContext<'_>,
        ops: &mut OpStats,
    ) -> Result<Option<Record>> {
        if let Some(w) = self.writers.as_mut() {
            let idx = (hash_record(&rec, 0) % w.cand_parts.len() as u64) as usize;
            w.cand_parts[idx].write(&rec)?;
            ctx.metrics.rows_spilled += 1;
            ops.rows_spilled += 1;
            return Ok(None);
        }
        if self.seen.contains(&rec) {
            return Ok(None);
        }
        if ctx.over_budget(self.seen.len() + 1) {
            // Overflow: spill the emitted set, defer this and all further
            // candidates.
            let seen_parts = ctx.spill_runs(SPILL_FANOUT)?;
            let cand_parts = ctx.spill_runs(SPILL_FANOUT)?;
            let mut w = DedupWriters {
                seen_parts,
                cand_parts,
            };
            let n = self.seen.len();
            for r in std::mem::take(&mut self.seen) {
                let idx = (hash_record(&r, 0) % w.seen_parts.len() as u64) as usize;
                w.seen_parts[idx].write(&r)?;
                ctx.metrics.rows_spilled += 1;
                ops.rows_spilled += 1;
            }
            ctx.resident_release(n);
            let idx = (hash_record(&rec, 0) % w.cand_parts.len() as u64) as usize;
            w.cand_parts[idx].write(&rec)?;
            ctx.metrics.rows_spilled += 1;
            ops.rows_spilled += 1;
            self.writers = Some(w);
            return Ok(None);
        }
        ctx.resident_acquire(1);
        self.seen.insert(rec.clone());
        Ok(Some(rec))
    }

    /// Input exhausted: seal the spill writers (if any) and prepare the
    /// drain phase.
    pub fn seal(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        if let Some(w) = self.writers.take() {
            let seen_files = finish_runs(w.seen_parts, ctx)?;
            let cand_files = finish_runs(w.cand_parts, ctx)?;
            let parts = seen_files
                .into_iter()
                .zip(cand_files)
                .map(|(s, c)| (s, c, 1))
                .collect();
            self.drain = Some(DedupDrain { parts, cur: None });
        }
        Ok(())
    }

    /// Pull up to `n` deferred distinct rows from the drain phase. An
    /// empty vector means the drain is complete (and is the immediate
    /// answer in streaming mode, where nothing was deferred).
    pub fn next_deferred(
        &mut self,
        n: usize,
        ctx: &mut ExecContext<'_>,
        ops: &mut OpStats,
    ) -> Result<Vec<Record>> {
        let part = dedup_part();
        if ctx.threads() > 1 {
            return self.next_deferred_parallel(n, ctx, ops, &part);
        }
        loop {
            let Some(drain) = self.drain.as_mut() else {
                return Ok(Vec::new());
            };
            if let Some(cur) = drain.cur.as_mut() {
                let batch = cur.reader.read_batch(n)?;
                if batch.is_empty() {
                    ctx.resident_release(cur.seen.len());
                    drain.cur = None;
                    continue;
                }
                let mut out = Vec::new();
                for r in batch {
                    if !cur.seen.contains(&r) {
                        ctx.resident_acquire(1);
                        cur.seen.insert(r.clone());
                        out.push(r);
                    }
                }
                if out.is_empty() {
                    continue;
                }
                return Ok(out);
            }
            match drain.parts.pop_front() {
                None => {
                    self.drain = None;
                    return Ok(Vec::new());
                }
                Some((seen_f, cand_f, depth)) => {
                    let total = seen_f.rows() + cand_f.rows();
                    if ctx.over_budget(total as usize) && depth < MAX_REPARTITION_DEPTH && total > 1
                    {
                        let mut env = Env::new();
                        let seed = depth as u64;
                        let new_seen = repartition(seen_f, ctx, &mut env, &part, seed, false, ops)?;
                        let new_cand = repartition(cand_f, ctx, &mut env, &part, seed, false, ops)?;
                        let drain = self.drain.as_mut().expect("still draining");
                        for (s, c) in new_seen.into_iter().zip(new_cand).rev() {
                            drain.parts.push_front((s, c, depth + 1));
                        }
                        continue;
                    }
                    if cand_f.is_empty() {
                        continue;
                    }
                    let seen: BTreeSet<Record> = seen_f.reader()?.read_all()?.into_iter().collect();
                    ctx.resident_acquire(seen.len());
                    let reader = cand_f.reader()?;
                    drain.cur = Some(CurPart {
                        seen,
                        reader,
                        _file: cand_f,
                    });
                }
            }
        }
    }

    /// Drain-phase wave for parallel execution: up to `threads` (seen,
    /// candidates) partition pairs dedup concurrently on scoped workers,
    /// gathered in partition order into the `ready` buffer and handed out
    /// in batch-sized slices — so emission order and batch sizes match the
    /// serial drain exactly. Waves are budget-capped on the summed pair
    /// sizes (concurrent seen-sets are summed resident state), ≥ 1 pair
    /// per wave.
    fn next_deferred_parallel(
        &mut self,
        n: usize,
        ctx: &mut ExecContext<'_>,
        ops: &mut OpStats,
        part: &PartFn<'_>,
    ) -> Result<Vec<Record>> {
        loop {
            if !self.ready.is_empty() {
                let k = n.min(self.ready.len());
                let out: Vec<Record> = self.ready.drain(..k).collect();
                ctx.resident_release(out.len());
                return Ok(out);
            }
            if self.drain.is_none() {
                return Ok(Vec::new());
            }
            let mut wave: Vec<(SpillFile, SpillFile)> = Vec::new();
            let mut wave_rows: u64 = 0;
            while wave.len() < ctx.threads() {
                let next = self
                    .drain
                    .as_mut()
                    .expect("still draining")
                    .parts
                    .pop_front();
                let Some((seen_f, cand_f, depth)) = next else {
                    break;
                };
                let total = seen_f.rows() + cand_f.rows();
                if ctx.over_budget(total as usize) && depth < MAX_REPARTITION_DEPTH && total > 1 {
                    let mut env = Env::new();
                    let seed = depth as u64;
                    let new_seen = repartition(seen_f, ctx, &mut env, part, seed, false, ops)?;
                    let new_cand = repartition(cand_f, ctx, &mut env, part, seed, false, ops)?;
                    let drain = self.drain.as_mut().expect("still draining");
                    for (s, c) in new_seen.into_iter().zip(new_cand).rev() {
                        drain.parts.push_front((s, c, depth + 1));
                    }
                    continue;
                }
                if cand_f.is_empty() {
                    continue;
                }
                if !wave.is_empty() && ctx.over_budget((wave_rows + total) as usize) {
                    let drain = self.drain.as_mut().expect("still draining");
                    drain.parts.push_front((seen_f, cand_f, depth));
                    break;
                }
                wave_rows += total;
                wave.push((seen_f, cand_f));
            }
            if wave.is_empty() {
                self.drain = None;
                return Ok(Vec::new());
            }
            ctx.resident_acquire(wave_rows as usize);
            let results = crate::op::exchange::scatter(
                ctx.threads(),
                wave,
                |(seen_f, cand_f)| -> Result<Vec<Record>> {
                    let mut seen: BTreeSet<Record> =
                        seen_f.reader()?.read_all()?.into_iter().collect();
                    let mut out = Vec::new();
                    let mut reader = cand_f.reader()?;
                    loop {
                        let batch = reader.read_batch(n)?;
                        if batch.is_empty() {
                            break;
                        }
                        for r in batch {
                            if !seen.contains(&r) {
                                seen.insert(r.clone());
                                out.push(r);
                            }
                        }
                    }
                    Ok(out)
                },
            );
            ctx.resident_release(wave_rows as usize);
            for res in results {
                let rows = res?;
                ctx.resident_acquire(rows.len());
                self.ready.extend(rows);
            }
        }
    }

    /// Release all resident accounting and drop every spill artifact
    /// (open/close path of the owning operator).
    pub fn reset(&mut self, ctx: &mut ExecContext<'_>) {
        ctx.resident_release(self.seen.len());
        self.seen.clear();
        self.writers = None;
        ctx.resident_release(self.ready.len());
        self.ready.clear();
        if let Some(drain) = self.drain.take() {
            if let Some(cur) = drain.cur {
                ctx.resident_release(cur.seen.len());
            }
        }
    }
}
