//! Batched correlated Apply: operator reuse, binding memoization, and
//! invariant hoisting.
//!
//! [`ApplyOp`] is the paper's baseline nested loop, made cheap along three
//! axes. **Reuse**: the inner operator tree is built once and re-pointed at
//! each outer row via [`Operator::rebind`] + `open`, so no per-row planning
//! or allocation happens. **Memoization**: when the planner supplies
//! binding expressions (the correlation values the inner result depends
//! on), completed result sets are cached under the evaluated binding key —
//! duplicate bindings replay the cached set, and the inner plan executes
//! once per *distinct* binding. The cache is an LRU that respects
//! [`crate::ExecConfig::memory_budget_rows`] through the shared resident
//! gauge. **Hoisting** is the planner's side of the bargain:
//! correlation-independent subtrees of the inner plan are wrapped in
//! [`MaterializeOp`] (execute once, replay per re-open), and inner plans
//! shaped `σ[var.attr = key](table)` with a correlation-dependent key
//! become a [`HashProbeOp`] — one transient [`HashIndex`] build amortized
//! across all bindings, one probe per binding instead of one full scan.
//!
//! Counters: `subquery_invocations` stays one per outer row (the logical
//! nested-loop count), `apply_invocations` counts actual inner executions,
//! and `apply_cache_hits` counts rows answered from the cache — so
//! `ainv=`/`ahit=` in a profile expose exactly how much work memoization
//! removed. Caching never changes results: keys cover every free variable
//! of the inner plan, NULL bindings are cacheable values under the model's
//! total order, and a failed key evaluation falls back to plain
//! (uncached) execution.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use tmql_algebra::{eval, eval_predicate, Env, Plan, ScalarExpr};
use tmql_model::{Record, Result, Value};
use tmql_storage::HashIndex;

use crate::exec::ExecContext;
use crate::op::operator::{build, drain, Batch, BoxedOperator, OpStats, Operator};
use crate::physical::PhysPlan;

/// A memoized inner result: the completed subquery value set and its LRU
/// stamp (monotonic use counter; smallest = least recently used).
struct CacheEntry {
    set: BTreeSet<Value>,
    stamp: u64,
}

/// Correlated Apply with inner-plan reuse and binding memoization. Outer
/// rows stream through batch-at-a-time; the subquery tree is built lazily
/// on the first row and re-opened (never rebuilt) for every execution.
pub struct ApplyOp<'p> {
    child: BoxedOperator<'p>,
    subquery: &'p PhysPlan,
    label: &'p str,
    /// `None` = memoization off (one execution per outer row);
    /// `Some([])` = invariant subquery (single cached execution);
    /// `Some(exprs)` = cache keyed on the evaluated expressions.
    bindings: Option<&'p [ScalarExpr]>,
    env: Env,
    /// The long-lived inner operator tree (reused across rows via
    /// rebind/open; kept across `close` so nested re-opens stay cheap).
    inner: Option<BoxedOperator<'p>>,
    cache: HashMap<Vec<Value>, CacheEntry>,
    /// stamp → key index for O(log n) LRU eviction.
    lru: BTreeMap<u64, Vec<Value>>,
    next_stamp: u64,
    /// Total rows held by cached sets (mirrored in the resident gauge
    /// while the operator is open).
    cache_rows: usize,
    gauge_held: bool,
    stats: OpStats,
}

impl<'p> ApplyOp<'p> {
    /// Wrap the outer child; the inner tree is built on first demand.
    pub fn new(
        child: BoxedOperator<'p>,
        subquery: &'p PhysPlan,
        label: &'p str,
        bindings: Option<&'p [ScalarExpr]>,
        env: Env,
    ) -> ApplyOp<'p> {
        ApplyOp {
            child,
            subquery,
            label,
            bindings,
            env,
            inner: None,
            cache: HashMap::new(),
            lru: BTreeMap::new(),
            next_stamp: 0,
            cache_rows: 0,
            gauge_held: false,
            stats: OpStats::default(),
        }
    }

    /// Execute the inner plan under `sub_env` (building the tree on first
    /// use, rebinding it afterwards) and collapse the result to a set.
    fn run_inner(&mut self, sub_env: &Env, ctx: &mut ExecContext<'_>) -> Result<BTreeSet<Value>> {
        ctx.metrics.apply_invocations += 1;
        let inner = match self.inner.as_mut() {
            Some(op) => {
                op.rebind(sub_env);
                op
            }
            None => {
                self.inner = Some(build(self.subquery, sub_env));
                self.inner.as_mut().expect("just built")
            }
        };
        inner.open_timed(ctx)?;
        let res = drain(inner, ctx);
        inner.close_timed(ctx);
        Ok(res?.iter().map(Plan::row_output_value).collect())
    }

    /// Move `key` to the most-recently-used position.
    fn touch(&mut self, key: &[Value]) {
        if let Some(e) = self.cache.get_mut(key) {
            self.lru.remove(&e.stamp);
            e.stamp = self.next_stamp;
            self.lru.insert(self.next_stamp, key.to_vec());
            self.next_stamp += 1;
        }
    }

    /// Insert a completed result under `key`, evicting LRU entries while
    /// the cache would exceed the memory budget. A single result larger
    /// than the whole budget is not cached at all.
    fn insert(&mut self, key: Vec<Value>, set: BTreeSet<Value>, ctx: &mut ExecContext<'_>) {
        let add = set.len();
        if ctx.memory_budget_rows().is_some_and(|b| add > b) {
            return;
        }
        while ctx.over_budget(self.cache_rows + add) {
            let Some((_, old_key)) = self.lru.pop_first() else {
                break;
            };
            if let Some(old) = self.cache.remove(&old_key) {
                self.cache_rows -= old.set.len();
                ctx.resident_release(old.set.len());
            }
        }
        ctx.resident_acquire(add);
        self.cache_rows += add;
        self.lru.insert(self.next_stamp, key.clone());
        self.cache.insert(
            key,
            CacheEntry {
                set,
                stamp: self.next_stamp,
            },
        );
        self.next_stamp += 1;
    }
}

impl Operator for ApplyOp<'_> {
    fn label(&self) -> String {
        match self.bindings {
            None => "Apply".into(),
            Some([]) => "Apply[once]".into(),
            Some(_) => "Apply[memo]".into(),
        }
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        // The cache survives close/open cycles (a nested Apply re-opens
        // this operator once per enclosing binding); only its footprint
        // leaves and re-enters the resident gauge.
        if !self.gauge_held {
            ctx.resident_acquire(self.cache_rows);
            self.gauge_held = true;
        }
        self.child.open_timed(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<Batch>> {
        let Some(b) = self.child.pull(ctx)? else {
            return Ok(None);
        };
        let mut out = Vec::with_capacity(b.len());
        for row in b.rows {
            let mut sub_env = self.env.clone();
            sub_env.push_row(&row);
            ctx.metrics.subquery_invocations += 1;
            let set = match self.bindings {
                None => self.run_inner(&sub_env, ctx)?,
                Some(exprs) => {
                    // A key evaluation failure must not fail the query
                    // (the expression might never be reached under the
                    // inner plan's own evaluation order) — run uncached.
                    let key: std::result::Result<Vec<Value>, _> = exprs
                        .iter()
                        .map(|e| eval(e, &mut sub_env.clone()))
                        .collect();
                    match key {
                        Err(_) => self.run_inner(&sub_env, ctx)?,
                        Ok(key) => {
                            if let Some(e) = self.cache.get(&key) {
                                ctx.metrics.apply_cache_hits += 1;
                                let set = e.set.clone();
                                self.touch(&key);
                                set
                            } else {
                                let set = self.run_inner(&sub_env, ctx)?;
                                self.insert(key, set.clone(), ctx);
                                set
                            }
                        }
                    }
                }
            };
            out.push(row.extend_field(self.label, Value::Set(set))?);
        }
        Ok(Some(Batch::new(out)))
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) {
        if self.gauge_held {
            ctx.resident_release(self.cache_rows);
            self.gauge_held = false;
        }
        if let Some(inner) = self.inner.as_mut() {
            inner.close_timed(ctx);
        }
        self.child.close_timed(ctx);
    }

    fn rebind(&mut self, env: &Env) {
        // Cache entries stay valid across rebinds: keys cover *all* free
        // variables of the subquery, including ones bound by enclosing
        // Apply operators.
        self.env = env.clone();
        self.child.rebind(env);
    }

    fn stats(&self) -> OpStats {
        self.stats
    }

    fn stats_mut(&mut self) -> &mut OpStats {
        &mut self.stats
    }

    fn children(&self) -> Vec<&dyn Operator> {
        // The inner tree is instantiated per binding and does not appear
        // in the executed profile (mirrors the cost model's exec-order
        // walk, which skips the Apply subquery).
        vec![self.child.as_ref()]
    }
}

/// Replay buffer around a correlation-independent subtree of an Apply
/// inner plan: the child runs once, re-opens replay the buffer. If the
/// buffer would exceed the memory budget the operator degrades to
/// pass-through (the child re-executes per open — exactly the un-hoisted
/// behavior, so hoisting never costs memory it doesn't have).
pub struct MaterializeOp<'p> {
    child: BoxedOperator<'p>,
    /// Completed replay buffer (kept across close/open).
    buffer: Option<Vec<Record>>,
    /// Rows accumulated during the first execution.
    filling: Vec<Record>,
    cursor: usize,
    /// Set once the first execution overflowed the budget; from then on
    /// every open streams the child directly.
    overflowed: bool,
    /// Rows currently counted in the resident gauge.
    acquired: usize,
    stats: OpStats,
}

impl<'p> MaterializeOp<'p> {
    /// Wrap a hoisted child subtree.
    pub fn new(child: BoxedOperator<'p>) -> MaterializeOp<'p> {
        MaterializeOp {
            child,
            buffer: None,
            filling: Vec::new(),
            cursor: 0,
            overflowed: false,
            acquired: 0,
            stats: OpStats::default(),
        }
    }
}

impl Operator for MaterializeOp<'_> {
    fn label(&self) -> String {
        "Materialize".into()
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        ctx.resident_release(self.acquired);
        self.acquired = 0;
        self.filling.clear();
        self.cursor = 0;
        if let Some(buf) = &self.buffer {
            // Replay answers everything; the child stays closed.
            ctx.resident_acquire(buf.len());
            self.acquired = buf.len();
            return Ok(());
        }
        self.child.open_timed(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<Batch>> {
        let n = ctx.batch_size();
        loop {
            if let Some(buf) = &self.buffer {
                if self.cursor >= buf.len() {
                    return Ok(None);
                }
                let end = (self.cursor + n).min(buf.len());
                let rows = buf[self.cursor..end].to_vec();
                self.cursor = end;
                return Ok(Some(Batch::new(rows)));
            }
            if self.overflowed {
                return self.child.pull(ctx);
            }
            match self.child.pull(ctx)? {
                None => {
                    self.buffer = Some(std::mem::take(&mut self.filling));
                    // `acquired` already covers the buffer.
                }
                Some(b) => {
                    ctx.resident_acquire(b.len());
                    self.acquired += b.len();
                    self.filling.extend(b.rows);
                    if ctx.over_budget(self.filling.len()) {
                        // Too big to hold: drop the buffer and degrade to
                        // pass-through, restarting the child's stream.
                        ctx.resident_release(self.acquired);
                        self.acquired = 0;
                        self.filling.clear();
                        self.overflowed = true;
                        self.child.open_timed(ctx)?;
                    }
                }
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) {
        ctx.resident_release(self.acquired);
        self.acquired = 0;
        self.filling.clear();
        self.child.close_timed(ctx);
    }

    fn rebind(&mut self, env: &Env) {
        // The subtree is correlation-independent by construction, so the
        // buffer stays valid; the child still recurses for uniformity.
        self.child.rebind(env);
    }

    fn stats(&self) -> OpStats {
        self.stats
    }

    fn stats_mut(&mut self) -> &mut OpStats {
        &mut self.stats
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.child.as_ref()]
    }
}

/// Transient-hash-index scan for Apply inner plans shaped
/// `σ[var.attr = key](table)` with a correlation-dependent key: builds a
/// [`HashIndex`] over `table.attr` on first demand, keeps it across
/// re-opens, and answers each open with one equality probe. Probes return
/// candidate **supersets** (int/float promotion, NaN totality — the same
/// widening as [`tmql_storage::OrdIndex`]), and the full predicate is
/// re-checked per candidate, so results match the scan+filter exactly. If
/// the key evaluation fails, the operator degrades to a full position
/// scan, which reproduces plain filter semantics.
pub struct HashProbeOp<'p> {
    table: &'p str,
    var: &'p str,
    attr: &'p str,
    key: &'p ScalarExpr,
    pred: &'p ScalarExpr,
    env: Env,
    /// Built on first demand, kept across open/close.
    index: Option<HashIndex>,
    /// Rows the index covers (its resident-gauge footprint).
    indexed_rows: usize,
    /// Candidate positions for the current open's key, ascending.
    positions: Option<Vec<usize>>,
    cursor: usize,
    gauge_held: bool,
    stats: OpStats,
}

impl<'p> HashProbeOp<'p> {
    /// New probe operator; the index is built on first `next_batch`.
    pub fn new(
        table: &'p str,
        var: &'p str,
        attr: &'p str,
        key: &'p ScalarExpr,
        pred: &'p ScalarExpr,
        env: Env,
    ) -> HashProbeOp<'p> {
        HashProbeOp {
            table,
            var,
            attr,
            key,
            pred,
            env,
            index: None,
            indexed_rows: 0,
            positions: None,
            cursor: 0,
            gauge_held: false,
            stats: OpStats::default(),
        }
    }
}

impl Operator for HashProbeOp<'_> {
    fn label(&self) -> String {
        format!("HashProbe({}.{})", self.table, self.attr)
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.positions = None;
        self.cursor = 0;
        if self.index.is_some() && !self.gauge_held {
            ctx.resident_acquire(self.indexed_rows);
            self.gauge_held = true;
        }
        Ok(())
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<Batch>> {
        if self.index.is_none() {
            let t = ctx.catalog.table(self.table)?;
            let built = HashIndex::build(t, self.attr)?;
            self.indexed_rows = t.len();
            ctx.metrics.hash_build_rows += self.indexed_rows as u64;
            ctx.resident_acquire(self.indexed_rows);
            self.gauge_held = true;
            self.index = Some(built);
        }
        if self.positions.is_none() {
            let idx = self.index.as_ref().expect("built above");
            let positions = match eval(self.key, &mut self.env) {
                Ok(key) => idx.probe_eq(&key),
                // Key evaluation failed: fall back to checking every row
                // (plain scan+filter semantics).
                Err(_) => (0..self.indexed_rows).collect(),
            };
            ctx.metrics.index_probes += 1;
            ctx.metrics.index_hits += positions.len() as u64;
            self.positions = Some(positions);
            self.cursor = 0;
        }
        let n = ctx.batch_size();
        let t = ctx.catalog.table(self.table)?;
        loop {
            let positions = self.positions.as_ref().expect("probed above");
            if self.cursor >= positions.len() {
                return Ok(None);
            }
            let end = (self.cursor + n).min(positions.len());
            let chunk = &positions[self.cursor..end];
            self.cursor = end;
            let candidates = t.fetch_rows(chunk)?;
            let mut rows = Vec::with_capacity(candidates.len());
            for row in candidates {
                let r = Record::new([(self.var.to_string(), Value::Tuple(row))])?;
                ctx.metrics.comparisons += 1;
                if crate::op::with_row(&mut self.env, &r, |e| eval_predicate(self.pred, e))? {
                    rows.push(r);
                }
            }
            if !rows.is_empty() {
                return Ok(Some(Batch::new(rows)));
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) {
        self.positions = None;
        self.cursor = 0;
        if self.gauge_held {
            ctx.resident_release(self.indexed_rows);
            self.gauge_held = false;
        }
    }

    fn rebind(&mut self, env: &Env) {
        self.env = env.clone();
    }

    fn stats(&self) -> OpStats {
        self.stats
    }

    fn stats_mut(&mut self) -> &mut OpStats {
        &mut self.stats
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![]
    }
}
