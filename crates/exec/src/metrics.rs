//! Work counters reported by the executor.

use std::fmt;
use std::ops::AddAssign;

/// Execution work counters. All operators update these; benchmarks report
/// them next to wall-time so the *shape* of an experiment (e.g. the
/// quadratic blow-up of nested-loop Apply) is visible independent of the
/// machine.
///
/// # Unit of `comparisons`
///
/// One comparison = **one predicate (or residual) evaluation against one
/// candidate**. Operators therefore count at different granularities, by
/// design:
///
/// * `Filter` evaluates its predicate once per input row → one comparison
///   **per row**;
/// * the nested-loop join evaluates the join predicate once per (left,
///   right) candidate → one comparison **per pair**;
/// * hash/merge joins count one comparison per *residual* evaluation (the
///   equi-part is covered by `hash_probes` / `rows_sorted`), plus one per
///   key-order advance in the merge.
///
/// Summing them is still meaningful: the total is the number of predicate
/// evaluations performed, which is exactly the work the paper's rewrites
/// reduce. The unit test `comparisons_unit_is_one_predicate_evaluation`
/// in `tests/operators.rs` pins both granularities.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Rows read from base tables.
    pub rows_scanned: u64,
    /// Predicate evaluations and key comparisons (see the struct docs for
    /// the per-operator granularity).
    pub comparisons: u64,
    /// Rows inserted into hash tables.
    pub hash_build_rows: u64,
    /// Hash table probes.
    pub hash_probes: u64,
    /// Rows passed through sorts (merge joins).
    pub rows_sorted: u64,
    /// Rows emitted by operators (every operator in the tree, scans
    /// included — the "total intermediate row count" of a streaming run).
    pub rows_emitted: u64,
    /// Correlated subquery executions (Apply invocations) — the count the
    /// paper's unnesting eliminates.
    pub subquery_invocations: u64,
    /// Records written to spill files when breaker state exceeds
    /// [`crate::ExecConfig::memory_budget_rows`]. Each recursive
    /// repartitioning pass rewrites its rows, so a row can be counted more
    /// than once — this is real I/O traffic, and it is part of
    /// [`Metrics::total_work`]. Always 0 without a budget.
    pub rows_spilled: u64,
    /// Non-empty spill partitions created (grace-hash build/probe pairs
    /// count each side). A shape metric like `batches_emitted`, excluded
    /// from [`Metrics::total_work`].
    pub spill_partitions: u64,
    /// Batches emitted by operators (streaming executor granularity).
    pub batches_emitted: u64,
    /// Buffer-pool page requests served from memory while this query ran
    /// (disk-backed catalogs only; always 0 for in-memory databases). A
    /// shape metric, excluded from [`Metrics::total_work`].
    pub pool_hits: u64,
    /// Buffer-pool page faults — pages read from disk — while this query
    /// ran. Real I/O, included in [`Metrics::total_work`]; the cost
    /// model's page-I/O charge for cold scans predicts exactly this
    /// traffic.
    pub pool_misses: u64,
    /// Secondary-index probes issued (one per equality/range lookup or
    /// per-outer-row join probe). Real work — each probe is an ordered
    /// map descent — included in [`Metrics::total_work`]; the cost
    /// model's `INDEX_PROBE_WORK` charge prices exactly this traffic.
    pub index_probes: u64,
    /// Candidate row positions returned by index probes (before the
    /// operator re-checks the full predicate). Included in
    /// [`Metrics::total_work`]: each hit is a row fetched and re-checked.
    pub index_hits: u64,
    /// Inner-plan executions actually performed by `Apply` operators
    /// (cache misses plus uncached runs). With binding memoization this
    /// drops from the outer row count to the *distinct* correlation-binding
    /// count; `subquery_invocations` keeps counting one per outer row, so
    /// the pair exposes the dedup ratio. Real work, included in
    /// [`Metrics::total_work`].
    pub apply_invocations: u64,
    /// Outer rows answered from the Apply binding-memoization cache
    /// instead of re-executing the inner plan. Each hit is a key
    /// evaluation plus a map probe plus a result replay — cheap but not
    /// free, so it is included in [`Metrics::total_work`] (the cost
    /// model's `cache_probe × rows` term prices exactly this traffic).
    pub apply_cache_hits: u64,
    /// High-water mark of rows resident in operator state at any point
    /// during execution: pipeline-breaker materializations (hash build
    /// sides, sort buffers, group tables), dedup sets, and carry-over
    /// buffers. The final result vector collected by the caller is *not*
    /// counted — this gauge measures what streaming saves, not what the
    /// query returns. A gauge, not a counter: `+=` merges by `max`.
    pub peak_resident_rows: u64,
}

impl Metrics {
    /// Zeroed counters.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Total work proxy: the sum of all *work* counters; the
    /// `batches_emitted` and `peak_resident_rows` gauges are excluded
    /// (they measure traffic granularity and memory shape, not work).
    /// Note that `rows_emitted` counts every operator's output including
    /// scans under the streaming executor, so absolute totals are higher
    /// than numbers recorded before the streaming refactor — compare
    /// totals only within one executor generation.
    pub fn total_work(&self) -> u64 {
        self.rows_scanned
            + self.comparisons
            + self.hash_build_rows
            + self.hash_probes
            + self.rows_sorted
            + self.rows_emitted
            + self.subquery_invocations
            + self.rows_spilled
            + self.pool_misses
            + self.index_probes
            + self.index_hits
            + self.apply_invocations
            + self.apply_cache_hits
    }

    /// Buffer-pool hit fraction of this query's page traffic (1.0 when
    /// the query touched no pages — in-memory tables, or a fully warm
    /// working set with zero requests recorded).
    pub fn pool_hit_rate(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            1.0
        } else {
            self.pool_hits as f64 / total as f64
        }
    }
}

impl AddAssign for Metrics {
    fn add_assign(&mut self, rhs: Metrics) {
        self.rows_scanned += rhs.rows_scanned;
        self.comparisons += rhs.comparisons;
        self.hash_build_rows += rhs.hash_build_rows;
        self.hash_probes += rhs.hash_probes;
        self.rows_sorted += rhs.rows_sorted;
        self.rows_emitted += rhs.rows_emitted;
        self.subquery_invocations += rhs.subquery_invocations;
        self.rows_spilled += rhs.rows_spilled;
        self.spill_partitions += rhs.spill_partitions;
        self.batches_emitted += rhs.batches_emitted;
        self.pool_hits += rhs.pool_hits;
        self.pool_misses += rhs.pool_misses;
        self.index_probes += rhs.index_probes;
        self.index_hits += rhs.index_hits;
        self.apply_invocations += rhs.apply_invocations;
        self.apply_cache_hits += rhs.apply_cache_hits;
        // Peak is a gauge: merging two runs keeps the higher water mark.
        self.peak_resident_rows = self.peak_resident_rows.max(rhs.peak_resident_rows);
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scanned={} cmp={} hbuild={} hprobe={} sorted={} emitted={} subq={} spilled={} \
             parts={} batches={} peak={} phit={} pmiss={} iprobe={} ihit={} ainv={} ahit={}",
            self.rows_scanned,
            self.comparisons,
            self.hash_build_rows,
            self.hash_probes,
            self.rows_sorted,
            self.rows_emitted,
            self.subquery_invocations,
            self.rows_spilled,
            self.spill_partitions,
            self.batches_emitted,
            self.peak_resident_rows,
            self.pool_hits,
            self.pool_misses,
            self.index_probes,
            self.index_hits,
            self.apply_invocations,
            self.apply_cache_hits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_accumulates() {
        let mut a = Metrics {
            rows_scanned: 1,
            comparisons: 2,
            ..Metrics::new()
        };
        let b = Metrics {
            rows_scanned: 10,
            rows_emitted: 5,
            ..Metrics::new()
        };
        a += b;
        assert_eq!(a.rows_scanned, 11);
        assert_eq!(a.comparisons, 2);
        assert_eq!(a.rows_emitted, 5);
        assert_eq!(a.total_work(), 18);
    }

    #[test]
    fn peak_merges_by_max_and_stays_out_of_total_work() {
        let mut a = Metrics {
            peak_resident_rows: 100,
            batches_emitted: 3,
            ..Metrics::new()
        };
        let b = Metrics {
            peak_resident_rows: 40,
            batches_emitted: 2,
            ..Metrics::new()
        };
        a += b;
        assert_eq!(a.peak_resident_rows, 100, "gauge merges by max");
        assert_eq!(a.batches_emitted, 5);
        assert_eq!(a.total_work(), 0, "gauges are not work");
    }

    #[test]
    fn spilled_rows_are_work_but_partitions_are_shape() {
        let mut a = Metrics {
            rows_spilled: 100,
            spill_partitions: 8,
            ..Metrics::new()
        };
        let b = Metrics {
            rows_spilled: 20,
            spill_partitions: 8,
            ..Metrics::new()
        };
        a += b;
        assert_eq!(a.rows_spilled, 120);
        assert_eq!(a.spill_partitions, 16);
        assert_eq!(
            a.total_work(),
            120,
            "spilled rows are I/O work; partition count is not"
        );
        assert!(a.to_string().contains("spilled=120"));
        assert!(a.to_string().contains("parts=16"));
    }

    #[test]
    fn pool_misses_are_work_and_hits_are_shape() {
        let mut a = Metrics {
            pool_hits: 30,
            pool_misses: 10,
            ..Metrics::new()
        };
        let b = Metrics {
            pool_hits: 10,
            pool_misses: 0,
            ..Metrics::new()
        };
        a += b;
        assert_eq!(a.pool_hits, 40);
        assert_eq!(a.total_work(), 10, "page faults are I/O work; hits are not");
        assert!((a.pool_hit_rate() - 0.8).abs() < 1e-12);
        assert_eq!(
            Metrics::new().pool_hit_rate(),
            1.0,
            "no traffic reads as fully warm"
        );
        assert!(a.to_string().contains("phit=40"));
        assert!(a.to_string().contains("pmiss=10"));
    }

    #[test]
    fn index_probes_and_hits_are_work() {
        let mut a = Metrics {
            index_probes: 3,
            index_hits: 7,
            ..Metrics::new()
        };
        let b = Metrics {
            index_probes: 1,
            index_hits: 2,
            ..Metrics::new()
        };
        a += b;
        assert_eq!(a.index_probes, 4);
        assert_eq!(a.index_hits, 9);
        assert_eq!(
            a.total_work(),
            13,
            "probes and candidate fetches are both work"
        );
        assert!(a.to_string().contains("iprobe=4"));
        assert!(a.to_string().contains("ihit=9"));
    }

    #[test]
    fn apply_counters_are_work() {
        let mut a = Metrics {
            apply_invocations: 3,
            apply_cache_hits: 5,
            ..Metrics::new()
        };
        let b = Metrics {
            apply_invocations: 1,
            apply_cache_hits: 0,
            ..Metrics::new()
        };
        a += b;
        assert_eq!(a.apply_invocations, 4);
        assert_eq!(a.apply_cache_hits, 5);
        assert_eq!(
            a.total_work(),
            9,
            "inner executions and cache probes are both work"
        );
        assert!(a.to_string().contains("ainv=4"));
        assert!(a.to_string().contains("ahit=5"));
    }

    #[test]
    fn total_work_composition_is_pinned() {
        // Exhaustive literal, no `..Default`: adding a field to `Metrics`
        // breaks this construction, forcing the new counter to be
        // classified — work (add its power of two to `work` below and the
        // field to `total_work`) or shape/gauge (add it only here).
        // Distinct powers of two make any omission or double-count a
        // unique, visible delta.
        let m = Metrics {
            rows_scanned: 1 << 0,
            comparisons: 1 << 1,
            hash_build_rows: 1 << 2,
            hash_probes: 1 << 3,
            rows_sorted: 1 << 4,
            rows_emitted: 1 << 5,
            subquery_invocations: 1 << 6,
            rows_spilled: 1 << 7,
            spill_partitions: 1 << 8,
            batches_emitted: 1 << 9,
            pool_hits: 1 << 10,
            pool_misses: 1 << 11,
            index_probes: 1 << 12,
            index_hits: 1 << 13,
            apply_invocations: 1 << 14,
            apply_cache_hits: 1 << 15,
            peak_resident_rows: 1 << 16,
        };
        // The documented work set: real row traffic, predicate/key
        // evaluations, I/O (spills + page faults), index and Apply work.
        let work: u64 = (1 << 0)
            + (1 << 1)
            + (1 << 2)
            + (1 << 3)
            + (1 << 4)
            + (1 << 5)
            + (1 << 6)
            + (1 << 7)
            + (1 << 11)
            + (1 << 12)
            + (1 << 13)
            + (1 << 14)
            + (1 << 15);
        assert_eq!(m.total_work(), work);
        // And the documented exclusions stay excluded: shape/gauge fields
        // contribute nothing.
        let shape_only = Metrics {
            spill_partitions: 8,
            batches_emitted: 9,
            pool_hits: 10,
            peak_resident_rows: 11,
            ..Metrics::new()
        };
        assert_eq!(shape_only.total_work(), 0);
    }

    #[test]
    fn display_compact() {
        let m = Metrics::new();
        assert!(m.to_string().starts_with("scanned=0"));
        assert!(m.to_string().contains("peak=0"));
    }
}
