//! Work counters reported by the executor.

use std::fmt;
use std::ops::AddAssign;

/// Execution work counters. All operators update these; benchmarks report
/// them next to wall-time so the *shape* of an experiment (e.g. the
/// quadratic blow-up of nested-loop Apply) is visible independent of the
/// machine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Rows read from base tables.
    pub rows_scanned: u64,
    /// Predicate evaluations and key comparisons.
    pub comparisons: u64,
    /// Rows inserted into hash tables.
    pub hash_build_rows: u64,
    /// Hash table probes.
    pub hash_probes: u64,
    /// Rows passed through sorts (merge joins).
    pub rows_sorted: u64,
    /// Rows emitted by operators.
    pub rows_emitted: u64,
    /// Correlated subquery executions (Apply invocations) — the count the
    /// paper's unnesting eliminates.
    pub subquery_invocations: u64,
}

impl Metrics {
    /// Zeroed counters.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Total work proxy: the sum of all counters.
    pub fn total_work(&self) -> u64 {
        self.rows_scanned
            + self.comparisons
            + self.hash_build_rows
            + self.hash_probes
            + self.rows_sorted
            + self.rows_emitted
            + self.subquery_invocations
    }
}

impl AddAssign for Metrics {
    fn add_assign(&mut self, rhs: Metrics) {
        self.rows_scanned += rhs.rows_scanned;
        self.comparisons += rhs.comparisons;
        self.hash_build_rows += rhs.hash_build_rows;
        self.hash_probes += rhs.hash_probes;
        self.rows_sorted += rhs.rows_sorted;
        self.rows_emitted += rhs.rows_emitted;
        self.subquery_invocations += rhs.subquery_invocations;
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scanned={} cmp={} hbuild={} hprobe={} sorted={} emitted={} subq={}",
            self.rows_scanned,
            self.comparisons,
            self.hash_build_rows,
            self.hash_probes,
            self.rows_sorted,
            self.rows_emitted,
            self.subquery_invocations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_accumulates() {
        let mut a = Metrics { rows_scanned: 1, comparisons: 2, ..Metrics::new() };
        let b = Metrics { rows_scanned: 10, rows_emitted: 5, ..Metrics::new() };
        a += b;
        assert_eq!(a.rows_scanned, 11);
        assert_eq!(a.comparisons, 2);
        assert_eq!(a.rows_emitted, 5);
        assert_eq!(a.total_work(), 18);
    }

    #[test]
    fn display_compact() {
        let m = Metrics::new();
        assert!(m.to_string().starts_with("scanned=0"));
    }
}
