//! Lowering logical plans to physical plans.
//!
//! The planner's one interesting job is the paper's motivation in
//! Section 2: once a nested query has been rewritten into a join query,
//! "the optimizer can choose the most suitable join execution method". For
//! every member of the join family it:
//!
//! 1. splits the predicate into conjuncts,
//! 2. extracts equi-key pairs `left-expr = right-expr` whose sides each
//!    reference only one operand's variables,
//! 3. picks nested-loop / hash / sort-merge per the [`ExecConfig`] (or the
//!    cost model under [`JoinAlgo::Auto`]), keeping non-equi conjuncts as a
//!    residual predicate.
//!
//! The produced [`PhysPlan`] is a description only: the streaming
//! [`crate::op::operator::build`] instantiates it as an operator tree that
//! borrows the plan's expressions, so lowering once and executing many
//! times (as the benchmarks do) never re-clones the plan.

use std::collections::BTreeSet;

use tmql_algebra::{Plan, ScalarExpr};
use tmql_model::Result;
use tmql_storage::Catalog;

use crate::config::{ExecConfig, JoinAlgo};
use crate::cost;
use crate::physical::{JoinKind, PhysPlan};

/// Split a predicate into its top-level conjuncts.
pub fn split_conjuncts(pred: &ScalarExpr) -> Vec<ScalarExpr> {
    match pred {
        ScalarExpr::And(a, b) => {
            let mut out = split_conjuncts(a);
            out.extend(split_conjuncts(b));
            out
        }
        other => vec![other.clone()],
    }
}

/// Extracted equi-join structure.
#[derive(Debug, Clone, PartialEq)]
pub struct EquiSplit {
    /// Key expressions over the left operand's variables.
    pub left_keys: Vec<ScalarExpr>,
    /// Matching key expressions over the right operand's variables.
    pub right_keys: Vec<ScalarExpr>,
    /// Conjunction of the remaining conjuncts (None = nothing left).
    pub residual: Option<ScalarExpr>,
}

/// Try to split `pred` into equi-key pairs between `left_vars` and
/// `right_vars` plus a residual. Conjuncts referencing outer (correlation)
/// variables stay in the residual.
pub fn extract_equi_keys(
    pred: &ScalarExpr,
    left_vars: &BTreeSet<String>,
    right_vars: &BTreeSet<String>,
) -> EquiSplit {
    let mut split = EquiSplit {
        left_keys: vec![],
        right_keys: vec![],
        residual: None,
    };
    let mut residuals = Vec::new();
    for conj in split_conjuncts(pred) {
        if let ScalarExpr::Cmp(tmql_algebra::CmpOp::Eq, a, b) = &conj {
            let fa = a.free_vars();
            let fb = b.free_vars();
            if !fa.is_empty()
                && !fb.is_empty()
                && fa.is_subset(left_vars)
                && fb.is_subset(right_vars)
            {
                split.left_keys.push((**a).clone());
                split.right_keys.push((**b).clone());
                continue;
            }
            if fa.is_subset(right_vars)
                && fb.is_subset(left_vars)
                && !fa.is_empty()
                && !fb.is_empty()
            {
                split.left_keys.push((**b).clone());
                split.right_keys.push((**a).clone());
                continue;
            }
        }
        residuals.push(conj);
    }
    if !residuals.is_empty() {
        split.residual = Some(ScalarExpr::conj(residuals));
    }
    split
}

/// The index-eligible component of a selection predicate over one scan:
/// conjuncts of the form `var.attr ⟨cmp⟩ constant` on an attribute that
/// carries a secondary index. Either an equality key or range bounds
/// (strict bounds widen to inclusive probes — the executor re-checks the
/// full predicate, so a candidate superset is always safe).
#[derive(Debug, Clone, PartialEq)]
pub struct IndexSel {
    /// The indexed attribute.
    pub attr: String,
    /// Equality probe key (constant w.r.t. the scanned variable), if the
    /// component is `attr = k`.
    pub eq: Option<ScalarExpr>,
    /// Lower range bound, if any.
    pub lo: Option<ScalarExpr>,
    /// Upper range bound, if any.
    pub hi: Option<ScalarExpr>,
    /// Conjunction of the conjuncts the probe covers — what the cost
    /// model estimates the candidate count from.
    pub covered: ScalarExpr,
}

/// Decompose `conj` as `var.attr ⟨cmp⟩ key` (either orientation) where
/// `attr` is indexed on `table` and `key` does not reference `var`.
fn indexed_cmp(
    conj: &ScalarExpr,
    table: &str,
    var: &str,
    catalog: &Catalog,
) -> Option<(String, tmql_algebra::CmpOp, ScalarExpr)> {
    let ScalarExpr::Cmp(op, a, b) = conj else {
        return None;
    };
    let col_of = |e: &ScalarExpr| -> Option<String> {
        if let ScalarExpr::Field(inner, col) = e {
            if matches!(&**inner, ScalarExpr::Var(v) if v == var) {
                return Some(col.clone());
            }
        }
        None
    };
    if let Some(attr) = col_of(a) {
        if !b.free_vars().contains(var) && catalog.index_on(table, &attr).is_some() {
            return Some((attr, *op, (**b).clone()));
        }
    }
    if let Some(attr) = col_of(b) {
        if !a.free_vars().contains(var) && catalog.index_on(table, &attr).is_some() {
            return Some((attr, op.flip(), (**a).clone()));
        }
    }
    None
}

/// Extract the index-eligible component of `pred` for a scan of `table`
/// binding `var`: an equality conjunct on an indexed attribute wins;
/// otherwise range bounds on one indexed attribute are collected. `None`
/// when no conjunct can probe an existing index.
pub fn index_selection(
    pred: &ScalarExpr,
    table: &str,
    var: &str,
    catalog: &Catalog,
) -> Option<IndexSel> {
    use tmql_algebra::CmpOp;
    let conjuncts = split_conjuncts(pred);
    for conj in &conjuncts {
        if let Some((attr, CmpOp::Eq, key)) = indexed_cmp(conj, table, var, catalog) {
            return Some(IndexSel {
                attr,
                eq: Some(key),
                lo: None,
                hi: None,
                covered: conj.clone(),
            });
        }
    }
    let mut attr: Option<String> = None;
    let mut lo: Option<ScalarExpr> = None;
    let mut hi: Option<ScalarExpr> = None;
    let mut used: Vec<ScalarExpr> = Vec::new();
    for conj in &conjuncts {
        let Some((a, op, key)) = indexed_cmp(conj, table, var, catalog) else {
            continue;
        };
        // Bounds must all probe one attribute — the first one seen.
        if attr.as_deref().is_some_and(|seen| seen != a) {
            continue;
        }
        let slot = match op {
            CmpOp::Gt | CmpOp::Ge => &mut lo,
            CmpOp::Lt | CmpOp::Le => &mut hi,
            _ => continue,
        };
        if slot.is_none() {
            *slot = Some(key);
            attr = Some(a);
            used.push(conj.clone());
        }
    }
    let attr = attr?;
    let covered = ScalarExpr::conj(used);
    Some(IndexSel {
        attr,
        eq: None,
        lo,
        hi,
        covered,
    })
}

/// The correlation-binding expressions of an `Apply` subquery: the outer
/// environment expressions (`o`, `o.b`, …) the subquery's result can
/// depend on. These are the memoization keys of the executor's Apply
/// cache and the NDV source of the cost model's distinct-binding pricing.
/// An empty vector means the subquery is invariant — one execution serves
/// every outer row. Field paths are kept as paths (the cache then hits
/// whenever `o.b` repeats, not just when the whole row does); a whole-row
/// reference `o` subsumes every `o.*` path. Sorted and deduplicated so
/// equal subqueries yield identical keys.
pub fn apply_bindings(subquery: &Plan) -> Vec<ScalarExpr> {
    let corr = subquery.free_vars();
    let mut out = Vec::new();
    plan_bindings(subquery, &corr, &mut out);
    out.sort_by_key(|e| format!("{e:?}"));
    out.dedup();
    let whole: BTreeSet<String> = out
        .iter()
        .filter_map(|e| match e {
            ScalarExpr::Var(v) => Some(v.clone()),
            _ => None,
        })
        .collect();
    out.retain(|e| match e {
        ScalarExpr::Field(inner, _) => !matches!(&**inner, ScalarExpr::Var(v) if whole.contains(v)),
        _ => true,
    });
    out
}

/// Collect correlation references from one plan node's expressions, then
/// recurse. `corr` is the candidate outer-variable set; each node's
/// expressions see its children's output variables, which shadow
/// same-named outer variables.
fn plan_bindings(plan: &Plan, corr: &BTreeSet<String>, out: &mut Vec<ScalarExpr>) {
    let ov = |p: &Plan| -> BTreeSet<String> { p.output_vars().into_iter().collect() };
    match plan {
        Plan::ScanTable { .. } | Plan::Project { .. } | Plan::SetOp { .. } => {}
        Plan::ScanExpr { expr, .. } => expr_bindings(expr, corr, &BTreeSet::new(), out),
        Plan::Select { input, pred } => expr_bindings(pred, corr, &ov(input), out),
        Plan::Map { input, expr, .. } | Plan::Extend { input, expr, .. } => {
            expr_bindings(expr, corr, &ov(input), out)
        }
        Plan::Join { left, right, pred }
        | Plan::SemiJoin { left, right, pred }
        | Plan::AntiJoin { left, right, pred }
        | Plan::LeftOuterJoin { left, right, pred } => {
            let mut vis = ov(left);
            vis.extend(ov(right));
            expr_bindings(pred, corr, &vis, out);
        }
        Plan::NestJoin {
            left,
            right,
            pred,
            func,
            ..
        } => {
            let mut vis = ov(left);
            vis.extend(ov(right));
            expr_bindings(pred, corr, &vis, out);
            expr_bindings(func, corr, &vis, out);
        }
        Plan::Nest { input, value, .. } => expr_bindings(value, corr, &ov(input), out),
        Plan::Unnest { input, expr, .. } => expr_bindings(expr, corr, &ov(input), out),
        Plan::GroupAgg {
            input, keys, aggs, ..
        } => {
            let vis = ov(input);
            for (_, k) in keys {
                expr_bindings(k, corr, &vis, out);
            }
            for (_, _, e) in aggs {
                expr_bindings(e, corr, &vis, out);
            }
        }
        Plan::Apply {
            input, subquery, ..
        } => {
            // A nested Apply binds its input's variables inside its own
            // subquery; those shadow same-named outer variables there.
            plan_bindings(input, corr, out);
            let shadow = ov(input);
            let inner: BTreeSet<String> = corr.difference(&shadow).cloned().collect();
            plan_bindings(subquery, &inner, out);
            return;
        }
    }
    for c in plan.children() {
        plan_bindings(c, corr, out);
    }
}

/// Record references to unshadowed correlation variables in `e`: a bare
/// `Var(v)` or a field path `v.f` directly off one. Deeper paths key on
/// their first level (`o.a` determines `o.a.b`, so the coarser key is
/// still sound).
fn expr_bindings(
    e: &ScalarExpr,
    corr: &BTreeSet<String>,
    visible: &BTreeSet<String>,
    out: &mut Vec<ScalarExpr>,
) {
    use ScalarExpr as E;
    match e {
        E::Lit(_) => {}
        E::Var(v) => {
            if corr.contains(v) && !visible.contains(v) {
                out.push(e.clone());
            }
        }
        E::Field(inner, _) => {
            if let E::Var(v) = &**inner {
                if corr.contains(v) && !visible.contains(v) {
                    out.push(e.clone());
                }
            } else {
                expr_bindings(inner, corr, visible, out);
            }
        }
        E::Not(a) | E::Agg(_, a) | E::Unnest(a) | E::IsNull(a) => {
            expr_bindings(a, corr, visible, out)
        }
        E::Cmp(_, a, b)
        | E::Arith(_, a, b)
        | E::And(a, b)
        | E::Or(a, b)
        | E::SetBin(_, a, b)
        | E::SetCmp(_, a, b) => {
            expr_bindings(a, corr, visible, out);
            expr_bindings(b, corr, visible, out);
        }
        E::Tuple(fs) => {
            for (_, x) in fs {
                expr_bindings(x, corr, visible, out);
            }
        }
        E::SetLit(xs) => {
            for x in xs {
                expr_bindings(x, corr, visible, out);
            }
        }
        E::Quant {
            var, over, pred, ..
        } => {
            expr_bindings(over, corr, visible, out);
            let mut vis = visible.clone();
            vis.insert(var.clone());
            expr_bindings(pred, corr, &vis, out);
        }
    }
}

/// Decompose some conjunct of `pred` as `var.attr = key` (either
/// orientation) where `key` does not reference `var` — the shape a
/// transient hash index can probe per distinct key. Unlike
/// [`indexed_cmp`] no persistent index is required; the caller prices the
/// build. Returns `(attr, key, covered_conjunct)`.
pub(crate) fn eq_probe_candidate(
    pred: &ScalarExpr,
    var: &str,
) -> Option<(String, ScalarExpr, ScalarExpr)> {
    for conj in split_conjuncts(pred) {
        let ScalarExpr::Cmp(tmql_algebra::CmpOp::Eq, a, b) = &conj else {
            continue;
        };
        let col_of = |e: &ScalarExpr| -> Option<String> {
            if let ScalarExpr::Field(inner, col) = e {
                if matches!(&**inner, ScalarExpr::Var(v) if v == var) {
                    return Some(col.clone());
                }
            }
            None
        };
        if let Some(attr) = col_of(a) {
            if !b.free_vars().contains(var) {
                return Some((attr, (**b).clone(), conj.clone()));
            }
        }
        if let Some(attr) = col_of(b) {
            if !a.free_vars().contains(var) {
                return Some((attr, (**a).clone(), conj.clone()));
            }
        }
    }
    None
}

/// Lower a logical plan to a physical plan.
pub fn lower(plan: &Plan, catalog: &Catalog, config: &ExecConfig) -> Result<PhysPlan> {
    Ok(match plan {
        Plan::ScanTable { table, var } => PhysPlan::ScanTable {
            table: table.clone(),
            var: var.clone(),
        },
        Plan::ScanExpr { expr, var } => PhysPlan::ScanExpr {
            expr: expr.clone(),
            var: var.clone(),
        },
        Plan::Select { input, pred } => {
            // Scan-vs-probe: a selection directly over an indexed scan
            // becomes an IndexScan when the cost model prices the probe
            // path cheaper (the same pricing `CostBased` ranks with).
            if let Plan::ScanTable { table, var } = &**input {
                let est = cost::Estimator::new(catalog);
                if let Some((isel, probe_work, scan_work)) =
                    est.select_access_paths(table, var, pred)
                {
                    if probe_work < scan_work {
                        return Ok(PhysPlan::IndexScan {
                            table: table.clone(),
                            var: var.clone(),
                            attr: isel.attr,
                            eq: isel.eq,
                            lo: isel.lo,
                            hi: isel.hi,
                            pred: pred.clone(),
                        });
                    }
                }
            }
            PhysPlan::Filter {
                input: Box::new(lower(input, catalog, config)?),
                pred: pred.clone(),
            }
        }
        Plan::Map { input, expr, var } => PhysPlan::Map {
            input: Box::new(lower(input, catalog, config)?),
            expr: expr.clone(),
            var: var.clone(),
        },
        Plan::Extend { input, expr, var } => PhysPlan::Extend {
            input: Box::new(lower(input, catalog, config)?),
            expr: expr.clone(),
            var: var.clone(),
        },
        Plan::Project { input, vars } => PhysPlan::Project {
            input: Box::new(lower(input, catalog, config)?),
            vars: vars.clone(),
        },
        Plan::Join { left, right, pred } => {
            lower_join(left, right, pred, JoinKind::Inner, catalog, config)?
        }
        Plan::SemiJoin { left, right, pred } => {
            lower_join(left, right, pred, JoinKind::Semi, catalog, config)?
        }
        Plan::AntiJoin { left, right, pred } => {
            lower_join(left, right, pred, JoinKind::Anti, catalog, config)?
        }
        Plan::LeftOuterJoin { left, right, pred } => {
            let kind = JoinKind::LeftOuter {
                right_vars: right.output_vars(),
            };
            lower_join(left, right, pred, kind, catalog, config)?
        }
        Plan::NestJoin {
            left,
            right,
            pred,
            func,
            label,
        } => {
            let kind = JoinKind::Nest {
                func: func.clone(),
                label: label.clone(),
            };
            lower_join(left, right, pred, kind, catalog, config)?
        }
        Plan::Nest {
            input,
            keys,
            value,
            label,
            star,
        } => PhysPlan::Nest {
            input: Box::new(lower(input, catalog, config)?),
            keys: keys.clone(),
            value: value.clone(),
            label: label.clone(),
            star: *star,
        },
        Plan::Unnest {
            input,
            expr,
            elem_var,
            drop_vars,
        } => PhysPlan::Unnest {
            input: Box::new(lower(input, catalog, config)?),
            expr: expr.clone(),
            elem_var: elem_var.clone(),
            drop_vars: drop_vars.clone(),
        },
        Plan::GroupAgg {
            input,
            keys,
            aggs,
            var,
        } => PhysPlan::GroupAgg {
            input: Box::new(lower(input, catalog, config)?),
            keys: keys.clone(),
            aggs: aggs.clone(),
            var: var.clone(),
        },
        Plan::Apply {
            input,
            subquery,
            label,
        } => {
            // Batched Apply (gated on `apply_cache` so `false` is the
            // faithful legacy per-row baseline): memoize inner results by
            // the correlation bindings, and hoist correlation-independent
            // work out of the per-binding path — either as a transient
            // hash probe (the whole inner plan is an eq-selection on the
            // binding) or as materialized subtrees.
            if !config.apply_cache {
                return Ok(PhysPlan::Apply {
                    input: Box::new(lower(input, catalog, config)?),
                    subquery: Box::new(lower(subquery, catalog, config)?),
                    label: label.clone(),
                    bindings: None,
                });
            }
            let bindings = apply_bindings(subquery);
            PhysPlan::Apply {
                input: Box::new(lower(input, catalog, config)?),
                subquery: Box::new(lower_apply_inner(input, subquery, catalog, config)?),
                label: label.clone(),
                bindings: Some(bindings),
            }
        }
        Plan::SetOp {
            kind,
            left,
            right,
            var,
        } => PhysPlan::SetOp {
            kind: *kind,
            left: Box::new(lower(left, catalog, config)?),
            right: Box::new(lower(right, catalog, config)?),
            var: var.clone(),
        },
    })
}

/// Lower an `Apply` subquery with invariant hoisting. Two rewrites, both
/// priced by the [`cost::Estimator`] against the per-distinct-binding
/// repetition count:
///
/// 1. an inner plan shaped `σ[var.attr = key ∧ …](table)` whose key is
///    correlation-dependent and whose attribute has no persistent index
///    becomes a [`PhysPlan::HashProbe`] — one transient hash build
///    amortized across all bindings, one probe per binding;
/// 2. otherwise, maximal correlation-independent subtrees that do real
///    work over stored tables are wrapped in [`PhysPlan::Materialize`] —
///    executed once, replayed on every re-open.
///
/// A subquery that is invariant as a whole is left alone: the Apply
/// cache's empty binding key already collapses it to one execution.
fn lower_apply_inner(
    outer_input: &Plan,
    subquery: &Plan,
    catalog: &Catalog,
    config: &ExecConfig,
) -> Result<PhysPlan> {
    let corr = subquery.free_vars();
    if let Some(probed) = hoist_eq_probe(outer_input, subquery, subquery, catalog) {
        return Ok(probed);
    }
    let phys = lower(subquery, catalog, config)?;
    if corr.is_empty() {
        return Ok(phys);
    }
    Ok(hoist_materialize(phys, &corr))
}

/// Try to rewrite the eq-selection at the bottom of an Apply subquery into
/// a transient [`PhysPlan::HashProbe`], peeling row-shaping wrappers
/// (`Map` / `Extend` / `Project`) on the way down — they consume the
/// probe's rows exactly as they would the selection's. Returns `None`
/// when the shape doesn't match, a persistent index already covers the
/// attribute, or the cost model prices the repeated scans cheaper than
/// the one-time hash build.
fn hoist_eq_probe(
    outer_input: &Plan,
    subquery: &Plan,
    node: &Plan,
    catalog: &Catalog,
) -> Option<PhysPlan> {
    match node {
        Plan::Select { input, pred } => {
            let Plan::ScanTable { table, var } = &**input else {
                return None;
            };
            let (attr, key, covered) = eq_probe_candidate(pred, var)?;
            if catalog.index_on(table, &attr).is_some() {
                return None;
            }
            let est = cost::Estimator::new(catalog);
            let probes = est.apply_distinct_bindings(outer_input, subquery);
            let (probe_work, scan_work) =
                est.transient_hash_paths(table, var, pred, &covered, probes);
            (probe_work < scan_work).then(|| PhysPlan::HashProbe {
                table: table.clone(),
                var: var.clone(),
                attr,
                key,
                pred: pred.clone(),
            })
        }
        Plan::Map { input, expr, var } => hoist_eq_probe(outer_input, subquery, input, catalog)
            .map(|p| PhysPlan::Map {
                input: Box::new(p),
                expr: expr.clone(),
                var: var.clone(),
            }),
        Plan::Extend { input, expr, var } => hoist_eq_probe(outer_input, subquery, input, catalog)
            .map(|p| PhysPlan::Extend {
                input: Box::new(p),
                expr: expr.clone(),
                var: var.clone(),
            }),
        Plan::Project { input, vars } => {
            hoist_eq_probe(outer_input, subquery, input, catalog).map(|p| PhysPlan::Project {
                input: Box::new(p),
                vars: vars.clone(),
            })
        }
        _ => None,
    }
}

/// Is this physical subtree independent of the given correlation
/// variables? (Its logical view references none of them.)
fn independent(phys: &PhysPlan, corr: &BTreeSet<String>) -> bool {
    cost::logical_view(phys).free_vars().is_disjoint(corr)
}

/// Does materializing this subtree save real work per re-execution? True
/// for non-leaf subtrees that access a stored table (a bare scan replays
/// as cheaply as it re-scans, so wrapping it only spends memory).
fn worth_materializing(phys: &PhysPlan) -> bool {
    fn touches_table(p: &PhysPlan) -> bool {
        matches!(
            p,
            PhysPlan::ScanTable { .. }
                | PhysPlan::IndexScan { .. }
                | PhysPlan::IndexNLJoin { .. }
                | PhysPlan::HashProbe { .. }
        ) || p.children().into_iter().any(touches_table)
    }
    !phys.children().is_empty() && touches_table(phys)
}

/// Wrap maximal correlation-independent subtrees of an Apply inner plan
/// in [`PhysPlan::Materialize`]. Top-down: once a subtree is independent
/// there is nothing to gain deeper inside it, and a dependent node keeps
/// its shape while its children are considered.
fn hoist_materialize(phys: PhysPlan, corr: &BTreeSet<String>) -> PhysPlan {
    fn wrap(child: Box<PhysPlan>, corr: &BTreeSet<String>) -> Box<PhysPlan> {
        if independent(&child, corr) {
            if worth_materializing(&child) {
                Box::new(PhysPlan::Materialize { input: child })
            } else {
                child
            }
        } else {
            Box::new(hoist_materialize(*child, corr))
        }
    }
    use PhysPlan as P;
    match phys {
        P::Filter { input, pred } => P::Filter {
            input: wrap(input, corr),
            pred,
        },
        P::Map { input, expr, var } => P::Map {
            input: wrap(input, corr),
            expr,
            var,
        },
        P::Extend { input, expr, var } => P::Extend {
            input: wrap(input, corr),
            expr,
            var,
        },
        P::Project { input, vars } => P::Project {
            input: wrap(input, corr),
            vars,
        },
        P::NlJoin {
            left,
            right,
            pred,
            kind,
        } => P::NlJoin {
            left: wrap(left, corr),
            right: wrap(right, corr),
            pred,
            kind,
        },
        P::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
            kind,
        } => P::HashJoin {
            left: wrap(left, corr),
            right: wrap(right, corr),
            left_keys,
            right_keys,
            residual,
            kind,
        },
        P::MergeJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
            kind,
        } => P::MergeJoin {
            left: wrap(left, corr),
            right: wrap(right, corr),
            left_keys,
            right_keys,
            residual,
            kind,
        },
        P::IndexNLJoin {
            left,
            right_table,
            right_var,
            attr,
            key,
            pred,
            kind,
        } => P::IndexNLJoin {
            left: wrap(left, corr),
            right_table,
            right_var,
            attr,
            key,
            pred,
            kind,
        },
        P::Nest {
            input,
            keys,
            value,
            label,
            star,
        } => P::Nest {
            input: wrap(input, corr),
            keys,
            value,
            label,
            star,
        },
        P::Unnest {
            input,
            expr,
            elem_var,
            drop_vars,
        } => P::Unnest {
            input: wrap(input, corr),
            expr,
            elem_var,
            drop_vars,
        },
        P::GroupAgg {
            input,
            keys,
            aggs,
            var,
        } => P::GroupAgg {
            input: wrap(input, corr),
            keys,
            aggs,
            var,
        },
        P::SetOp {
            kind,
            left,
            right,
            var,
        } => P::SetOp {
            kind,
            left: wrap(left, corr),
            right: wrap(right, corr),
            var,
        },
        // A nested Apply's own subquery was already hoisted against its
        // own correlation set when it was lowered; only its input is
        // considered here.
        P::Apply {
            input,
            subquery,
            label,
            bindings,
        } => P::Apply {
            input: wrap(input, corr),
            subquery,
            label,
            bindings,
        },
        leaf @ (P::ScanTable { .. }
        | P::ScanExpr { .. }
        | P::IndexScan { .. }
        | P::HashProbe { .. }
        | P::Materialize { .. }) => leaf,
    }
}

fn lower_join(
    left: &Plan,
    right: &Plan,
    pred: &ScalarExpr,
    kind: JoinKind,
    catalog: &Catalog,
    config: &ExecConfig,
) -> Result<PhysPlan> {
    let l = Box::new(lower(left, catalog, config)?);
    let r = Box::new(lower(right, catalog, config)?);
    let lv: BTreeSet<String> = left.output_vars().into_iter().collect();
    let rv: BTreeSet<String> = right.output_vars().into_iter().collect();
    let mut split = extract_equi_keys(pred, &lv, &rv);

    let estimator = cost::Estimator::new(catalog);

    // Index nested-loop candidate (Auto only — forced algorithms are
    // respected): the inner operand is a bare scan of a table with a
    // secondary index on one of its equi-key columns, and the cost model
    // prices per-outer-row probes below scanning + building the inner.
    if config.join_algo == JoinAlgo::Auto {
        if let Some(i) = estimator.index_join_beats(left, right, &split) {
            let Plan::ScanTable {
                table: rt,
                var: rvar,
            } = right
            else {
                unreachable!("index_join_beats only fires on a bare inner scan");
            };
            let ScalarExpr::Field(_, attr) = &split.right_keys[i] else {
                unreachable!("index_join_beats picks a column key");
            };
            return Ok(PhysPlan::IndexNLJoin {
                left: l,
                right_table: rt.clone(),
                right_var: rvar.clone(),
                attr: attr.clone(),
                key: split.left_keys[i].clone(),
                pred: pred.clone(),
                kind,
            });
        }
    }

    let (lc, rc) = (estimator.rows(left), estimator.rows(right));

    let algo = if split.left_keys.is_empty() {
        // No equi keys: only nested-loop is applicable.
        JoinAlgo::NestedLoop
    } else {
        match config.join_algo {
            JoinAlgo::Auto => {
                if cost::join_cost::hash(lc, rc) <= cost::join_cost::sort_merge(lc, rc) {
                    JoinAlgo::Hash
                } else {
                    JoinAlgo::SortMerge
                }
            }
            forced => forced,
        }
    };

    // Build-side choice: a hash *inner* join is symmetric (records compare
    // label-insensitively), so under cost-based selection build on the
    // smaller operand. Every other kind is left-preserving — and for the
    // nest join "only the right join operand may be the build table"
    // (Section 6) — so their sides stay fixed.
    let (mut l, mut r) = (l, r);
    if matches!(kind, JoinKind::Inner)
        && matches!(algo, JoinAlgo::Hash | JoinAlgo::Auto)
        && config.join_algo == JoinAlgo::Auto
        && lc < rc
    {
        std::mem::swap(&mut l, &mut r);
        std::mem::swap(&mut split.left_keys, &mut split.right_keys);
    }

    Ok(match algo {
        JoinAlgo::NestedLoop => PhysPlan::NlJoin {
            left: l,
            right: r,
            pred: pred.clone(),
            kind,
        },
        JoinAlgo::Hash | JoinAlgo::Auto => PhysPlan::HashJoin {
            left: l,
            right: r,
            left_keys: split.left_keys,
            right_keys: split.right_keys,
            residual: split.residual,
            kind,
        },
        JoinAlgo::SortMerge => PhysPlan::MergeJoin {
            left: l,
            right: r,
            left_keys: split.left_keys,
            right_keys: split.right_keys,
            residual: split.residual,
            kind,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmql_algebra::{CmpOp, ScalarExpr as E};
    use tmql_storage::table::int_table;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.register(int_table("X", &["a", "b"], &[&[1, 1]]))
            .unwrap();
        cat.register(int_table("Y", &["b", "c"], &[&[1, 10]]))
            .unwrap();
        cat
    }

    fn vars(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn split_conjuncts_flattens() {
        let p = E::and(E::and(E::lit(true), E::lit(false)), E::lit(true));
        assert_eq!(split_conjuncts(&p).len(), 3);
    }

    #[test]
    fn extracts_equi_keys_both_orientations() {
        let p = E::and(
            E::eq(E::path("x", &["b"]), E::path("y", &["b"])),
            E::eq(E::path("y", &["c"]), E::path("x", &["a"])),
        );
        let s = extract_equi_keys(&p, &vars(&["x"]), &vars(&["y"]));
        assert_eq!(s.left_keys.len(), 2);
        assert_eq!(s.left_keys[1], E::path("x", &["a"]));
        assert_eq!(s.right_keys[1], E::path("y", &["c"]));
        assert!(s.residual.is_none());
    }

    #[test]
    fn non_equi_and_correlated_conjuncts_stay_residual() {
        // x.a < y.c is not equi; x.b = o.b references the outer var `o`.
        let p = E::and(
            E::cmp(CmpOp::Lt, E::path("x", &["a"]), E::path("y", &["c"])),
            E::eq(E::path("x", &["b"]), E::path("o", &["b"])),
        );
        let s = extract_equi_keys(&p, &vars(&["x"]), &vars(&["y"]));
        assert!(s.left_keys.is_empty());
        assert!(s.residual.is_some());
    }

    #[test]
    fn constant_sides_are_not_keys() {
        // x.b = 3 must not become a hash key pair (right side has no vars).
        let p = E::eq(E::path("x", &["b"]), E::lit(3i64));
        let s = extract_equi_keys(&p, &vars(&["x"]), &vars(&["y"]));
        assert!(s.left_keys.is_empty());
    }

    #[test]
    fn lower_picks_hash_for_equi_join_auto() {
        let cat = catalog();
        let plan = Plan::scan("X", "x").join(
            Plan::scan("Y", "y"),
            E::eq(E::path("x", &["b"]), E::path("y", &["b"])),
        );
        let phys = lower(&plan, &cat, &ExecConfig::auto()).unwrap();
        assert!(matches!(phys, PhysPlan::HashJoin { .. }), "{phys}");
    }

    #[test]
    fn lower_falls_back_to_nl_without_keys() {
        let cat = catalog();
        let plan = Plan::scan("X", "x").join(
            Plan::scan("Y", "y"),
            E::cmp(CmpOp::Lt, E::path("x", &["b"]), E::path("y", &["b"])),
        );
        for algo in [JoinAlgo::Auto, JoinAlgo::Hash, JoinAlgo::SortMerge] {
            let phys = lower(&plan, &cat, &ExecConfig::with_join_algo(algo)).unwrap();
            assert!(matches!(phys, PhysPlan::NlJoin { .. }), "{phys}");
        }
    }

    #[test]
    fn auto_inner_join_builds_on_smaller_side() {
        let mut cat = Catalog::new();
        let rows: Vec<Vec<i64>> = (0..50).map(|i| vec![i, i % 5]).collect();
        let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
        cat.register(int_table("BIG", &["a", "b"], &refs)).unwrap();
        cat.register(int_table("TINY", &["b", "c"], &[&[1, 10], &[2, 20]]))
            .unwrap();
        // TINY ⋈ BIG under Auto: probe the big side, build on the tiny one.
        let plan = Plan::scan("TINY", "t").join(
            Plan::scan("BIG", "x"),
            E::eq(E::path("t", &["b"]), E::path("x", &["b"])),
        );
        let phys = lower(&plan, &cat, &ExecConfig::auto()).unwrap();
        let PhysPlan::HashJoin {
            left,
            right,
            left_keys,
            ..
        } = phys
        else {
            panic!("hash join expected");
        };
        assert!(matches!(*left, PhysPlan::ScanTable { ref table, .. } if table == "BIG"));
        assert!(matches!(*right, PhysPlan::ScanTable { ref table, .. } if table == "TINY"));
        // Keys swapped with the sides.
        assert_eq!(left_keys, vec![E::path("x", &["b"])]);
        // A forced algorithm keeps the written build side.
        let phys = lower(&plan, &cat, &ExecConfig::with_join_algo(JoinAlgo::Hash)).unwrap();
        let PhysPlan::HashJoin { left, .. } = phys else {
            panic!("hash join expected")
        };
        assert!(matches!(*left, PhysPlan::ScanTable { ref table, .. } if table == "TINY"));
        // Left-preserving kinds never swap, whatever the cardinalities.
        let semi = Plan::scan("TINY", "t").semi_join(
            Plan::scan("BIG", "x"),
            E::eq(E::path("t", &["b"]), E::path("x", &["b"])),
        );
        let phys = lower(&semi, &cat, &ExecConfig::auto()).unwrap();
        let PhysPlan::HashJoin {
            left,
            kind: JoinKind::Semi,
            ..
        } = phys
        else {
            panic!("hash semijoin expected");
        };
        assert!(matches!(*left, PhysPlan::ScanTable { ref table, .. } if table == "TINY"));
    }

    #[test]
    fn forced_algorithms_respected() {
        let cat = catalog();
        let plan = Plan::scan("X", "x").semi_join(
            Plan::scan("Y", "y"),
            E::eq(E::path("x", &["b"]), E::path("y", &["b"])),
        );
        let h = lower(&plan, &cat, &ExecConfig::with_join_algo(JoinAlgo::Hash)).unwrap();
        assert!(matches!(
            h,
            PhysPlan::HashJoin {
                kind: JoinKind::Semi,
                ..
            }
        ));
        let m = lower(
            &plan,
            &cat,
            &ExecConfig::with_join_algo(JoinAlgo::SortMerge),
        )
        .unwrap();
        assert!(matches!(
            m,
            PhysPlan::MergeJoin {
                kind: JoinKind::Semi,
                ..
            }
        ));
        let n = lower(
            &plan,
            &cat,
            &ExecConfig::with_join_algo(JoinAlgo::NestedLoop),
        )
        .unwrap();
        assert!(matches!(
            n,
            PhysPlan::NlJoin {
                kind: JoinKind::Semi,
                ..
            }
        ));
    }

    #[test]
    fn nest_join_lowering_keeps_func_and_label() {
        let cat = catalog();
        let plan = Plan::scan("X", "x").nest_join(
            Plan::scan("Y", "y"),
            E::eq(E::path("x", &["b"]), E::path("y", &["b"])),
            E::path("y", &["c"]),
            "zs",
        );
        let phys = lower(&plan, &cat, &ExecConfig::auto()).unwrap();
        let PhysPlan::HashJoin {
            kind: JoinKind::Nest { label, .. },
            ..
        } = phys
        else {
            panic!("expected hash nest join");
        };
        assert_eq!(label, "zs");
    }

    /// BIG(100 rows, b with 10 distinct values) + TINY(2 rows): large
    /// enough that probing an index on BIG.b beats scanning BIG.
    fn indexed_catalog() -> Catalog {
        let mut cat = Catalog::new();
        let rows: Vec<Vec<i64>> = (0..100).map(|i| vec![i, i % 10]).collect();
        let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
        cat.register(int_table("BIG", &["a", "b"], &refs)).unwrap();
        cat.register(int_table("TINY", &["b", "c"], &[&[1, 10], &[2, 20]]))
            .unwrap();
        cat.create_index("BIG", "b").unwrap();
        cat
    }

    #[test]
    fn indexed_selection_lowers_to_index_scan() {
        let cat = indexed_catalog();
        let plan = Plan::scan("BIG", "x").select(E::eq(E::path("x", &["b"]), E::lit(3i64)));
        let phys = lower(&plan, &cat, &ExecConfig::auto()).unwrap();
        let PhysPlan::IndexScan {
            attr, eq, lo, hi, ..
        } = phys
        else {
            panic!("expected IndexScan, got {phys}");
        };
        assert_eq!(attr, "b");
        assert_eq!(eq, Some(E::lit(3i64)));
        assert!(lo.is_none() && hi.is_none());
    }

    #[test]
    fn indexed_range_selection_lowers_with_bounds() {
        let cat = indexed_catalog();
        let pred = E::and(
            E::cmp(CmpOp::Ge, E::path("x", &["b"]), E::lit(3i64)),
            E::cmp(CmpOp::Lt, E::path("x", &["b"]), E::lit(4i64)),
        );
        let plan = Plan::scan("BIG", "x").select(pred);
        let phys = lower(&plan, &cat, &ExecConfig::auto()).unwrap();
        let PhysPlan::IndexScan {
            attr, eq, lo, hi, ..
        } = phys
        else {
            panic!("expected IndexScan, got {phys}");
        };
        assert_eq!(attr, "b");
        assert!(eq.is_none());
        assert_eq!(lo, Some(E::lit(3i64)));
        assert_eq!(hi, Some(E::lit(4i64)));
    }

    #[test]
    fn selection_without_index_still_scans() {
        let cat = indexed_catalog();
        // Column `a` has no index: the plan must stay a Filter over a scan.
        let plan = Plan::scan("BIG", "x").select(E::eq(E::path("x", &["a"]), E::lit(3i64)));
        let phys = lower(&plan, &cat, &ExecConfig::auto()).unwrap();
        assert!(matches!(phys, PhysPlan::Filter { .. }), "{phys}");
    }

    #[test]
    fn indexed_inner_scan_lowers_to_index_nl_join_under_auto() {
        let cat = indexed_catalog();
        let plan = Plan::scan("TINY", "t").join(
            Plan::scan("BIG", "x"),
            E::eq(E::path("t", &["b"]), E::path("x", &["b"])),
        );
        let phys = lower(&plan, &cat, &ExecConfig::auto()).unwrap();
        let PhysPlan::IndexNLJoin {
            right_table,
            attr,
            key,
            ..
        } = phys
        else {
            panic!("expected IndexNLJoin, got {phys}");
        };
        assert_eq!(right_table, "BIG");
        assert_eq!(attr, "b");
        assert_eq!(key, E::path("t", &["b"]));
        // Forced algorithms never take the index path.
        for algo in [JoinAlgo::Hash, JoinAlgo::SortMerge, JoinAlgo::NestedLoop] {
            let phys = lower(&plan, &cat, &ExecConfig::with_join_algo(algo)).unwrap();
            assert!(!matches!(phys, PhysPlan::IndexNLJoin { .. }), "{phys}");
        }
    }

    #[test]
    fn apply_bindings_extracts_correlation_paths() {
        // σ[x.b = y.b](Y): the result depends on the outer row only
        // through `x.b`.
        let sub = Plan::scan("Y", "y")
            .select(E::eq(E::path("x", &["b"]), E::path("y", &["b"])))
            .map(E::path("y", &["c"]), "s");
        assert_eq!(apply_bindings(&sub), vec![E::path("x", &["b"])]);
        // An invariant subquery has no bindings at all.
        let inv = Plan::scan("Y", "y").map(E::path("y", &["c"]), "s");
        assert!(apply_bindings(&inv).is_empty());
        // A whole-row reference subsumes field paths off the same var.
        let sub2 = Plan::scan("Y", "y").select(E::and(
            E::eq(E::var("x"), E::path("y", &["b"])),
            E::eq(E::path("x", &["b"]), E::path("y", &["b"])),
        ));
        assert_eq!(apply_bindings(&sub2), vec![E::var("x")]);
        // A scan variable shadows a same-named outer variable.
        let shadowed = Plan::scan("X", "x").select(E::eq(E::path("x", &["b"]), E::lit(3i64)));
        assert!(apply_bindings(&shadowed).is_empty());
    }

    #[test]
    fn correlated_eq_selection_hoists_to_hash_probe() {
        let mut cat = Catalog::new();
        let rows: Vec<Vec<i64>> = (0..100).map(|i| vec![i, i % 10]).collect();
        let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
        cat.register(int_table("BIG", &["a", "b"], &refs)).unwrap();
        // Apply over BIG with subquery σ[y.b = x.b](BIG): 10 distinct
        // x.b bindings amortize a transient hash build on BIG.b.
        let sub = Plan::scan("BIG", "y").select(E::eq(E::path("y", &["b"]), E::path("x", &["b"])));
        let plan = Plan::scan("BIG", "x").apply(sub, "z");
        let phys = lower(&plan, &cat, &ExecConfig::auto()).unwrap();
        let PhysPlan::Apply {
            subquery, bindings, ..
        } = phys
        else {
            panic!("expected Apply");
        };
        assert_eq!(bindings, Some(vec![E::path("x", &["b"])]));
        let PhysPlan::HashProbe {
            table, attr, key, ..
        } = *subquery
        else {
            panic!("expected HashProbe subquery, got {subquery}");
        };
        assert_eq!(table, "BIG");
        assert_eq!(attr, "b");
        assert_eq!(key, E::path("x", &["b"]));
        // Row-shaping wrappers peel: a projecting Map over the same
        // eq-selection keeps its shape with the probe underneath.
        let sub = Plan::scan("BIG", "y")
            .select(E::eq(E::path("y", &["b"]), E::path("x", &["b"])))
            .map(E::path("y", &["a"]), "q");
        let plan = Plan::scan("BIG", "x").apply(sub, "z");
        let phys = lower(&plan, &cat, &ExecConfig::auto()).unwrap();
        let PhysPlan::Apply { subquery, .. } = phys else {
            panic!("expected Apply");
        };
        let PhysPlan::Map { input, .. } = *subquery else {
            panic!("expected Map subquery, got {subquery}");
        };
        assert!(matches!(*input, PhysPlan::HashProbe { .. }), "{input}");
        // With a persistent index on b the ordinary IndexScan path wins
        // and no transient build is planned.
        cat.create_index("BIG", "b").unwrap();
        let sub = Plan::scan("BIG", "y").select(E::eq(E::path("y", &["b"]), E::path("x", &["b"])));
        let plan = Plan::scan("BIG", "x").apply(sub, "z");
        let phys = lower(&plan, &cat, &ExecConfig::auto()).unwrap();
        let PhysPlan::Apply { subquery, .. } = phys else {
            panic!("expected Apply");
        };
        assert!(
            !matches!(*subquery, PhysPlan::HashProbe { .. }),
            "{subquery}"
        );
        // apply_cache(false) is the faithful legacy baseline: no memo
        // keys, no hoisting.
        let sub = Plan::scan("BIG", "y").select(E::eq(E::path("y", &["b"]), E::path("x", &["b"])));
        let plan = Plan::scan("BIG", "x").apply(sub, "z");
        let phys = lower(&plan, &cat, &ExecConfig::auto().apply_cache(false)).unwrap();
        let PhysPlan::Apply { bindings, .. } = phys else {
            panic!("expected Apply");
        };
        assert_eq!(bindings, None);
    }

    #[test]
    fn independent_subtrees_materialize_inside_apply() {
        let cat = catalog();
        // Subquery σ[y.b = x.b](Y ⋈ Y'): the join of the two inner scans
        // is correlation-independent and hoists behind a Materialize; the
        // dependent filter stays in the per-binding path.
        let sub = Plan::scan("Y", "y")
            .join(
                Plan::scan("Y", "w"),
                E::eq(E::path("y", &["b"]), E::path("w", &["b"])),
            )
            .select(E::eq(E::path("y", &["b"]), E::path("x", &["b"])));
        let plan = Plan::scan("X", "x").apply(sub, "z");
        let phys = lower(&plan, &cat, &ExecConfig::auto()).unwrap();
        let PhysPlan::Apply { subquery, .. } = phys else {
            panic!("expected Apply");
        };
        let PhysPlan::Filter { input, .. } = *subquery else {
            panic!("expected Filter subquery, got {subquery}");
        };
        assert!(
            matches!(*input, PhysPlan::Materialize { .. }),
            "expected Materialize under the correlated filter, got {input}"
        );
    }

    #[test]
    fn join_without_index_keeps_hash_plan() {
        let mut cat = indexed_catalog();
        cat.drop_index("BIG", "b").unwrap();
        let plan = Plan::scan("TINY", "t").join(
            Plan::scan("BIG", "x"),
            E::eq(E::path("t", &["b"]), E::path("x", &["b"])),
        );
        let phys = lower(&plan, &cat, &ExecConfig::auto()).unwrap();
        assert!(matches!(phys, PhysPlan::HashJoin { .. }), "{phys}");
    }
}
