//! Executor configuration.

/// Join algorithm selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinAlgo {
    /// Let the cost model decide (hash when equi-keys exist and the build
    /// side fits the heuristics, else nested-loop).
    #[default]
    Auto,
    /// Force nested-loop.
    NestedLoop,
    /// Force hash (falls back to nested-loop when no equi-key exists).
    Hash,
    /// Force sort-merge (falls back to nested-loop when no equi-key
    /// exists).
    SortMerge,
}

/// Configuration for planning and execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecConfig {
    /// Algorithm for the join family (join/semi/anti/outer/nest join).
    pub join_algo: JoinAlgo,
}

impl ExecConfig {
    /// Cost-based defaults.
    pub fn auto() -> ExecConfig {
        ExecConfig { join_algo: JoinAlgo::Auto }
    }

    /// Pin a join algorithm (benchmarks use this to compare
    /// implementations, reproducing the paper's "the optimizer can choose
    /// the most suitable join execution method").
    pub fn with_join_algo(algo: JoinAlgo) -> ExecConfig {
        ExecConfig { join_algo: algo }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_auto() {
        assert_eq!(ExecConfig::default().join_algo, JoinAlgo::Auto);
        assert_eq!(ExecConfig::auto().join_algo, JoinAlgo::Auto);
        assert_eq!(ExecConfig::with_join_algo(JoinAlgo::Hash).join_algo, JoinAlgo::Hash);
    }
}
