//! Executor configuration.

/// Default number of rows per [`crate::op::operator::Batch`].
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// Default worker count for parallel execution: the `TMQL_THREADS`
/// environment variable when set (parsed, clamped to ≥ 1; `0` and `auto`
/// mean "use the hardware"), else [`std::thread::available_parallelism`].
/// `1` disables parallelism entirely — execution takes exactly the
/// pre-parallel code paths.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("TMQL_THREADS") {
        let v = v.trim();
        if !v.is_empty() && !v.eq_ignore_ascii_case("auto") {
            if let Ok(n) = v.parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Join algorithm selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinAlgo {
    /// Let the cost model decide (hash when equi-keys exist and the build
    /// side fits the heuristics, else nested-loop).
    #[default]
    Auto,
    /// Force nested-loop.
    NestedLoop,
    /// Force hash (falls back to nested-loop when no equi-key exists).
    Hash,
    /// Force sort-merge (falls back to nested-loop when no equi-key
    /// exists).
    SortMerge,
}

/// Configuration for planning and execution.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Algorithm for the join family (join/semi/anti/outer/nest join).
    pub join_algo: JoinAlgo,
    /// Rows per streaming batch (clamped to ≥ 1 by the executor). Smaller
    /// batches lower peak memory; larger batches amortize dispatch.
    pub batch_size: usize,
    /// Maximum rows any single pipeline breaker may hold resident before
    /// it spills to disk (`None` = unbounded, the default — queries behave
    /// exactly as before this knob existed). When set, hash-join builds
    /// switch to grace-hash partitioning, grouping/sort/set-op state and
    /// dedup sets switch to partitioned spill files, and
    /// [`crate::Metrics::rows_spilled`] / [`crate::Metrics::spill_partitions`]
    /// record the traffic. Best-effort: a single group or key run larger
    /// than the budget still has to be resident to be processed (recursive
    /// repartitioning stops at [`crate::op::spill::MAX_REPARTITION_DEPTH`]).
    pub memory_budget_rows: Option<usize>,
    /// Worker threads for morsel-driven parallel execution (clamped to
    /// ≥ 1). At `1` (always the case on single-core hosts) execution is
    /// exactly the serial pre-parallel behavior; above `1`, table scans
    /// fan morsels out to a scoped worker wave and the grace spill
    /// partitions of hash joins and pipeline breakers run
    /// partition-per-worker. Defaults to [`default_threads`].
    pub threads: usize,
    /// Memoize correlated `Apply` inner results by the outer row's
    /// correlation-binding values (default `true`). Duplicate bindings
    /// replay the cached result set instead of re-executing the inner
    /// plan; the cache is budget-aware (it evicts LRU entries to respect
    /// `memory_budget_rows`) and never changes results — only the
    /// `apply_invocations` / `apply_cache_hits` counters. `false` restores
    /// the one-inner-execution-per-outer-row behavior (differential tests
    /// and benchmarks compare the two).
    pub apply_cache: bool,
    /// Collect per-operator wall-clock spans (default `true`): the
    /// metered [`crate::op::operator::Operator::pull`] and the
    /// open/close walk wrap each call in an `Instant` span accumulated
    /// into [`crate::op::operator::OpStats::wall_nanos`], which is what
    /// `EXPLAIN ANALYZE` renders. Spans are measured on the driver
    /// thread, so a parallel worker wave inside one operator's
    /// `next_batch` is observed as the wave's wall-clock (the slowest
    /// worker), not the sum of worker CPU — see `docs/architecture.md`
    /// § Observability. Overhead is pinned below 5% by `b14_observe`;
    /// `false` skips the clock reads entirely and profiles report
    /// zero time.
    pub collect_timing: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            join_algo: JoinAlgo::Auto,
            batch_size: DEFAULT_BATCH_SIZE,
            memory_budget_rows: None,
            threads: default_threads(),
            apply_cache: true,
            collect_timing: true,
        }
    }
}

impl ExecConfig {
    /// Cost-based defaults.
    pub fn auto() -> ExecConfig {
        ExecConfig::default()
    }

    /// Pin a join algorithm (benchmarks use this to compare
    /// implementations, reproducing the paper's "the optimizer can choose
    /// the most suitable join execution method").
    pub fn with_join_algo(algo: JoinAlgo) -> ExecConfig {
        ExecConfig {
            join_algo: algo,
            ..ExecConfig::default()
        }
    }

    /// Override the streaming batch size.
    pub fn batch_size(mut self, n: usize) -> ExecConfig {
        self.batch_size = n.max(1);
        self
    }

    /// Bound resident breaker state to `n` rows, spilling beyond it
    /// (clamped to ≥ 1; use [`ExecConfig::unbounded`] to remove the bound).
    pub fn memory_budget(mut self, n: usize) -> ExecConfig {
        self.memory_budget_rows = Some(n.max(1));
        self
    }

    /// Remove the memory budget (the default): breakers never spill.
    pub fn unbounded(mut self) -> ExecConfig {
        self.memory_budget_rows = None;
        self
    }

    /// Set the worker-thread count (clamped to ≥ 1; `1` = serial).
    pub fn threads(mut self, n: usize) -> ExecConfig {
        self.threads = n.max(1);
        self
    }

    /// Enable or disable Apply binding memoization (default on).
    pub fn apply_cache(mut self, on: bool) -> ExecConfig {
        self.apply_cache = on;
        self
    }

    /// Enable or disable per-operator wall-clock spans (default on).
    pub fn collect_timing(mut self, on: bool) -> ExecConfig {
        self.collect_timing = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_auto() {
        assert_eq!(ExecConfig::default().join_algo, JoinAlgo::Auto);
        assert_eq!(ExecConfig::auto().join_algo, JoinAlgo::Auto);
        assert_eq!(
            ExecConfig::with_join_algo(JoinAlgo::Hash).join_algo,
            JoinAlgo::Hash
        );
        assert_eq!(ExecConfig::default().batch_size, DEFAULT_BATCH_SIZE);
    }

    #[test]
    fn batch_size_is_clamped_to_one() {
        assert_eq!(ExecConfig::default().batch_size(0).batch_size, 1);
        assert_eq!(ExecConfig::default().batch_size(7).batch_size, 7);
    }

    #[test]
    fn memory_budget_defaults_off_and_clamps() {
        assert_eq!(ExecConfig::default().memory_budget_rows, None);
        assert_eq!(
            ExecConfig::default().memory_budget(0).memory_budget_rows,
            Some(1)
        );
        assert_eq!(
            ExecConfig::default().memory_budget(512).memory_budget_rows,
            Some(512)
        );
        assert_eq!(
            ExecConfig::default()
                .memory_budget(512)
                .unbounded()
                .memory_budget_rows,
            None
        );
    }

    #[test]
    fn apply_cache_defaults_on() {
        assert!(ExecConfig::default().apply_cache);
        assert!(!ExecConfig::default().apply_cache(false).apply_cache);
    }

    #[test]
    fn collect_timing_defaults_on() {
        assert!(ExecConfig::default().collect_timing);
        assert!(!ExecConfig::default().collect_timing(false).collect_timing);
    }

    #[test]
    fn threads_default_positive_and_clamp() {
        assert!(ExecConfig::default().threads >= 1);
        assert_eq!(ExecConfig::default().threads(0).threads, 1);
        assert_eq!(ExecConfig::default().threads(8).threads, 8);
    }
}
