//! The executor's contribution to the engine-wide metrics registry.
//!
//! [`Metrics`] is per-query and reset on every run; the registry wants
//! process-lifetime totals. [`MetricsRecorder`] bridges the two: it
//! registers one `tmql_exec_*` series per [`Metrics`] counter and
//! [`MetricsRecorder::record`] folds a finished query's counters in
//! (summing counters, ratcheting the peak-residency gauge).

use tmql_obs::{Counter, Gauge, MetricsRegistry};

use crate::metrics::Metrics;

/// Registry handles for every [`Metrics`] field, plus the cumulative
/// total-work counter.
#[derive(Debug, Clone)]
pub struct MetricsRecorder {
    rows_scanned: Counter,
    comparisons: Counter,
    hash_build_rows: Counter,
    hash_probes: Counter,
    rows_sorted: Counter,
    rows_emitted: Counter,
    subquery_invocations: Counter,
    rows_spilled: Counter,
    spill_partitions: Counter,
    batches_emitted: Counter,
    pool_hits: Counter,
    pool_misses: Counter,
    index_probes: Counter,
    index_hits: Counter,
    apply_invocations: Counter,
    apply_cache_hits: Counter,
    total_work: Counter,
    peak_resident_rows: Gauge,
}

impl MetricsRecorder {
    /// Register the executor's series into `reg` (idempotent) and return
    /// the handles.
    pub fn register(reg: &MetricsRegistry) -> MetricsRecorder {
        let c = |name: &str, help: &str| reg.counter(name, help);
        MetricsRecorder {
            rows_scanned: c("tmql_exec_rows_scanned_total", "Rows read from base tables"),
            comparisons: c(
                "tmql_exec_comparisons_total",
                "Predicate evaluations and key comparisons",
            ),
            hash_build_rows: c(
                "tmql_exec_hash_build_rows_total",
                "Rows inserted into hash tables",
            ),
            hash_probes: c("tmql_exec_hash_probes_total", "Hash table probes"),
            rows_sorted: c("tmql_exec_rows_sorted_total", "Rows passed through sorts"),
            rows_emitted: c(
                "tmql_exec_rows_emitted_total",
                "Rows emitted by all operators",
            ),
            subquery_invocations: c(
                "tmql_exec_subquery_invocations_total",
                "Correlated subquery executions",
            ),
            rows_spilled: c(
                "tmql_exec_rows_spilled_total",
                "Records written to spill files",
            ),
            spill_partitions: c(
                "tmql_exec_spill_partitions_total",
                "Non-empty spill partitions created",
            ),
            batches_emitted: c(
                "tmql_exec_batches_emitted_total",
                "Batches emitted by all operators",
            ),
            pool_hits: c(
                "tmql_exec_pool_hits_total",
                "Buffer-pool hits attributed to queries",
            ),
            pool_misses: c(
                "tmql_exec_pool_misses_total",
                "Buffer-pool faults attributed to queries",
            ),
            index_probes: c("tmql_exec_index_probes_total", "Secondary-index probes"),
            index_hits: c(
                "tmql_exec_index_hits_total",
                "Candidate rows returned by index probes",
            ),
            apply_invocations: c(
                "tmql_exec_apply_invocations_total",
                "Apply inner-plan executions performed",
            ),
            apply_cache_hits: c(
                "tmql_exec_apply_cache_hits_total",
                "Apply outer rows answered from the binding cache",
            ),
            total_work: c(
                "tmql_exec_total_work",
                "Cumulative Metrics::total_work across queries",
            ),
            peak_resident_rows: reg.gauge(
                "tmql_exec_peak_resident_rows",
                "High-water mark of resident operator-state rows over any single query",
            ),
        }
    }

    /// Fold one finished query's counters into the process totals.
    pub fn record(&self, m: &Metrics) {
        self.rows_scanned.add(m.rows_scanned);
        self.comparisons.add(m.comparisons);
        self.hash_build_rows.add(m.hash_build_rows);
        self.hash_probes.add(m.hash_probes);
        self.rows_sorted.add(m.rows_sorted);
        self.rows_emitted.add(m.rows_emitted);
        self.subquery_invocations.add(m.subquery_invocations);
        self.rows_spilled.add(m.rows_spilled);
        self.spill_partitions.add(m.spill_partitions);
        self.batches_emitted.add(m.batches_emitted);
        self.pool_hits.add(m.pool_hits);
        self.pool_misses.add(m.pool_misses);
        self.index_probes.add(m.index_probes);
        self.index_hits.add(m.index_hits);
        self.apply_invocations.add(m.apply_invocations);
        self.apply_cache_hits.add(m.apply_cache_hits);
        self.total_work.add(m.total_work());
        // Peak residency is a gauge merged by max, same as `AddAssign`.
        self.peak_resident_rows.fetch_max(m.peak_resident_rows);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_sums_counters_and_maxes_the_peak() {
        let reg = MetricsRegistry::new();
        let rec = MetricsRecorder::register(&reg);
        let mut m = Metrics::new();
        m.rows_scanned = 10;
        m.peak_resident_rows = 100;
        rec.record(&m);
        m.rows_scanned = 5;
        m.peak_resident_rows = 40;
        rec.record(&m);
        let text = reg.render();
        assert!(text.contains("tmql_exec_rows_scanned_total 15\n"), "{text}");
        assert!(
            text.contains("tmql_exec_peak_resident_rows 100\n"),
            "{text}"
        );
        assert!(text.contains("tmql_exec_total_work 15\n"), "{text}");
    }
}
