#![warn(missing_docs)]

//! # tmql-exec — physical execution engine
//!
//! Executes logical plans from `tmql-algebra` over tables stored in a
//! `tmql-storage` catalog. The point of the paper's transformation work is
//! that "a nested SQL query can be looked upon as a nested-loop join, which
//! is just one of the several join implementations" (Section 1) — so this
//! crate supplies the *several implementations*:
//!
//! * **nested-loop**, **hash**, and **sort-merge** variants of the inner
//!   join, semijoin, antijoin, left outerjoin, and the paper's **nest
//!   join** Δ (Section 6 notes the nest join "is a simple modification of
//!   any common join implementation method" — compare [`op::hash`] and
//!   [`op::nl`] to see exactly how small the modification is);
//! * grouping (`ν`/`ν*`, GROUP BY aggregation), unnesting (`μ`), set
//!   operations, and the correlated [`Plan::Apply`] as a real nested-loop —
//!   the baseline the paper wants to beat;
//! * a [`cost`] estimator that turns `tmql-storage` statistics
//!   (histograms, distinct counts, set-valued fan-outs) into per-plan
//!   `{rows, work, resident}` estimates — consumed by the logical
//!   optimizer's cost-based strategy selection, by `EXPLAIN`/profile
//!   annotation (estimated vs. actual rows), and by
//! * a [`planner`] that lowers logical plans to physical ones, extracting
//!   equi-join keys, choosing join algorithms, and building hash inner
//!   joins on the estimated-smaller side (overridable per [`ExecConfig`],
//!   which the benchmark harness uses to pin algorithms);
//! * [`Metrics`] counting scanned rows, predicate/key comparisons, hash
//!   operations, emitted rows/batches, and the peak-resident-row gauge, so
//!   experiments can report *work* and *memory shape* as well as wall-time.
//!
//! Execution is streaming: every physical operator implements the
//! Volcano-style [`Operator`] trait (`open` / `next_batch` / `close`) over
//! fixed-capacity [`Batch`]es ([`ExecConfig::batch_size`] rows). Scans,
//! filters, maps, unnests, hash-join probes and `Apply` outer rows are
//! pipelined; only genuine pipeline breakers (hash build sides, sorts,
//! grouping, set ops, dedup state) hold rows resident — which is what
//! [`Metrics::peak_resident_rows`] measures.
//!
//! Breakers are also the spill boundary: under
//! [`ExecConfig::memory_budget_rows`] they cap their resident state and
//! switch to grace-hash / partitioned execution over on-disk record runs
//! ([`op::spill`]), so workloads larger than memory complete with bounded
//! residency and identical results ([`Metrics::rows_spilled`] counts the
//! traffic).

pub mod config;
pub mod cost;
pub mod exec;
pub mod metrics;
pub mod obs;
pub mod op;
pub mod physical;
pub mod planner;

pub use config::{default_threads, ExecConfig, JoinAlgo, DEFAULT_BATCH_SIZE};
pub use cost::{CostEstimate, Estimator};
pub use exec::{execute, execute_collect, execute_logical, execute_profiled, ExecContext};
pub use metrics::Metrics;
pub use obs::MetricsRecorder;
pub use op::operator::{Batch, OpProfile, OpStats, Operator};
pub use physical::{JoinKind, PhysPlan};
pub use planner::lower;

use tmql_algebra::Plan;
use tmql_model::{Record, Result};
use tmql_storage::Catalog;

/// One-call convenience: lower a logical plan with `config`, execute it
/// against `catalog`, and return rows plus metrics.
pub fn run(plan: &Plan, catalog: &Catalog, config: &ExecConfig) -> Result<(Vec<Record>, Metrics)> {
    let phys = planner::lower(plan, catalog, config)?;
    let mut ctx = ExecContext::with_config(catalog, config);
    let rows = exec::execute(&phys, &mut ctx, &tmql_algebra::Env::new())?;
    Ok((rows, ctx.metrics))
}

/// Run a plan and return its result as a set of output values (the
/// convention of [`Plan::row_output_value`]), which is how query results
/// are compared across unnesting strategies.
pub fn run_values(
    plan: &Plan,
    catalog: &Catalog,
    config: &ExecConfig,
) -> Result<std::collections::BTreeSet<tmql_model::Value>> {
    let (rows, _) = run(plan, catalog, config)?;
    Ok(rows.iter().map(Plan::row_output_value).collect())
}
