//! Physical plans: logical operators annotated with implementation choice.
//!
//! A [`PhysPlan`] is pure description; [`crate::op::operator::build`]
//! turns it into the streaming operator tree that actually executes. The
//! `op_label` names here match the operator labels in the executed
//! profile so `EXPLAIN` output lines up before and after execution.

use std::fmt;

use tmql_algebra::{AggFn, ScalarExpr, SetOpKind};

/// What a join produces — shared across the nested-loop, hash, and
/// sort-merge implementations. The `Nest` variant is the paper's Δ: the
/// *same* matching machinery, but emitting one output row per left row with
/// the matches collected into a set (and ∅ for dangling rows).
#[derive(Debug, Clone, PartialEq)]
pub enum JoinKind {
    /// Regular join: concatenated matching pairs.
    Inner,
    /// Semijoin ⋉: left rows with a match.
    Semi,
    /// Antijoin ▷: left rows without a match.
    Anti,
    /// Left outerjoin ⟕: dangling left rows NULL-extended on the right
    /// variables (listed here so the executor knows what to bind).
    LeftOuter {
        /// Variables of the right operand to NULL-bind for dangling rows.
        right_vars: Vec<String>,
    },
    /// Nest join Δ: left row extended with the set of `func` images of
    /// matching right rows under `label`.
    Nest {
        /// Join function G(x, y).
        func: ScalarExpr,
        /// Output label for the nested set.
        label: String,
    },
}

impl JoinKind {
    /// Short name for explain output.
    pub fn name(&self) -> &'static str {
        match self {
            JoinKind::Inner => "join",
            JoinKind::Semi => "semijoin",
            JoinKind::Anti => "antijoin",
            JoinKind::LeftOuter { .. } => "outerjoin",
            JoinKind::Nest { .. } => "nestjoin",
        }
    }
}

/// A physical plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysPlan {
    /// Full scan of a stored table.
    ScanTable {
        /// Table name.
        table: String,
        /// Binding variable.
        var: String,
    },
    /// Probe a secondary index on `table.attr` instead of scanning: an
    /// equality key and/or range bounds (constant expressions) select a
    /// **candidate superset** of row positions, fetched in ascending
    /// position order; `pred` is the full original predicate, re-checked
    /// against every candidate, so the probe can over-approximate (NaN
    /// keys, int/float promotion) but never changes results.
    IndexScan {
        /// Table name.
        table: String,
        /// Binding variable.
        var: String,
        /// Indexed attribute.
        attr: String,
        /// Equality key expression (constant w.r.t. the scan), if any.
        eq: Option<ScalarExpr>,
        /// Inclusive lower bound, if any.
        lo: Option<ScalarExpr>,
        /// Inclusive upper bound, if any.
        hi: Option<ScalarExpr>,
        /// Full selection predicate, re-evaluated per candidate row.
        pred: ScalarExpr,
    },
    /// Iterate a set expression (correlated or constant).
    ScanExpr {
        /// Set expression.
        expr: ScalarExpr,
        /// Binding variable.
        var: String,
    },
    /// Filter.
    Filter {
        /// Input.
        input: Box<PhysPlan>,
        /// Predicate.
        pred: ScalarExpr,
    },
    /// Generalized projection to a single binding (dedups).
    Map {
        /// Input.
        input: Box<PhysPlan>,
        /// Expression.
        expr: ScalarExpr,
        /// Output variable.
        var: String,
    },
    /// Add a binding.
    Extend {
        /// Input.
        input: Box<PhysPlan>,
        /// Expression.
        expr: ScalarExpr,
        /// New variable.
        var: String,
    },
    /// Keep a subset of variables (dedups).
    Project {
        /// Input.
        input: Box<PhysPlan>,
        /// Variables kept.
        vars: Vec<String>,
    },
    /// Nested-loop implementation of any [`JoinKind`]; the universal
    /// fallback for arbitrary predicates.
    NlJoin {
        /// Left (outer loop) operand.
        left: Box<PhysPlan>,
        /// Right (inner loop) operand.
        right: Box<PhysPlan>,
        /// Full join predicate.
        pred: ScalarExpr,
        /// Output shape.
        kind: JoinKind,
    },
    /// Hash implementation for equi-predicates: build on the right
    /// operand, probe with the left. For `JoinKind::Nest` the right side
    /// **must** be the build side — the paper's implementation restriction
    /// ("only the right join operand may be the build table", Section 6).
    HashJoin {
        /// Probe side.
        left: Box<PhysPlan>,
        /// Build side.
        right: Box<PhysPlan>,
        /// Key expressions over left variables (same length as
        /// `right_keys`).
        left_keys: Vec<ScalarExpr>,
        /// Key expressions over right variables.
        right_keys: Vec<ScalarExpr>,
        /// Residual non-equi predicate, if any.
        residual: Option<ScalarExpr>,
        /// Output shape.
        kind: JoinKind,
    },
    /// Index nested-loop join: for each left row, evaluate `key` and
    /// probe the index on `right_table.attr` for candidate inner rows,
    /// then run them through the same match/emit machinery as `NlJoin`
    /// (`pred` is the full join predicate, re-checked per candidate).
    /// Supports every [`JoinKind`], so semi/anti set-membership rewrites
    /// become per-row index probes.
    IndexNLJoin {
        /// Outer operand.
        left: Box<PhysPlan>,
        /// Inner stored table (probed, never scanned).
        right_table: String,
        /// Inner binding variable.
        right_var: String,
        /// Indexed attribute on the inner table.
        attr: String,
        /// Key expression over left variables.
        key: ScalarExpr,
        /// Full join predicate, re-evaluated per candidate pair.
        pred: ScalarExpr,
        /// Output shape.
        kind: JoinKind,
    },
    /// Sort-merge implementation for equi-predicates. For
    /// `JoinKind::Nest`, merging on sorted left keys emits each left
    /// group's matches contiguously, so grouping is free.
    MergeJoin {
        /// Left operand.
        left: Box<PhysPlan>,
        /// Right operand.
        right: Box<PhysPlan>,
        /// Key expressions over left variables.
        left_keys: Vec<ScalarExpr>,
        /// Key expressions over right variables.
        right_keys: Vec<ScalarExpr>,
        /// Residual non-equi predicate, if any.
        residual: Option<ScalarExpr>,
        /// Output shape.
        kind: JoinKind,
    },
    /// ν / ν* grouping.
    Nest {
        /// Input.
        input: Box<PhysPlan>,
        /// Group keys (variables).
        keys: Vec<String>,
        /// Payload expression.
        value: ScalarExpr,
        /// Nested-set label.
        label: String,
        /// ν* NULL-elision.
        star: bool,
    },
    /// μ unnest.
    Unnest {
        /// Input.
        input: Box<PhysPlan>,
        /// Set expression to flatten.
        expr: ScalarExpr,
        /// Element variable.
        elem_var: String,
        /// Variables dropped after flattening.
        drop_vars: Vec<String>,
    },
    /// Hash GROUP BY with aggregates.
    GroupAgg {
        /// Input.
        input: Box<PhysPlan>,
        /// Key label/expression pairs.
        keys: Vec<(String, ScalarExpr)>,
        /// Aggregate label/function/argument triples.
        aggs: Vec<(String, AggFn, ScalarExpr)>,
        /// Output variable.
        var: String,
    },
    /// Correlated apply — a true nested loop over subquery executions; the
    /// paper's baseline. The executor builds the inner operator tree
    /// **once** and re-opens it per outer row (operator reuse); with
    /// `bindings` present it additionally memoizes completed inner result
    /// sets by the evaluated binding values, so the inner plan runs once
    /// per *distinct* binding.
    Apply {
        /// Outer plan.
        input: Box<PhysPlan>,
        /// Inner (correlated) plan.
        subquery: Box<PhysPlan>,
        /// Label bound to the subquery result set.
        label: String,
        /// Correlation-binding key expressions the inner result depends
        /// on: `None` disables memoization (one inner execution per outer
        /// row); `Some(vec![])` marks an invariant subquery (a single
        /// cached execution answers every row); `Some(exprs)` keys the
        /// cache on the evaluated expressions.
        bindings: Option<Vec<ScalarExpr>>,
    },
    /// Replay buffer around a correlation-independent subtree inside an
    /// Apply inner plan: the child executes once on first demand, later
    /// re-opens replay the buffered rows. Falls back to pass-through
    /// re-execution when the buffer would exceed the memory budget.
    Materialize {
        /// The hoisted (correlation-independent) subtree.
        input: Box<PhysPlan>,
    },
    /// Transient-hash-index scan: build a [`tmql_storage::HashIndex`] on
    /// `table.attr` on first open (there is no persistent index to use),
    /// keep it across re-opens, and answer each open by probing `key`.
    /// Chosen for Apply inner plans shaped `σ[var.attr = key](table)`
    /// where `key` is correlation-dependent: the build cost is paid once,
    /// each distinct binding pays one probe instead of one full scan.
    /// Like `IndexScan`, the probe yields a candidate superset and `pred`
    /// is re-checked per candidate.
    HashProbe {
        /// Probed stored table.
        table: String,
        /// Binding variable.
        var: String,
        /// Hashed attribute.
        attr: String,
        /// Equality key expression (correlation-dependent, constant
        /// w.r.t. the scan variable).
        key: ScalarExpr,
        /// Full selection predicate, re-evaluated per candidate row.
        pred: ScalarExpr,
    },
    /// Set operation on output values.
    SetOp {
        /// Operation.
        kind: SetOpKind,
        /// Left operand.
        left: Box<PhysPlan>,
        /// Right operand.
        right: Box<PhysPlan>,
        /// Output variable.
        var: String,
    },
}

impl PhysPlan {
    /// Operator label (with algorithm) for explain output.
    pub fn op_label(&self) -> String {
        match self {
            PhysPlan::ScanTable { table, .. } => format!("Scan({table})"),
            PhysPlan::IndexScan { table, attr, .. } => format!("IndexScan({table}.{attr})"),
            PhysPlan::IndexNLJoin {
                right_table,
                attr,
                kind,
                ..
            } => format!("IndexNLJoin[{}]({right_table}.{attr})", kind.name()),
            PhysPlan::ScanExpr { .. } => "ScanExpr".into(),
            PhysPlan::Filter { .. } => "Filter".into(),
            PhysPlan::Map { .. } => "Map".into(),
            PhysPlan::Extend { .. } => "Extend".into(),
            PhysPlan::Project { .. } => "Project".into(),
            PhysPlan::NlJoin { kind, .. } => format!("NlJoin[{}]", kind.name()),
            PhysPlan::HashJoin { kind, .. } => format!("HashJoin[{}]", kind.name()),
            PhysPlan::MergeJoin { kind, .. } => format!("MergeJoin[{}]", kind.name()),
            PhysPlan::Nest { star, .. } => if *star { "Nest[ν*]" } else { "Nest[ν]" }.into(),
            PhysPlan::Unnest { .. } => "Unnest".into(),
            PhysPlan::GroupAgg { .. } => "GroupAgg".into(),
            PhysPlan::Apply { bindings, .. } => match bindings {
                None => "Apply".into(),
                Some(b) if b.is_empty() => "Apply[once]".into(),
                Some(_) => "Apply[memo]".into(),
            },
            PhysPlan::Materialize { .. } => "Materialize".into(),
            PhysPlan::HashProbe { table, attr, .. } => format!("HashProbe({table}.{attr})"),
            PhysPlan::SetOp { .. } => "SetOp".into(),
        }
    }

    /// Children, left to right.
    pub fn children(&self) -> Vec<&PhysPlan> {
        match self {
            PhysPlan::ScanTable { .. }
            | PhysPlan::IndexScan { .. }
            | PhysPlan::ScanExpr { .. }
            | PhysPlan::HashProbe { .. } => {
                vec![]
            }
            PhysPlan::IndexNLJoin { left, .. } => vec![left],
            PhysPlan::Filter { input, .. }
            | PhysPlan::Map { input, .. }
            | PhysPlan::Extend { input, .. }
            | PhysPlan::Project { input, .. }
            | PhysPlan::Nest { input, .. }
            | PhysPlan::Unnest { input, .. }
            | PhysPlan::GroupAgg { input, .. }
            | PhysPlan::Materialize { input } => vec![input],
            PhysPlan::NlJoin { left, right, .. }
            | PhysPlan::HashJoin { left, right, .. }
            | PhysPlan::MergeJoin { left, right, .. }
            | PhysPlan::SetOp { left, right, .. } => vec![left, right],
            PhysPlan::Apply {
                input, subquery, ..
            } => vec![input, subquery],
        }
    }

    /// Indented explain rendering.
    pub fn explain(&self) -> String {
        fn go(p: &PhysPlan, depth: usize, out: &mut String) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&p.op_label());
            out.push('\n');
            for c in p.children() {
                go(c, depth + 1, out);
            }
        }
        let mut s = String::new();
        go(self, 0, &mut s);
        s
    }
}

impl fmt::Display for PhysPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.explain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmql_algebra::ScalarExpr as E;

    #[test]
    fn explain_shows_algorithms() {
        let p = PhysPlan::HashJoin {
            left: Box::new(PhysPlan::ScanTable {
                table: "X".into(),
                var: "x".into(),
            }),
            right: Box::new(PhysPlan::ScanTable {
                table: "Y".into(),
                var: "y".into(),
            }),
            left_keys: vec![E::path("x", &["b"])],
            right_keys: vec![E::path("y", &["b"])],
            residual: None,
            kind: JoinKind::Nest {
                func: E::var("y"),
                label: "ys".into(),
            },
        };
        let s = p.explain();
        assert!(s.contains("HashJoin[nestjoin]"), "{s}");
        assert!(s.contains("Scan(X)"), "{s}");
    }

    #[test]
    fn index_ops_label_table_and_attr() {
        let scan = PhysPlan::IndexScan {
            table: "R".into(),
            var: "r".into(),
            attr: "a".into(),
            eq: Some(E::lit(3i64)),
            lo: None,
            hi: None,
            pred: E::lit(true),
        };
        assert_eq!(scan.op_label(), "IndexScan(R.a)");
        assert!(scan.children().is_empty());
        let join = PhysPlan::IndexNLJoin {
            left: Box::new(scan),
            right_table: "S".into(),
            right_var: "s".into(),
            attr: "b".into(),
            key: E::path("r", &["a"]),
            pred: E::lit(true),
            kind: JoinKind::Semi,
        };
        assert_eq!(join.op_label(), "IndexNLJoin[semijoin](S.b)");
        assert_eq!(join.children().len(), 1, "the probed inner is no child");
    }

    #[test]
    fn apply_labels_show_the_caching_decision() {
        let scan = |t: &str, v: &str| {
            Box::new(PhysPlan::ScanTable {
                table: t.into(),
                var: v.into(),
            })
        };
        let apply = |bindings: Option<Vec<ScalarExpr>>| PhysPlan::Apply {
            input: scan("X", "x"),
            subquery: scan("Y", "y"),
            label: "z".into(),
            bindings,
        };
        assert_eq!(apply(None).op_label(), "Apply");
        assert_eq!(apply(Some(vec![])).op_label(), "Apply[once]");
        assert_eq!(
            apply(Some(vec![E::path("x", &["b"])])).op_label(),
            "Apply[memo]"
        );
        let probe = PhysPlan::HashProbe {
            table: "Y".into(),
            var: "y".into(),
            attr: "b".into(),
            key: E::path("x", &["b"]),
            pred: E::lit(true),
        };
        assert_eq!(probe.op_label(), "HashProbe(Y.b)");
        assert!(probe.children().is_empty());
        let mat = PhysPlan::Materialize {
            input: scan("Y", "y"),
        };
        assert_eq!(mat.op_label(), "Materialize");
        assert_eq!(mat.children().len(), 1);
    }

    #[test]
    fn join_kind_names() {
        assert_eq!(JoinKind::Inner.name(), "join");
        assert_eq!(JoinKind::Semi.name(), "semijoin");
        assert_eq!(JoinKind::Anti.name(), "antijoin");
        assert_eq!(
            JoinKind::LeftOuter { right_vars: vec![] }.name(),
            "outerjoin"
        );
    }
}
