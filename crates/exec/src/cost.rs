//! The cardinality and cost model over table statistics.
//!
//! This module turns `tmql-storage` statistics (cardinalities, distinct
//! counts, equi-width histograms, set-valued fan-outs) into per-plan
//! estimates the decision layers consume:
//!
//! * the **logical optimizer** (`tmql-core`) ranks rewritten candidate
//!   plans per query block under `UnnestStrategy::CostBased`;
//! * the **physical planner** ([`crate::planner`]) picks join algorithms
//!   and the hash-join build side;
//! * the **facade** annotates `EXPLAIN` output with estimated rows and the
//!   executed profile with estimated-vs-actual rows, making q-error
//!   visible.
//!
//! The model is deliberately classical (System-R lineage): per-operator
//! output cardinalities from selectivities, abstract `work` units that
//! mirror the executor's counters (rows scanned, predicate evaluations,
//! hash build/probe traffic, subquery invocations), and a `resident`
//! component that mirrors the streaming executor's pipeline-breaker model
//! from the `peak_resident_rows` gauge — breakers (hash build sides, sort
//! buffers, grouping state, dedup sets) hold rows, pipelined operators do
//! not.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use tmql_algebra::{CmpOp, Plan, ScalarExpr};
use tmql_model::Value;
use tmql_storage::stats::{ColumnStats, TableStats};
use tmql_storage::Catalog;

use crate::physical::{JoinKind, PhysPlan};
use crate::planner::extract_equi_keys;

/// Default selectivity of an opaque predicate.
pub const DEFAULT_SELECTIVITY: f64 = 0.25;
/// Default selectivity of an equi-join conjunct when no stats are known.
pub const DEFAULT_EQ_SELECTIVITY: f64 = 0.01;
/// Default fan-out of a set-valued expression (`ScanExpr`, `Unnest`) when
/// no per-column average set-cardinality statistic is available — e.g. the
/// set is a subquery label or a constructed value. When the expression is
/// a stored column, [`TableStats::avg_set_card`] is used instead.
pub const DEFAULT_SET_FANOUT: f64 = 16.0;
/// Assumed cardinality of a table with no recorded statistics.
pub const UNKNOWN_TABLE_ROWS: f64 = 1000.0;
/// Grouping collapse factor when group-key distinct counts are unknown.
pub const GROUP_COLLAPSE: f64 = 0.1;
/// Abstract per-invocation overhead of a correlated `Apply` (operator
/// re-open + environment rebind), on top of the subquery's own work.
/// Charged once per *distinct* correlation binding — the executor
/// memoizes completed inner results per binding, so duplicate bindings
/// cost a cache probe, not an execution.
pub const APPLY_OVERHEAD: f64 = 4.0;
/// Abstract work units charged per outer row of an `Apply` for
/// evaluating the binding key and probing the result cache — mirrors
/// [`crate::Metrics::apply_cache_hits`] entering `total_work`.
pub const CACHE_PROBE_WORK: f64 = 1.0;
/// Floor for combined predicate selectivities.
const MIN_SELECTIVITY: f64 = 1e-4;
/// Scalar-expression nodes evaluated per abstract work unit: predicate
/// evaluation is interpretive (a tree walk per row), so a selection's
/// per-row cost scales with its predicate's size.
const EXPR_NODES_PER_WORK_UNIT: f64 = 4.0;
/// Abstract work units charged per row that a breaker spills (serialize +
/// write, then read + decode — several times the cost of touching a row in
/// memory). Mirrors [`crate::Metrics::rows_spilled`] entering
/// `total_work`, with the weight capturing that a spilled row is more
/// expensive than an emitted one.
pub const SPILL_IO_PER_ROW: f64 = 4.0;
/// Abstract work units charged per data page a scan must fault in from
/// disk (seek + read + slot decode for a whole 8 KiB page). Applied to
/// the pages of a disk-backed table that are **not** currently resident
/// in the buffer pool, so a cold scan costs more than the same scan warm
/// — mirroring [`crate::Metrics::pool_misses`] entering `total_work`.
pub const PAGE_IO_WORK: f64 = 16.0;
/// Abstract work units charged per secondary-index probe (an ordered-map
/// descent plus cursor setup). The probe path additionally pays for every
/// candidate row it fetches and re-checks, so the modeled crossover
/// against a full scan sits where the candidate traffic stops being small
/// — mirroring [`crate::Metrics::index_probes`] / `index_hits` entering
/// `total_work`.
pub const INDEX_PROBE_WORK: f64 = 4.0;
/// Weight of the `resident` component in [`CostEstimate::total`]: a mild
/// memory-pressure penalty so that, costs being close, the plan with the
/// smaller pipeline-breaker footprint wins.
const RESIDENT_WEIGHT: f64 = 0.25;
/// Abstract work units charged per row crossing an exchange when a plan
/// fragment runs on a worker wave (`threads > 1`): morsel hand-off, the
/// ordered gather, and the carry-queue copy. Keeps parallel estimates
/// from claiming a free `1/threads` — the modeled speedup saturates at
/// the point where exchange traffic dominates per-row work.
pub const EXCHANGE_COST_PER_ROW: f64 = 0.1;

/// Estimated execution characteristics of a plan (cumulative over the
/// whole subtree).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Estimated output rows.
    pub rows: f64,
    /// Abstract work units: scans + predicate evaluations + hash traffic +
    /// emitted rows + subquery invocations, mirroring
    /// [`crate::Metrics::total_work`].
    pub work: f64,
    /// Estimated peak rows resident in operator state (pipeline breakers,
    /// dedup sets) — the model counterpart of
    /// [`crate::Metrics::peak_resident_rows`]. An upper bound: concurrent
    /// breaker states are summed.
    pub resident: f64,
}

impl CostEstimate {
    /// Total comparable cost: work plus a mild memory-pressure penalty.
    pub fn total(&self) -> f64 {
        self.work + RESIDENT_WEIGHT * self.resident
    }
}

/// Estimated cost (abstract work units) of executing a join of the given
/// cardinalities with each algorithm.
pub mod join_cost {
    /// Nested loop: |L|·|R| comparisons.
    pub fn nested_loop(l: f64, r: f64) -> f64 {
        l * r
    }

    /// Hash: build |R| + probe |L| (assuming few collisions).
    pub fn hash(l: f64, r: f64) -> f64 {
        r * 1.5 + l
    }

    /// Sort-merge: sort both sides (with a realistic per-row constant —
    /// key extraction and comparison are not free) + merge.
    pub fn sort_merge(l: f64, r: f64) -> f64 {
        let sort = |n: f64| 2.0 * n * (n + 2.0).log2();
        sort(l) + sort(r) + l + r
    }

    /// Index nested loop: one probe per outer row plus a fetch + full
    /// predicate re-check per candidate the probes return. The inner
    /// operand is never scanned or built — that saving is accounted by
    /// the caller dropping the inner subtree's work.
    pub fn index_nl(l: f64, matches: f64) -> f64 {
        l * super::INDEX_PROBE_WORK + 2.0 * matches
    }
}

/// Correlation scope for estimates under an `Apply`: iteration variables of
/// enclosing plans mapped to the table they scan.
type Scope = BTreeMap<String, String>;

/// The statistics-backed estimator. Cheap to construct (borrows the
/// catalog); all estimation is pure.
#[derive(Debug, Clone, Copy)]
pub struct Estimator<'a> {
    catalog: &'a Catalog,
    /// Mirror of [`crate::ExecConfig::memory_budget_rows`]: when a
    /// breaker's predicted state exceeds it, the model caps the resident
    /// contribution at the budget and charges [`SPILL_IO_PER_ROW`] per
    /// spilled row instead — so under tight memory, plans with smaller
    /// breaker state win on work, not just on the resident penalty.
    budget: Option<f64>,
    /// Mirror of [`crate::ExecConfig::threads`]: parallelizable fragments
    /// (scans; the per-partition work of spilled joins and breakers)
    /// divide their work across this many workers and pay
    /// [`EXCHANGE_COST_PER_ROW`] per row crossing the exchange. `1.0`
    /// models the serial executor exactly. Resident state is **not**
    /// divided — concurrent partitions are summed, which is what the
    /// executor's budget-capped waves actually hold.
    threads: f64,
}

impl<'a> Estimator<'a> {
    /// An estimator over the catalog's statistics (no memory budget,
    /// serial execution).
    pub fn new(catalog: &'a Catalog) -> Estimator<'a> {
        Estimator {
            catalog,
            budget: None,
            threads: 1.0,
        }
    }

    /// An estimator that models spilling under the given breaker budget
    /// (`None` behaves exactly like [`Estimator::new`]).
    pub fn with_budget(catalog: &'a Catalog, budget: Option<usize>) -> Estimator<'a> {
        Estimator {
            catalog,
            budget: budget.map(|b| b as f64),
            threads: 1.0,
        }
    }

    /// Model parallel execution on `n` workers (clamped to ≥ 1; `1` is
    /// the serial model, unchanged).
    pub fn with_threads(mut self, n: usize) -> Estimator<'a> {
        self.threads = n.max(1) as f64;
        self
    }

    /// Work of a fragment the executor runs on a worker wave: divided
    /// across workers plus the exchange charge for the `rows` that cross
    /// it. Identity at `threads = 1`.
    fn parallel_work(&self, work: f64, rows: f64) -> f64 {
        if self.threads <= 1.0 {
            work
        } else {
            work / self.threads + EXCHANGE_COST_PER_ROW * rows
        }
    }

    /// Resident contribution and spill-I/O work of one breaker holding
    /// `state` rows: in memory it is `(state, 0)`; past the budget the
    /// resident share is capped at the budget and every state row is
    /// charged a spill round-trip.
    fn breaker_state(&self, state: f64) -> (f64, f64) {
        match self.budget {
            Some(b) if state > b => (b, SPILL_IO_PER_ROW * state),
            _ => (state, 0.0),
        }
    }

    /// Kernel work of a breaker over `state` input rows plus its spill
    /// I/O. An in-memory breaker runs its kernel once, serially; a
    /// spilled one runs it per grace partition on the worker wave, so the
    /// kernel share parallelizes (the spill I/O itself does not — the
    /// partitioning pass is serial).
    fn breaker_work(&self, state: f64, spill: f64) -> f64 {
        if spill > 0.0 {
            self.parallel_work(state, state) + spill
        } else {
            state
        }
    }

    /// Estimated output cardinality of a logical plan.
    pub fn rows(&self, plan: &Plan) -> f64 {
        self.node(plan, &Scope::new()).rows
    }

    /// Full cost estimate of a logical plan.
    pub fn cost(&self, plan: &Plan) -> CostEstimate {
        self.node(plan, &Scope::new())
    }

    /// Per-node row estimates in **executed-operator order**: pre-order
    /// over the plan, except that `Apply` descends only into its outer
    /// input — the subquery operator tree is instantiated per outer row
    /// and does not appear in the executed profile. Zips 1:1 with the
    /// streaming executor's profile tree for the same (lowered) plan.
    pub fn exec_order_rows(&self, plan: &Plan) -> Vec<f64> {
        let mut out = Vec::with_capacity(plan.size());
        self.collect_exec_order(plan, &Scope::new(), &mut out);
        out
    }

    /// [`Estimator::exec_order_rows`] for a physical plan (post join
    /// algorithm / build-side choice / index-path selection). Walks the
    /// **physical** tree — one estimate per executed operator — because
    /// index operators collapse logical shapes: an `IndexScan` is one
    /// operator implementing select-over-scan, an `IndexNLJoin` has no
    /// inner child at all. Each node's rows come from its
    /// [`logical_view`], so estimates agree with the logical model.
    pub fn exec_order_rows_phys(&self, phys: &PhysPlan) -> Vec<f64> {
        let mut out = Vec::new();
        self.collect_exec_order_phys(phys, &mut out);
        out
    }

    fn collect_exec_order_phys(&self, phys: &PhysPlan, out: &mut Vec<f64>) {
        out.push(self.node(&logical_view(phys), &Scope::new()).rows);
        match phys {
            // The Apply subquery tree is instantiated per outer row and
            // does not appear in the executed profile.
            PhysPlan::Apply { input, .. } => self.collect_exec_order_phys(input, out),
            other => {
                for c in other.children() {
                    self.collect_exec_order_phys(c, out);
                }
            }
        }
    }

    fn collect_exec_order(&self, plan: &Plan, outer: &Scope, out: &mut Vec<f64>) {
        out.push(self.node(plan, outer).rows);
        match plan {
            Plan::Apply { input, .. } => self.collect_exec_order(input, outer, out),
            other => {
                for c in other.children() {
                    self.collect_exec_order(c, outer, out);
                }
            }
        }
    }

    // -- statistics resolution ---------------------------------------------

    /// Table statistics for the iteration variable `var`, resolved against
    /// the given subtree roots (a `ScanTable` binding `var`) or the outer
    /// correlation scope.
    fn table_of(&self, roots: &[&Plan], outer: &Scope, var: &str) -> Option<&'a TableStats> {
        for root in roots {
            if let Some(stats) = Self::find_scan_stats(self.catalog, root, var) {
                return Some(stats);
            }
        }
        outer.get(var).and_then(|t| self.catalog.stats(t))
    }

    fn find_scan_stats<'c>(catalog: &'c Catalog, plan: &Plan, var: &str) -> Option<&'c TableStats> {
        if let Plan::ScanTable { table, var: v } = plan {
            if v == var {
                return catalog.stats(table);
            }
        }
        plan.children()
            .into_iter()
            .find_map(|c| Self::find_scan_stats(catalog, c, var))
    }

    /// Cold-page I/O charge for scanning or probing `table` right now:
    /// [`PAGE_IO_WORK`] per extent page not currently resident in the
    /// buffer pool (0 for in-memory tables).
    fn cold_page_io(&self, table: &str) -> f64 {
        self.catalog
            .page_residency(table)
            .map(|(resident, total)| PAGE_IO_WORK * total.saturating_sub(resident) as f64)
            .unwrap_or(0.0)
    }

    /// Column statistics for `var.col`.
    fn col_of(
        &self,
        roots: &[&Plan],
        outer: &Scope,
        var: &str,
        col: &str,
    ) -> Option<&'a ColumnStats> {
        self.table_of(roots, outer, var).and_then(|t| t.column(col))
    }

    /// Decompose `e` as a single-level column reference `var.col`.
    fn as_column(e: &ScalarExpr) -> Option<(&str, &str)> {
        if let ScalarExpr::Field(inner, col) = e {
            if let ScalarExpr::Var(v) = &**inner {
                return Some((v.as_str(), col.as_str()));
            }
        }
        None
    }

    /// Numeric literal value of `e`, if any.
    fn as_number(e: &ScalarExpr) -> Option<f64> {
        match e {
            ScalarExpr::Lit(Value::Int(i)) => Some(*i as f64),
            ScalarExpr::Lit(Value::Float(f)) => Some(*f),
            _ => None,
        }
    }

    /// Fan-out of a set-valued expression: the per-column average
    /// set-cardinality when the expression is a stored column,
    /// [`DEFAULT_SET_FANOUT`] otherwise.
    fn fanout(&self, expr: &ScalarExpr, roots: &[&Plan], outer: &Scope) -> f64 {
        if let Some((var, col)) = Self::as_column(expr) {
            if let Some(t) = self.table_of(roots, outer, var) {
                if let Some(f) = t.avg_set_card(col) {
                    return f.max(0.0);
                }
            }
        }
        if let ScalarExpr::SetLit(items) = expr {
            return items.len() as f64;
        }
        DEFAULT_SET_FANOUT
    }

    // -- selectivities -----------------------------------------------------

    /// Selectivity of a predicate, resolving columns against the subtree
    /// roots and the outer correlation scope. Conjuncts multiply, clamped
    /// to `[MIN_SELECTIVITY, 1]`.
    fn selectivity(&self, pred: &ScalarExpr, roots: &[&Plan], outer: &Scope) -> f64 {
        let s = self.conjunct_selectivity(pred, roots, outer);
        s.clamp(MIN_SELECTIVITY, 1.0)
    }

    fn conjunct_selectivity(&self, e: &ScalarExpr, roots: &[&Plan], outer: &Scope) -> f64 {
        match e {
            ScalarExpr::Lit(Value::Bool(true)) => 1.0,
            ScalarExpr::Lit(Value::Bool(false)) => MIN_SELECTIVITY,
            ScalarExpr::And(a, b) => {
                self.conjunct_selectivity(a, roots, outer)
                    * self.conjunct_selectivity(b, roots, outer)
            }
            ScalarExpr::Or(a, b) => {
                let sa = self.conjunct_selectivity(a, roots, outer);
                let sb = self.conjunct_selectivity(b, roots, outer);
                (sa + sb - sa * sb).min(1.0)
            }
            ScalarExpr::Not(inner) => {
                (1.0 - self.conjunct_selectivity(inner, roots, outer)).max(MIN_SELECTIVITY)
            }
            ScalarExpr::Cmp(op, a, b) => self.cmp_selectivity(*op, a, b, roots, outer),
            // Whole-set comparisons between blocks: no per-element stats;
            // assume the generic default.
            ScalarExpr::SetCmp(..) | ScalarExpr::Quant { .. } => DEFAULT_SELECTIVITY,
            ScalarExpr::IsNull(inner) => {
                if let Some((var, col)) = Self::as_column(inner) {
                    if let Some(c) = self.col_of(roots, outer, var, col) {
                        return c.null_fraction.max(MIN_SELECTIVITY);
                    }
                }
                DEFAULT_SELECTIVITY
            }
            _ => DEFAULT_SELECTIVITY,
        }
    }

    fn cmp_selectivity(
        &self,
        op: CmpOp,
        a: &ScalarExpr,
        b: &ScalarExpr,
        roots: &[&Plan],
        outer: &Scope,
    ) -> f64 {
        // Orient as column-op-something when possible.
        let (col, other, op) = match (Self::as_column(a), Self::as_column(b)) {
            (Some(_), _) => (a, b, op),
            (None, Some(_)) => (b, a, op.flip()),
            (None, None) => {
                return match op {
                    CmpOp::Eq => DEFAULT_EQ_SELECTIVITY,
                    CmpOp::Ne => 1.0 - DEFAULT_EQ_SELECTIVITY,
                    _ => DEFAULT_SELECTIVITY,
                }
            }
        };
        let (var, name) = Self::as_column(col).expect("oriented above");
        let cstats = self.col_of(roots, outer, var, name);
        match op {
            CmpOp::Eq | CmpOp::Ne => {
                // Column = column → 1/max(NDV); column = literal/expr →
                // 1/NDV of the column.
                let ndv_a = cstats.map(|c| c.distinct.max(1) as f64);
                let ndv_b = Self::as_column(other)
                    .and_then(|(v, c)| self.col_of(roots, outer, v, c))
                    .map(|c| c.distinct.max(1) as f64);
                let eq = match (ndv_a, ndv_b) {
                    (Some(x), Some(y)) => 1.0 / x.max(y),
                    (Some(x), None) | (None, Some(x)) => 1.0 / x,
                    (None, None) => DEFAULT_EQ_SELECTIVITY,
                };
                if op == CmpOp::Eq {
                    eq
                } else {
                    (1.0 - eq).max(MIN_SELECTIVITY)
                }
            }
            CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                // Histogram-based range selectivity for column-vs-literal;
                // default for column-vs-column ranges. `fraction_lt` is
                // strict (P[x < v]) while `fraction_gt` is its complement
                // (P[x ≥ v]), so the mass of one distinct value moves the
                // strict/inclusive variants apart.
                let Some(v) = Self::as_number(other) else {
                    return DEFAULT_SELECTIVITY;
                };
                let Some(c) = cstats else {
                    return DEFAULT_SELECTIVITY;
                };
                let eq_mass = c.fraction_eq().unwrap_or(0.0);
                let frac = match op {
                    CmpOp::Lt => c.fraction_lt(v),
                    CmpOp::Le => c.fraction_lt(v).map(|f| f + eq_mass),
                    CmpOp::Ge => c.fraction_gt(v),
                    CmpOp::Gt => c.fraction_gt(v).map(|f| f - eq_mass),
                    _ => unreachable!("range ops only"),
                };
                frac.map(|f| f.clamp(0.0, 1.0))
                    .unwrap_or(DEFAULT_SELECTIVITY)
            }
        }
    }

    /// Selectivity of one equi-key pair of a join (1/max NDV).
    fn equi_pair_selectivity(
        &self,
        lk: &ScalarExpr,
        rk: &ScalarExpr,
        left: &Plan,
        right: &Plan,
        outer: &Scope,
    ) -> f64 {
        let ndv = |e: &ScalarExpr, root: &Plan| -> Option<f64> {
            Self::as_column(e)
                .and_then(|(v, c)| self.col_of(&[root], outer, v, c))
                .map(|c| c.distinct.max(1) as f64)
        };
        match (ndv(lk, left), ndv(rk, right)) {
            (Some(x), Some(y)) => 1.0 / x.max(y),
            (Some(x), None) | (None, Some(x)) => 1.0 / x,
            (None, None) => DEFAULT_EQ_SELECTIVITY,
        }
    }

    // -- the estimator proper ----------------------------------------------

    fn node(&self, plan: &Plan, outer: &Scope) -> CostEstimate {
        match plan {
            Plan::ScanTable { table, .. } => {
                let rows = self
                    .catalog
                    .stats(table)
                    .map(|s| s.cardinality as f64)
                    .unwrap_or(UNKNOWN_TABLE_ROWS);
                // Disk-backed tables pay page I/O for whatever part of
                // their extent is cold in the buffer pool right now; a
                // warm working set scans at in-memory cost.
                let page_io = self.cold_page_io(table);
                CostEstimate {
                    rows,
                    // Scans are morsel-parallel: page faults and row
                    // decoding divide across the wave; every row pays the
                    // exchange to reach the gather.
                    work: self.parallel_work(rows + page_io, rows),
                    resident: 0.0,
                }
            }
            Plan::ScanExpr { expr, .. } => {
                let rows = self.fanout(expr, &[], outer);
                // The set value is evaluated once and buffered.
                CostEstimate {
                    rows,
                    work: rows,
                    resident: rows,
                }
            }
            Plan::Select { input, pred } => {
                let c = self.node(input, outer);
                let sel = self.selectivity(pred, &[input], outer);
                let mut work = c.work + c.rows * expr_weight(pred);
                // A selection directly over an indexed scan has a second
                // access path: probe the index, re-check candidates. The
                // model prices both and takes the cheaper — the same
                // comparison the planner makes, so `CostBased` ranks
                // index-eligible shapes by what will actually run.
                if let Plan::ScanTable { table, var } = &**input {
                    if let Some((_, probe_work, scan_work)) =
                        self.select_access_paths(table, var, pred)
                    {
                        work = work.min(probe_work).min(scan_work);
                    }
                }
                CostEstimate {
                    rows: c.rows * sel,
                    work,
                    resident: c.resident,
                }
            }
            Plan::Map {
                input,
                expr,
                var: _,
            } => {
                let c = self.node(input, outer);
                // Map dedups: cap by the NDV of the projected column or the
                // cardinality of the projected table variable when known.
                let cap = match expr {
                    e if Self::as_column(e).is_some() => {
                        let (v, col) = Self::as_column(e).expect("checked");
                        self.col_of(&[input], outer, v, col)
                            .map(|c| c.distinct.max(1) as f64)
                    }
                    ScalarExpr::Var(v) => self
                        .table_of(&[input], outer, v)
                        .map(|t| t.cardinality.max(1) as f64),
                    _ => None,
                };
                let rows = cap.map_or(c.rows, |cap| c.rows.min(cap));
                // The dedup set is resident breaker state (spillable).
                let (res, spill) = self.breaker_state(rows);
                CostEstimate {
                    rows,
                    work: c.work + self.breaker_work(c.rows, spill),
                    resident: c.resident + res,
                }
            }
            Plan::Extend { input, .. } => {
                let c = self.node(input, outer);
                CostEstimate {
                    rows: c.rows,
                    work: c.work + c.rows,
                    resident: c.resident,
                }
            }
            Plan::Project { input, .. } => {
                let c = self.node(input, outer);
                let (res, spill) = self.breaker_state(c.rows);
                CostEstimate {
                    rows: c.rows,
                    work: c.work + self.breaker_work(c.rows, spill),
                    resident: c.resident + res,
                }
            }
            Plan::Join { .. }
            | Plan::SemiJoin { .. }
            | Plan::AntiJoin { .. }
            | Plan::LeftOuterJoin { .. }
            | Plan::NestJoin { .. } => self.join_node(plan, outer),
            Plan::Nest { input, keys, .. } => {
                let c = self.node(input, outer);
                // Groups: bounded by the cardinality of a key variable's
                // table when resolvable (ν over an outerjoin groups back to
                // the preserved side), else a generic collapse.
                let cap = keys
                    .iter()
                    .filter_map(|k| self.table_of(&[input], outer, k))
                    .map(|t| t.cardinality.max(1) as f64)
                    .fold(None::<f64>, |acc, card| {
                        Some(acc.map_or(card, |a| a.max(card)))
                    });
                let rows = cap
                    .map(|cap| c.rows.min(cap))
                    .unwrap_or((c.rows * GROUP_COLLAPSE).max(1.0));
                let (res, spill) = self.breaker_state(c.rows);
                CostEstimate {
                    rows,
                    work: c.work + self.breaker_work(c.rows, spill),
                    resident: c.resident + res,
                }
            }
            Plan::GroupAgg { input, keys, .. } => {
                let c = self.node(input, outer);
                let cap = keys
                    .iter()
                    .filter_map(|(_, e)| Self::as_column(e))
                    .filter_map(|(v, col)| self.col_of(&[input], outer, v, col))
                    .map(|cs| cs.distinct.max(1) as f64)
                    .fold(None::<f64>, |acc, ndv| {
                        Some(acc.map_or(ndv, |a| a.max(ndv)))
                    });
                let rows = cap
                    .map(|cap| c.rows.min(cap))
                    .unwrap_or((c.rows * GROUP_COLLAPSE).max(1.0));
                let (res, spill) = self.breaker_state(c.rows);
                CostEstimate {
                    rows,
                    work: c.work + self.breaker_work(c.rows, spill),
                    resident: c.resident + res,
                }
            }
            Plan::Unnest { input, expr, .. } => {
                let c = self.node(input, outer);
                let rows = c.rows * self.fanout(expr, &[input], outer);
                CostEstimate {
                    rows,
                    work: c.work + c.rows + rows,
                    resident: c.resident,
                }
            }
            Plan::Apply {
                input, subquery, ..
            } => {
                let c = self.node(input, outer);
                let mut inner_scope = outer.clone();
                bind_scans(input, &mut inner_scope);
                let sub = self.node(subquery, &inner_scope);
                // The executor memoizes inner results per distinct
                // correlation binding (on by default), so the inner plan
                // drains once per distinct binding; every outer row pays
                // a binding-key evaluation and cache probe. The cached
                // result sets are budget-capped resident state.
                let bindings = crate::planner::apply_bindings(subquery);
                let distinct = self.distinct_bindings(&bindings, input, &inner_scope, c.rows);
                let (cache_res, _) = self.breaker_state(distinct * sub.rows.max(0.0));
                CostEstimate {
                    rows: c.rows,
                    work: c.work
                        + distinct * (sub.work + APPLY_OVERHEAD)
                        + CACHE_PROBE_WORK * c.rows,
                    resident: c.resident + sub.resident + cache_res,
                }
            }
            Plan::SetOp {
                kind, left, right, ..
            } => {
                let l = self.node(left, outer);
                let r = self.node(right, outer);
                // Satellite fix: intersect is bounded by the smaller input
                // and except by the left input; only union can grow.
                let rows = match kind {
                    tmql_algebra::SetOpKind::Union => l.rows + r.rows,
                    tmql_algebra::SetOpKind::Intersect => l.rows.min(r.rows),
                    tmql_algebra::SetOpKind::Except => l.rows,
                };
                let (res, spill) = self.breaker_state(l.rows + r.rows);
                CostEstimate {
                    rows,
                    work: l.work + r.work + self.breaker_work(l.rows + r.rows, spill),
                    resident: l.resident + r.resident + res,
                }
            }
        }
    }

    /// Estimated number of distinct correlation bindings an `Apply` over
    /// `input` presents to its subquery: the product of the per-binding
    /// NDVs (column stats for `v.col`, table cardinality for a whole-row
    /// `v`, the outer row count when unknown), capped at the outer row
    /// count. Empty bindings — an invariant subquery — estimate as one.
    fn distinct_bindings(
        &self,
        bindings: &[ScalarExpr],
        input: &Plan,
        scope: &Scope,
        outer_rows: f64,
    ) -> f64 {
        let cap = outer_rows.max(1.0);
        let mut distinct = 1.0f64;
        for b in bindings {
            let ndv = match b {
                e if Self::as_column(e).is_some() => {
                    let (v, col) = Self::as_column(e).expect("checked");
                    self.col_of(&[input], scope, v, col)
                        .map(|c| c.distinct.max(1) as f64)
                }
                ScalarExpr::Var(v) => self
                    .table_of(&[input], scope, v)
                    .map(|t| t.cardinality.max(1) as f64),
                _ => None,
            };
            distinct *= ndv.unwrap_or(cap);
            if distinct >= cap {
                break;
            }
        }
        distinct.clamp(1.0, cap)
    }

    /// Planner hook: the distinct-binding estimate for an `Apply` of
    /// `subquery` over `input` — how many times the executor will
    /// actually drain the inner plan with memoization on.
    pub fn apply_distinct_bindings(&self, input: &Plan, subquery: &Plan) -> f64 {
        let bindings = crate::planner::apply_bindings(subquery);
        let mut scope = Scope::new();
        bind_scans(input, &mut scope);
        let outer_rows = self.node(input, &Scope::new()).rows;
        self.distinct_bindings(&bindings, input, &scope, outer_rows)
    }

    /// Price `probes` repetitions of `σ_pred(table)` along two access
    /// paths: a **transient hash index** on the eq-probed attribute —
    /// built once (hash-build cost per row plus whatever page I/O a cold
    /// extent costs), then per repetition one probe plus a fetch and
    /// full-predicate re-check per candidate — versus re-running the
    /// scan + filter every time. `covered` is the eq conjunct the probe
    /// answers (its selectivity sizes the candidate traffic). This is the
    /// eq-only, no-persistent-index complement of
    /// [`Estimator::select_access_paths`]: the build only amortizes when
    /// the repetition count is high enough, which is why it fires from
    /// `Apply` hoisting (probes = distinct bindings) and not from a
    /// single selection.
    pub fn transient_hash_paths(
        &self,
        table: &str,
        var: &str,
        pred: &ScalarExpr,
        covered: &ScalarExpr,
        probes: f64,
    ) -> (f64, f64) {
        let probes = probes.max(1.0);
        let input = Plan::ScanTable {
            table: table.to_string(),
            var: var.to_string(),
        };
        let outer = Scope::new();
        let scan = self.node(&input, &outer);
        let scan_work = probes * (scan.work + scan.rows * expr_weight(pred));
        let sel = self.selectivity(covered, &[&input], &outer);
        let candidates = scan.rows * sel;
        let build = 1.5 * scan.rows + self.cold_page_io(table);
        let probe_work =
            build + probes * (INDEX_PROBE_WORK + candidates * (2.0 + expr_weight(pred)));
        (probe_work, scan_work)
    }

    /// Price the two access paths of `σ_pred(table)` when the predicate
    /// has an index-eligible component: `(component, probe_work,
    /// scan_work)`. `None` when no conjunct probes an existing index.
    /// Shared by the model's `Select` pricing and the planner's
    /// scan-vs-probe choice, so the plan the planner emits is the plan
    /// the model priced. (For equality components with *no* persistent
    /// index, [`Estimator::transient_hash_paths`] prices the
    /// build-it-yourself alternative an `Apply` can amortize.)
    pub fn select_access_paths(
        &self,
        table: &str,
        var: &str,
        pred: &ScalarExpr,
    ) -> Option<(crate::planner::IndexSel, f64, f64)> {
        let isel = crate::planner::index_selection(pred, table, var, self.catalog)?;
        let input = Plan::ScanTable {
            table: table.to_string(),
            var: var.to_string(),
        };
        let outer = Scope::new();
        let scan = self.node(&input, &outer);
        let scan_work = scan.work + scan.rows * expr_weight(pred);
        // Candidates the probe returns: rows matching the covered
        // conjuncts alone (the full predicate is re-checked afterwards).
        let sel_idx = self.selectivity(&isel.covered, &[&input], &outer);
        let candidates = scan.rows * sel_idx;
        // Fetch + emit per candidate, the full predicate re-check, and
        // the covered fraction of whatever page I/O a cold extent costs.
        let probe_work = INDEX_PROBE_WORK
            + candidates * (2.0 + expr_weight(pred))
            + self.cold_page_io(table) * sel_idx;
        Some((isel, probe_work, scan_work))
    }

    /// Work of the index nested-loop path of a join: `Some` when `right`
    /// is a bare scan of a table carrying an index on one of the
    /// equi-key columns. The inner subtree's own work (scan + build) is
    /// *not* included — the path never runs it.
    fn index_join_work(
        &self,
        left_rows: f64,
        matches: f64,
        right: &Plan,
        right_keys: &[ScalarExpr],
    ) -> Option<f64> {
        let Plan::ScanTable { table, .. } = right else {
            return None;
        };
        right_keys.iter().find(|rk| {
            Self::as_column(rk).is_some_and(|(_, c)| self.catalog.index_on(table, c).is_some())
        })?;
        let r_rows = self
            .catalog
            .stats(table)
            .map(|s| s.cardinality as f64)
            .unwrap_or(UNKNOWN_TABLE_ROWS);
        let frac = if r_rows > 0.0 {
            (matches / r_rows).min(1.0)
        } else {
            0.0
        };
        Some(join_cost::index_nl(left_rows, matches) + self.cold_page_io(table) * frac)
    }

    /// Planner hook: should this join probe an index instead of scanning
    /// and building its inner operand? `Some(key_index)` — an index into
    /// the split's key vectors — when `right` is a bare scan of an
    /// indexed table and the modeled probe work beats the inner scan
    /// plus the best scan-based algorithm.
    pub fn index_join_beats(
        &self,
        left: &Plan,
        right: &Plan,
        split: &crate::planner::EquiSplit,
    ) -> Option<usize> {
        let Plan::ScanTable { table, .. } = right else {
            return None;
        };
        let key_idx = split.right_keys.iter().position(|rk| {
            Self::as_column(rk).is_some_and(|(_, c)| self.catalog.index_on(table, c).is_some())
        })?;
        let outer = Scope::new();
        let l = self.node(left, &outer);
        let r = self.node(right, &outer);
        let mut sel = 1.0f64;
        for (lk, rk) in split.left_keys.iter().zip(&split.right_keys) {
            sel *= self.equi_pair_selectivity(lk, rk, left, right, &outer);
        }
        if let Some(res) = &split.residual {
            sel *= self.selectivity(res, &[left, right], &outer);
        }
        let matches = l.rows * r.rows * sel.clamp(MIN_SELECTIVITY, 1.0);
        let index_work = self.index_join_work(l.rows, matches, right, &split.right_keys)?;
        let scan_algo = join_cost::hash(l.rows, r.rows).min(join_cost::sort_merge(l.rows, r.rows));
        (index_work < r.work + scan_algo).then_some(key_idx)
    }

    fn join_node(&self, plan: &Plan, outer: &Scope) -> CostEstimate {
        let (left, right, pred) = match plan {
            Plan::Join { left, right, pred }
            | Plan::SemiJoin { left, right, pred }
            | Plan::AntiJoin { left, right, pred }
            | Plan::LeftOuterJoin { left, right, pred }
            | Plan::NestJoin {
                left, right, pred, ..
            } => (left, right, pred),
            _ => unreachable!("join_node called on a non-join"),
        };
        let l = self.node(left, outer);
        let r = self.node(right, outer);
        let lv: BTreeSet<String> = left.output_vars().into_iter().collect();
        let rv: BTreeSet<String> = right.output_vars().into_iter().collect();
        let split = extract_equi_keys(pred, &lv, &rv);
        let mut sel = 1.0f64;
        for (lk, rk) in split.left_keys.iter().zip(&split.right_keys) {
            sel *= self.equi_pair_selectivity(lk, rk, left, right, outer);
        }
        if let Some(residual) = &split.residual {
            sel *= self.selectivity(residual, &[left, right], outer);
        }
        let sel = sel.clamp(MIN_SELECTIVITY, 1.0);
        let matches = l.rows * r.rows * sel;
        // Expected matches per left row → P(left row has ≥ 1 match).
        let match_frac = (r.rows * sel).min(1.0);
        let rows = match plan {
            Plan::Join { .. } => matches,
            Plan::SemiJoin { .. } => l.rows * match_frac,
            Plan::AntiJoin { .. } => l.rows * (1.0 - match_frac),
            Plan::LeftOuterJoin { .. } => matches.max(l.rows),
            Plan::NestJoin { .. } => l.rows,
            _ => unreachable!(),
        };
        // Per-match output/collection work (the nest join inserts each
        // match into a per-row set; flat joins emit rows).
        let emit = match plan {
            Plan::SemiJoin { .. } | Plan::AntiJoin { .. } => rows,
            _ => matches.max(rows),
        };
        let (algo_work, own_resident) = if split.left_keys.is_empty() {
            // No equi keys: nested loop, right side materialized (the NL
            // join does not spill, so no grace charge here — the resident
            // penalty reports the pressure honestly).
            (join_cost::nested_loop(l.rows, r.rows), r.rows)
        } else {
            // Hash join. Inner joins build on the smaller side (the
            // planner swaps); every left-preserving kind builds on the
            // right and probes with the left.
            let (probe, build) = if matches!(plan, Plan::Join { .. }) {
                (l.rows.max(r.rows), l.rows.min(r.rows))
            } else {
                (l.rows, r.rows)
            };
            let (res, build_spill) = self.breaker_state(build);
            // Grace hash writes and re-reads *both* sides once the build
            // overflows — charge the probe side's round-trip too.
            let spill = if build_spill > 0.0 {
                build_spill + SPILL_IO_PER_ROW * probe
            } else {
                0.0
            };
            // Grace partitions join partition-per-worker; the in-memory
            // build/probe pipeline is serial (the partitioning I/O is
            // serial either way).
            let hash_work = if spill > 0.0 {
                self.parallel_work(join_cost::hash(probe, build), probe + build)
            } else {
                join_cost::hash(probe, build)
            };
            (hash_work + spill, res)
        };
        // Index nested-loop alternative: a bare indexed inner scan is
        // probed per outer row — the inner subtree's scan work and the
        // build-side state both disappear. Priced against the scan-based
        // path with the same resident weighting the planner's total uses.
        let mut path_work = r.work + algo_work;
        let mut path_resident = own_resident;
        if let Some(iw) = self.index_join_work(l.rows, matches, right, &split.right_keys) {
            if iw < path_work + RESIDENT_WEIGHT * path_resident {
                path_work = iw;
                path_resident = 0.0;
            }
        }
        CostEstimate {
            rows,
            work: l.work + path_work + emit,
            resident: l.resident + r.resident + path_resident,
        }
    }
}

/// Per-row evaluation weight of a scalar expression: its node count in
/// [`EXPR_NODES_PER_WORK_UNIT`]-sized units, floored at one work unit. A
/// one-comparison predicate costs 1; the compound matched/dangling
/// predicates the relational rewrites produce cost proportionally more —
/// which is real interpreter time the optimizer must not ignore.
fn expr_weight(e: &ScalarExpr) -> f64 {
    (expr_nodes(e) as f64 / EXPR_NODES_PER_WORK_UNIT).max(1.0)
}

fn expr_nodes(e: &ScalarExpr) -> usize {
    use ScalarExpr as E;
    1 + match e {
        E::Lit(_) | E::Var(_) => 0,
        E::Field(a, _) | E::Not(a) | E::Agg(_, a) | E::Unnest(a) | E::IsNull(a) => expr_nodes(a),
        E::Cmp(_, a, b)
        | E::Arith(_, a, b)
        | E::And(a, b)
        | E::Or(a, b)
        | E::SetBin(_, a, b)
        | E::SetCmp(_, a, b) => expr_nodes(a) + expr_nodes(b),
        E::Tuple(fs) => fs.iter().map(|(_, x)| expr_nodes(x)).sum(),
        E::SetLit(xs) => xs.iter().map(expr_nodes).sum(),
        E::Quant { over, pred, .. } => expr_nodes(over) + expr_nodes(pred),
    }
}

/// Record the `ScanTable` bindings of a subtree into a correlation scope
/// (outer variables visible to an `Apply` subquery).
fn bind_scans(plan: &Plan, scope: &mut Scope) {
    if let Plan::ScanTable { table, var } = plan {
        scope.insert(var.clone(), table.clone());
    }
    for c in plan.children() {
        bind_scans(c, scope);
    }
}

/// Reconstruct the logical plan a physical plan implements (join algorithm
/// and build-side choices erased). Used to estimate rows per *physical*
/// operator — after lowering may have swapped an inner hash join's sides —
/// in the exact tree shape the executor profiles.
pub fn logical_view(phys: &PhysPlan) -> Plan {
    match phys {
        PhysPlan::ScanTable { table, var } => Plan::ScanTable {
            table: table.clone(),
            var: var.clone(),
        },
        PhysPlan::IndexScan {
            table, var, pred, ..
        } => Plan::Select {
            input: Box::new(Plan::ScanTable {
                table: table.clone(),
                var: var.clone(),
            }),
            pred: pred.clone(),
        },
        PhysPlan::IndexNLJoin {
            left,
            right_table,
            right_var,
            pred,
            kind,
            ..
        } => rebuild_join(
            logical_view(left),
            Plan::ScanTable {
                table: right_table.clone(),
                var: right_var.clone(),
            },
            pred.clone(),
            kind,
        ),
        PhysPlan::ScanExpr { expr, var } => Plan::ScanExpr {
            expr: expr.clone(),
            var: var.clone(),
        },
        PhysPlan::Filter { input, pred } => Plan::Select {
            input: Box::new(logical_view(input)),
            pred: pred.clone(),
        },
        PhysPlan::Map { input, expr, var } => Plan::Map {
            input: Box::new(logical_view(input)),
            expr: expr.clone(),
            var: var.clone(),
        },
        PhysPlan::Extend { input, expr, var } => Plan::Extend {
            input: Box::new(logical_view(input)),
            expr: expr.clone(),
            var: var.clone(),
        },
        PhysPlan::Project { input, vars } => Plan::Project {
            input: Box::new(logical_view(input)),
            vars: vars.clone(),
        },
        PhysPlan::NlJoin {
            left,
            right,
            pred,
            kind,
        } => rebuild_join(logical_view(left), logical_view(right), pred.clone(), kind),
        PhysPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
            kind,
        }
        | PhysPlan::MergeJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
            kind,
        } => {
            let mut conjs: Vec<ScalarExpr> = left_keys
                .iter()
                .zip(right_keys)
                .map(|(lk, rk)| ScalarExpr::eq(lk.clone(), rk.clone()))
                .collect();
            conjs.extend(residual.iter().cloned());
            rebuild_join(
                logical_view(left),
                logical_view(right),
                ScalarExpr::conj(conjs),
                kind,
            )
        }
        PhysPlan::Nest {
            input,
            keys,
            value,
            label,
            star,
        } => Plan::Nest {
            input: Box::new(logical_view(input)),
            keys: keys.clone(),
            value: value.clone(),
            label: label.clone(),
            star: *star,
        },
        PhysPlan::Unnest {
            input,
            expr,
            elem_var,
            drop_vars,
        } => Plan::Unnest {
            input: Box::new(logical_view(input)),
            expr: expr.clone(),
            elem_var: elem_var.clone(),
            drop_vars: drop_vars.clone(),
        },
        PhysPlan::GroupAgg {
            input,
            keys,
            aggs,
            var,
        } => Plan::GroupAgg {
            input: Box::new(logical_view(input)),
            keys: keys.clone(),
            aggs: aggs.clone(),
            var: var.clone(),
        },
        PhysPlan::Apply {
            input,
            subquery,
            label,
            bindings: _,
        } => Plan::Apply {
            input: Box::new(logical_view(input)),
            subquery: Box::new(logical_view(subquery)),
            label: label.clone(),
        },
        // Materialize is a pure replay buffer: logically transparent.
        PhysPlan::Materialize { input } => logical_view(input),
        // A transient hash probe implements select-over-scan exactly.
        PhysPlan::HashProbe {
            table, var, pred, ..
        } => Plan::Select {
            input: Box::new(Plan::ScanTable {
                table: table.clone(),
                var: var.clone(),
            }),
            pred: pred.clone(),
        },
        PhysPlan::SetOp {
            kind,
            left,
            right,
            var,
        } => Plan::SetOp {
            kind: *kind,
            left: Box::new(logical_view(left)),
            right: Box::new(logical_view(right)),
            var: var.clone(),
        },
    }
}

fn rebuild_join(left: Plan, right: Plan, pred: ScalarExpr, kind: &JoinKind) -> Plan {
    let l = Box::new(left);
    let r = Box::new(right);
    match kind {
        JoinKind::Inner => Plan::Join {
            left: l,
            right: r,
            pred,
        },
        JoinKind::Semi => Plan::SemiJoin {
            left: l,
            right: r,
            pred,
        },
        JoinKind::Anti => Plan::AntiJoin {
            left: l,
            right: r,
            pred,
        },
        JoinKind::LeftOuter { .. } => Plan::LeftOuterJoin {
            left: l,
            right: r,
            pred,
        },
        JoinKind::Nest { func, label } => Plan::NestJoin {
            left: l,
            right: r,
            pred,
            func: func.clone(),
            label: label.clone(),
        },
    }
}

/// Render a physical plan with per-operator estimated rows — the
/// `EXPLAIN` view of the cost model's predictions before execution.
pub fn explain_with_estimates(phys: &PhysPlan, catalog: &Catalog) -> String {
    fn go(p: &PhysPlan, est: &Estimator<'_>, depth: usize, out: &mut String) {
        let rows = est.rows(&logical_view(p));
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!(
            "{} [est_rows={}]\n",
            p.op_label(),
            format_rows(rows)
        ));
        for c in p.children() {
            go(c, est, depth + 1, out);
        }
    }
    let est = Estimator::new(catalog);
    let mut s = String::new();
    go(phys, &est, 0, &mut s);
    s
}

/// Compact row-estimate formatting (integers below 10k, then 1 decimal).
pub fn format_rows(rows: f64) -> String {
    if rows < 10_000.0 {
        format!("{}", rows.round() as i64)
    } else {
        format!("{rows:.3e}")
    }
}

/// Estimated output cardinality of a logical plan (statistics-backed;
/// convenience wrapper over [`Estimator`]).
pub fn estimate_rows(plan: &Plan, catalog: &Catalog) -> f64 {
    Estimator::new(catalog).rows(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmql_algebra::ScalarExpr as E;
    use tmql_storage::table::int_table;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let rows: Vec<Vec<i64>> = (0..100).map(|i| vec![i, i % 10]).collect();
        let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
        cat.register(int_table("BIG", &["a", "b"], &refs)).unwrap();
        cat.register(int_table("SMALL", &["a", "b"], &[&[1, 1]]))
            .unwrap();
        cat
    }

    #[test]
    fn scan_estimates_use_stats() {
        let cat = catalog();
        assert_eq!(estimate_rows(&Plan::scan("BIG", "x"), &cat), 100.0);
        assert_eq!(estimate_rows(&Plan::scan("SMALL", "x"), &cat), 1.0);
        // Unknown table: fallback, not a panic.
        assert_eq!(
            estimate_rows(&Plan::scan("NOPE", "x"), &cat),
            UNKNOWN_TABLE_ROWS
        );
    }

    #[test]
    fn nest_join_preserves_left_cardinality() {
        let cat = catalog();
        let nj = Plan::scan("BIG", "x").nest_join(
            Plan::scan("BIG", "y"),
            E::lit(true),
            E::var("y"),
            "ys",
        );
        assert_eq!(estimate_rows(&nj, &cat), 100.0);
    }

    #[test]
    fn join_cost_ranking_large_inputs() {
        // At scale, hash < sort-merge < nested-loop.
        let (l, r) = (10_000.0, 10_000.0);
        assert!(join_cost::hash(l, r) < join_cost::sort_merge(l, r));
        assert!(join_cost::sort_merge(l, r) < join_cost::nested_loop(l, r));
    }

    #[test]
    fn histogram_select_estimates_beat_magic_constants() {
        let cat = catalog();
        // x.a < 25 on uniform 0..100 → about a quarter of the rows.
        let p =
            Plan::scan("BIG", "x").select(E::cmp(CmpOp::Lt, E::path("x", &["a"]), E::lit(25i64)));
        let rows = estimate_rows(&p, &cat);
        assert!((rows - 25.0).abs() < 8.0, "{rows}");
        // Equality on a 10-distinct column → a tenth.
        let p = Plan::scan("BIG", "x").select(E::eq(E::path("x", &["b"]), E::lit(3i64)));
        let rows = estimate_rows(&p, &cat);
        assert!((rows - 10.0).abs() < 1.0, "{rows}");
        // A tautology does not shrink the estimate.
        let p = Plan::scan("BIG", "x").select(E::lit(true));
        assert_eq!(estimate_rows(&p, &cat), 100.0);
        // Strict vs inclusive differ by one distinct value's mass:
        // a > 99 keeps (essentially) nothing, a ≥ 99 keeps ≈ one row.
        let gt =
            Plan::scan("BIG", "x").select(E::cmp(CmpOp::Gt, E::path("x", &["a"]), E::lit(99i64)));
        assert!(
            estimate_rows(&gt, &cat) < 1.0,
            "{}",
            estimate_rows(&gt, &cat)
        );
        let ge =
            Plan::scan("BIG", "x").select(E::cmp(CmpOp::Ge, E::path("x", &["a"]), E::lit(99i64)));
        let ge_rows = estimate_rows(&ge, &cat);
        assert!((ge_rows - 1.0).abs() < 1.0, "{ge_rows}");
    }

    #[test]
    fn equi_join_uses_distinct_counts() {
        let cat = catalog();
        // BIG ⋈ BIG on b (NDV 10): 100·100/10 = 1000.
        let j = Plan::scan("BIG", "x").join(
            Plan::scan("BIG", "y"),
            E::eq(E::path("x", &["b"]), E::path("y", &["b"])),
        );
        let rows = estimate_rows(&j, &cat);
        assert!((rows - 1000.0).abs() < 1.0, "{rows}");
    }

    #[test]
    fn semi_and_anti_join_partition_left() {
        let cat = catalog();
        let pred = E::eq(E::path("x", &["b"]), E::path("y", &["b"]));
        let semi = Plan::scan("BIG", "x").semi_join(Plan::scan("BIG", "y"), pred.clone());
        let anti = Plan::scan("BIG", "x").anti_join(Plan::scan("BIG", "y"), pred);
        let s = estimate_rows(&semi, &cat);
        let a = estimate_rows(&anti, &cat);
        assert!((s + a - 100.0).abs() < 1.0, "semi {s} + anti {a} ≈ |L|");
        assert!(s > a, "every b value has matches here");
    }

    #[test]
    fn setop_estimates_fixed() {
        let cat = catalog();
        let mk = |kind| Plan::SetOp {
            kind,
            left: Box::new(Plan::scan("BIG", "x")),
            right: Box::new(Plan::scan("SMALL", "y")),
            var: "v".into(),
        };
        use tmql_algebra::SetOpKind::*;
        assert_eq!(estimate_rows(&mk(Union), &cat), 101.0);
        assert_eq!(
            estimate_rows(&mk(Intersect), &cat),
            1.0,
            "∩ bounded by the smaller side"
        );
        assert_eq!(
            estimate_rows(&mk(Except), &cat),
            100.0,
            "\\ bounded by the left side"
        );
    }

    #[test]
    fn scan_expr_fanout_uses_column_stats() {
        use tmql_model::{Record, Ty, Value};
        let mut cat = Catalog::new();
        let mut t = tmql_storage::Table::new(
            "D",
            vec![
                ("emps".into(), Ty::Set(Box::new(Ty::Int))),
                ("k".into(), Ty::Int),
            ],
        );
        for i in 0..4i64 {
            t.insert(
                Record::new([
                    (
                        "emps".to_string(),
                        Value::set((0..3).map(|j| Value::Int(i * 10 + j))),
                    ),
                    ("k".to_string(), Value::Int(i)),
                ])
                .unwrap(),
            )
            .unwrap();
        }
        cat.register(t).unwrap();
        let est = Estimator::new(&cat);
        // FROM d.emps e under an Apply over D: fan-out 3, not the default.
        let apply = Plan::scan("D", "d").apply(
            Plan::ScanExpr {
                expr: E::path("d", &["emps"]),
                var: "e".into(),
            }
            .map(E::var("e"), "s"),
            "z",
        );
        let Plan::Apply { subquery, .. } = &apply else {
            unreachable!()
        };
        let Plan::Map { input, .. } = &**subquery else {
            unreachable!()
        };
        // Direct estimate of the correlated scan, resolved via the Apply.
        let cost = est.cost(&apply);
        assert!(cost.rows == 4.0);
        // The subquery's ScanExpr alone (no scope) falls back to default.
        assert_eq!(est.rows(input), DEFAULT_SET_FANOUT);
        // Fan-out stat is visible through the whole-plan work estimate:
        // 4 invocations × (≈3 scanned + ≈3 mapped + overhead) ≪ default 16.
        assert!(cost.work < 4.0 * (2.0 * DEFAULT_SET_FANOUT + APPLY_OVERHEAD) + 4.0);
    }

    #[test]
    fn budget_charges_spill_io_and_caps_resident() {
        let cat = catalog();
        // BIG ⋈ BIG on b: the 100-row build side overflows a 10-row budget.
        let j = Plan::scan("BIG", "x").join(
            Plan::scan("BIG", "y"),
            E::eq(E::path("x", &["b"]), E::path("y", &["b"])),
        );
        let free = Estimator::new(&cat).cost(&j);
        let tight = Estimator::with_budget(&cat, Some(10)).cost(&j);
        assert_eq!(
            free.rows, tight.rows,
            "cardinalities are budget-independent"
        );
        assert!(
            tight.work > free.work + SPILL_IO_PER_ROW * 100.0,
            "grace hash charges both sides' spill round-trips: {} vs {}",
            tight.work,
            free.work
        );
        assert!(
            tight.resident < free.resident,
            "resident share is capped at the budget: {} vs {}",
            tight.resident,
            free.resident
        );
        // A budget nothing exceeds changes nothing.
        let loose = Estimator::with_budget(&cat, Some(100_000)).cost(&j);
        assert_eq!(loose.work, free.work);
        assert_eq!(loose.resident, free.resident);
        // And None behaves exactly like `new`.
        let none = Estimator::with_budget(&cat, None).cost(&j);
        assert_eq!(none.work, free.work);
    }

    #[test]
    fn parallel_fragments_divide_work_but_not_resident() {
        let cat = catalog();
        let scan = Plan::scan("BIG", "x");
        let serial = Estimator::new(&cat).cost(&scan);
        let par4 = Estimator::new(&cat).with_threads(4).cost(&scan);
        // threads=1 is the identity.
        assert_eq!(Estimator::new(&cat).with_threads(1).cost(&scan), serial);
        assert_eq!(par4.rows, serial.rows, "cardinalities are thread-free");
        assert!(par4.work < serial.work, "scan work divides across workers");
        assert!(
            par4.work > serial.work / 4.0,
            "the exchange charge keeps speedup sub-linear: {} vs {}",
            par4.work,
            serial.work
        );
        // A spilled hash join parallelizes its partition work but not its
        // spill I/O; resident state (summed across wave partitions) is
        // unchanged by threads.
        let j = Plan::scan("BIG", "x").join(
            Plan::scan("BIG", "y"),
            E::eq(E::path("x", &["b"]), E::path("y", &["b"])),
        );
        let tight = Estimator::with_budget(&cat, Some(10)).cost(&j);
        let tight4 = Estimator::with_budget(&cat, Some(10))
            .with_threads(4)
            .cost(&j);
        assert!(tight4.work < tight.work);
        assert_eq!(tight4.resident, tight.resident);
        assert!(
            tight4.work > tight.work / 4.0,
            "serial spill I/O bounds the modeled speedup"
        );
    }

    #[test]
    fn apply_work_scales_with_distinct_bindings() {
        let cat = catalog();
        // Correlated on x.b (NDV 10): the memoized Apply drains its inner
        // plan 10 times, not 100.
        let sub_b = Plan::scan("BIG", "y")
            .select(E::eq(E::path("x", &["b"]), E::path("y", &["b"])))
            .map(E::path("y", &["a"]), "s");
        let apply_b = Plan::scan("BIG", "x").apply(sub_b, "z");
        // Correlated on x.a (NDV 100): every binding is distinct — the
        // cache never hits and the price approaches per-row execution.
        let sub_a = Plan::scan("BIG", "y")
            .select(E::eq(E::path("x", &["a"]), E::path("y", &["a"])))
            .map(E::path("y", &["a"]), "s");
        let apply_a = Plan::scan("BIG", "x").apply(sub_a, "z");
        let est = Estimator::new(&cat);
        let cost_b = est.cost(&apply_b);
        let cost_a = est.cost(&apply_a);
        assert!(
            cost_a.work > 5.0 * cost_b.work,
            "100 distinct bindings {} vs 10 {}",
            cost_a.work,
            cost_b.work
        );
        // Even memoized, the Apply still prices above the equivalent nest
        // join, which matches once instead of scanning per binding.
        let nj = Plan::scan("BIG", "x").nest_join(
            Plan::scan("BIG", "y"),
            E::eq(E::path("x", &["b"]), E::path("y", &["b"])),
            E::path("y", &["a"]),
            "z",
        );
        let nj_cost = est.cost(&nj);
        assert!(
            cost_b.total() > nj_cost.total(),
            "apply {} vs nest join {}",
            cost_b.total(),
            nj_cost.total()
        );
    }

    #[test]
    fn invariant_apply_prices_one_execution() {
        let cat = catalog();
        // Uncorrelated subquery: empty bindings → one modeled execution,
        // so the Apply's work is far below outer_rows × inner scans.
        let sub = Plan::scan("BIG", "y").map(E::path("y", &["a"]), "s");
        let apply = Plan::scan("BIG", "x").apply(sub, "z");
        let cost = Estimator::new(&cat).cost(&apply);
        // outer scan (100) + one inner drain (~200) + 100 cache probes.
        assert!(cost.work < 1000.0, "{}", cost.work);
    }

    #[test]
    fn transient_hash_amortizes_with_repetition() {
        let cat = catalog();
        let est = Estimator::new(&cat);
        let pred = E::eq(E::path("y", &["b"]), E::path("x", &["b"]));
        // Selective probes: the marginal per-repetition cost of the hash
        // path (probe + candidate rechecks) is far below a full scan, so
        // repetition amortizes the one-time build.
        let (probe1, scan1) = est.transient_hash_paths("BIG", "y", &pred, &pred, 1.0);
        let (probe10, scan10) = est.transient_hash_paths("BIG", "y", &pred, &pred, 10.0);
        assert!(probe10 < scan10, "probe {probe10} vs scan {scan10}");
        assert!(
            probe10 - probe1 < (scan10 - scan1) / 2.0,
            "marginal probe {} vs marginal scan {}",
            probe10 - probe1,
            scan10 - scan1
        );
        // An unselective component returns every row as a candidate: the
        // probe path re-checks them all and never beats the scan.
        let all = E::lit(true);
        let (probe_all, scan_all) = est.transient_hash_paths("BIG", "y", &pred, &all, 10.0);
        assert!(probe_all > scan_all, "probe {probe_all} vs scan {scan_all}");
    }

    #[test]
    fn exec_order_skips_apply_subquery() {
        let cat = catalog();
        let sub = Plan::scan("BIG", "y").map(E::path("y", &["a"]), "s");
        let apply = Plan::scan("BIG", "x").apply(sub, "z");
        let est = Estimator::new(&cat);
        // Apply + its outer scan only — the subquery tree is per-row.
        assert_eq!(est.exec_order_rows(&apply).len(), 2);
        // Full pre-order would be 4 nodes.
        assert_eq!(apply.size(), 4);
    }

    #[test]
    fn logical_view_round_trips_lowering() {
        let cat = catalog();
        let plan = Plan::scan("BIG", "x")
            .join(
                Plan::scan("SMALL", "y"),
                E::eq(E::path("x", &["b"]), E::path("y", &["b"])),
            )
            .select(E::cmp(CmpOp::Gt, E::path("x", &["a"]), E::lit(10i64)));
        let phys = crate::planner::lower(&plan, &cat, &crate::ExecConfig::auto()).unwrap();
        let view = logical_view(&phys);
        // Same shape: one select, one join, two scans.
        assert_eq!(view.size(), plan.size());
        assert!(view.any_node(&mut |n| matches!(n, Plan::Join { .. })));
        let s = explain_with_estimates(&phys, &cat);
        assert!(s.contains("est_rows="), "{s}");
    }
}
