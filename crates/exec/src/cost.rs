//! A small cardinality/cost model over table statistics.
//!
//! Deliberately classical (System-R-style magic selectivities): its only
//! job is to rank join implementations sensibly and to expose estimates
//! for ablation benchmarks.

use tmql_algebra::Plan;
use tmql_storage::Catalog;

/// Default selectivity of an opaque predicate.
pub const DEFAULT_SELECTIVITY: f64 = 0.25;
/// Default selectivity of an equi-join conjunct when no stats are known.
pub const DEFAULT_EQ_SELECTIVITY: f64 = 0.01;

/// Estimated output cardinality of a logical plan.
pub fn estimate_rows(plan: &Plan, catalog: &Catalog) -> f64 {
    match plan {
        Plan::ScanTable { table, .. } => {
            catalog.stats(table).map(|s| s.cardinality as f64).unwrap_or(1000.0)
        }
        Plan::ScanExpr { .. } => 16.0, // typical set-valued attribute fan-out
        Plan::Select { input, .. } => estimate_rows(input, catalog) * DEFAULT_SELECTIVITY,
        Plan::Map { input, .. } | Plan::Extend { input, .. } | Plan::Project { input, .. } => {
            estimate_rows(input, catalog)
        }
        Plan::Join { left, right, .. } => {
            estimate_rows(left, catalog) * estimate_rows(right, catalog) * DEFAULT_EQ_SELECTIVITY
        }
        Plan::SemiJoin { left, .. } => estimate_rows(left, catalog) * 0.5,
        Plan::AntiJoin { left, .. } => estimate_rows(left, catalog) * 0.5,
        // Outerjoin and nest join preserve every left row.
        Plan::LeftOuterJoin { left, right, .. } => {
            let l = estimate_rows(left, catalog);
            let joined = l * estimate_rows(right, catalog) * DEFAULT_EQ_SELECTIVITY;
            joined.max(l)
        }
        Plan::NestJoin { left, .. } => estimate_rows(left, catalog),
        Plan::Nest { input, .. } | Plan::GroupAgg { input, .. } => {
            // Grouping collapses; assume 10 rows per group.
            (estimate_rows(input, catalog) / 10.0).max(1.0)
        }
        Plan::Unnest { input, .. } => estimate_rows(input, catalog) * 16.0,
        Plan::Apply { input, .. } => estimate_rows(input, catalog),
        Plan::SetOp { left, right, .. } => {
            estimate_rows(left, catalog) + estimate_rows(right, catalog)
        }
    }
}

/// Estimated cost (abstract work units) of executing a join of the given
/// cardinalities with each algorithm.
pub mod join_cost {
    /// Nested loop: |L|·|R| comparisons.
    pub fn nested_loop(l: f64, r: f64) -> f64 {
        l * r
    }

    /// Hash: build |R| + probe |L| (assuming few collisions).
    pub fn hash(l: f64, r: f64) -> f64 {
        r * 1.5 + l
    }

    /// Sort-merge: sort both sides (with a realistic per-row constant —
    /// key extraction and comparison are not free) + merge.
    pub fn sort_merge(l: f64, r: f64) -> f64 {
        let sort = |n: f64| 2.0 * n * (n + 2.0).log2();
        sort(l) + sort(r) + l + r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmql_algebra::ScalarExpr as E;
    use tmql_storage::table::int_table;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let rows: Vec<Vec<i64>> = (0..100).map(|i| vec![i, i % 10]).collect();
        let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
        cat.register(int_table("BIG", &["a", "b"], &refs)).unwrap();
        cat.register(int_table("SMALL", &["a", "b"], &[&[1, 1]])).unwrap();
        cat
    }

    #[test]
    fn scan_estimates_use_stats() {
        let cat = catalog();
        assert_eq!(estimate_rows(&Plan::scan("BIG", "x"), &cat), 100.0);
        assert_eq!(estimate_rows(&Plan::scan("SMALL", "x"), &cat), 1.0);
        // Unknown table: fallback, not a panic.
        assert_eq!(estimate_rows(&Plan::scan("NOPE", "x"), &cat), 1000.0);
    }

    #[test]
    fn nest_join_preserves_left_cardinality() {
        let cat = catalog();
        let nj = Plan::scan("BIG", "x").nest_join(
            Plan::scan("BIG", "y"),
            E::lit(true),
            E::var("y"),
            "ys",
        );
        assert_eq!(estimate_rows(&nj, &cat), 100.0);
    }

    #[test]
    fn join_cost_ranking_large_inputs() {
        // At scale, hash < sort-merge < nested-loop.
        let (l, r) = (10_000.0, 10_000.0);
        assert!(join_cost::hash(l, r) < join_cost::sort_merge(l, r));
        assert!(join_cost::sort_merge(l, r) < join_cost::nested_loop(l, r));
    }

    #[test]
    fn select_reduces_estimate() {
        let cat = catalog();
        let p = Plan::scan("BIG", "x").select(E::lit(true));
        assert!(estimate_rows(&p, &cat) < 100.0);
    }
}
