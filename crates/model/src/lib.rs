#![warn(missing_docs)]

//! # tmql-model — the TM complex object data model
//!
//! This crate implements the data model of the TM database specification
//! language as described in Section 3 of Steenhagen, Apers & Blanken,
//! *Optimization of Nested Queries in a Complex Object Model* (EDBT 1994):
//!
//! * arbitrarily nested values built from the **tuple**, **set**, **list**,
//!   and **variant** type constructors over basic types
//!   ([`Value`], [`Record`]);
//! * the corresponding type language ([`Ty`]) with structural typing;
//! * **set semantics**: sets never contain duplicates ("Sets do not contain
//!   duplicates", Section 3.1) — enforced by representing sets as ordered
//!   [`std::collections::BTreeSet`]s over the total order on [`Value`];
//! * class and sort definitions with explicitly named extensions
//!   ([`schema::ClassDef`], [`schema::SortDef`]), mirroring the paper's
//!   `CLASS Employee WITH EXTENSION EMP` declarations.
//!
//! A deliberately included oddity is [`Value::Null`]: TM itself has **no**
//! NULL — "in a complex object model we do not have to represent the empty
//! set: the empty set is part of the model" (Section 6). NULL exists here
//! solely so that the *relational* baselines the paper compares against
//! (Ganski–Wong outerjoin unnesting) can be expressed and measured.

pub mod error;
pub mod record;
pub mod schema;
pub mod setops;
pub mod types;
pub mod value;

pub use error::ModelError;
pub use record::Record;
pub use schema::{AttrDef, ClassDef, Schema, SortDef};
pub use types::Ty;
pub use value::Value;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ModelError>;
