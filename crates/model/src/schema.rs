//! Class, sort, and schema definitions.
//!
//! Mirrors the paper's declarations (Section 3.2):
//!
//! ```text
//! CLASS Employee WITH EXTENSION EMP
//! ATTRIBUTES
//!   name     : STRING,
//!   address  : Address,
//!   sal      : INT,
//!   children : P (name : STRING, age : INT)
//! END Employee
//! ```
//!
//! A [`Schema`] collects class and sort definitions, resolves sort / class
//! references inside attribute types, and exposes each class's **extension**
//! (the named set of its instances, e.g. `EMP`) as a table type.

use crate::error::ModelError;
use crate::types::Ty;
use crate::Result;

/// One attribute of a class or sort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDef {
    /// Attribute name.
    pub name: String,
    /// Attribute type (may reference sorts/classes before resolution).
    pub ty: Ty,
}

impl AttrDef {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: Ty) -> AttrDef {
        AttrDef {
            name: name.into(),
            ty,
        }
    }
}

/// A TM class with a named extension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassDef {
    /// Class name, e.g. `Employee`.
    pub name: String,
    /// Extension name, e.g. `EMP` — the identifier queries range over.
    pub extension: String,
    /// Attribute list.
    pub attributes: Vec<AttrDef>,
}

impl ClassDef {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        extension: impl Into<String>,
        attributes: Vec<AttrDef>,
    ) -> ClassDef {
        ClassDef {
            name: name.into(),
            extension: extension.into(),
            attributes,
        }
    }

    /// The tuple type of one instance of this class.
    pub fn instance_ty(&self) -> Ty {
        Ty::Tuple(
            self.attributes
                .iter()
                .map(|a| (a.name.clone(), a.ty.clone()))
                .collect(),
        )
    }

    /// The type of the class extension: a set of instance tuples.
    pub fn extension_ty(&self) -> Ty {
        Ty::Set(Box::new(self.instance_ty()))
    }
}

/// A TM sort: a named reusable type, e.g. `SORT Address`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortDef {
    /// Sort name.
    pub name: String,
    /// Underlying type.
    pub ty: Ty,
}

/// A database schema: classes + sorts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Schema {
    classes: Vec<ClassDef>,
    sorts: Vec<SortDef>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Register a sort; rejects duplicate names.
    pub fn add_sort(&mut self, sort: SortDef) -> Result<()> {
        if self.sorts.iter().any(|s| s.name == sort.name) {
            return Err(ModelError::SchemaError(format!(
                "sort `{}` already defined",
                sort.name
            )));
        }
        self.sorts.push(sort);
        Ok(())
    }

    /// Register a class; rejects duplicate class or extension names.
    pub fn add_class(&mut self, class: ClassDef) -> Result<()> {
        if self.classes.iter().any(|c| c.name == class.name) {
            return Err(ModelError::SchemaError(format!(
                "class `{}` already defined",
                class.name
            )));
        }
        if self.classes.iter().any(|c| c.extension == class.extension) {
            return Err(ModelError::SchemaError(format!(
                "extension `{}` already defined",
                class.extension
            )));
        }
        self.classes.push(class);
        Ok(())
    }

    /// Look up a class by class name.
    pub fn class(&self, name: &str) -> Option<&ClassDef> {
        self.classes.iter().find(|c| c.name == name)
    }

    /// Look up a class by its extension name (how queries reference it).
    pub fn class_by_extension(&self, extension: &str) -> Option<&ClassDef> {
        self.classes.iter().find(|c| c.extension == extension)
    }

    /// Look up a sort.
    pub fn sort(&self, name: &str) -> Option<&SortDef> {
        self.sorts.iter().find(|s| s.name == name)
    }

    /// All classes in declaration order.
    pub fn classes(&self) -> &[ClassDef] {
        &self.classes
    }

    /// All sorts in declaration order (the persistent catalog serializes
    /// them alongside the classes).
    pub fn sorts(&self) -> &[SortDef] {
        &self.sorts
    }

    /// Resolve sort and class references inside a type:
    /// * `Ty::Class(n)` where `n` names a **sort** → the sort's type;
    /// * `Ty::Class(n)` where `n` names a **class** → the class's instance
    ///   tuple type (classes as attribute types denote their instances,
    ///   "class names may be used in type specifications", Section 3.1);
    /// * containers resolve recursively.
    pub fn resolve(&self, ty: &Ty) -> Result<Ty> {
        Ok(match ty {
            Ty::Class(n) => {
                if let Some(s) = self.sort(n) {
                    self.resolve(&s.ty)?
                } else if let Some(c) = self.class(n) {
                    // Resolve the class's own attribute types too, but guard
                    // against direct self-reference blowing the stack by
                    // leaving a recursive class reference opaque.
                    let mut fields = Vec::with_capacity(c.attributes.len());
                    for a in &c.attributes {
                        let t = if mentions_class(&a.ty, n) {
                            a.ty.clone()
                        } else {
                            self.resolve(&a.ty)?
                        };
                        fields.push((a.name.clone(), t));
                    }
                    Ty::Tuple(fields)
                } else {
                    return Err(ModelError::SchemaError(format!(
                        "unknown sort or class `{n}`"
                    )));
                }
            }
            Ty::Set(t) => Ty::Set(Box::new(self.resolve(t)?)),
            Ty::List(t) => Ty::List(Box::new(self.resolve(t)?)),
            Ty::Tuple(fs) => {
                let mut out = Vec::with_capacity(fs.len());
                for (l, t) in fs {
                    out.push((l.clone(), self.resolve(t)?));
                }
                Ty::Tuple(out)
            }
            Ty::Variant(alts) => {
                let mut out = Vec::with_capacity(alts.len());
                for (l, t) in alts {
                    out.push((l.clone(), self.resolve(t)?));
                }
                Ty::Variant(out)
            }
            basic => basic.clone(),
        })
    }

    /// The fully resolved extension (table) type of a class.
    pub fn extension_ty(&self, extension: &str) -> Result<Ty> {
        let class = self
            .class_by_extension(extension)
            .ok_or_else(|| ModelError::SchemaError(format!("unknown extension `{extension}`")))?;
        self.resolve(&class.extension_ty())
    }
}

fn mentions_class(ty: &Ty, name: &str) -> bool {
    match ty {
        Ty::Class(n) => n == name,
        Ty::Set(t) | Ty::List(t) => mentions_class(t, name),
        Ty::Tuple(fs) | Ty::Variant(fs) => fs.iter().any(|(_, t)| mentions_class(t, name)),
        _ => false,
    }
}

/// The paper's running example schema (Section 3.2): classes `Employee`
/// (extension `EMP`) and `Department` (extension `DEPT`), and sort
/// `Address`.
pub fn paper_schema() -> Schema {
    let mut schema = Schema::new();
    schema
        .add_sort(SortDef {
            name: "Address".into(),
            ty: Ty::Tuple(vec![
                ("street".into(), Ty::Str),
                ("nr".into(), Ty::Str),
                ("city".into(), Ty::Str),
            ]),
        })
        .expect("fresh schema");
    schema
        .add_class(ClassDef::new(
            "Employee",
            "EMP",
            vec![
                AttrDef::new("name", Ty::Str),
                AttrDef::new("address", Ty::Class("Address".into())),
                AttrDef::new("sal", Ty::Int),
                AttrDef::new(
                    "children",
                    Ty::Set(Box::new(Ty::Tuple(vec![
                        ("name".into(), Ty::Str),
                        ("age".into(), Ty::Int),
                    ]))),
                ),
            ],
        ))
        .expect("fresh schema");
    schema
        .add_class(ClassDef::new(
            "Department",
            "DEPT",
            vec![
                AttrDef::new("name", Ty::Str),
                AttrDef::new("address", Ty::Class("Address".into())),
                AttrDef::new("emps", Ty::Set(Box::new(Ty::Class("Employee".into())))),
            ],
        ))
        .expect("fresh schema");
    schema
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schema_resolves() {
        let s = paper_schema();
        let dept = s.extension_ty("DEPT").unwrap();
        // DEPT : P (name, address-tuple, emps : P employee-tuple)
        let Ty::Set(inner) = dept else {
            panic!("extension must be a set")
        };
        let Ty::Tuple(fields) = *inner else {
            panic!("instances are tuples")
        };
        let addr = &fields.iter().find(|(l, _)| l == "address").unwrap().1;
        assert_eq!(
            addr,
            &Ty::Tuple(vec![
                ("street".into(), Ty::Str),
                ("nr".into(), Ty::Str),
                ("city".into(), Ty::Str),
            ])
        );
        let emps = &fields.iter().find(|(l, _)| l == "emps").unwrap().1;
        assert!(matches!(emps, Ty::Set(t) if matches!(&**t, Ty::Tuple(_))));
    }

    #[test]
    fn duplicate_definitions_rejected() {
        let mut s = paper_schema();
        assert!(s
            .add_class(ClassDef::new("Employee", "EMP2", vec![]))
            .is_err());
        assert!(s
            .add_class(ClassDef::new("Employee2", "EMP", vec![]))
            .is_err());
        assert!(s
            .add_sort(SortDef {
                name: "Address".into(),
                ty: Ty::Str
            })
            .is_err());
    }

    #[test]
    fn unknown_extension_errors() {
        let s = paper_schema();
        assert!(s.extension_ty("NOPE").is_err());
        assert!(s.resolve(&Ty::Class("Mystery".into())).is_err());
    }

    #[test]
    fn recursive_class_reference_does_not_loop() {
        let mut s = Schema::new();
        s.add_class(ClassDef::new(
            "Node",
            "NODES",
            vec![
                AttrDef::new("id", Ty::Int),
                AttrDef::new("next", Ty::Set(Box::new(Ty::Class("Node".into())))),
            ],
        ))
        .unwrap();
        let t = s.extension_ty("NODES").unwrap();
        // The recursive reference stays opaque rather than diverging.
        let shown = t.to_string();
        assert!(shown.contains("Node"), "{shown}");
    }

    #[test]
    fn class_by_extension() {
        let s = paper_schema();
        assert_eq!(s.class_by_extension("EMP").unwrap().name, "Employee");
        assert!(s.class_by_extension("EMPX").is_none());
    }
}
