//! The TM type language.
//!
//! Types mirror the value constructors: basic types plus tuple, set, list,
//! and variant constructors, arbitrarily nested (Section 3.1: "attribute
//! types may be arbitrarily complex ... type constructors may be arbitrarily
//! nested"). Class names may appear in type positions; at this layer a class
//! reference is resolved to the class's attribute tuple by the schema.

use std::fmt;

use crate::value::Value;

/// A structural TM type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ty {
    /// `BOOL`.
    Bool,
    /// `INT`.
    Int,
    /// `REAL`.
    Float,
    /// `STRING`.
    Str,
    /// Tuple type `(a : INT, b : P STRING)`; field order is significant for
    /// display but not for compatibility.
    Tuple(Vec<(String, Ty)>),
    /// Set type `P t` (the paper's ℙ constructor).
    Set(Box<Ty>),
    /// List type `L t`.
    List(Box<Ty>),
    /// Variant type `V (l1 : t1 | l2 : t2)`.
    Variant(Vec<(String, Ty)>),
    /// Reference to a class by name; resolved against a schema.
    Class(String),
    /// Top type: compatible with everything. Used for the element type of
    /// the empty set literal and for NULL in relational baselines.
    Any,
}

impl Ty {
    /// Set-of-tuples shorthand — the type of a class extension.
    pub fn table(fields: Vec<(String, Ty)>) -> Ty {
        Ty::Set(Box::new(Ty::Tuple(fields)))
    }

    /// True iff the type is a set type.
    pub fn is_set(&self) -> bool {
        matches!(self, Ty::Set(_))
    }

    /// Element type of a set or list type, if any.
    pub fn element(&self) -> Option<&Ty> {
        match self {
            Ty::Set(t) | Ty::List(t) => Some(t),
            _ => None,
        }
    }

    /// Field type of a tuple type, if present.
    pub fn field(&self, label: &str) -> Option<&Ty> {
        match self {
            Ty::Tuple(fs) => fs.iter().find(|(l, _)| l == label).map(|(_, t)| t),
            _ => None,
        }
    }

    /// Structural compatibility: `Any` unifies with everything; tuples are
    /// compatible when they have the same label set with compatible field
    /// types (order-insensitive); numeric types are mutually compatible so
    /// that `INT`/`REAL` comparisons type-check, as in SQL.
    pub fn compatible(&self, other: &Ty) -> bool {
        use Ty::*;
        match (self, other) {
            (Any, _) | (_, Any) => true,
            (Bool, Bool) | (Str, Str) => true,
            (Int | Float, Int | Float) => true,
            (Set(a), Set(b)) | (List(a), List(b)) => a.compatible(b),
            (Tuple(a), Tuple(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .all(|(l, t)| b.iter().any(|(l2, t2)| l == l2 && t.compatible(t2)))
            }
            (Variant(a), Variant(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .all(|(l, t)| b.iter().any(|(l2, t2)| l == l2 && t.compatible(t2)))
            }
            (Class(a), Class(b)) => a == b,
            _ => false,
        }
    }

    /// Least upper bound of two compatible types. `Any` is the top type,
    /// so anything joined with `Any` is `Any` (an earlier version returned
    /// the more specific side, which let heterogeneous nested containers
    /// re-specialize after widening — caught by the property tests).
    /// `Int`/`Float` mixes widen to `Float`.
    pub fn join(&self, other: &Ty) -> Option<Ty> {
        use Ty::*;
        match (self, other) {
            (Any, _) | (_, Any) => Some(Any),
            (Int, Float) | (Float, Int) => Some(Float),
            (Set(a), Set(b)) => a.join(b).map(|t| Set(Box::new(t))),
            (List(a), List(b)) => a.join(b).map(|t| List(Box::new(t))),
            (a, b) if a.compatible(b) => Some(a.clone()),
            _ => None,
        }
    }

    /// Infer the most specific type of a value. Empty sets/lists infer to
    /// `P Any` / `L Any`; heterogeneous containers widen element types with
    /// [`Ty::join`], falling back to `Any`.
    pub fn of(value: &Value) -> Ty {
        match value {
            Value::Null => Ty::Any,
            Value::Bool(_) => Ty::Bool,
            Value::Int(_) => Ty::Int,
            Value::Float(_) => Ty::Float,
            Value::Str(_) => Ty::Str,
            Value::Tuple(r) => {
                Ty::Tuple(r.iter().map(|(l, v)| (l.to_string(), Ty::of(v))).collect())
            }
            Value::Set(s) => Ty::Set(Box::new(common_element_type(s.iter()))),
            Value::List(l) => Ty::List(Box::new(common_element_type(l.iter()))),
            Value::Variant(lbl, v) => Ty::Variant(vec![(lbl.to_string(), Ty::of(v))]),
        }
    }

    /// True iff `value` inhabits this type (with `Any` admitting anything
    /// and NULL admitted everywhere, for the relational baseline).
    pub fn admits(&self, value: &Value) -> bool {
        if matches!(self, Ty::Any) || value.is_null() {
            return true;
        }
        match (self, value) {
            (Ty::Bool, Value::Bool(_)) => true,
            (Ty::Int, Value::Int(_)) => true,
            (Ty::Float, Value::Float(_) | Value::Int(_)) => true,
            (Ty::Str, Value::Str(_)) => true,
            (Ty::Set(t), Value::Set(s)) => s.iter().all(|v| t.admits(v)),
            (Ty::List(t), Value::List(l)) => l.iter().all(|v| t.admits(v)),
            (Ty::Tuple(fs), Value::Tuple(r)) => {
                fs.len() == r.len()
                    && fs
                        .iter()
                        .all(|(l, t)| r.get(l).map(|v| t.admits(v)).unwrap_or(false))
            }
            (Ty::Variant(alts), Value::Variant(lbl, v)) => alts
                .iter()
                .any(|(l, t)| l.as_str() == lbl.as_ref() && t.admits(v)),
            _ => false,
        }
    }
}

fn common_element_type<'a>(items: impl Iterator<Item = &'a Value>) -> Ty {
    let mut acc: Option<Ty> = None;
    for v in items {
        let t = Ty::of(v);
        acc = Some(match acc {
            None => t,
            Some(prev) => prev.join(&t).unwrap_or(Ty::Any),
        });
    }
    acc.unwrap_or(Ty::Any)
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Bool => write!(f, "BOOL"),
            Ty::Int => write!(f, "INT"),
            Ty::Float => write!(f, "REAL"),
            Ty::Str => write!(f, "STRING"),
            Ty::Tuple(fs) => {
                write!(f, "(")?;
                for (i, (l, t)) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{l} : {t}")?;
                }
                write!(f, ")")
            }
            Ty::Set(t) => write!(f, "P {t}"),
            Ty::List(t) => write!(f, "L {t}"),
            Ty::Variant(alts) => {
                write!(f, "V (")?;
                for (i, (l, t)) in alts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{l} : {t}")?;
                }
                write!(f, ")")
            }
            Ty::Class(n) => write!(f, "{n}"),
            Ty::Any => write!(f, "ANY"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infer_nested_value_type() {
        let v = Value::tuple([
            ("name", Value::str("Smith")),
            (
                "children",
                Value::set([Value::tuple([("age", Value::Int(7))])]),
            ),
        ]);
        let t = Ty::of(&v);
        assert_eq!(
            t,
            Ty::Tuple(vec![
                ("name".into(), Ty::Str),
                (
                    "children".into(),
                    Ty::Set(Box::new(Ty::Tuple(vec![("age".into(), Ty::Int)])))
                ),
            ])
        );
        assert!(t.admits(&v));
    }

    #[test]
    fn empty_set_infers_any_element() {
        assert_eq!(Ty::of(&Value::empty_set()), Ty::Set(Box::new(Ty::Any)));
    }

    #[test]
    fn compatibility_is_order_insensitive_for_tuples() {
        let a = Ty::Tuple(vec![("x".into(), Ty::Int), ("y".into(), Ty::Str)]);
        let b = Ty::Tuple(vec![("y".into(), Ty::Str), ("x".into(), Ty::Int)]);
        assert!(a.compatible(&b));
    }

    #[test]
    fn numeric_compatibility() {
        assert!(Ty::Int.compatible(&Ty::Float));
        assert_eq!(Ty::Int.join(&Ty::Float), Some(Ty::Float));
        assert!(!Ty::Int.compatible(&Ty::Str));
    }

    #[test]
    fn any_is_top() {
        let set_any = Ty::Set(Box::new(Ty::Any));
        let set_int = Ty::Set(Box::new(Ty::Int));
        assert!(set_any.compatible(&set_int));
        // Any is the top type: joining widens, never specializes.
        assert_eq!(set_any.join(&set_int), Some(set_any.clone()));
        assert_eq!(Ty::Any.join(&Ty::Bool), Some(Ty::Any));
    }

    #[test]
    fn admits_checks_structure() {
        let t = Ty::table(vec![("a".into(), Ty::Int)]);
        let good = Value::set([Value::tuple([("a", Value::Int(1))])]);
        let bad = Value::set([Value::tuple([("a", Value::str("x"))])]);
        assert!(t.admits(&good));
        assert!(!t.admits(&bad));
    }

    #[test]
    fn mixed_numeric_set_widens() {
        let v = Value::set([Value::Int(1), Value::Float(2.5)]);
        assert_eq!(Ty::of(&v), Ty::Set(Box::new(Ty::Float)));
    }

    #[test]
    fn display_round_trip_forms() {
        let t = Ty::table(vec![(
            "emps".into(),
            Ty::Set(Box::new(Ty::Class("Employee".into()))),
        )]);
        assert_eq!(t.to_string(), "P (emps : P Employee)");
    }
}
