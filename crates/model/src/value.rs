//! The universe of complex object values.
//!
//! [`Value`] is the dynamic representation of every TM value. It carries a
//! *total order* (needed so sets of arbitrary values can be represented as
//! `BTreeSet<Value>`, giving the paper's duplicate-free set semantics for
//! free) and a hash implementation (needed by hash-based join operators).
//!
//! Floats are ordered with [`f64::total_cmp`]; `NaN` is therefore a legal,
//! orderable set element, and `-0.0 < 0.0`.

use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::ModelError;
use crate::record::Record;
use crate::Result;

/// A TM complex object value.
///
/// The constructors mirror Section 3.1 of the paper: basic types plus the
/// tuple (`Record`), set, list, and variant type constructors, arbitrarily
/// nested.
#[derive(Debug, Clone)]
pub enum Value {
    /// Relational NULL. **Not part of TM** — exists only so the relational
    /// outerjoin baselines (Ganski–Wong) can be expressed. See crate docs.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer (`INT`).
    Int(i64),
    /// 64-bit float (`REAL`), totally ordered via `total_cmp`.
    Float(f64),
    /// Immutable string (`STRING`), cheaply cloneable.
    Str(Arc<str>),
    /// Tuple value `(a = 1, b = "x")`.
    Tuple(Record),
    /// Duplicate-free set value `{1, 2, 3}`.
    Set(BTreeSet<Value>),
    /// Ordered list value `[1, 2, 2, 3]`.
    List(Vec<Value>),
    /// Variant value `label(v)` of a variant type.
    Variant(Arc<str>, Box<Value>),
}

impl Value {
    /// Convenience constructor for strings.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Convenience constructor for sets from any value iterator
    /// (duplicates collapse silently, per TM set semantics).
    pub fn set(items: impl IntoIterator<Item = Value>) -> Value {
        Value::Set(items.into_iter().collect())
    }

    /// Convenience constructor for an empty set — a first-class citizen of
    /// the model (Section 6: "the empty set is part of the model").
    pub fn empty_set() -> Value {
        Value::Set(BTreeSet::new())
    }

    /// Convenience constructor for tuples from `(label, value)` pairs.
    ///
    /// # Panics
    /// Panics on duplicate labels; use [`Record::new`] for a fallible build.
    pub fn tuple(fields: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        let rec = Record::new(fields.into_iter().map(|(l, v)| (l.to_string(), v)))
            .expect("duplicate label in Value::tuple");
        Value::Tuple(rec)
    }

    /// One-word description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Tuple(_) => "tuple",
            Value::Set(_) => "set",
            Value::List(_) => "list",
            Value::Variant(..) => "variant",
        }
    }

    /// True iff the value is relational NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extract a boolean, or fail with a kind mismatch.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(mismatch("bool", other)),
        }
    }

    /// Extract an integer, or fail with a kind mismatch.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(mismatch("int", other)),
        }
    }

    /// Extract a float; integers widen losslessly enough for comparisons.
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Float(x) => Ok(*x),
            Value::Int(i) => Ok(*i as f64),
            other => Err(mismatch("float", other)),
        }
    }

    /// Extract a string slice, or fail with a kind mismatch.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(mismatch("string", other)),
        }
    }

    /// Extract a set, or fail with a kind mismatch.
    pub fn as_set(&self) -> Result<&BTreeSet<Value>> {
        match self {
            Value::Set(s) => Ok(s),
            other => Err(mismatch("set", other)),
        }
    }

    /// Extract a tuple, or fail with a kind mismatch.
    pub fn as_tuple(&self) -> Result<&Record> {
        match self {
            Value::Tuple(r) => Ok(r),
            other => Err(mismatch("tuple", other)),
        }
    }

    /// Extract a list, or fail with a kind mismatch.
    pub fn as_list(&self) -> Result<&[Value]> {
        match self {
            Value::List(l) => Ok(l),
            other => Err(mismatch("list", other)),
        }
    }

    /// Navigate a dotted path of tuple field accesses, e.g.
    /// `v.path(&["address", "city"])` for the paper's `d.address.city`.
    pub fn path(&self, fields: &[&str]) -> Result<&Value> {
        let mut cur = self;
        for f in fields {
            cur = cur.as_tuple()?.get(f)?;
        }
        Ok(cur)
    }

    /// Numeric addition with int/float promotion.
    pub fn add(&self, other: &Value) -> Result<Value> {
        numeric_binop(self, other, "+", |a, b| a.checked_add(b), |a, b| a + b)
    }

    /// Numeric subtraction with int/float promotion.
    pub fn sub(&self, other: &Value) -> Result<Value> {
        numeric_binop(self, other, "-", |a, b| a.checked_sub(b), |a, b| a - b)
    }

    /// Numeric multiplication with int/float promotion.
    pub fn mul(&self, other: &Value) -> Result<Value> {
        numeric_binop(self, other, "*", |a, b| a.checked_mul(b), |a, b| a * b)
    }

    /// Numeric division; integer division by zero is an error.
    pub fn div(&self, other: &Value) -> Result<Value> {
        match (self, other) {
            (Value::Int(_), Value::Int(0)) => {
                Err(ModelError::Arithmetic("integer division by zero".into()))
            }
            _ => numeric_binop(self, other, "/", |a, b| a.checked_div(b), |a, b| a / b),
        }
    }

    /// SQL-style three-valued-free comparison used by predicates: values of
    /// different kinds never compare equal (except int/float promotion);
    /// NULL equals nothing, not even NULL — matching outerjoin semantics in
    /// the relational baseline.
    pub fn sql_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => false,
            (Value::Int(a), Value::Float(b)) => (*a as f64) == *b,
            (Value::Float(a), Value::Int(b)) => *a == (*b as f64),
            (a, b) => a == b,
        }
    }

    /// Ordering comparison for predicates, with int/float promotion.
    /// Returns `None` when either side is NULL (unknown).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Float(b)) => Some((*a as f64).total_cmp(b)),
            (Value::Float(a), Value::Int(b)) => Some(a.total_cmp(&(*b as f64))),
            (a, b) => Some(a.cmp(b)),
        }
    }
}

fn mismatch(expected: &'static str, found: &Value) -> ModelError {
    ModelError::KindMismatch {
        expected,
        found: found.to_string(),
    }
}

fn numeric_binop(
    a: &Value,
    b: &Value,
    op: &'static str,
    int_op: impl Fn(i64, i64) -> Option<i64>,
    float_op: impl Fn(f64, f64) -> f64,
) -> Result<Value> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => int_op(*x, *y)
            .map(Value::Int)
            .ok_or_else(|| ModelError::Arithmetic(format!("integer overflow in {x} {op} {y}"))),
        (Value::Float(x), Value::Float(y)) => Ok(Value::Float(float_op(*x, *y))),
        (Value::Int(x), Value::Float(y)) => Ok(Value::Float(float_op(*x as f64, *y))),
        (Value::Float(x), Value::Int(y)) => Ok(Value::Float(float_op(*x, *y as f64))),
        _ => Err(ModelError::TypeMismatch {
            context: format!("{} {op} {}", a.kind(), b.kind()),
        }),
    }
}

/// Discriminant rank used to order values of different kinds.
fn rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) => 2,
        Value::Float(_) => 3,
        Value::Str(_) => 4,
        Value::Tuple(_) => 5,
        Value::Set(_) => 6,
        Value::List(_) => 7,
        Value::Variant(..) => 8,
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Tuple(a), Tuple(b)) => a.cmp(b),
            (Set(a), Set(b)) => a.iter().cmp(b.iter()),
            (List(a), List(b)) => a.cmp(b),
            (Variant(la, va), Variant(lb, vb)) => la.cmp(lb).then_with(|| va.cmp(vb)),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        rank(self).hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(x) => x.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Tuple(r) => r.hash(state),
            Value::Set(s) => {
                s.len().hash(state);
                for v in s {
                    v.hash(state);
                }
            }
            Value::List(l) => l.hash(state),
            Value::Variant(lbl, v) => {
                lbl.hash(state);
                v.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Tuple(r) => write!(f, "{r}"),
            Value::Set(s) => {
                write!(f, "{{")?;
                for (i, v) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Variant(lbl, v) => write!(f, "{lbl}({v})"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sets_deduplicate() {
        let s = Value::set([Value::Int(1), Value::Int(1), Value::Int(2)]);
        assert_eq!(s.as_set().unwrap().len(), 2);
    }

    #[test]
    fn empty_set_is_first_class() {
        let e = Value::empty_set();
        assert_eq!(e.as_set().unwrap().len(), 0);
        assert!(!e.is_null(), "empty set must be distinct from NULL");
        assert_ne!(e, Value::Null);
    }

    #[test]
    fn float_total_order_handles_nan() {
        let s = Value::set([
            Value::Float(f64::NAN),
            Value::Float(1.0),
            Value::Float(f64::NAN),
        ]);
        // NaN collapses to a single element under total order.
        assert_eq!(s.as_set().unwrap().len(), 2);
    }

    #[test]
    fn path_navigation() {
        let v = Value::tuple([(
            "address",
            Value::tuple([
                ("city", Value::str("Enschede")),
                ("street", Value::str("Drienerlolaan")),
            ]),
        )]);
        assert_eq!(
            v.path(&["address", "city"]).unwrap(),
            &Value::str("Enschede")
        );
        assert!(v.path(&["address", "zip"]).is_err());
    }

    #[test]
    fn sql_eq_promotes_numerics_and_rejects_null() {
        assert!(Value::Int(2).sql_eq(&Value::Float(2.0)));
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(!Value::Int(1).sql_eq(&Value::str("1")));
    }

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(
            Value::Int(3).sql_cmp(&Value::Float(2.5)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn arithmetic_promotion_and_errors() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(
            Value::Int(2).add(&Value::Float(0.5)).unwrap(),
            Value::Float(2.5)
        );
        assert!(Value::Int(1).div(&Value::Int(0)).is_err());
        assert!(Value::Int(i64::MAX).add(&Value::Int(1)).is_err());
        assert!(Value::str("a").add(&Value::Int(1)).is_err());
    }

    #[test]
    fn cross_kind_ordering_is_stable() {
        let mut vals = [
            Value::str("a"),
            Value::Int(1),
            Value::Bool(true),
            Value::Null,
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Int(1));
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            Value::set([Value::Int(2), Value::Int(1)]).to_string(),
            "{1, 2}"
        );
        assert_eq!(
            Value::List(vec![Value::Int(1), Value::Int(1)]).to_string(),
            "[1, 1]"
        );
        assert_eq!(
            Value::Variant(Arc::from("some"), Box::new(Value::Int(1))).to_string(),
            "some(1)"
        );
    }

    #[test]
    fn nested_sets_order_lexicographically() {
        let a = Value::set([Value::Int(1)]);
        let b = Value::set([Value::Int(1), Value::Int(2)]);
        assert!(a < b);
        let outer = Value::set([b.clone(), a.clone(), b.clone()]);
        assert_eq!(outer.as_set().unwrap().len(), 2);
    }
}
