//! Set-theoretic operations on [`Value`] sets.
//!
//! These implement the operators the paper's predicates range over
//! (Section 4.1 and Table 2): membership `∈`/`∉`, the four containments
//! `⊆ ⊂ ⊇ ⊃`, equality, intersection tests `∩ = ∅` / `∩ ≠ ∅`, and the
//! UNNEST collapse `⋃{s | s ∈ S}` of Section 5.

use std::collections::BTreeSet;

use crate::error::ModelError;
use crate::value::Value;
use crate::Result;

/// `a ∈ s`.
pub fn member(a: &Value, s: &Value) -> Result<bool> {
    Ok(s.as_set()?.contains(a))
}

/// `a ⊆ b`.
pub fn subseteq(a: &Value, b: &Value) -> Result<bool> {
    Ok(a.as_set()?.is_subset(b.as_set()?))
}

/// `a ⊂ b` (proper subset).
pub fn subset(a: &Value, b: &Value) -> Result<bool> {
    let (sa, sb) = (a.as_set()?, b.as_set()?);
    Ok(sa.is_subset(sb) && sa.len() < sb.len())
}

/// `a ⊇ b`.
pub fn superseteq(a: &Value, b: &Value) -> Result<bool> {
    Ok(a.as_set()?.is_superset(b.as_set()?))
}

/// `a ⊃ b` (proper superset).
pub fn superset(a: &Value, b: &Value) -> Result<bool> {
    let (sa, sb) = (a.as_set()?, b.as_set()?);
    Ok(sa.is_superset(sb) && sa.len() > sb.len())
}

/// `a ∩ b = ∅` (disjointness).
pub fn disjoint(a: &Value, b: &Value) -> Result<bool> {
    let (sa, sb) = (a.as_set()?, b.as_set()?);
    // Iterate the smaller side.
    let (small, large) = if sa.len() <= sb.len() {
        (sa, sb)
    } else {
        (sb, sa)
    };
    Ok(!small.iter().any(|v| large.contains(v)))
}

/// `a ∪ b`.
pub fn union(a: &Value, b: &Value) -> Result<Value> {
    let mut out = a.as_set()?.clone();
    out.extend(b.as_set()?.iter().cloned());
    Ok(Value::Set(out))
}

/// `a ∩ b`.
pub fn intersect(a: &Value, b: &Value) -> Result<Value> {
    let (sa, sb) = (a.as_set()?, b.as_set()?);
    Ok(Value::Set(sa.intersection(sb).cloned().collect()))
}

/// `a \ b`.
pub fn difference(a: &Value, b: &Value) -> Result<Value> {
    let (sa, sb) = (a.as_set()?, b.as_set()?);
    Ok(Value::Set(sa.difference(sb).cloned().collect()))
}

/// Cardinality `count(s)` — the aggregate at the heart of the COUNT bug.
pub fn count(s: &Value) -> Result<i64> {
    Ok(s.as_set()?.len() as i64)
}

/// `UNNEST(S) = ⋃{s | s ∈ S}` (Section 5): collapse a set of sets.
pub fn unnest(s: &Value) -> Result<Value> {
    let mut out: BTreeSet<Value> = BTreeSet::new();
    for inner in s.as_set()? {
        match inner {
            Value::Set(items) => out.extend(items.iter().cloned()),
            other => {
                return Err(ModelError::KindMismatch {
                    expected: "set",
                    found: other.to_string(),
                })
            }
        }
    }
    Ok(Value::Set(out))
}

/// Numeric aggregates over a set, used by predicates of the form
/// `x.a OP H(z)` (Section 4.1).
pub mod aggregate {
    use super::*;

    /// `SUM` over an all-numeric set. Empty sum is `Int(0)`.
    pub fn sum(s: &Value) -> Result<Value> {
        let mut acc = Value::Int(0);
        for v in s.as_set()? {
            acc = acc.add(v)?;
        }
        Ok(acc)
    }

    /// `MIN`; `None` on the empty set (the paper's aggregates other than
    /// COUNT are undefined on ∅, which is precisely why COUNT is the
    /// bug-prone one — COUNT(∅) = 0 is a real value).
    pub fn min(s: &Value) -> Result<Option<Value>> {
        Ok(s.as_set()?.iter().next().cloned())
    }

    /// `MAX`; `None` on the empty set.
    pub fn max(s: &Value) -> Result<Option<Value>> {
        Ok(s.as_set()?.iter().next_back().cloned())
    }

    /// `AVG`; `None` on the empty set.
    pub fn avg(s: &Value) -> Result<Option<Value>> {
        let set = s.as_set()?;
        if set.is_empty() {
            return Ok(None);
        }
        let total = sum(s)?;
        Ok(Some(total.div(&Value::Float(set.len() as f64))?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(items: &[i64]) -> Value {
        Value::set(items.iter().copied().map(Value::Int))
    }

    #[test]
    fn membership() {
        assert!(member(&Value::Int(2), &s(&[1, 2])).unwrap());
        assert!(!member(&Value::Int(3), &s(&[1, 2])).unwrap());
        assert!(member(&Value::Int(3), &Value::Int(3)).is_err());
    }

    #[test]
    fn containments() {
        assert!(subseteq(&s(&[]), &s(&[])).unwrap());
        assert!(subseteq(&s(&[1]), &s(&[1, 2])).unwrap());
        assert!(subset(&s(&[1]), &s(&[1, 2])).unwrap());
        assert!(!subset(&s(&[1, 2]), &s(&[1, 2])).unwrap());
        assert!(superseteq(&s(&[1, 2]), &s(&[2])).unwrap());
        assert!(superset(&s(&[1, 2]), &s(&[2])).unwrap());
        assert!(!superset(&s(&[1, 2]), &s(&[1, 2])).unwrap());
    }

    #[test]
    fn empty_set_is_subset_of_everything() {
        // The SUBSETEQ bug hinges on ∅ ⊆ z being true for every z.
        assert!(subseteq(&s(&[]), &s(&[7, 9])).unwrap());
        assert!(subseteq(&s(&[]), &s(&[])).unwrap());
    }

    #[test]
    fn disjointness_and_algebra() {
        assert!(disjoint(&s(&[1]), &s(&[2])).unwrap());
        assert!(!disjoint(&s(&[1, 2]), &s(&[2, 3])).unwrap());
        assert_eq!(union(&s(&[1]), &s(&[2])).unwrap(), s(&[1, 2]));
        assert_eq!(intersect(&s(&[1, 2]), &s(&[2, 3])).unwrap(), s(&[2]));
        assert_eq!(difference(&s(&[1, 2]), &s(&[2])).unwrap(), s(&[1]));
    }

    #[test]
    fn count_of_empty_is_zero() {
        assert_eq!(count(&s(&[])).unwrap(), 0);
        assert_eq!(count(&s(&[5, 5, 6])).unwrap(), 2);
    }

    #[test]
    fn unnest_collapses() {
        let nested = Value::set([s(&[1, 2]), s(&[2, 3]), s(&[])]);
        assert_eq!(unnest(&nested).unwrap(), s(&[1, 2, 3]));
        assert_eq!(unnest(&s(&[])).unwrap(), s(&[]));
        assert!(unnest(&Value::set([Value::Int(1)])).is_err());
    }

    #[test]
    fn aggregates() {
        assert_eq!(aggregate::sum(&s(&[1, 2, 3])).unwrap(), Value::Int(6));
        assert_eq!(aggregate::sum(&s(&[])).unwrap(), Value::Int(0));
        assert_eq!(aggregate::min(&s(&[3, 1])).unwrap(), Some(Value::Int(1)));
        assert_eq!(aggregate::max(&s(&[3, 1])).unwrap(), Some(Value::Int(3)));
        assert_eq!(aggregate::min(&s(&[])).unwrap(), None);
        assert_eq!(
            aggregate::avg(&s(&[1, 2])).unwrap(),
            Some(Value::Float(1.5))
        );
        assert_eq!(aggregate::avg(&s(&[])).unwrap(), None);
    }
}
