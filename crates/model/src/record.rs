//! Labelled tuples (records).
//!
//! A [`Record`] is a sequence of `(label, value)` pairs in declaration order.
//! Order is preserved (schemas are positional for display) but equality,
//! ordering, and hashing are **label-insensitive to permutation**: two
//! records with the same label→value mapping are equal regardless of field
//! order, matching TM's structural tuple semantics.
//!
//! Records support the paper's tuple concatenation `x ++ (a = z)`
//! (Section 6) via [`Record::concat`] and [`Record::extend_field`], which
//! reject duplicate top-level labels.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::ModelError;
use crate::value::Value;
use crate::Result;

/// A labelled tuple value `(a = 1, b = {2, 3})`.
#[derive(Debug, Clone, Default)]
pub struct Record {
    fields: Vec<(String, Value)>,
}

impl Record {
    /// Build a record from `(label, value)` pairs, rejecting duplicates.
    pub fn new(fields: impl IntoIterator<Item = (String, Value)>) -> Result<Record> {
        let mut rec = Record { fields: Vec::new() };
        for (l, v) in fields {
            rec.push(l, v)?;
        }
        Ok(rec)
    }

    /// The empty record `()`.
    pub fn empty() -> Record {
        Record::default()
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True iff the record has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Append one field, rejecting a duplicate label.
    pub fn push(&mut self, label: impl Into<String>, value: Value) -> Result<()> {
        let label = label.into();
        if self.has(&label) {
            return Err(ModelError::DuplicateField(label));
        }
        self.fields.push((label, value));
        Ok(())
    }

    /// True iff a field with this label exists.
    pub fn has(&self, label: &str) -> bool {
        self.fields.iter().any(|(l, _)| l == label)
    }

    /// Look up a field value by label.
    pub fn get(&self, label: &str) -> Result<&Value> {
        self.fields
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, v)| v)
            .ok_or_else(|| ModelError::NoSuchField {
                field: label.to_string(),
                available: self.labels().map(str::to_string).collect(),
            })
    }

    /// Iterate `(label, value)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.fields.iter().map(|(l, v)| (l.as_str(), v))
    }

    /// Iterate the labels in declaration order.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.fields.iter().map(|(l, _)| l.as_str())
    }

    /// Iterate the values in declaration order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.fields.iter().map(|(_, v)| v)
    }

    /// Tuple concatenation `x ++ y` (Section 6). Fails if the operands share
    /// a top-level label.
    pub fn concat(&self, other: &Record) -> Result<Record> {
        let mut out = self.clone();
        for (l, v) in other.iter() {
            out.push(l, v.clone())?;
        }
        Ok(out)
    }

    /// The paper's `x ++ (a = z)`: extend with a single unary tuple.
    /// Fails if `a` already occurs on the top level of `x`.
    pub fn extend_field(&self, label: &str, value: Value) -> Result<Record> {
        let mut out = self.clone();
        out.push(label, value)?;
        Ok(out)
    }

    /// Projection onto a list of labels (in the order given).
    pub fn project(&self, labels: &[&str]) -> Result<Record> {
        let mut out = Record::empty();
        for l in labels {
            out.push(*l, self.get(l)?.clone())?;
        }
        Ok(out)
    }

    /// Remove a field, returning the remainder. Fails if absent.
    pub fn without(&self, label: &str) -> Result<Record> {
        if !self.has(label) {
            return Err(ModelError::NoSuchField {
                field: label.to_string(),
                available: self.labels().map(str::to_string).collect(),
            });
        }
        Ok(Record {
            fields: self
                .fields
                .iter()
                .filter(|(l, _)| l != label)
                .cloned()
                .collect(),
        })
    }

    /// Fields sorted by label — the canonical form used for equality,
    /// ordering, and hashing.
    fn canonical(&self) -> Vec<(&str, &Value)> {
        let mut v: Vec<(&str, &Value)> = self.iter().collect();
        v.sort_by(|a, b| a.0.cmp(b.0));
        v
    }
}

impl PartialEq for Record {
    fn eq(&self, other: &Self) -> bool {
        self.canonical() == other.canonical()
    }
}

impl Eq for Record {}

impl PartialOrd for Record {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Record {
    fn cmp(&self, other: &Self) -> Ordering {
        self.canonical().cmp(&other.canonical())
    }
}

impl Hash for Record {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for (l, v) in self.canonical() {
            l.hash(state);
            v.hash(state);
        }
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, (l, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l} = {v}")?;
        }
        write!(f, ")")
    }
}

impl FromIterator<(String, Value)> for Record {
    /// Collects pairs, silently overwriting nothing: panics on duplicates.
    /// Intended for internal construction where labels are known distinct.
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        Record::new(iter).expect("duplicate label collecting Record")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(pairs: &[(&str, i64)]) -> Record {
        Record::new(pairs.iter().map(|(l, v)| (l.to_string(), Value::Int(*v)))).unwrap()
    }

    #[test]
    fn equality_ignores_field_order() {
        let a = rec(&[("x", 1), ("y", 2)]);
        let b = rec(&[("y", 2), ("x", 1)]);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        a.hash(&mut h1);
        b.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn duplicate_labels_rejected() {
        let r = Record::new([
            ("a".to_string(), Value::Int(1)),
            ("a".to_string(), Value::Int(2)),
        ]);
        assert!(matches!(r, Err(ModelError::DuplicateField(_))));
    }

    #[test]
    fn concat_rejects_shared_labels() {
        let a = rec(&[("x", 1)]);
        let b = rec(&[("x", 2)]);
        assert!(a.concat(&b).is_err());
        let c = rec(&[("y", 2)]);
        let joined = a.concat(&c).unwrap();
        assert_eq!(joined.len(), 2);
    }

    #[test]
    fn extend_field_is_paper_concat() {
        // x ++ (a = ∅) from the nest join definition.
        let x = rec(&[("e", 2), ("d", 1)]);
        let extended = x.extend_field("s", Value::empty_set()).unwrap();
        assert_eq!(extended.get("s").unwrap(), &Value::empty_set());
        assert!(x.extend_field("e", Value::Int(9)).is_err());
    }

    #[test]
    fn project_and_without() {
        let r = rec(&[("a", 1), ("b", 2), ("c", 3)]);
        let p = r.project(&["c", "a"]).unwrap();
        assert_eq!(p.labels().collect::<Vec<_>>(), vec!["c", "a"]);
        let w = r.without("b").unwrap();
        assert!(!w.has("b"));
        assert!(r.without("zz").is_err());
    }

    #[test]
    fn display_preserves_declaration_order() {
        let r = rec(&[("b", 2), ("a", 1)]);
        assert_eq!(r.to_string(), "(b = 2, a = 1)");
    }

    #[test]
    fn ordering_is_canonical() {
        let a = rec(&[("x", 1), ("y", 2)]);
        let b = rec(&[("y", 3), ("x", 1)]);
        assert!(a < b);
    }
}
