//! Error type shared by the data-model layer.

use std::fmt;

/// Errors raised while constructing or manipulating complex object values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A tuple field was looked up that does not exist.
    NoSuchField {
        /// The missing field label.
        field: String,
        /// Labels that are present, for diagnostics.
        available: Vec<String>,
    },
    /// An operation expected a value of one kind but found another,
    /// e.g. set union applied to an integer.
    KindMismatch {
        /// What the operation required ("set", "tuple", ...).
        expected: &'static str,
        /// Rendering of what was found.
        found: String,
    },
    /// Two values participating in one operation had incompatible types.
    TypeMismatch {
        /// Description of the operation.
        context: String,
    },
    /// Concatenation would duplicate a top-level label
    /// (the paper requires the nest join label "not occurring on the top
    /// level of X", Section 6).
    DuplicateField(String),
    /// A class, sort, or extension name was redefined or missing.
    SchemaError(String),
    /// Arithmetic error (division by zero, overflow).
    Arithmetic(String),
    /// I/O failure in a spill file or other on-disk structure. Carries the
    /// rendered `std::io::Error` (the cause is not kept: `ModelError` is
    /// `Clone + PartialEq`, which `io::Error` is not).
    Io(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NoSuchField { field, available } => {
                write!(
                    f,
                    "no such field `{field}` (available: {})",
                    available.join(", ")
                )
            }
            ModelError::KindMismatch { expected, found } => {
                write!(f, "expected a {expected}, found {found}")
            }
            ModelError::TypeMismatch { context } => write!(f, "type mismatch: {context}"),
            ModelError::DuplicateField(l) => write!(f, "duplicate top-level label `{l}`"),
            ModelError::SchemaError(m) => write!(f, "schema error: {m}"),
            ModelError::Arithmetic(m) => write!(f, "arithmetic error: {m}"),
            ModelError::Io(m) => write!(f, "i/o error: {m}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_no_such_field() {
        let e = ModelError::NoSuchField {
            field: "x".into(),
            available: vec!["a".into(), "b".into()],
        };
        assert_eq!(e.to_string(), "no such field `x` (available: a, b)");
    }

    #[test]
    fn display_kind_mismatch() {
        let e = ModelError::KindMismatch {
            expected: "set",
            found: "42".into(),
        };
        assert_eq!(e.to_string(), "expected a set, found 42");
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&ModelError::Arithmetic("div by zero".into()));
    }
}
