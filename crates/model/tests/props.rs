//! Property-based tests for the value universe: total-order laws, set
//! algebra laws, and record concatenation invariants. These are the
//! foundations every operator upstream relies on — if `Value`'s order were
//! not total, `BTreeSet` sets (and hence TM set semantics) would silently
//! corrupt.

use proptest::prelude::*;
use tmql_model::{setops, Record, Ty, Value};

/// Strategy for arbitrary (bounded-depth) complex object values.
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(Value::Int),
        (-1e6f64..1e6).prop_map(Value::Float),
        "[a-z]{0,6}".prop_map(Value::str),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::set),
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::List),
            prop::collection::vec(("[a-d]", inner), 0..3).prop_map(|pairs| {
                let mut rec = Record::empty();
                for (l, v) in pairs {
                    // Skip duplicate labels rather than fail the case.
                    let _ = rec.push(l, v);
                }
                Value::Tuple(rec)
            }),
        ]
    })
}

fn arb_int_set() -> impl Strategy<Value = Value> {
    prop::collection::btree_set((-20i64..20).prop_map(Value::Int), 0..8).prop_map(Value::Set)
}

proptest! {
    #[test]
    fn ordering_is_total_and_antisymmetric(a in arb_value(), b in arb_value()) {
        use std::cmp::Ordering::*;
        match a.cmp(&b) {
            Equal => prop_assert_eq!(b.cmp(&a), Equal),
            Less => prop_assert_eq!(b.cmp(&a), Greater),
            Greater => prop_assert_eq!(b.cmp(&a), Less),
        }
    }

    #[test]
    fn ordering_is_transitive(a in arb_value(), b in arb_value(), c in arb_value()) {
        let mut v = [a, b, c];
        v.sort();
        prop_assert!(v[0] <= v[1] && v[1] <= v[2] && v[0] <= v[2]);
    }

    #[test]
    fn equal_values_hash_equal(a in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let b = a.clone();
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        a.hash(&mut h1);
        b.hash(&mut h2);
        prop_assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn type_of_admits_its_value(a in arb_value()) {
        let t = Ty::of(&a);
        prop_assert!(t.admits(&a), "inferred type {} must admit {}", t, a);
    }

    #[test]
    fn union_is_commutative_associative_idempotent(
        a in arb_int_set(), b in arb_int_set(), c in arb_int_set()
    ) {
        let ab = setops::union(&a, &b).unwrap();
        let ba = setops::union(&b, &a).unwrap();
        prop_assert_eq!(&ab, &ba);
        let ab_c = setops::union(&ab, &c).unwrap();
        let bc = setops::union(&b, &c).unwrap();
        let a_bc = setops::union(&a, &bc).unwrap();
        prop_assert_eq!(ab_c, a_bc);
        prop_assert_eq!(setops::union(&a, &a).unwrap(), a);
    }

    #[test]
    fn demorgan_for_containment(a in arb_int_set(), b in arb_int_set()) {
        // a ⊆ b  ⟺  a \ b = ∅ — the identity Table 2's ⊆ rows rest on.
        let diff = setops::difference(&a, &b).unwrap();
        prop_assert_eq!(
            setops::subseteq(&a, &b).unwrap(),
            setops::count(&diff).unwrap() == 0
        );
    }

    #[test]
    fn disjoint_iff_intersection_empty(a in arb_int_set(), b in arb_int_set()) {
        let inter = setops::intersect(&a, &b).unwrap();
        prop_assert_eq!(
            setops::disjoint(&a, &b).unwrap(),
            setops::count(&inter).unwrap() == 0
        );
    }

    #[test]
    fn proper_subset_is_strict(a in arb_int_set(), b in arb_int_set()) {
        if setops::subset(&a, &b).unwrap() {
            prop_assert!(setops::subseteq(&a, &b).unwrap());
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn unnest_of_singletons_is_identity(a in arb_int_set()) {
        // UNNEST({{x} | x ∈ a}) = a
        let singletons = Value::set(
            a.as_set().unwrap().iter().map(|v| Value::set([v.clone()]))
        );
        prop_assert_eq!(setops::unnest(&singletons).unwrap(), a);
    }

    #[test]
    fn record_concat_preserves_fields(
        xs in prop::collection::vec(("[a-c]", -5i64..5), 0..3),
        ys in prop::collection::vec(("[d-f]", -5i64..5), 0..3),
    ) {
        let mut x = Record::empty();
        for (l, v) in &xs { let _ = x.push(l.clone(), Value::Int(*v)); }
        let mut y = Record::empty();
        for (l, v) in &ys { let _ = y.push(l.clone(), Value::Int(*v)); }
        let joined = x.concat(&y).unwrap();
        prop_assert_eq!(joined.len(), x.len() + y.len());
        for (l, v) in x.iter() {
            prop_assert_eq!(joined.get(l).unwrap(), v);
        }
        for (l, v) in y.iter() {
            prop_assert_eq!(joined.get(l).unwrap(), v);
        }
    }
}
