//! The paper's queries as `tmql` source strings.

/// Q1 (Section 3.2): departments with at least one employee living in the
/// same street the department is located. Nesting in the WHERE clause with
/// a **set-valued attribute operand** (`d.emps`) — stays nested-loop per
/// Section 3.2.
pub const Q1: &str = "\
SELECT d
FROM DEPT d
WHERE (s = d.address.street, c = d.address.city)
      IN (SELECT (s = e.address.street, c = e.address.city)
          FROM d.emps e)";

/// Q2 (Section 3.2): for all departments, the department name and the
/// employees living in the same city. Nesting in the SELECT clause over a
/// **distinct table** (`EMP`) — nest join territory.
pub const Q2: &str = "\
SELECT (dname = d.name,
        emps = (SELECT e
                FROM EMP e
                WHERE e.address.city = d.address.city))
FROM DEPT d";

/// The Section 2 COUNT-bug query over `R(a, b, c)` / `S(c, d)`:
/// `SELECT * FROM R WHERE R.B = (SELECT COUNT(*) FROM S WHERE R.C = S.C)`.
pub const COUNT_BUG: &str = "\
SELECT x
FROM R x
WHERE x.b = COUNT((SELECT y.d FROM S y WHERE x.c = y.c))";

/// The Section 4 SUBSETEQ-bug query over `X(a, b, n)` / `Y(b, a)`:
/// `SELECT x FROM X x WHERE x.a ⊆ (SELECT y.a FROM Y y WHERE x.b = y.b)`.
pub const SUBSETEQ_BUG: &str = "\
SELECT x
FROM X x
WHERE x.a SUBSETEQ (SELECT y.a FROM Y y WHERE x.b = y.b)";

/// The Section 8 three-block query (both predicates require grouping).
pub const SECTION8: &str = "\
SELECT x
FROM X x
WHERE x.a SUBSETEQ (SELECT y.a
                    FROM Y y
                    WHERE x.b = y.b AND
                          y.c SUBSETEQ (SELECT z.c
                                        FROM Z z
                                        WHERE y.d = z.d))";

/// The Section 8 variant with `⊆` changed to `∈`/`∉`: the nest joins may
/// be replaced by a semijoin (outer) and an antijoin (inner).
pub const SECTION8_FLAT: &str = "\
SELECT x
FROM X x
WHERE x.b IN (SELECT y.a
              FROM Y y
              WHERE x.b = y.b AND
                    y.a NOT IN (SELECT z.c
                                FROM Z z
                                WHERE y.d = z.d))";

/// The Section 5 UNNEST special case:
/// `UNNEST(SELECT (SELECT (a = x.a, b = y.b) FROM Y y WHERE x.b = y.a) FROM X x)`.
pub const UNNEST_COLLAPSE: &str = "\
UNNEST(SELECT (SELECT (a = x.n, b = y.b) FROM Y y WHERE x.b = y.a)
       FROM X x)";

/// A membership query for the flattening experiments (B1/B3):
/// `x.n ∈ {y.a | x.b = y.b}` — semijoin per Theorem 1.
pub const MEMBERSHIP: &str = "\
SELECT x
FROM X x
WHERE x.n IN (SELECT y.a FROM Y y WHERE x.b = y.b)";

/// The antijoin twin of [`MEMBERSHIP`].
pub const NON_MEMBERSHIP: &str = "\
SELECT x
FROM X x
WHERE x.n NOT IN (SELECT y.a FROM Y y WHERE x.b = y.b)";

/// Build a WHERE-nesting query over X/Y with an arbitrary predicate
/// between the blocks (`{Z}` is the subquery placeholder).
pub fn where_query(pred_template: &str) -> String {
    let sub = "(SELECT y.a FROM Y y WHERE x.b = y.b)";
    format!(
        "SELECT x\nFROM X x\nWHERE {}",
        pred_template.replace("{Z}", sub)
    )
}

/// The Table 2 predicate sweep, as `where_query` templates keyed by the
/// paper's row names.
pub fn table2_templates() -> Vec<(&'static str, String)> {
    vec![
        ("z = ∅", where_query("{Z} = {}")),
        ("count(z) = 0", where_query("COUNT({Z}) = 0")),
        ("count(z) <> 0", where_query("COUNT({Z}) <> 0")),
        ("x.n = count(z)", where_query("x.n = COUNT({Z})")),
        ("x.n ∈ z", where_query("x.n IN {Z}")),
        ("x.n ∉ z", where_query("x.n NOT IN {Z}")),
        ("x.a ⊆ z", where_query("x.a SUBSETEQ {Z}")),
        ("x.a ⊂ z", where_query("x.a SUBSET {Z}")),
        ("x.a ⊇ z", where_query("x.a SUPERSETEQ {Z}")),
        ("x.a ⊃ z", where_query("x.a SUPERSET {Z}")),
        ("x.a = z", where_query("x.a = {Z}")),
        ("x.a ≠ z", where_query("x.a <> {Z}")),
        ("x.a ∩ z = ∅", where_query("x.a DISJOINT {Z}")),
        ("x.a ∩ z ≠ ∅", where_query("x.a INTERSECTS {Z}")),
        (
            "∀w ∈ x.a (w ∈ z)",
            where_query("FORALL w IN x.a (w IN {Z})"),
        ),
        (
            "∀w ∈ x.a (w ∉ z)",
            where_query("FORALL w IN x.a (w NOT IN {Z})"),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_parses() {
        for (name, src) in [
            ("Q1", Q1),
            ("Q2", Q2),
            ("COUNT_BUG", COUNT_BUG),
            ("SUBSETEQ_BUG", SUBSETEQ_BUG),
            ("SECTION8", SECTION8),
            ("UNNEST_COLLAPSE", UNNEST_COLLAPSE),
            ("MEMBERSHIP", MEMBERSHIP),
            ("NON_MEMBERSHIP", NON_MEMBERSHIP),
        ] {
            tmql_lang::parse_query(src)
                .unwrap_or_else(|e| panic!("{name} does not parse: {}", e.render(src)));
        }
    }

    #[test]
    fn table2_templates_parse() {
        for (name, src) in table2_templates() {
            tmql_lang::parse_query(&src)
                .unwrap_or_else(|e| panic!("template `{name}` does not parse: {}", e.render(&src)));
        }
    }

    #[test]
    fn where_query_substitutes() {
        let q = where_query("x.n IN {Z}");
        assert!(q.contains("SELECT y.a"));
        assert!(!q.contains("{Z}"));
    }
}
