#![warn(missing_docs)]

//! # tmql-workload — schemas, data generators, and the query corpus
//!
//! The paper has no public datasets, so per the reproduction's
//! substitution rule this crate provides synthetic equivalents that
//! exercise the same code paths:
//!
//! * [`schemas`] — the paper's fixed fixtures: Table 1's `X`/`Y`, the
//!   relational `R`/`S` of Section 2, the `Employee`/`Department` classes
//!   of Section 3.2, and the `X`/`Y`/`Z` chain of Section 8;
//! * [`gen`] — parameterized random generators (cardinality, **dangling
//!   fraction** — the share of outer tuples with no inner match, which is
//!   the knob the COUNT bug and the outerjoin/nest join comparison hinge
//!   on — correlation fan-out, value skew);
//! * [`queries`] — the paper's queries as `tmql-lang` source strings,
//!   parameterized by predicate where the experiments sweep Table 2 rows;
//! * [`zipf`] — a small Zipf sampler for skewed key distributions.

pub mod gen;
pub mod queries;
pub mod schemas;
pub mod zipf;

pub use gen::{GenConfig, SkewKind};
