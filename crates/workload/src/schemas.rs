//! The paper's fixed fixtures.

use tmql_model::schema::paper_schema;
use tmql_model::{Record, Ty, Value};
use tmql_storage::{table::int_table, Catalog, Table};

/// Table 1's operands: `X(e, d) = {(1,1),(2,2),(3,3)}` and
/// `Y(a, b) = {(1,1),(2,1),(3,3)}` — `x = (2,2)` is the dangling tuple
/// whose nest join result is `(2, 2, ∅)`.
pub fn table1_catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.register(int_table("X", &["e", "d"], &[&[1, 1], &[2, 2], &[3, 3]]))
        .unwrap();
    cat.register(int_table("Y", &["a", "b"], &[&[1, 1], &[2, 1], &[3, 3]]))
        .unwrap();
    cat
}

/// Section 2's relational schema `R(A, B, C)`, `S(C, D)`, with a COUNT-bug
/// trigger built in: `R` rows with `b = 0` have no matching `S.c`.
pub fn count_bug_catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.register(int_table(
        "R",
        &["a", "b", "c"],
        // (a, b, c): b counts expected matches; c is the join column.
        &[
            &[1, 2, 10], // two S rows with c = 10
            &[2, 1, 20], // one S row with c = 20
            &[3, 0, 99], // dangling: COUNT = 0 — the bug row
            &[4, 5, 10], // wrong count: excluded everywhere
        ],
    ))
    .unwrap();
    cat.register(int_table(
        "S",
        &["c", "d"],
        &[&[10, 100], &[10, 101], &[20, 200]],
    ))
    .unwrap();
    cat
}

/// The Employee/Department database of Section 3.2 (classes `Employee`
/// with extension `EMP`, `Department` with extension `DEPT`, sort
/// `Address`), with a small deterministic population in which some
/// employees share street/city with their department (satisfying Q1) and
/// some departments have no employees in their city (exercising empty
/// nested results in Q2).
pub fn company_catalog() -> Catalog {
    let schema = paper_schema();
    let mut cat = Catalog::with_schema(schema);

    let address = |street: &str, nr: i64, city: &str| {
        Value::Tuple(
            Record::new([
                ("street".to_string(), Value::str(street)),
                ("nr".to_string(), Value::str(nr.to_string())),
                ("city".to_string(), Value::str(city)),
            ])
            .unwrap(),
        )
    };
    let child = |name: &str, age: i64| {
        Value::Tuple(
            Record::new([
                ("name".to_string(), Value::str(name)),
                ("age".to_string(), Value::Int(age)),
            ])
            .unwrap(),
        )
    };

    let emp_ty = vec![
        ("name".to_string(), Ty::Str),
        (
            "address".to_string(),
            Ty::Tuple(vec![
                ("street".into(), Ty::Str),
                ("nr".into(), Ty::Str),
                ("city".into(), Ty::Str),
            ]),
        ),
        ("sal".to_string(), Ty::Int),
        (
            "children".to_string(),
            Ty::Set(Box::new(Ty::Tuple(vec![
                ("name".into(), Ty::Str),
                ("age".into(), Ty::Int),
            ]))),
        ),
    ];
    let mut emp = Table::new("EMP", emp_ty);
    let employees: Vec<(&str, Value, i64, Vec<Value>)> = vec![
        (
            "ann",
            address("Drienerlolaan", 5, "Enschede"),
            5200,
            vec![child("bo", 7)],
        ),
        (
            "bob",
            address("Hengelosestraat", 12, "Enschede"),
            4100,
            vec![],
        ),
        (
            "carla",
            address("Laan van NOI", 3, "Den Haag"),
            6100,
            vec![child("di", 12), child("ed", 9)],
        ),
        (
            "dirk",
            address("Drienerlolaan", 7, "Enschede"),
            3900,
            vec![],
        ),
        (
            "eva",
            address("Marktstraat", 1, "Hengelo"),
            4700,
            vec![child("fe", 2)],
        ),
    ];
    for (name, addr, sal, children) in employees {
        emp.insert(
            Record::new([
                ("name".to_string(), Value::str(name)),
                ("address".to_string(), addr),
                ("sal".to_string(), Value::Int(sal)),
                ("children".to_string(), Value::set(children)),
            ])
            .unwrap(),
        )
        .unwrap();
    }

    // Departments embed their employees' tuples in the set-valued `emps`
    // attribute ("set-valued attributes are stored with the objects
    // themselves", Section 3.2).
    let emp_rows: Vec<Record> = emp.rows().cloned().collect();
    let emp_by_name = |n: &str| {
        Value::Tuple(
            emp_rows
                .iter()
                .find(|r| r.get("name").unwrap() == &Value::str(n))
                .expect("employee exists")
                .clone(),
        )
    };

    let dept_ty = vec![
        ("name".to_string(), Ty::Str),
        (
            "address".to_string(),
            Ty::Tuple(vec![
                ("street".into(), Ty::Str),
                ("nr".into(), Ty::Str),
                ("city".into(), Ty::Str),
            ]),
        ),
        ("emps".to_string(), Ty::Set(Box::new(Ty::Any))),
    ];
    let mut dept = Table::new("DEPT", dept_ty);
    let depts: Vec<(&str, Value, Vec<&str>)> = vec![
        // Q1 hit: ann lives on Drienerlolaan in Enschede, same as CS.
        (
            "cs",
            address("Drienerlolaan", 99, "Enschede"),
            vec!["ann", "bob"],
        ),
        // No employee shares this street.
        ("math", address("Hallenweg", 2, "Enschede"), vec!["dirk"]),
        // Q2 empty: no employee lives in Amsterdam.
        (
            "sales",
            address("Damrak", 1, "Amsterdam"),
            vec!["carla", "eva"],
        ),
    ];
    for (name, addr, members) in depts {
        dept.insert(
            Record::new([
                ("name".to_string(), Value::str(name)),
                ("address".to_string(), addr),
                (
                    "emps".to_string(),
                    Value::set(members.into_iter().map(emp_by_name)),
                ),
            ])
            .unwrap(),
        )
        .unwrap();
    }

    cat.register(emp).unwrap();
    cat.register(dept).unwrap();
    cat
}

/// Section 8's three-table chain: `X(a: P INT, b)`, `Y(a, b, c: P INT, d)`,
/// `Z(c, d)`, deterministic small population with danglers at both levels.
pub fn section8_catalog() -> Catalog {
    let mut cat = Catalog::new();

    let set_of = |items: &[i64]| Value::set(items.iter().copied().map(Value::Int));

    let mut x = Table::new(
        "X",
        vec![
            ("a".into(), Ty::Set(Box::new(Ty::Int))),
            ("b".into(), Ty::Int),
        ],
    );
    for (a, b) in [(vec![1, 2], 1), (vec![], 2), (vec![1], 7), (vec![3], 1)] {
        x.insert(
            Record::new([
                ("a".to_string(), set_of(&a)),
                ("b".to_string(), Value::Int(b)),
            ])
            .unwrap(),
        )
        .unwrap();
    }
    cat.register(x).unwrap();

    let mut y = Table::new(
        "Y",
        vec![
            ("a".into(), Ty::Int),
            ("b".into(), Ty::Int),
            ("c".into(), Ty::Set(Box::new(Ty::Int))),
            ("d".into(), Ty::Int),
        ],
    );
    for (a, b, c, d) in [
        (1, 1, vec![10], 5),     // c ⊆ {z.c | z.d = 5} = {10, 11} ✓
        (2, 1, vec![10, 12], 5), // 12 ∉ {10, 11} ✗
        (3, 1, vec![], 6),       // ∅ ⊆ anything ✓ (even with no Z match)
        (4, 2, vec![11], 5),     // different x.b group
    ] {
        y.insert(
            Record::new([
                ("a".to_string(), Value::Int(a)),
                ("b".to_string(), Value::Int(b)),
                ("c".to_string(), set_of(&c)),
                ("d".to_string(), Value::Int(d)),
            ])
            .unwrap(),
        )
        .unwrap();
    }
    cat.register(y).unwrap();

    cat.register(int_table("Z", &["c", "d"], &[&[10, 5], &[11, 5], &[20, 9]]))
        .unwrap();
    cat
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let cat = table1_catalog();
        assert_eq!(cat.table("X").unwrap().len(), 3);
        assert_eq!(cat.table("Y").unwrap().len(), 3);
    }

    #[test]
    fn count_bug_catalog_has_dangling_row() {
        let cat = count_bug_catalog();
        let r = cat.table("R").unwrap();
        let dangling: Vec<_> = r
            .rows()
            .filter(|row| row.get("c").unwrap() == &Value::Int(99))
            .collect();
        assert_eq!(dangling.len(), 1);
        assert_eq!(dangling[0].get("b").unwrap(), &Value::Int(0));
    }

    #[test]
    fn company_catalog_valid() {
        let cat = company_catalog();
        assert_eq!(cat.table("EMP").unwrap().len(), 5);
        assert_eq!(cat.table("DEPT").unwrap().len(), 3);
        // Schema is attached and resolvable.
        assert!(cat.schema().class_by_extension("EMP").is_some());
        // Departments embed employee tuples.
        let dept = cat.table("DEPT").unwrap();
        let cs = dept.rows().next().unwrap();
        let emps = cs.get("emps").unwrap().as_set().unwrap();
        assert_eq!(emps.len(), 2);
    }

    #[test]
    fn section8_catalog_valid() {
        let cat = section8_catalog();
        assert_eq!(cat.table("X").unwrap().len(), 4);
        assert_eq!(cat.table("Y").unwrap().len(), 4);
        assert_eq!(cat.table("Z").unwrap().len(), 3);
    }
}
