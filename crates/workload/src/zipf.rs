//! A small Zipf(θ) sampler over `{0, …, n-1}` (inverse-CDF with a
//! precomputed table), for skewed join-key distributions.

use rand::Rng;

/// Zipfian distribution over `n` items with exponent `theta` (0 = uniform,
/// ≈1 = classic Zipf).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the distribution. `n` must be ≥ 1.
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n >= 1, "Zipf over an empty domain");
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(theta)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        // Guard against floating point drift.
        if let Some(last) = weights.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf: weights }
    }

    /// Sample a rank in `0..n`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Number of distinct items.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn skewed_when_theta_high() {
        let z = Zipf::new(10, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..5000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[9] * 5, "{counts:?}");
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(3, 0.8);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(z.sample(&mut rng) < 3);
        }
        assert_eq!(z.n(), 3);
    }
}
